"""Shared context for the benchmark suite.

Scale defaults to 1/400 of the paper's genome sizes so the whole suite runs
in minutes; set ``REPRO_BENCH_SCALE`` (e.g. ``0.01``) for larger runs and
``REPRO_BENCH_DATASETS`` (comma-separated) to restrict inputs.  Rendered
tables land in ``results/`` next to this directory.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import BenchContext

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="session")
def ctx() -> BenchContext:
    return BenchContext.from_env(
        cache_dir=os.path.join(_ROOT, ".dataset_cache"),
        results_dir=os.path.join(_ROOT, "results"),
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
