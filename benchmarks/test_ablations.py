"""Ablation benchmarks for JEM-mapper's design choices (see DESIGN.md §5)."""

from conftest import run_once

from repro.bench import (
    ablation_counter,
    ablation_segments,
    ablation_topx,
    ablation_window,
)
from repro.bench.ablations import (
    ablation_error_rate,
    ablation_ingredients,
    ablation_kmer,
    ablation_seeds,
    ablation_threshold,
)


def test_ablation_topx(ctx, benchmark):
    """Top-x reporting recovers recall (Section IV-C's proposed extension)."""
    out = run_once(benchmark, ablation_topx, ctx)
    print("\n" + out.text)
    recall = out.data["recall"]
    # monotone non-decreasing in x, and x=3 recovers part of the gap to 100%
    assert all(b >= a - 1e-9 for a, b in zip(recall, recall[1:]))
    gap_1 = 100.0 - recall[0]
    gap_3 = 100.0 - recall[out.data["x"].index(3)]
    assert gap_3 <= gap_1
    if gap_1 > 0.5:  # only meaningful when there is a gap to recover
        assert gap_3 < 0.8 * gap_1, f"top-3 recovered too little: {recall}"


def test_ablation_segments(ctx, benchmark):
    """End segments: scaffolding yield + less work at equal quality (III-B.1)."""
    out = run_once(benchmark, ablation_segments, ctx)
    print("\n" + out.text)
    seg, whole = out.data["segments"], out.data["whole"]
    # quality stays in the paper's regime
    assert seg.precision > 0.95 and seg.recall > 0.90
    # advantage (a): segments recover contig links, one-best-hit cannot
    assert out.data["links"] > 0
    # advantage (b): far fewer bases are sketched (reads >> 2*ell here)
    assert out.data["seg_bases"] < 0.5 * out.data["whole_bases"]
    # and the measured query step is cheaper despite twice the query count
    assert out.data["seg_time"] < out.data["whole_time"] * 1.1


def test_ablation_window(ctx, benchmark):
    """Smaller w = denser sketches = bigger index; quality stays high across w."""
    out = run_once(benchmark, ablation_window, ctx)
    print("\n" + out.text)
    entries = out.data["entries"]
    # index size strictly shrinks as the window grows
    assert all(b < a for a, b in zip(entries, entries[1:])), entries
    # the paper's operating point (w=100) keeps precision/recall high
    i100 = out.data["w"].index(100)
    assert out.data["precision"][i100] > 95.0
    assert out.data["recall"][i100] > 90.0


def test_ablation_threshold(ctx, benchmark):
    """Raising the hit threshold trades recall for precision."""
    out = run_once(benchmark, ablation_threshold, ctx)
    print("\n" + out.text)
    reports = out.data["reports"]
    precisions = [r.precision for r in reports]
    recalls = [r.recall for r in reports]
    mapped = [r.n_mapped for r in reports]
    # mapped count and recall are non-increasing in the threshold
    assert all(b <= a for a, b in zip(mapped, mapped[1:]))
    assert all(b <= a + 1e-9 for a, b in zip(recalls, recalls[1:]))
    # precision at the strictest threshold >= at the loosest
    assert precisions[-1] >= precisions[0] - 1e-9
    # threshold 1 is the default behaviour: everything sketchable maps
    assert reports[0].n_mapped >= reports[-1].n_mapped


def test_ablation_counter(ctx, benchmark):
    """Lazy counter and vectorised groupby agree; vectorised is faster."""
    out = run_once(benchmark, ablation_counter, ctx)
    print("\n" + out.text)
    assert out.data["identical"]
    assert out.data["t_vectorised"] < out.data["t_lazy"]


def test_ablation_ingredients(ctx, benchmark):
    """Intervals — not winnowing — are JEM's recall mechanism."""
    out = run_once(benchmark, ablation_ingredients, ctx)
    print("\n" + out.text)
    jem = out.data["JEM (intervals)"]
    classical = out.data["classical MinHash"]
    mini = out.data["minimizer MinHash"]
    # at a low trial budget JEM clearly beats both whole-sequence schemes
    assert jem.recall > classical.recall + 0.05
    assert jem.recall > mini.recall + 0.05
    # winnowing alone does NOT close the gap: the minimizer variant stays
    # in classical MinHash territory, far from JEM
    assert abs(mini.recall - classical.recall) < 0.5 * (jem.recall - classical.recall)


def test_ablation_error_rate(ctx, benchmark):
    """JEM holds through HiFi-grade errors and collapses at CLR/ONT rates."""
    out = run_once(benchmark, ablation_error_rate, ctx)
    print("\n" + out.text)
    rates = out.data["error_rates"]
    recall = out.data["recall"]
    hifi = recall[rates.index(0.001)]
    # HiFi regime (0.1%): near-perfect recall
    assert hifi > 90.0
    # degrades gracefully: still usable at 1% (corrected-read territory)
    assert recall[rates.index(0.01)] > 70.0
    # clearly broken down at 12% (raw first-generation long reads)
    assert recall[rates.index(0.12)] < hifi - 20.0
    # precision holds throughout (spurious collisions stay rare)
    assert min(out.data["precision"]) > 90.0


def test_ablation_seeds(ctx, benchmark):
    """Fig. 5's conclusions hold for every dataset replicate."""
    out = run_once(benchmark, ablation_seeds, ctx)
    print("\n" + out.text)
    for i in range(len(out.data["seeds"])):
        assert out.data["jem_precision"][i] > 95.0
        assert out.data["jem_recall"][i] > 90.0
        assert out.data["mashmap_precision"][i] > 95.0
    # the two mappers stay within a few points on every replicate
    import numpy as np

    gaps = np.abs(
        np.array(out.data["jem_recall"]) - np.array(out.data["mashmap_recall"])
    )
    assert gaps.max() < 5.0


def test_ablation_kmer(ctx, benchmark):
    """The paper's k=16 keeps precision high; every swept k stays usable."""
    out = run_once(benchmark, ablation_kmer, ctx)
    print("\n" + out.text)
    i16 = out.data["k"].index(16)
    assert out.data["precision"][i16] > 95.0
    assert out.data["recall"][i16] > 90.0
    # no swept k collapses (the genome is small; k>=10 stays specific)
    assert min(out.data["precision"]) > 80.0
