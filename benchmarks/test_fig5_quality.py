"""Fig. 5 — precision/recall of JEM-mapper vs Mashmap on simulated inputs."""

from conftest import run_once

from repro.bench import exp_fig5


def test_fig5(ctx, benchmark):
    out = run_once(benchmark, exp_fig5, ctx)
    print("\n" + out.text)
    for name, row in out.data.items():
        jem, mashmap = row["jem"], row["mashmap"]
        # the paper's headline: both tools produce well over 95% precision
        assert jem.precision > 0.95, f"{name}: JEM precision {jem.precision:.3f}"
        assert mashmap.precision > 0.95, f"{name}: Mashmap precision {mashmap.precision:.3f}"
        # and high recall, with the two tools within a few points
        assert jem.recall > 0.90, f"{name}: JEM recall {jem.recall:.3f}"
        assert abs(jem.recall - mashmap.recall) < 0.05
        assert abs(jem.precision - mashmap.precision) < 0.05
