"""Fig. 6 — effect of the number of trials T: JEM vs classical MinHash."""

import numpy as np
from conftest import run_once

from repro.bench import exp_fig6


def test_fig6(ctx, benchmark):
    out = run_once(benchmark, exp_fig6, ctx)
    print("\n" + out.text)
    trials = list(out.data["trials"])
    jem_recall = out.data["jem_recall"]
    mh_recall = out.data["minhash_recall"]

    i20 = trials.index(20)
    i30 = trials.index(30)
    i_max = len(trials) - 1

    # JEM reaches >95% precision and recall with only ~20 trials (paper's claim)
    assert jem_recall[i20] > 95.0
    assert out.data["jem_precision"][i20] > 95.0
    # and saturates: adding trials beyond 30 changes recall only marginally
    assert abs(jem_recall[i_max] - jem_recall[i30]) < 3.0

    # classical MinHash is clearly behind JEM at low trial counts...
    assert mh_recall[i20] < jem_recall[i20] - 2.0
    assert mh_recall[0] < jem_recall[0] - 10.0
    # ...and needs many more trials to approach JEM's quality
    assert mh_recall[i_max] > mh_recall[0] + 10.0  # it does improve with T

    # recall curves are (weakly) increasing in T for both schemes
    assert np.all(np.diff(np.maximum.accumulate(jem_recall)) >= 0)
