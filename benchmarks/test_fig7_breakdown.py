"""Fig. 7 — (a) runtime breakdown by step at p=16; (b) query throughput vs p."""

from conftest import run_once

from repro.bench import exp_fig7
from repro.bench.experiments import P_VALUES


def test_fig7(ctx, benchmark):
    out = run_once(benchmark, exp_fig7, ctx)
    print("\n" + out.text)

    dominant = 0
    for name, b in out.data["breakdown"].items():
        total = sum(b.values())
        assert total > 0
        # query processing is always a major cost component; on runs too
        # small to time reliably (sub-50ms totals of ms-scale steps) only a
        # loose floor is meaningful
        floor = 0.15 if total >= 0.05 else 0.05
        assert b["query_map"] / total > floor, f"{name}: query step negligible: {b}"
        if b["query_map"] == max(b.values()):
            dominant += 1
    # ...and the dominant step on most inputs — the paper's Fig. 7a finding.
    # Query dominance comes from the m >> n regime of full-size inputs; at
    # the tiny default bench scale the per-rank subject-sketching overhead
    # (T sparse tables per rank) can win, so the majority requirement is
    # only asserted at >= 1/100 scale.
    n = len(out.data["breakdown"])
    if ctx.scale >= 0.01:
        assert dominant >= (n + 1) // 2, f"query dominant on only {dominant}/{n} inputs"
    else:
        assert dominant >= 1, f"query step never dominant: {out.data['breakdown']}"

    for name, thr in out.data["throughput"].items():
        # throughput grows near-linearly with p: strictly increasing and
        # substantially higher at p=64 than p=4.  Datasets with only a few
        # hundred segments produce sub-millisecond per-rank map times whose
        # noise swamps the trend, so the scaling claim needs enough work.
        values = [thr[p] for p in P_VALUES]
        assert all(v > 0 for v in values)
        if out.data["n_segments"][name] >= 500:
            assert values[-1] > 2.0 * values[0], f"{name}: hardly scales {values}"
            rising = sum(b > a for a, b in zip(values, values[1:]))
            assert rising >= len(values) - 2  # allow one noisy step
