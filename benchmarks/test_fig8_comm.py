"""Fig. 8 — computation vs communication fractions for two large inputs."""

from conftest import run_once

from repro.bench import exp_fig8


def test_fig8(ctx, benchmark):
    out = run_once(benchmark, exp_fig8, ctx)
    print("\n" + out.text)
    for name, row in out.data.items():
        comm = row["comm_pct"]
        # communication overhead grows with p...
        assert comm[-1] > comm[0], f"{name}: comm fraction not growing {comm}"
        # ...but computation stays dominant, comm well under half at p=64
        # (the paper reports <25%; the modelled regime must stay compute-bound)
        assert comm[-1] < 50.0, f"{name}: comm fraction exploded {comm}"
        for c in comm:
            assert 0.0 <= c <= 100.0
