"""Fig. 9 — percent-identity distribution on the real-like O. sativa input."""

from conftest import run_once

from repro.bench import exp_fig9


def test_fig9(ctx, benchmark):
    out = run_once(benchmark, exp_fig9, ctx)
    print("\n" + out.text)
    identities = out.data["identities"]
    assert identities.size >= 50
    # the paper's headline: the identity mass sits in the 95-100% bins
    assert out.data["frac_ge_95"] > 0.90, f"only {out.data['frac_ge_95']:.2%} >= 95%"
    # and essentially nothing is an outright mismatch
    assert (identities < 50).mean() < 0.02
