"""Micro-benchmarks of the hot kernels (pytest-benchmark, multiple rounds).

These time the primitives that dominate the end-to-end runs: minimizer
extraction, JEM subject sketching, query sketching, table lookup and hit
counting — useful for spotting regressions independent of dataset noise.
"""

import numpy as np
import pytest

from repro.core import JEMConfig, JEMMapper, count_hits_vectorised, extract_end_segments
from repro.seq import random_codes
from repro.seq.records import SequenceSet
from repro.sketch import (
    HashFamily,
    canonical_kmer_ranks,
    minimizers,
    query_sketch_values,
    query_sketch_values_reference,
    subject_sketch_pairs,
    subject_sketch_pairs_reference,
)

CFG = JEMConfig(k=16, w=100, ell=1000, trials=30, seed=5)


@pytest.fixture(scope="module")
def genome():
    return random_codes(2_000_000, np.random.default_rng(0))


@pytest.fixture(scope="module")
def contigs(genome):
    pieces = []
    pos = 0
    i = 0
    rng = np.random.default_rng(1)
    while pos < genome.size - 4000:
        ln = int(rng.integers(1_500, 4_000))
        pieces.append((f"c{i}", genome[pos : pos + ln]))
        pos += ln
        i += 1
    names = [n for n, _ in pieces]
    offsets = np.zeros(len(pieces) + 1, dtype=np.int64)
    np.cumsum([c.size for _, c in pieces], out=offsets[1:])
    return SequenceSet(np.concatenate([c for _, c in pieces]), offsets, names)


@pytest.fixture(scope="module")
def reads(genome):
    rng = np.random.default_rng(2)
    from repro.seq import SequenceSetBuilder

    builder = SequenceSetBuilder()
    for i in range(300):
        start = int(rng.integers(0, genome.size - 10_000))
        builder.add(f"r{i}", genome[start : start + 10_000],
                    {"ref_start": start, "ref_end": start + 10_000, "ref_strand": 1})
    return builder.build()


@pytest.fixture(scope="module")
def family():
    return CFG.hash_family()


def test_bench_kmer_packing(benchmark, genome):
    result = benchmark(canonical_kmer_ranks, genome[:500_000], 16)
    assert result[0].size == 500_000 - 15


def test_bench_minimizer_extraction(benchmark, genome):
    ml = benchmark(minimizers, genome[:500_000], 16, 100)
    assert len(ml) > 0


def test_bench_subject_sketching(benchmark, contigs, family):
    keys = benchmark.pedantic(
        subject_sketch_pairs, args=(contigs, CFG.k, CFG.w, CFG.ell, family),
        rounds=2, iterations=1,
    )
    assert len(keys) == CFG.trials


def test_bench_subject_sketching_reference(benchmark, contigs, family):
    """Pre-PR per-trial S2 path; compare against test_bench_subject_sketching."""
    keys = benchmark.pedantic(
        subject_sketch_pairs_reference, args=(contigs, CFG.k, CFG.w, CFG.ell, family),
        rounds=2, iterations=1,
    )
    assert len(keys) == CFG.trials


def test_bench_query_sketching(benchmark, reads, family):
    segments, _ = extract_end_segments(reads, CFG.ell)
    sketches = benchmark.pedantic(
        query_sketch_values, args=(segments, CFG.k, CFG.w, family), rounds=3, iterations=1
    )
    assert sketches.values.shape[0] == CFG.trials


def test_bench_query_sketching_reference(benchmark, reads, family):
    """Pre-PR per-trial S4 path; compare against test_bench_query_sketching."""
    segments, _ = extract_end_segments(reads, CFG.ell)
    sketches = benchmark.pedantic(
        query_sketch_values_reference, args=(segments, CFG.k, CFG.w, family),
        rounds=3, iterations=1,
    )
    assert sketches.values.shape[0] == CFG.trials


def test_bench_query_kernel_numpy_fallback(benchmark, reads, family, monkeypatch):
    """The batched numpy path (compiled fast path disabled via kill switch)."""
    monkeypatch.setenv("REPRO_NO_NATIVE", "1")
    segments, _ = extract_end_segments(reads, CFG.ell)
    sketches = benchmark.pedantic(
        query_sketch_values, args=(segments, CFG.k, CFG.w, family), rounds=3, iterations=1
    )
    assert sketches.values.shape[0] == CFG.trials


def test_bench_end_to_end_mapping(benchmark, contigs, reads):
    mapper = JEMMapper(CFG)
    mapper.index(contigs)

    def run():
        return mapper.map_reads(reads)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.n_mapped > 0.9 * len(result)


def test_bench_fused_map(benchmark, contigs, reads):
    """Fused native S4 over the columnar store: sketch → lookup → vote in
    one C pass; compare against test_bench_fused_map_numpy_fallback."""
    mapper = JEMMapper(CFG, store_kind="columnar")
    mapper.index(contigs)
    segments, _ = extract_end_segments(reads, CFG.ell)
    result = benchmark.pedantic(
        mapper.map_segments, args=(segments,), rounds=3, iterations=1
    )
    assert result.n_mapped > 0


def test_bench_fused_map_numpy_fallback(benchmark, contigs, reads, monkeypatch):
    """The same mapping with the kill switch on — the numpy parity-oracle
    path the fused kernel must stay bit-identical to."""
    monkeypatch.setenv("REPRO_NO_NATIVE", "1")
    mapper = JEMMapper(CFG, store_kind="columnar")
    mapper.index(contigs)
    segments, _ = extract_end_segments(reads, CFG.ell)
    result = benchmark.pedantic(
        mapper.map_segments, args=(segments,), rounds=3, iterations=1
    )
    assert result.n_mapped > 0


def test_bench_hit_counting(benchmark, contigs, reads, family):
    mapper = JEMMapper(CFG)
    table = mapper.index(contigs)
    segments, _ = extract_end_segments(reads, CFG.ell)
    sketches = query_sketch_values(segments, CFG.k, CFG.w, family)
    hits = benchmark.pedantic(
        count_hits_vectorised, args=(table, sketches.values),
        kwargs={"query_mask": sketches.has}, rounds=3, iterations=1,
    )
    assert hits.n_mapped > 0
