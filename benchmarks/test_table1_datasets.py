"""Table I — dataset statistics for all eight inputs."""

from conftest import run_once

from repro.bench import exp_table1
from repro.eval.datasets import DATASETS


def test_table1(ctx, benchmark):
    out = run_once(benchmark, exp_table1, ctx)
    print("\n" + out.text)
    data = out.data
    assert len(data) >= 1
    for name, row in data.items():
        # contigs exist, are >= 500 bp by construction of the filter,
        # and reads hit the configured coverage
        assert row["contigs"].count > 0
        assert row["contigs"].min_length >= 500
        spec = DATASETS[name]
        assert row["reads"].total_bases >= spec.hifi_coverage * row["genome_length"] * 0.99
        # HiFi length regime ~ the profile median
        assert row["reads"].mean_length > 0.5 * min(spec.hifi_median_length, row["genome_length"] // 4)

    if "e_coli" in data and "human_chr7" in data:
        # the paper's central contrast: bacteria assemble into much longer
        # contigs than repeat-rich eukaryotic chromosomes
        assert data["e_coli"]["contigs"].mean_length > 2 * data["human_chr7"]["contigs"].mean_length
