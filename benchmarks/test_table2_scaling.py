"""Table II — strong scaling of JEM-mapper vs Mashmap (t=64)."""

from conftest import run_once

from repro.bench import exp_table2
from repro.bench.experiments import P_VALUES


def test_table2(ctx, benchmark):
    out = run_once(benchmark, exp_table2, ctx)
    print("\n" + out.text)
    for name, row in out.data.items():
        jem = row["jem"]
        # runtime decreases from p=4 to p=64 (strong scaling holds)
        assert jem[64] < jem[4] * 1.05, f"{name}: no speedup ({jem})"
        rel_speedup = jem[4] / jem[64]
        # paper: 1.8x at p=8 up to ~4.1x at p=64 (relative to p=4); assert
        # the same saturating-but-real scaling regime — but only where the
        # p=4 run is big enough that fixed per-rank overheads don't already
        # dominate (tiny floored datasets at small bench scales)
        if jem[4] >= 0.05:
            assert 1.5 < rel_speedup < 16.0, f"{name}: implausible scaling {rel_speedup:.2f}"
        # monotone non-increasing runtimes (tolerance for timing noise on
        # millisecond-sized per-rank measurements at bench scale)
        times = [jem[p] for p in P_VALUES]
        for a, b in zip(times, times[1:]):
            assert b <= a * 1.25 + 0.005

    # "who wins" — sequentially, JEM beats Mashmap on the clear majority of
    # the large inputs (its end-to-end advantage grows with input size; at
    # tiny bench scales fixed per-call overheads can flip a small dataset)
    seq_ratios = [row["seq_speedup_vs_mashmap"] for row in out.data.values()]
    seq_wins = sum(r > 1.0 for r in seq_ratios)
    assert seq_wins >= max(1, len(seq_ratios) - 2), (
        f"JEM lost sequentially too often: {seq_ratios}"
    )
    # and on the largest input the p=64 JEM run beats 64-thread Mashmap
    largest = max(out.data, key=lambda n: out.data[n]["jem_seq"])
    assert out.data[largest]["speedup_vs_mashmap"] > 1.0, (
        f"{largest}: modelled Mashmap t=64 won at p=64"
    )
