#!/usr/bin/env python3
"""Hybrid scaffolding — the application motivating the paper (Section I).

A long read whose *prefix* maps to one contig and whose *suffix* maps to a
different contig is evidence that the two contigs are adjacent in the
genome.  This example builds the contig adjacency graph from JEM-mapper's
output, extracts linear scaffolds from it with networkx, and checks them
against the (known, simulated) contig coordinates.
"""

from collections import Counter

import networkx as nx
import numpy as np

from repro import JEMConfig, JEMMapper
from repro.assembly import AssemblyConfig, assemble
from repro.eval.truth import place_contigs
from repro.simulate import (
    GenomeProfile,
    HiFiProfile,
    IlluminaProfile,
    simulate_genome,
    simulate_hifi_reads,
    simulate_short_reads,
)


def build_link_graph(result, n_contigs: int, min_support: int = 2) -> nx.Graph:
    """Contig graph with an edge per read linking two different contigs."""
    links: Counter[tuple[int, int]] = Counter()
    # segments come in (prefix, suffix) pairs per read
    for i in range(0, len(result), 2):
        a, b = int(result.subject[i]), int(result.subject[i + 1])
        if a < 0 or b < 0 or a == b:
            continue
        links[(min(a, b), max(a, b))] += 1
    graph = nx.Graph()
    graph.add_nodes_from(range(n_contigs))
    for (a, b), support in links.items():
        if support >= min_support:
            graph.add_edge(a, b, support=support)
    return graph


def extract_scaffolds(graph: nx.Graph) -> list[list[int]]:
    """Greedy linear scaffolds: keep the strongest edges that preserve
    degree <= 2 and acyclicity, then read off the resulting paths."""
    linear = nx.Graph()
    linear.add_nodes_from(graph.nodes)
    edges = sorted(graph.edges(data=True), key=lambda e: -e[2]["support"])
    for a, b, _data in edges:
        if linear.degree(a) >= 2 or linear.degree(b) >= 2:
            continue
        linear.add_edge(a, b)
        if any(len(c) != len(linear.subgraph(c).edges) + 1
               for c in nx.connected_components(linear)):
            linear.remove_edge(a, b)  # would close a cycle
    scaffolds = []
    for component in nx.connected_components(linear):
        if len(component) < 2:
            continue
        ends = [n for n in component if linear.degree(n) == 1]
        path = nx.shortest_path(linear, ends[0], ends[1])
        scaffolds.append(path)
    return scaffolds


def main() -> None:
    rng = np.random.default_rng(7)
    genome = simulate_genome(
        GenomeProfile(length=400_000, repeat_fraction=0.06, repeat_length=400), rng
    )
    contigs = assemble(
        simulate_short_reads(genome, IlluminaProfile(coverage=25), rng),
        AssemblyConfig(k=25, min_count=3),
    )
    reads = simulate_hifi_reads(genome, HiFiProfile(coverage=10), rng)
    print(f"{len(contigs)} contigs, {len(reads)} long reads")

    mapper = JEMMapper(JEMConfig())
    mapper.index(contigs)
    result = mapper.map_reads(reads)
    print(f"mapped {result.n_mapped}/{len(result)} end segments")

    graph = build_link_graph(result, len(contigs), min_support=3)
    scaffolds = extract_scaffolds(graph)
    print(f"\nlink graph: {graph.number_of_edges()} supported links "
          f"-> {len(scaffolds)} scaffolds")

    # Validate scaffold order against the true contig positions.
    starts, _ends, placed = place_contigs(contigs, genome)
    consistent = 0
    for path in scaffolds:
        coords = [int(starts[c]) for c in path if placed[c]]
        if coords == sorted(coords) or coords == sorted(coords, reverse=True):
            consistent += 1
    print(f"{consistent}/{len(scaffolds)} scaffolds are collinear with the genome")
    longest = max(scaffolds, key=len, default=[])
    if longest:
        print("longest scaffold:", " - ".join(contigs.names[c] for c in longest[:8]),
              "..." if len(longest) > 8 else "")


if __name__ == "__main__":
    main()
