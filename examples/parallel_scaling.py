#!/usr/bin/env python3
"""Strong scaling of the distributed JEM-mapper (paper steps S1-S4).

Runs the instrumented SPMD driver for p = 1..64 simulated ranks on one
dataset, printing per-step makespans, the modelled total, and the
communication fraction — a miniature of Table II and Figs. 7-8.  Also
verifies that the parallel mapping is bit-identical to the sequential one.
"""

import numpy as np

from repro.core import JEMConfig, JEMMapper
from repro.eval import generate_dataset
from repro.parallel import CostModel, run_parallel_jem


def main() -> None:
    print("generating a scaled Human chr 7 dataset...")
    dataset = generate_dataset("human_chr7", scale=1 / 400, seed=1)
    config = JEMConfig()
    print(f"{len(dataset.contigs)} contigs, {len(dataset.reads)} reads\n")

    sequential = JEMMapper(config)
    sequential.index(dataset.contigs)
    expected = sequential.map_reads(dataset.reads)

    cost_model = CostModel()
    header = (f"{'p':>3} | {'load':>7} {'sketch':>7} {'gather':>7} {'map':>7} |"
              f" {'total':>7} {'comm%':>6} {'q/s':>9} speedup")
    print(header)
    print("-" * len(header))
    t_base = None
    for p in (1, 2, 4, 8, 16, 32, 64):
        run = run_parallel_jem(dataset.contigs, dataset.reads, config, p=p,
                               cost_model=cost_model)
        assert np.array_equal(run.mapping.subject, expected.subject), "parallel != serial!"
        b = run.steps.breakdown()
        total = run.total_time
        if t_base is None:
            t_base = total
        print(
            f"{p:>3} | {b['input_load']:>7.4f} {b['subject_sketch']:>7.4f}"
            f" {b['sketch_gather']:>7.4f} {b['query_map']:>7.4f} |"
            f" {total:>7.4f} {100 * run.steps.comm_fraction:>5.1f}%"
            f" {run.query_throughput:>9,.0f} {t_base / total:>6.2f}x"
        )
    print("\nmapping output identical at every p (verified); "
          "communication share grows with p while total time falls.")


if __name__ == "__main__":
    main()
