#!/usr/bin/env python3
"""Quickstart: simulate a small dataset, index the contigs, map the reads.

Runs in a few seconds with no input files.  This is the minimal end-to-end
use of the public API:

    simulate genome -> short reads -> assemble contigs -> HiFi reads
    JEMMapper.index(contigs); JEMMapper.map_reads(reads)
"""

import numpy as np

from repro import JEMConfig, JEMMapper
from repro.assembly import AssemblyConfig, assemble
from repro.seq import set_stats
from repro.simulate import (
    GenomeProfile,
    HiFiProfile,
    IlluminaProfile,
    simulate_genome,
    simulate_hifi_reads,
    simulate_short_reads,
)


def main() -> None:
    rng = np.random.default_rng(42)

    # 1. A 200 kbp genome with a mild repeat family.
    genome = simulate_genome(
        GenomeProfile(length=200_000, repeat_fraction=0.05, repeat_length=400), rng
    )
    print(f"genome: {genome.size:,} bp")

    # 2. Contigs, the way the paper gets them: Illumina reads -> assembler.
    short_reads = simulate_short_reads(genome, IlluminaProfile(coverage=25), rng)
    contigs = assemble(short_reads, AssemblyConfig(k=25, min_count=3))
    print(f"contigs: {set_stats(contigs).format_row()}")

    # 3. HiFi long reads at low (10x) coverage, with truth coordinates.
    reads = simulate_hifi_reads(genome, HiFiProfile(coverage=10), rng)
    print(f"reads: {set_stats(reads).format_row()}")

    # 4. JEM-mapper with the paper's defaults (k=16, w=100, ell=1000, T=30).
    mapper = JEMMapper(JEMConfig())
    mapper.index(contigs)
    result = mapper.map_reads(reads)

    print(f"\nmapped {result.n_mapped}/{len(result)} read end segments "
          f"({100 * result.mapped_fraction:.1f}%)")
    print("first mappings:")
    for segment, contig in result.pairs(mapper.subject_names)[:8]:
        print(f"  {segment:>24} -> {contig}")


if __name__ == "__main__":
    main()
