#!/usr/bin/env python3
"""Reference-guided placement — the paper's future-work use case (iv).

"In reference-guided assembly pipelines either reads are mapped against
the reference genome or alternatively contigs or scaffolds are aligned
against the reference ... these use-cases can easily benefit from the
efficient sketch-based algorithmic template for mapping sequences of
varied lengths."

Here the roles flip: the *subject set* is a related reference genome
(chopped into ℓ-indexable chunks) and the *queries* are assembled contigs.
JEM-mapper places every contig end on the reference, which orders and
orients the contig set — the backbone step of reference-guided assembly.
The placements are checked against minimap-lite and the known truth.
"""

import numpy as np

from repro import JEMConfig, JEMMapper, SequenceSet
from repro.assembly import AssemblyConfig, assemble
from repro.baselines import MinimapLite
from repro.simulate import (
    ErrorModel,
    GenomeProfile,
    IlluminaProfile,
    apply_errors,
    simulate_genome,
    simulate_short_reads,
)


def chunk_reference(reference: np.ndarray, chunk: int = 10_000, overlap: int = 1_000):
    """Split a reference into overlapping windows usable as JEM subjects."""
    pieces = []
    starts = []
    pos = 0
    while pos < reference.size:
        end = min(pos + chunk, reference.size)
        pieces.append(reference[pos:end])
        starts.append(pos)
        if end == reference.size:
            break
        pos = end - overlap
    offsets = np.zeros(len(pieces) + 1, dtype=np.int64)
    np.cumsum([p.size for p in pieces], out=offsets[1:])
    names = [f"ref_{s:08d}" for s in starts]
    return SequenceSet(np.concatenate(pieces), offsets, names), np.array(starts)


def main() -> None:
    rng = np.random.default_rng(11)
    # The "related species" reference: the sample genome plus 2% divergence.
    genome = simulate_genome(GenomeProfile(length=300_000, repeat_fraction=0.04), rng)
    reference = apply_errors(
        genome, ErrorModel(substitution=0.015, insertion=0.0025, deletion=0.0025), rng
    )
    print(f"sample genome {genome.size:,} bp; related reference {reference.size:,} bp")

    # Assemble the sample from short reads.
    contigs = assemble(
        simulate_short_reads(genome, IlluminaProfile(coverage=25), rng),
        AssemblyConfig(k=25, min_count=3, min_contig_length=500),
    )
    print(f"{len(contigs)} contigs to place")

    # Index the chunked reference; map contig end segments.
    subjects, chunk_starts = chunk_reference(reference)
    mapper = JEMMapper(JEMConfig(trials=30))
    mapper.index(subjects)
    result = mapper.map_reads(contigs)  # contigs play the long-read role here
    placed = result.mapped_mask.reshape(-1, 2).any(axis=1)
    print(f"JEM placed {int(placed.sum())}/{len(contigs)} contigs on the reference")

    # Estimated position: the chunk start of the prefix-end hit.
    jem_pos = np.full(len(contigs), -1, dtype=np.int64)
    for i in range(len(contigs)):
        for seg in (2 * i, 2 * i + 1):
            if result.subject[seg] >= 0:
                jem_pos[i] = chunk_starts[int(result.subject[seg])]
                break

    # Cross-check with minimap-lite's base-resolution placement.
    lite = MinimapLite(k=14, w=12)
    lite.index(reference)
    agree = total = 0
    for i in range(len(contigs)):
        if jem_pos[i] < 0:
            continue
        placement = lite.place(contigs.codes_of(i))
        if placement is None:
            continue
        total += 1
        # same neighbourhood = within one chunk length
        if abs(placement.ref_start - jem_pos[i]) <= 10_000:
            agree += 1
    print(f"JEM and minimap-lite agree on {agree}/{total} placements "
          f"(to within one 10 kbp chunk)")

    order = np.argsort(jem_pos[jem_pos >= 0])
    print("first contigs along the reference:",
          [contigs.names[int(i)] for i in np.flatnonzero(jem_pos >= 0)[order][:6]])


if __name__ == "__main__":
    main()
