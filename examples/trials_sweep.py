#!/usr/bin/env python3
"""Sweep the number of MinHash trials T — a small-scale Fig. 6.

Shows why the minimizer-based Jaccard estimator needs far fewer random
trials than classical MinHash: JEM sketches are constrained to ℓ-length
intervals, so each trial has a much higher chance of hitting the true
overlap region.
"""

from repro.baselines import ClassicalMinHashMapper
from repro.core import JEMConfig, JEMMapper
from repro.eval import evaluate_mapping, generate_dataset, prepare_benchmark


def main() -> None:
    print("generating a scaled B. splendens dataset...")
    dataset = generate_dataset("b_splendens", scale=1 / 1000, seed=1)
    base = JEMConfig(trials=100)
    segments, infos, bench = prepare_benchmark(dataset, base)
    print(f"{len(dataset.contigs)} contigs, {len(segments)} query segments\n")

    header = f"{'T':>4} | {'JEM prec':>9} {'JEM recall':>10} | {'MinHash prec':>12} {'MinHash recall':>14}"
    print(header)
    print("-" * len(header))
    for trials in (5, 10, 20, 30, 50, 100):
        cfg = base.with_trials(trials)
        jem = JEMMapper(cfg)
        jem.index(dataset.contigs)
        jq = evaluate_mapping(jem.map_segments(segments, infos), bench)
        mh = ClassicalMinHashMapper(cfg)
        mh.index(dataset.contigs)
        mq = evaluate_mapping(mh.map_segments(segments, infos), bench)
        print(
            f"{trials:>4} | {100 * jq.precision:>8.2f}% {100 * jq.recall:>9.2f}% |"
            f" {100 * mq.precision:>11.2f}% {100 * mq.recall:>13.2f}%"
        )
    print("\nJEM saturates by T~20-30; classical MinHash is still climbing at T=100")
    print("(the paper's Fig. 6, at reduced scale).")


if __name__ == "__main__":
    main()
