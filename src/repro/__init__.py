"""repro — JEM-mapper: parallel sketch-based mapping of long reads to contigs.

Reproduction of Rahman, Bhowmik & Kalyanaraman, *An Efficient Parallel
Sketch-based Algorithm for Mapping Long Reads to Contigs*, IPDPSW 2023.

Quickstart::

    from repro import JEMConfig, JEMMapper
    mapper = JEMMapper(JEMConfig())
    mapper.index(contigs)                # contigs: SequenceSet
    result = mapper.map_reads(long_reads)
"""

from .core import (
    ColumnarSketchStore,
    DictSketchStore,
    JEMConfig,
    JEMMapper,
    MappingEngine,
    MappingResult,
    PipelineConfig,
    load_index,
    save_index,
)
from .errors import ReproError
from .scaffold import Scaffolder
from .seq import SeqRecord, SequenceSet, read_fasta, read_fastq, write_fasta, write_fastq
from .service import MappingService, ServiceConfig
from .sketch import HashFamily, MinimizerList, minimizers

__version__ = "1.0.0"

__all__ = [
    "JEMConfig",
    "JEMMapper",
    "MappingResult",
    "MappingEngine",
    "PipelineConfig",
    "ColumnarSketchStore",
    "DictSketchStore",
    "save_index",
    "load_index",
    "Scaffolder",
    "ReproError",
    "SeqRecord",
    "SequenceSet",
    "read_fasta",
    "read_fastq",
    "write_fasta",
    "write_fastq",
    "MappingService",
    "ServiceConfig",
    "HashFamily",
    "MinimizerList",
    "minimizers",
    "__version__",
]
