"""Alignment substrate: banded edit distance and percent identity (BLAST substitute)."""

from .banded import UNALIGNABLE, banded_edit_distance, edit_distance, percent_identity
from .identity import locate_segment, segment_identity

__all__ = [
    "UNALIGNABLE",
    "banded_edit_distance",
    "edit_distance",
    "percent_identity",
    "locate_segment",
    "segment_identity",
]
