"""Banded edit-distance alignment, vectorised row by row.

Used as the BLAST substitute for Fig. 9: after JEM-mapper pairs a read end
segment with a contig, the percent identity of the pair is computed by
aligning the segment against the located contig region.

The DP recurrence D[i, j] = min(D[i-1, j] + 1, D[i, j-1] + 1,
D[i-1, j-1] + [a_i != b_j]) is evaluated one row at a time with numpy.  The
in-row dependency D[i, j-1] + 1 (a gap in ``a``) is a prefix scan:

    D[i, j] = min_j' <= j ( cand[j'] + (j - j') )
            = ( running-min of (cand[j'] - j') ) + j

so each row costs three full-width vector operations.  A band of
half-width ``band`` around the main diagonal bounds work and memory to
O(n * band).
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError

__all__ = ["edit_distance", "banded_edit_distance", "percent_identity", "UNALIGNABLE"]

#: Distance reported when the band cannot connect the corners.
UNALIGNABLE = int(1 << 40)


def _scan_row_gaps(cand: np.ndarray) -> np.ndarray:
    """Resolve the in-row gap dependency: out[j] = min_{j'<=j}(cand[j'] + j - j')."""
    ramp = np.arange(cand.size, dtype=np.int64)
    return np.minimum.accumulate(cand - ramp) + ramp


def edit_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Exact (unbanded) Levenshtein distance — reference implementation."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.size == 0 or b.size == 0:
        return int(a.size + b.size)
    prev = np.arange(b.size + 1, dtype=np.int64)  # D[0, :]
    for i in range(1, a.size + 1):
        cand = np.empty(b.size + 1, dtype=np.int64)
        cand[0] = i
        cand[1:] = np.minimum(prev[1:] + 1, prev[:-1] + (b != a[i - 1]))
        prev = _scan_row_gaps(cand)
    return int(prev[-1])


def banded_edit_distance(a: np.ndarray, b: np.ndarray, band: int) -> int:
    """Edit distance restricted to a diagonal band |j - i| <= band.

    Exact whenever the true distance is <= band (every optimal path then
    stays inside the band); returns :data:`UNALIGNABLE` when the band
    cannot connect (0, 0) to (n, m).
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    n, m = a.size, b.size
    if band < 1:
        raise ReproError(f"band must be >= 1, got {band}")
    if n == 0 or m == 0:
        return n + m
    if abs(n - m) > band:
        return UNALIGNABLE
    big = np.int64(UNALIGNABLE)
    lo_prev, hi_prev = 0, min(m, band)  # inclusive column bounds of row 0
    prev = np.arange(lo_prev, hi_prev + 1, dtype=np.int64)  # D[0, j] = j
    for i in range(1, n + 1):
        lo = max(0, i - band)
        hi = min(m, i + band)
        cand = np.full(hi - lo + 1, big, dtype=np.int64)
        # deletion (gap in b): D[i-1, j] + 1 over the column overlap
        olo, ohi = max(lo, lo_prev), min(hi, hi_prev)
        if olo <= ohi:
            np.minimum(
                cand[olo - lo : ohi - lo + 1],
                prev[olo - lo_prev : ohi - lo_prev + 1] + 1,
                out=cand[olo - lo : ohi - lo + 1],
            )
        # substitution/match: D[i-1, j-1] + cost
        slo, shi = max(lo, lo_prev + 1, 1), min(hi, hi_prev + 1)
        if slo <= shi:
            js = np.arange(slo, shi + 1)
            cost = (b[js - 1] != a[i - 1]).astype(np.int64)
            np.minimum(
                cand[slo - lo : shi - lo + 1],
                prev[js - 1 - lo_prev] + cost,
                out=cand[slo - lo : shi - lo + 1],
            )
        if lo == 0:
            cand[0] = min(int(cand[0]), i)  # D[i, 0] = i
        prev = _scan_row_gaps(cand)
        lo_prev, hi_prev = lo, hi
    if not lo_prev <= m <= hi_prev:
        return UNALIGNABLE
    result = int(prev[m - lo_prev])
    return result if result < UNALIGNABLE else UNALIGNABLE


def percent_identity(a: np.ndarray, b: np.ndarray, band: int = 64) -> float:
    """Approximate BLAST-style percent identity of two sequences.

    identity = 100 * (1 - D / max(|a|, |b|)), with D the banded edit
    distance — a tight approximation at the >90 % identities Fig. 9
    reports.  Returns 0.0 when the pair does not align within the band.
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    longest = max(a.size, b.size)
    if longest == 0:
        return 100.0
    d = banded_edit_distance(a, b, band)
    if d >= UNALIGNABLE:
        return 0.0
    return max(0.0, 100.0 * (1.0 - d / longest))
