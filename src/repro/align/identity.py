"""Percent identity between a mapped segment and its contig (Fig. 9).

A mapping only says *which* contig a segment matches, not *where*.  The
location is recovered from shared-minimizer anchors (the most common
diagonal of anchor offsets), then the segment is banded-aligned against the
located contig window.
"""

from __future__ import annotations

import numpy as np

from ..seq.encode import reverse_complement
from ..sketch.minimizers import minimizers
from .banded import percent_identity

__all__ = ["locate_segment", "segment_identity"]


def _anchor_diagonals(
    seg: np.ndarray, contig: np.ndarray, k: int, w: int
) -> tuple[np.ndarray, np.ndarray] | None:
    """(diagonals, contig positions) of shared-minimizer anchors, or None."""
    mq = minimizers(seg, k, w)
    mc = minimizers(contig, k, w)
    if len(mq) == 0 or len(mc) == 0:
        return None
    # join on minimizer value
    order = np.argsort(mc.ranks, kind="stable")
    cr = mc.ranks[order]
    cp = mc.positions[order]
    left = np.searchsorted(cr, mq.ranks, side="left")
    right = np.searchsorted(cr, mq.ranks, side="right")
    lengths = right - left
    total = int(lengths.sum())
    if total == 0:
        return None
    q_idx = np.repeat(np.arange(len(mq)), lengths)
    run_starts = np.zeros(len(mq), dtype=np.int64)
    np.cumsum(lengths[:-1], out=run_starts[1:])
    flat = np.arange(total, dtype=np.int64) - run_starts[q_idx] + left[q_idx]
    cpos = cp[flat]
    qpos = mq.positions[q_idx]
    return cpos - qpos, cpos


def locate_segment(
    seg: np.ndarray, contig: np.ndarray, k: int = 16, w: int = 20, *, bin_width: int = 64
) -> tuple[int, int, int, int, int] | None:
    """Locate a segment on a contig via anchor diagonal voting.

    Both the segment and its reverse complement are tried (the mapper is
    strand-oblivious).  Returns ``(q_start, q_end, c_start, c_end, strand)``
    — the overlapping intervals of the (oriented) query and the contig — or
    None when no anchors exist.  The contig may be shorter than the
    segment, in which case the query interval is the part that overlaps.
    """
    seg = np.asarray(seg, dtype=np.uint8)
    contig = np.asarray(contig, dtype=np.uint8)
    best: tuple[int, ...] | None = None  # (votes, qlo, qhi, clo, chi, strand)
    for strand, query in ((1, seg), (-1, reverse_complement(seg))):
        anchors = _anchor_diagonals(query, contig, k, w)
        if anchors is None:
            continue
        diags, _ = anchors
        bins = diags // bin_width
        uniq, counts = np.unique(bins, return_counts=True)
        top = int(np.argmax(counts))
        votes = int(counts[top])
        sel = (bins == uniq[top]) | (bins == uniq[top] + 1)
        diag = int(np.median(diags[sel]))  # contig pos - query pos
        clo = max(0, diag)
        chi = min(contig.size, diag + seg.size)
        if chi <= clo:
            continue
        qlo, qhi = clo - diag, chi - diag
        if best is None or votes > best[0]:
            best = (votes, qlo, qhi, clo, chi, strand)
    if best is None:
        return None
    return best[1], best[2], best[3], best[4], best[5]


def segment_identity(
    seg: np.ndarray,
    contig: np.ndarray,
    *,
    k: int = 16,
    w: int = 20,
    band: int = 48,
) -> float:
    """Percent identity of a segment against its best region on a contig.

    The overlapping portions of the (oriented) segment and the contig are
    banded-aligned end to end; identity is over that overlap, matching how
    BLAST reports local-alignment identity for the Fig. 9 histogram.  The
    band absorbs any small error in the anchor-estimated diagonal.  Returns
    0.0 when the segment cannot be located at all (a clear false mapping —
    these populate the low bins of the histogram).
    """
    seg = np.asarray(seg, dtype=np.uint8)
    contig = np.asarray(contig, dtype=np.uint8)
    placed = locate_segment(seg, contig, k, w)
    if placed is None:
        return 0.0
    qlo, qhi, clo, chi, strand = placed
    query = seg if strand == 1 else reverse_complement(seg)
    return percent_identity(query[qlo:qhi], contig[clo:chi], band=band)
