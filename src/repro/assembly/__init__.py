"""De Bruijn graph short-read assembler (Minia substitute)."""

from .assembler import AssemblyConfig, assemble
from .dbg import DeBruijnGraph
from .kmer_count import count_kmers, solid_kmers

__all__ = ["AssemblyConfig", "assemble", "DeBruijnGraph", "count_kmers", "solid_kmers"]
