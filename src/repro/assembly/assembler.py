"""Short-read contig assembler (substitute for Minia, ref [15]).

Pipeline: count k-mers on both strands → keep solid k-mers (abundance
filter) → build the de Bruijn graph → compact non-branching paths into
unitigs → deduplicate strands → emit contigs above a length floor.

The output has the statistical character Table I relies on: a fragmented,
non-redundant contig set whose fragmentation grows with genome complexity
(repeats break unitigs at branch points).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AssemblyError
from ..seq.encode import reverse_complement
from ..seq.records import SequenceSet, SequenceSetBuilder
from .dbg import DeBruijnGraph
from .kmer_count import solid_kmers

__all__ = ["AssemblyConfig", "assemble"]


@dataclass(frozen=True)
class AssemblyConfig:
    """Assembler tunables.

    ``k`` must be odd (an odd k cannot be its own reverse complement, which
    keeps the double-stranded graph free of self-palindromic nodes).
    """

    k: int = 25
    min_count: int = 2
    min_contig_length: int = 100

    def __post_init__(self) -> None:
        if not 3 <= self.k <= 31:
            raise AssemblyError(f"assembly k must be in [3, 31], got {self.k}")
        if self.k % 2 == 0:
            raise AssemblyError(f"assembly k must be odd, got {self.k}")
        if self.min_count < 1:
            raise AssemblyError("min_count must be >= 1")
        if self.min_contig_length < self.k:
            raise AssemblyError("min_contig_length must be >= k")


def _canonical_bytes(codes: np.ndarray) -> bytes:
    """Strand-canonical byte representation used to deduplicate unitigs."""
    fwd = codes.tobytes()
    rc = reverse_complement(codes).tobytes()
    return min(fwd, rc)


def assemble(
    reads: SequenceSet, config: AssemblyConfig | None = None
) -> SequenceSet:
    """Assemble short reads into contigs.

    Every unitig appears on both strands of the graph; one representative
    (the strand whose byte string is smaller) is kept.  Contigs are sorted
    longest-first and named ``contig_00000``, ``contig_00001``, ...
    """
    config = config if config is not None else AssemblyConfig()
    kmers = solid_kmers(reads, config.k, config.min_count)
    if kmers.size == 0:
        return SequenceSet.empty()
    graph = DeBruijnGraph(kmers, config.k)
    seen: set[bytes] = set()
    contigs: list[np.ndarray] = []
    for chain in graph.unitig_node_chains():
        codes = graph.chain_to_codes(chain)
        if codes.size < config.min_contig_length:
            continue
        key = _canonical_bytes(codes)
        if key in seen:
            continue
        seen.add(key)
        contigs.append(codes)
    contigs.sort(key=lambda c: (-c.size, c.tobytes()))
    builder = SequenceSetBuilder()
    for i, codes in enumerate(contigs):
        builder.add(f"contig_{i:05d}", codes)
    return builder.build()
