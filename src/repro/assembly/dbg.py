"""De Bruijn graph over a solid k-mer set, with unitig compaction.

Nodes are packed k-mers (both strands present — the count stage inserts the
reverse complement of every observed k-mer, so the graph is strand-closed).
Edges connect k-mers overlapping by k-1 bases.  Degrees and the
"compressible edge" relation (out-degree 1 into in-degree 1) are computed
for every node at once with ``searchsorted`` membership tests; unitig
extraction then just follows a precomputed ``next[]`` pointer array.
"""

from __future__ import annotations

import numpy as np

from ..errors import AssemblyError

__all__ = ["DeBruijnGraph"]


class DeBruijnGraph:
    """Node-centric de Bruijn graph on a sorted packed k-mer array."""

    def __init__(self, kmers: np.ndarray, k: int) -> None:
        kmers = np.ascontiguousarray(kmers, dtype=np.uint64)
        if kmers.size > 1 and (kmers[1:] <= kmers[:-1]).any():
            raise AssemblyError("k-mer array must be sorted and unique")
        if not 1 <= k <= 31:
            raise AssemblyError(f"k must be in [1, 31], got {k}")
        self.kmers = kmers
        self.k = k
        self._mask = np.uint64((1 << (2 * k)) - 1)
        self._succ: np.ndarray | None = None  # (n, 4) successor node index or -1
        self._pred_count: np.ndarray | None = None

    def __len__(self) -> int:
        return int(self.kmers.size)

    # -- membership / adjacency --------------------------------------------

    def contains(self, queries: np.ndarray) -> np.ndarray:
        """Bool mask: which packed k-mers are nodes of the graph."""
        queries = np.asarray(queries, dtype=np.uint64)
        idx = np.searchsorted(self.kmers, queries)
        ok = idx < self.kmers.size
        out = np.zeros(queries.shape, dtype=bool)
        out[ok] = self.kmers[idx[ok]] == queries[ok]
        return out

    def _index_of(self, queries: np.ndarray) -> np.ndarray:
        """Node index per query, -1 for absent k-mers."""
        queries = np.asarray(queries, dtype=np.uint64)
        idx = np.searchsorted(self.kmers, queries).astype(np.int64)
        idx[idx >= self.kmers.size] = -1
        present = (idx >= 0) & (self.kmers[idx] == queries)
        idx[~present] = -1
        return idx

    def _build_adjacency(self) -> None:
        if self._succ is not None:
            return
        n = len(self)
        succ = np.full((n, 4), -1, dtype=np.int64)
        pred_count = np.zeros(n, dtype=np.int64)
        shifted = (self.kmers << np.uint64(2)) & self._mask
        for b in range(4):
            cand = shifted | np.uint64(b)
            idx = self._index_of(cand)
            succ[:, b] = idx
            hit = idx >= 0
            np.add.at(pred_count, idx[hit], 1)
        self._succ = succ
        self._pred_count = pred_count

    @property
    def out_degree(self) -> np.ndarray:
        self._build_adjacency()
        return (self._succ >= 0).sum(axis=1)

    @property
    def in_degree(self) -> np.ndarray:
        """In-degree per node (edges from any present predecessor)."""
        self._build_adjacency()
        return self._pred_count

    # -- unitig compaction ---------------------------------------------------

    def _next_pointers(self) -> np.ndarray:
        """next[v] = w when edge v->w is compressible, else -1.

        Compressible means v has exactly one successor w and w has exactly
        one predecessor — the non-branching condition of unitig compaction.
        """
        self._build_adjacency()
        outdeg = self.out_degree
        indeg = self.in_degree
        # unique successor (valid only where outdeg == 1)
        unique_succ = self._succ.max(axis=1)  # -1s lose to the real index
        nxt = np.where(
            (outdeg == 1) & (unique_succ >= 0) & (indeg[unique_succ] == 1),
            unique_succ,
            -1,
        )
        return nxt

    def unitig_node_chains(self) -> list[np.ndarray]:
        """Maximal non-branching node chains (each node in exactly one chain)."""
        n = len(self)
        if n == 0:
            return []
        nxt = self._next_pointers()
        has_compressible_in = np.zeros(n, dtype=bool)
        has_compressible_in[nxt[nxt >= 0]] = True
        visited = np.zeros(n, dtype=bool)
        chains: list[np.ndarray] = []
        for start in np.flatnonzero(~has_compressible_in):
            chain = [int(start)]
            visited[start] = True
            v = int(nxt[start])
            while v >= 0 and not visited[v]:
                chain.append(v)
                visited[v] = True
                v = int(nxt[v])
            chains.append(np.asarray(chain, dtype=np.int64))
        # Remaining nodes lie on pure cycles of compressible edges.
        for seed in np.flatnonzero(~visited):
            if visited[seed]:
                continue
            chain = [int(seed)]
            visited[seed] = True
            v = int(nxt[seed])
            while v >= 0 and not visited[v]:
                chain.append(v)
                visited[v] = True
                v = int(nxt[v])
            chains.append(np.asarray(chain, dtype=np.int64))
        return chains

    def chain_to_codes(self, chain: np.ndarray) -> np.ndarray:
        """Spell the sequence of a node chain (k + len(chain) - 1 bases)."""
        if chain.size == 0:
            raise AssemblyError("empty chain")
        k = self.k
        first = int(self.kmers[chain[0]])
        head = np.empty(k, dtype=np.uint8)
        for j in range(k - 1, -1, -1):
            head[j] = first & 3
            first >>= 2
        tail = (self.kmers[chain[1:]] & np.uint64(3)).astype(np.uint8)
        return np.concatenate([head, tail])
