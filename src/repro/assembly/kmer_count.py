"""Exact k-mer counting over a read set, numpy-native.

The assembler needs solid (abundance-filtered) k-mers.  Counting is one
concatenate + ``np.unique(return_counts=True)`` over the packed forward
k-mers of every read *and* its reverse complement, so a k-mer and its RC
always carry the same count — the double-stranded view a de Bruijn
assembler requires.
"""

from __future__ import annotations

import numpy as np

from ..errors import AssemblyError
from ..seq.records import SequenceSet
from ..sketch.kmers import MAX_K, kmer_ranks, valid_kmer_mask

__all__ = ["count_kmers", "solid_kmers"]


def _revcomp_ranks(ranks: np.ndarray, k: int) -> np.ndarray:
    """Vectorised reverse complement of packed k-mer ranks."""
    x = np.asarray(ranks, dtype=np.uint64)
    out = np.zeros_like(x)
    for _ in range(k):
        out = (out << np.uint64(2)) | ((x & np.uint64(3)) ^ np.uint64(3))
        x = x >> np.uint64(2)
    return out


def _in_read_window_mask(offsets: np.ndarray, total: int, k: int) -> np.ndarray:
    """Mask over window starts of the concatenated buffer: true when the
    k-window lies entirely inside one read (doesn't straddle a boundary)."""
    n_windows = total - k + 1
    mask = np.ones(n_windows, dtype=bool)
    if k == 1:
        return mask
    # For every internal boundary at offset b, starts in [b - k + 1, b) are bad.
    boundaries = offsets[1:-1]
    if boundaries.size:
        bad = boundaries[:, None] - np.arange(1, k, dtype=np.int64)[None, :]
        bad = bad.reshape(-1)
        bad = bad[(bad >= 0) & (bad < n_windows)]
        mask[bad] = False
    return mask


def count_kmers(reads: SequenceSet, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Count every k-mer of the read set on both strands.

    Returns ``(kmers, counts)``: sorted unique packed forward-orientation
    k-mers (both strands present) with their occurrence counts.

    The packing runs once over the *concatenated* read buffer; windows that
    straddle a read boundary (or contain an invalid base) are masked out.
    This keeps the whole count at a handful of full-width numpy passes
    regardless of the read count.
    """
    if not 1 <= k <= MAX_K:
        raise AssemblyError(f"k must be in [1, {MAX_K}], got {k}")
    buffer = reads.buffer
    if buffer.size < k:
        return np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64)
    ranks = kmer_ranks(buffer, k)
    keep = valid_kmer_mask(buffer, k) & _in_read_window_mask(reads.offsets, buffer.size, k)
    ranks = ranks[keep]
    if ranks.size == 0:
        return np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64)
    allk = np.concatenate([ranks, _revcomp_ranks(ranks, k)])
    kmers, counts = np.unique(allk, return_counts=True)
    return kmers, counts.astype(np.int64)


def solid_kmers(reads: SequenceSet, k: int, min_count: int = 2) -> np.ndarray:
    """Sorted unique k-mers occurring at least ``min_count`` times.

    ``min_count`` filters sequencing-error k-mers (an error creates up to k
    novel k-mers that are unlikely to recur), the same role as Minia's
    abundance threshold.
    """
    if min_count < 1:
        raise AssemblyError(f"min_count must be >= 1, got {min_count}")
    kmers, counts = count_kmers(reads, k)
    return kmers[counts >= min_count]
