"""Baseline mappers: classical MinHash, Mashmap-like, and minimap-lite."""

from .classical_minhash import ClassicalMinHashMapper
from .mashmap import MashmapConfig, MashmapLikeMapper
from .minimap_lite import MinimapLite, MinimapLiteMapper, Placement

__all__ = [
    "ClassicalMinHashMapper",
    "MashmapConfig",
    "MashmapLikeMapper",
    "MinimapLite",
    "MinimapLiteMapper",
    "Placement",
]
