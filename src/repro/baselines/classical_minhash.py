"""Classical MinHash mapper — the baseline of Fig. 6.

Identical workflow to JEM-mapper (per-trial tables, hit counting, end
segments) but the sketch of a subject is Broder's classical bottom-1
MinHash over *all* its k-mers, with no minimizer windowing and no ℓ-length
intervals.  A long contig therefore contributes exactly T sketch k-mers,
drawn from anywhere along its length — which is precisely why it needs far
more trials than JEM to collide with a 1000 bp end segment (Section IV-C).
"""

from __future__ import annotations

import numpy as np

from ..core.config import JEMConfig
from ..core.hitcounter import count_hits_vectorised
from ..core.mapper import MappingResult
from ..core.segments import extract_end_segments
from ..core.store import DEFAULT_STORE_KIND, SketchStore, build_store
from ..errors import MappingError
from ..seq.records import SequenceSet
from ..sketch.kernels import key_scratch, pack_keys_batched, sorted_unique_rows
from ..sketch.minhash import minhash_sketch_set

__all__ = ["ClassicalMinHashMapper"]


class ClassicalMinHashMapper:
    """Drop-in counterpart of :class:`~repro.core.mapper.JEMMapper`.

    Shares :class:`JEMConfig` (k, ℓ, T, seed); ``w`` is ignored because the
    classical scheme sketches every k-mer.
    """

    def __init__(
        self,
        config: JEMConfig | None = None,
        *,
        use_minimizers: bool = False,
        store_kind: str | None = None,
    ) -> None:
        self.config = config if config is not None else JEMConfig()
        self.store_kind = store_kind if store_kind is not None else DEFAULT_STORE_KIND
        self._family = self.config.hash_family()
        self._table: SketchStore | None = None
        self._subject_names: list[str] = []
        #: when true, sketches draw from the (w, k)-minimizer set instead of
        #: all k-mers — the "minimizer MinHash" ablation variant
        self.use_minimizers = bool(use_minimizers)

    @property
    def _minimizer_w(self) -> int | None:
        return self.config.w if self.use_minimizers else None

    @property
    def table(self) -> SketchStore:
        if self._table is None:
            raise MappingError("index() must be called before mapping")
        return self._table

    @property
    def subject_names(self) -> list[str]:
        return self._subject_names

    def index(self, contigs: SequenceSet) -> SketchStore:
        """One bottom-1 MinHash per (subject, trial) into the trial tables."""
        if len(contigs) == 0:
            raise MappingError("cannot index an empty contig set")
        sketches, has = minhash_sketch_set(
            contigs, self.config.k, self._family, minimizer_w=self._minimizer_w
        )
        subject_ids = np.arange(len(contigs), dtype=np.uint64)[has]
        # Same batched key kernel as the JEM subject path: one hoisted
        # validation + shift-or over the (T, n) matrix, one row-wise dedupe
        # instead of T pack_key + np.unique rounds.
        packed = pack_keys_batched(
            sketches[:, has], subject_ids,
            out=key_scratch(self.config.trials, int(subject_ids.size)),
        )
        self._table = build_store(
            self.store_kind, sorted_unique_rows(packed), n_subjects=len(contigs)
        )
        self._subject_names = list(contigs.names)
        return self._table

    def map_segments(self, segments: SequenceSet, infos=None) -> MappingResult:
        """Sketch each segment classically and pick the most frequent collider."""
        sketches, has = minhash_sketch_set(
            segments, self.config.k, self._family, minimizer_w=self._minimizer_w
        )
        hits = count_hits_vectorised(
            self.table, sketches, min_hits=self.config.min_hits, query_mask=has
        )
        return MappingResult.from_best_hits(segments.names, hits, infos)

    def map_reads(self, reads: SequenceSet) -> MappingResult:
        segments, infos = extract_end_segments(reads, self.config.ell)
        return self.map_segments(segments, infos)
