"""Mashmap-like mapper (Jain et al., RECOMB 2017) — the paper's main baseline.

Algorithmic contrast with JEM-mapper, as the paper describes it
(Section III-B.2): Mashmap keeps, for every minimizer, a list of all
positions where it occurs in the subjects.  At query time the shared
minimizers between the query and the subjects are gathered as positional
*anchors*; the subject region with the maximal local intersection — the
densest window of length ℓ over the anchor positions — wins, and the
winnowed Jaccard estimate of that window decides whether to report it.

This implementation follows that two-stage structure:

* **L1** — candidate subjects = those sharing at least ``min_shared``
  minimizers with the query;
* **L2** — per candidate, slide a window of the query length over the
  sorted anchor positions and count *distinct* query minimizers inside;
  best window count / |W(query)| estimates the Jaccard.

Work per query is proportional to the total number of anchor positions
(every occurrence of every shared minimizer), which is what makes the tool
slower than JEM-mapper's constant-T lookups — the performance relationship
Table II measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.mapper import MappingResult
from ..core.segments import extract_end_segments
from ..errors import MappingError
from ..seq.records import SequenceSet
from ..sketch.minimizers import minimizers_set

__all__ = ["MashmapConfig", "MashmapLikeMapper"]


@dataclass(frozen=True)
class MashmapConfig:
    """Mashmap-like parameters.

    ``w`` defaults to 20, much denser winnowing than JEM's w = 100: the
    real Mashmap picks its own sampling density from the segment length and
    target estimation error, which for 1 kbp segments is in the tens — this
    is where its higher per-query cost (and marginally better recall,
    Fig. 5) comes from.
    """

    k: int = 16
    w: int = 20
    ell: int = 1000
    min_shared: int = 2
    min_jaccard: float = 0.02
    scoring: str = "intersection"  # or "winnowed"

    def __post_init__(self) -> None:
        if not 1 <= self.k <= 16:
            raise MappingError(f"k must be in [1, 16], got {self.k}")
        if self.w < 1 or self.ell < self.k:
            raise MappingError("invalid w/ell")
        if self.min_shared < 1:
            raise MappingError("min_shared must be >= 1")
        if self.scoring not in ("intersection", "winnowed"):
            raise MappingError(f"unknown scoring {self.scoring!r}")


class MashmapLikeMapper:
    """Position-list minimizer mapper with maximal-local-intersection scoring."""

    def __init__(self, config: MashmapConfig | None = None) -> None:
        self.config = config if config is not None else MashmapConfig()
        self._values: np.ndarray | None = None  # sorted minimizer values
        self._subjects: np.ndarray | None = None  # contig id per occurrence
        self._positions: np.ndarray | None = None  # position per occurrence
        self._subject_names: list[str] = []
        self._bs_values: np.ndarray | None = None  # by-subject layout
        self._bs_positions: np.ndarray | None = None
        self._bs_offsets: np.ndarray | None = None

    @property
    def subject_names(self) -> list[str]:
        return self._subject_names

    def index(self, contigs: SequenceSet) -> None:
        """Build the positional minimizer index over all subjects."""
        if len(contigs) == 0:
            raise MappingError("cannot index an empty contig set")
        cfg = self.config
        vals: list[np.ndarray] = []
        subs: list[np.ndarray] = []
        poss: list[np.ndarray] = []
        for i, ml in enumerate(minimizers_set(contigs, cfg.k, cfg.w)):
            if len(ml) == 0:
                continue
            vals.append(ml.ranks)
            subs.append(np.full(len(ml), i, dtype=np.int64))
            poss.append(ml.positions)
        if not vals:
            raise MappingError("no subject produced minimizers")
        values = np.concatenate(vals)
        subjects = np.concatenate(subs)
        positions = np.concatenate(poss)
        order = np.argsort(values, kind="stable")
        self._values = values[order]
        self._subjects = subjects[order]
        self._positions = positions[order]
        self._subject_names = list(contigs.names)
        # by-subject layout (position-sorted per subject) for the winnowed
        # L2 stage: lets a window's full minimizer set be sliced out
        by_subject = np.lexsort((positions, subjects))
        self._bs_values = values[by_subject]
        self._bs_positions = positions[by_subject]
        counts = np.bincount(subjects, minlength=len(contigs))
        self._bs_offsets = np.zeros(len(contigs) + 1, dtype=np.int64)
        np.cumsum(counts, out=self._bs_offsets[1:])

    def _anchors(self, qranks: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(query minimizer idx, subject, position) for all shared occurrences."""
        left = np.searchsorted(self._values, qranks, side="left")
        right = np.searchsorted(self._values, qranks, side="right")
        lengths = right - left
        total = int(lengths.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty
        q_idx = np.repeat(np.arange(qranks.size, dtype=np.int64), lengths)
        run_starts = np.zeros(qranks.size, dtype=np.int64)
        np.cumsum(lengths[:-1], out=run_starts[1:])
        flat = np.arange(total, dtype=np.int64) - run_starts[q_idx] + left[q_idx]
        return q_idx, self._subjects[flat], self._positions[flat]

    def _score_candidate(
        self, q_of_anchor: np.ndarray, positions: np.ndarray, window: int
    ) -> int:
        """Max distinct query minimizers in any ℓ-window (L2 stage).

        Anchors must belong to one subject and be sorted by position.  A
        two-pointer sweep with a multiplicity counter tracks how many
        *distinct* query minimizers fall in the current window.
        """
        counts: dict[int, int] = {}
        distinct = 0
        best = 0
        lo = 0
        for hi in range(positions.size):
            q = int(q_of_anchor[hi])
            c = counts.get(q, 0)
            if c == 0:
                distinct += 1
            counts[q] = c + 1
            while positions[hi] - positions[lo] > window:
                ql = int(q_of_anchor[lo])
                counts[ql] -= 1
                if counts[ql] == 0:
                    distinct -= 1
                lo += 1
            if distinct > best:
                best = distinct
        return best

    def _best_window(
        self, q_of_anchor: np.ndarray, positions: np.ndarray, window: int
    ) -> tuple[int, int]:
        """(best distinct count, window start index) over ℓ-windows."""
        counts: dict[int, int] = {}
        distinct = 0
        best = 0
        best_lo = 0
        lo = 0
        for hi in range(positions.size):
            q = int(q_of_anchor[hi])
            c = counts.get(q, 0)
            if c == 0:
                distinct += 1
            counts[q] = c + 1
            while positions[hi] - positions[lo] > window:
                ql = int(q_of_anchor[lo])
                counts[ql] -= 1
                if counts[ql] == 0:
                    distinct -= 1
                lo += 1
            if distinct > best:
                best = distinct
                best_lo = lo
        return best, best_lo

    def winnowed_jaccard(
        self, query_minis: np.ndarray, window_minis: np.ndarray
    ) -> float:
        """Mashmap's winnowed Jaccard estimate between two minimizer sets.

        With s = |W(Q)|: take S = the s smallest members (by hash order —
        the packed rank serves as the hash) of W(Q) ∪ W(window); the
        estimate is |S ∩ W(Q) ∩ W(window)| / s (Jain et al. 2017, Eq. 4).
        """
        a = np.unique(np.asarray(query_minis, dtype=np.uint64))
        b = np.unique(np.asarray(window_minis, dtype=np.uint64))
        if a.size == 0 or b.size == 0:
            raise MappingError("winnowed Jaccard needs non-empty minimizer sets")
        s = int(a.size)
        union = np.union1d(a, b)[:s]  # s smallest of the union
        shared = np.intersect1d(a, b, assume_unique=True)
        both = np.intersect1d(union, shared, assume_unique=True)
        return both.size / s

    def map_segments(self, segments: SequenceSet, infos=None) -> MappingResult:
        if self._values is None:
            raise MappingError("index() must be called before mapping")
        cfg = self.config
        n = len(segments)
        best_subject = np.full(n, -1, dtype=np.int64)
        best_count = np.zeros(n, dtype=np.int64)
        if n == 0:
            from ..core.hitcounter import BestHits

            return MappingResult.from_best_hits(
                segments.names, BestHits(best_subject, best_count), infos
            )
        # Batched L0: one shared-packing minimizer pass over the whole
        # segment set, then a single anchor gather for the batch.  Anchors
        # come back ordered by global minimizer index, so each segment's
        # anchors are one contiguous slice of the gathered arrays.
        per_seg = [
            np.unique(ml.ranks) if len(ml) else np.empty(0, dtype=np.uint64)
            for ml in minimizers_set(segments, cfg.k, cfg.w)
        ]
        seg_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum([q.size for q in per_seg], out=seg_offsets[1:])
        if seg_offsets[-1] == 0:
            from ..core.hitcounter import BestHits

            return MappingResult.from_best_hits(
                segments.names, BestHits(best_subject, best_count), infos
            )
        all_q_idx, all_subs, all_poss = self._anchors(np.concatenate(per_seg))
        slice_starts = np.searchsorted(all_q_idx, seg_offsets[:-1], side="left")
        slice_ends = np.searchsorted(all_q_idx, seg_offsets[1:], side="left")
        for qi in range(n):
            qranks = per_seg[qi]
            sketch_size = qranks.size
            if sketch_size == 0:
                continue
            a, b = int(slice_starts[qi]), int(slice_ends[qi])
            if a == b:
                continue
            q_idx = all_q_idx[a:b] - seg_offsets[qi]
            subs = all_subs[a:b]
            poss = all_poss[a:b]
            # group anchors per subject, positions sorted within
            order = np.lexsort((poss, subs))
            subs, poss, q_idx = subs[order], poss[order], q_idx[order]
            boundaries = np.flatnonzero(np.diff(subs)) + 1
            starts = np.concatenate([[0], boundaries])
            ends = np.concatenate([boundaries, [subs.size]])
            top_subject, top_score = -1, 0
            for s, e in zip(starts, ends):
                # L1 filter: cheap distinct upper bound first
                if e - s < cfg.min_shared:
                    continue
                if cfg.scoring == "winnowed":
                    shared, window_lo = self._best_window(q_idx[s:e], poss[s:e], cfg.ell)
                    if shared < cfg.min_shared:
                        continue
                    sid = int(subs[s])
                    lo_pos = int(poss[s:e][window_lo])
                    base = int(self._bs_offsets[sid])
                    top = int(self._bs_offsets[sid + 1])
                    seg_pos = self._bs_positions[base:top]
                    w_lo = base + int(np.searchsorted(seg_pos, lo_pos, side="left"))
                    w_hi = base + int(
                        np.searchsorted(seg_pos, lo_pos + cfg.ell, side="right")
                    )
                    estimate = self.winnowed_jaccard(qranks, self._bs_values[w_lo:w_hi])
                    score = int(round(estimate * sketch_size))
                    if estimate < cfg.min_jaccard:
                        continue
                else:
                    shared = self._score_candidate(q_idx[s:e], poss[s:e], cfg.ell)
                    if shared < cfg.min_shared or shared / sketch_size < cfg.min_jaccard:
                        continue
                    score = shared
                if score > top_score or (score == top_score and subs[s] < top_subject):
                    top_subject, top_score = int(subs[s]), score
            if top_subject >= 0:
                best_subject[qi] = top_subject
                best_count[qi] = top_score
        from ..core.hitcounter import BestHits

        return MappingResult.from_best_hits(
            segments.names, BestHits(best_subject, best_count), infos
        )

    def map_reads(self, reads: SequenceSet) -> MappingResult:
        segments, infos = extract_end_segments(reads, self.config.ell)
        return self.map_segments(segments, infos)
