"""minimap-lite: anchor + diagonal-chaining placement (Minimap2 substitute).

The paper uses Minimap2 only to build the evaluation benchmark: contigs
(and, for the real data set, reads) are mapped to the full reference genome
to obtain their ⟨start, end⟩ coordinates (Section IV-B, Fig. 4).  This
module provides exactly that capability: given a reference, place a query
and report its interval and strand.

Method: shared-minimizer anchors between query and reference are binned by
diagonal (reference position minus query position); the densest diagonal
band wins; the reported interval is the anchor span widened to the query
length.  For contigs assembled from the same genome (near-exact
substrings), this recovers coordinates to within a few bases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MappingError
from ..seq.encode import reverse_complement
from ..seq.records import SequenceSet
from ..sketch.minimizers import minimizers

__all__ = ["Placement", "MinimapLite"]


@dataclass(frozen=True)
class Placement:
    """A query placed on the reference (half-open interval).

    For multi-sequence references, ``ref_id``/``ref_name`` identify the
    sequence and the coordinates are local to it.
    """

    ref_start: int
    ref_end: int
    strand: int  # +1 forward, -1 reverse
    n_anchors: int
    ref_id: int = 0
    ref_name: str = ""

    @property
    def length(self) -> int:
        return self.ref_end - self.ref_start


class MinimapLite:
    """Minimizer-anchor placement of queries on a single reference sequence."""

    def __init__(self, k: int = 14, w: int = 12, *, bin_width: int = 128) -> None:
        if not 1 <= k <= 16:
            raise MappingError(f"k must be in [1, 16], got {k}")
        self.k = k
        self.w = w
        self.bin_width = bin_width
        self._ranks: np.ndarray | None = None
        self._positions: np.ndarray | None = None
        self._ref_len = 0
        self._seq_bases: np.ndarray | None = None
        self._seq_lengths: np.ndarray | None = None
        self._seq_names: list[str] = []

    def index(self, reference: "np.ndarray | SequenceSet") -> None:
        """Index a reference: one code array or a multi-sequence set.

        Multi-sequence references are laid out in one coordinate space with
        ℓ-independent spacing so anchors never bridge two sequences; the
        placement maps back to (sequence, local position).
        """
        if isinstance(reference, SequenceSet):
            chunks_r: list[np.ndarray] = []
            chunks_p: list[np.ndarray] = []
            bases = np.zeros(len(reference) + 1, dtype=np.int64)
            for i in range(len(reference)):
                codes = reference.codes_of(i)
                # spacing >= longest plausible query keeps diagonals apart
                bases[i + 1] = bases[i] + int(codes.size) + (1 << 20)
                ml = minimizers(codes, self.k, self.w)
                if len(ml):
                    chunks_r.append(ml.ranks)
                    chunks_p.append(ml.positions + bases[i])
            if not chunks_r:
                raise MappingError("reference produced no minimizers")
            ranks = np.concatenate(chunks_r)
            positions = np.concatenate(chunks_p)
            self._seq_bases = bases
            self._seq_lengths = reference.lengths.copy()
            self._seq_names = list(reference.names)
            self._ref_len = int(bases[-1])
        else:
            reference = np.asarray(reference, dtype=np.uint8)
            ml = minimizers(reference, self.k, self.w)
            if len(ml) == 0:
                raise MappingError("reference produced no minimizers")
            ranks, positions = ml.ranks, ml.positions
            self._seq_bases = np.array([0, reference.size], dtype=np.int64)
            self._seq_lengths = np.array([reference.size], dtype=np.int64)
            self._seq_names = [""]
            self._ref_len = int(reference.size)
        order = np.argsort(ranks, kind="stable")
        self._ranks = ranks[order]
        self._positions = positions[order]

    def _anchors(self, query: np.ndarray) -> tuple[np.ndarray, np.ndarray] | None:
        ml = minimizers(query, self.k, self.w)
        if len(ml) == 0:
            return None
        left = np.searchsorted(self._ranks, ml.ranks, side="left")
        right = np.searchsorted(self._ranks, ml.ranks, side="right")
        lengths = right - left
        total = int(lengths.sum())
        if total == 0:
            return None
        q_idx = np.repeat(np.arange(len(ml), dtype=np.int64), lengths)
        run_starts = np.zeros(len(ml), dtype=np.int64)
        np.cumsum(lengths[:-1], out=run_starts[1:])
        flat = np.arange(total, dtype=np.int64) - run_starts[q_idx] + left[q_idx]
        return ml.positions[q_idx], self._positions[flat]

    def place(self, query: np.ndarray, *, min_anchors: int = 3) -> Placement | None:
        """Place a query on the reference, trying both strands."""
        if self._ranks is None:
            raise MappingError("index() must be called before place()")
        query = np.asarray(query, dtype=np.uint8)
        best: Placement | None = None
        for strand, oriented in ((1, query), (-1, reverse_complement(query))):
            pair = self._anchors(oriented)
            if pair is None:
                continue
            qpos, rpos = pair
            bins = (rpos - qpos) // self.bin_width
            uniq, counts = np.unique(bins, return_counts=True)
            # merge adjacent bins: an alignment can straddle a bin edge
            merged = counts.copy()
            same_run = np.flatnonzero(np.diff(uniq) == 1)
            merged[same_run] += counts[same_run + 1]
            top = int(np.argmax(merged))
            votes = int(merged[top])
            if votes < min_anchors:
                continue
            sel = (bins == uniq[top]) | (bins == uniq[top] + 1)
            diag = int(np.median(rpos[sel] - qpos[sel]))
            # resolve the global diagonal into (sequence, local coordinates)
            sid = int(np.searchsorted(self._seq_bases, diag, side="right")) - 1
            sid = min(max(sid, 0), len(self._seq_names) - 1)
            local = diag - int(self._seq_bases[sid])
            seq_len = int(self._seq_lengths[sid])
            start = max(0, local)
            end = min(seq_len, local + query.size)
            if end <= start:
                continue
            cand = Placement(
                start, end, strand, votes,
                ref_id=sid, ref_name=self._seq_names[sid],
            )
            if best is None or cand.n_anchors > best.n_anchors:
                best = cand
        return best

    def place_set(
        self, queries: SequenceSet, *, min_anchors: int = 3
    ) -> list[Placement | None]:
        """Place every sequence of a set (None where unplaceable)."""
        return [
            self.place(queries.codes_of(i), min_anchors=min_anchors)
            for i in range(len(queries))
        ]
