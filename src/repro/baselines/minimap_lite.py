"""minimap-lite: anchor + diagonal-chaining placement (Minimap2 substitute).

The paper uses Minimap2 only to build the evaluation benchmark: contigs
(and, for the real data set, reads) are mapped to the full reference genome
to obtain their ⟨start, end⟩ coordinates (Section IV-B, Fig. 4).  This
module provides exactly that capability: given a reference, place a query
and report its interval and strand.

Method: shared-minimizer anchors between query and reference are binned by
diagonal (reference position minus query position); the densest diagonal
band wins; the reported interval is the anchor span widened to the query
length.  For contigs assembled from the same genome (near-exact
substrings), this recovers coordinates to within a few bases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.hitcounter import BestHits
from ..core.mapper import MappingResult
from ..core.segments import extract_end_segments
from ..errors import MappingError
from ..seq.encode import reverse_complement
from ..seq.records import SequenceSet, SequenceSetBuilder
from ..sketch.minimizers import MinimizerList, minimizers, minimizers_set

__all__ = ["Placement", "MinimapLite", "MinimapLiteMapper"]


@dataclass(frozen=True)
class Placement:
    """A query placed on the reference (half-open interval).

    For multi-sequence references, ``ref_id``/``ref_name`` identify the
    sequence and the coordinates are local to it.
    """

    ref_start: int
    ref_end: int
    strand: int  # +1 forward, -1 reverse
    n_anchors: int
    ref_id: int = 0
    ref_name: str = ""

    @property
    def length(self) -> int:
        return self.ref_end - self.ref_start


class MinimapLite:
    """Minimizer-anchor placement of queries on a single reference sequence."""

    def __init__(self, k: int = 14, w: int = 12, *, bin_width: int = 128) -> None:
        if not 1 <= k <= 16:
            raise MappingError(f"k must be in [1, 16], got {k}")
        self.k = k
        self.w = w
        self.bin_width = bin_width
        self._ranks: np.ndarray | None = None
        self._positions: np.ndarray | None = None
        self._ref_len = 0
        self._seq_bases: np.ndarray | None = None
        self._seq_lengths: np.ndarray | None = None
        self._seq_names: list[str] = []

    def index(self, reference: "np.ndarray | SequenceSet") -> None:
        """Index a reference: one code array or a multi-sequence set.

        Multi-sequence references are laid out in one coordinate space with
        ℓ-independent spacing so anchors never bridge two sequences; the
        placement maps back to (sequence, local position).
        """
        if isinstance(reference, SequenceSet):
            chunks_r: list[np.ndarray] = []
            chunks_p: list[np.ndarray] = []
            bases = np.zeros(len(reference) + 1, dtype=np.int64)
            lengths = reference.lengths
            for i in range(len(reference)):
                # spacing >= longest plausible query keeps diagonals apart
                bases[i + 1] = bases[i] + int(lengths[i]) + (1 << 20)
            for i, ml in enumerate(minimizers_set(reference, self.k, self.w)):
                if len(ml):
                    chunks_r.append(ml.ranks)
                    chunks_p.append(ml.positions + bases[i])
            if not chunks_r:
                raise MappingError("reference produced no minimizers")
            ranks = np.concatenate(chunks_r)
            positions = np.concatenate(chunks_p)
            self._seq_bases = bases
            self._seq_lengths = reference.lengths.copy()
            self._seq_names = list(reference.names)
            self._ref_len = int(bases[-1])
        else:
            reference = np.asarray(reference, dtype=np.uint8)
            ml = minimizers(reference, self.k, self.w)
            if len(ml) == 0:
                raise MappingError("reference produced no minimizers")
            ranks, positions = ml.ranks, ml.positions
            self._seq_bases = np.array([0, reference.size], dtype=np.int64)
            self._seq_lengths = np.array([reference.size], dtype=np.int64)
            self._seq_names = [""]
            self._ref_len = int(reference.size)
        order = np.argsort(ranks, kind="stable")
        self._ranks = ranks[order]
        self._positions = positions[order]

    def _anchors(self, query: np.ndarray) -> tuple[np.ndarray, np.ndarray] | None:
        return self._anchors_of(minimizers(query, self.k, self.w))

    def _anchors_of(self, ml: MinimizerList) -> tuple[np.ndarray, np.ndarray] | None:
        if len(ml) == 0:
            return None
        left = np.searchsorted(self._ranks, ml.ranks, side="left")
        right = np.searchsorted(self._ranks, ml.ranks, side="right")
        lengths = right - left
        total = int(lengths.sum())
        if total == 0:
            return None
        q_idx = np.repeat(np.arange(len(ml), dtype=np.int64), lengths)
        run_starts = np.zeros(len(ml), dtype=np.int64)
        np.cumsum(lengths[:-1], out=run_starts[1:])
        flat = np.arange(total, dtype=np.int64) - run_starts[q_idx] + left[q_idx]
        return ml.positions[q_idx], self._positions[flat]

    def place(self, query: np.ndarray, *, min_anchors: int = 3) -> Placement | None:
        """Place a query on the reference, trying both strands."""
        if self._ranks is None:
            raise MappingError("index() must be called before place()")
        query = np.asarray(query, dtype=np.uint8)
        fwd = minimizers(query, self.k, self.w)
        rev = minimizers(reverse_complement(query), self.k, self.w)
        return self._place_minimizers(fwd, rev, int(query.size), min_anchors)

    def _place_minimizers(
        self,
        fwd: MinimizerList,
        rev: MinimizerList,
        query_len: int,
        min_anchors: int,
    ) -> Placement | None:
        """Strand race over precomputed query minimizer lists."""
        best: Placement | None = None
        for strand, ml in ((1, fwd), (-1, rev)):
            pair = self._anchors_of(ml)
            if pair is None:
                continue
            qpos, rpos = pair
            bins = (rpos - qpos) // self.bin_width
            uniq, counts = np.unique(bins, return_counts=True)
            # merge adjacent bins: an alignment can straddle a bin edge
            merged = counts.copy()
            same_run = np.flatnonzero(np.diff(uniq) == 1)
            merged[same_run] += counts[same_run + 1]
            top = int(np.argmax(merged))
            votes = int(merged[top])
            if votes < min_anchors:
                continue
            sel = (bins == uniq[top]) | (bins == uniq[top] + 1)
            diag = int(np.median(rpos[sel] - qpos[sel]))
            # resolve the global diagonal into (sequence, local coordinates)
            sid = int(np.searchsorted(self._seq_bases, diag, side="right")) - 1
            sid = min(max(sid, 0), len(self._seq_names) - 1)
            local = diag - int(self._seq_bases[sid])
            seq_len = int(self._seq_lengths[sid])
            start = max(0, local)
            end = min(seq_len, local + query_len)
            if end <= start:
                continue
            cand = Placement(
                start, end, strand, votes,
                ref_id=sid, ref_name=self._seq_names[sid],
            )
            if best is None or cand.n_anchors > best.n_anchors:
                best = cand
        return best

    def place_set(
        self, queries: SequenceSet, *, min_anchors: int = 3
    ) -> list[Placement | None]:
        """Place every sequence of a set (None where unplaceable).

        Both strands are sketched with the batched shared-packing kernel —
        one :func:`minimizers_set` pass per strand over the whole set — and
        then each query runs the same strand race as :meth:`place`.
        """
        if self._ranks is None:
            raise MappingError("index() must be called before place()")
        n = len(queries)
        if n == 0:
            return []
        fwd = minimizers_set(queries, self.k, self.w)
        rc = SequenceSetBuilder()
        for i in range(n):
            rc.add(queries.names[i], reverse_complement(queries.codes_of(i)))
        rev = minimizers_set(rc.build(), self.k, self.w)
        lengths = queries.lengths
        return [
            self._place_minimizers(fwd[i], rev[i], int(lengths[i]), min_anchors)
            for i in range(n)
        ]


class MinimapLiteMapper:
    """Mapper-protocol adapter over :class:`MinimapLite`.

    Lets the placement baseline ride the :class:`~repro.core.engine
    .MappingEngine` next to jem/minhash/mashmap: subjects are indexed as a
    multi-sequence reference and each end segment's best placement votes
    for the contig it landed on (anchor count as the hit score).
    """

    def __init__(
        self,
        k: int = 14,
        w: int = 12,
        *,
        ell: int = 1000,
        min_anchors: int = 3,
        bin_width: int = 128,
    ) -> None:
        if ell < k:
            raise MappingError(f"ell ({ell}) must be >= k ({k})")
        self.ell = ell
        self.min_anchors = min_anchors
        self._lite = MinimapLite(k, w, bin_width=bin_width)
        self._subject_names: list[str] = []

    @property
    def subject_names(self) -> list[str]:
        return self._subject_names

    def index(self, contigs: SequenceSet) -> None:
        if len(contigs) == 0:
            raise MappingError("cannot index an empty contig set")
        self._lite.index(contigs)
        self._subject_names = list(contigs.names)

    def map_segments(self, segments: SequenceSet, infos=None) -> MappingResult:
        if self._lite._ranks is None:
            raise MappingError("index() must be called before mapping")
        n = len(segments)
        best_subject = np.full(n, -1, dtype=np.int64)
        best_count = np.zeros(n, dtype=np.int64)
        placements = self._lite.place_set(segments, min_anchors=self.min_anchors)
        for qi, placement in enumerate(placements):
            if placement is not None:
                best_subject[qi] = placement.ref_id
                best_count[qi] = placement.n_anchors
        return MappingResult.from_best_hits(
            segments.names, BestHits(best_subject, best_count), infos
        )

    def map_reads(self, reads: SequenceSet) -> MappingResult:
        segments, infos = extract_end_segments(reads, self.ell)
        return self.map_segments(segments, infos)
