"""Benchmark harness: one experiment per paper table/figure, plus ablations."""

from .ablations import (
    ABLATIONS,
    ablation_counter,
    ablation_segments,
    ablation_topx,
    ablation_window,
)
from .experiments import (
    EXPERIMENTS,
    BenchContext,
    ExperimentOutput,
    ThreadScalingModel,
    exp_faults,
    exp_fig5,
    exp_fig6,
    exp_fig7,
    exp_fig8,
    exp_fig9,
    exp_kernels,
    exp_serve,
    exp_table1,
    exp_table2,
)

#: Everything runnable through ``jem-mapper bench``.
ALL_EXPERIMENTS = {**EXPERIMENTS, **ABLATIONS}

__all__ = [
    "EXPERIMENTS",
    "ABLATIONS",
    "ALL_EXPERIMENTS",
    "BenchContext",
    "ExperimentOutput",
    "ThreadScalingModel",
    "exp_table1",
    "exp_table2",
    "exp_fig5",
    "exp_fig6",
    "exp_fig7",
    "exp_fig8",
    "exp_fig9",
    "exp_kernels",
    "exp_faults",
    "exp_serve",
    "ablation_topx",
    "ablation_segments",
    "ablation_window",
    "ablation_counter",
]
