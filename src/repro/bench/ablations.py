"""Ablations of JEM-mapper's design choices.

The paper motivates three design decisions (Section III-B) and sketches a
fourth as future work; each gets a controlled experiment:

* ``ablation_topx``     — report top-x hits: how much of the recall gap the
  best-hit restriction causes is recovered at x = 2, 3, 5 (Section IV-C).
* ``ablation_segments`` — map *end segments* vs the *whole read* as one
  query: the paper argues whole-read sketches select k-mers outside the
  overlap with a (shorter) contig, hurting recall.
* ``ablation_window``   — minimizer window w: density vs quality vs
  index size ("reduces work ... qualitative robustness", Section III-B.2).
* ``ablation_counter``  — the lazy-update counter array vs the vectorised
  groupby (Section III-C implementation note): identical output, different
  constant factors.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from ..core.config import JEMConfig
from ..core.hitcounter import count_hits_lazy, count_hits_vectorised
from ..core.mapper import JEMMapper
from ..core.segments import extract_end_segments
from ..eval.metrics import evaluate_mapping, recall_at_x
from ..eval.report import render_series, render_table
from ..eval.truth import build_benchmark
from ..sketch.jem import query_sketch_values
from .experiments import BenchContext, ExperimentOutput, _finish

__all__ = [
    "ablation_topx",
    "ablation_segments",
    "ablation_window",
    "ablation_counter",
    "ABLATIONS",
]


def ablation_topx(
    ctx: BenchContext, *, xs: tuple[int, ...] = (1, 2, 3, 5)
) -> ExperimentOutput:
    """Recall@x on a repeat-rich input — the Section IV-C recovery claim."""
    name = ctx.pick(("human_chr7",))[0]
    ds = ctx.dataset(name)
    cfg = ctx.config
    segments, infos, bench = __prepare(ds, cfg)
    mapper = JEMMapper(cfg)
    mapper.index(ds.contigs)
    recalls = []
    for x in xs:
        hits = mapper.map_segments_topx(segments, x=x)
        recalls.append(100 * recall_at_x(hits, bench))
    text = render_series(
        f"Ablation — recall@x with top-x hit reporting on {name} (scale={ctx.scale:g})",
        "x", xs, {"recall %": recalls}, fmt="{:.2f}",
    )
    return _finish(ctx, ExperimentOutput("ablation_topx", text, {"x": xs, "recall": recalls}))


def __prepare(ds, cfg):
    segments, infos = extract_end_segments(ds.reads, cfg.ell)
    bench = build_benchmark(segments, ds.contigs, ds.genome, k=cfg.k)
    return segments, infos, bench


def ablation_segments(ctx: BenchContext) -> ExperimentOutput:
    """End segments (ℓ = 1000) vs whole-read queries (Section III-B.1).

    The paper's two stated advantages of end segments are measured head to
    head: (a) *scaffolding yield* — a read whose prefix and suffix map to
    two different contigs witnesses a contig link, which one whole-read
    best hit can never provide; (b) *work* — only 2ℓ bases per read are
    sketched instead of the full ~10 kbp.
    """
    name = ctx.pick(("b_splendens",))[0]
    ds = ctx.dataset(name)
    cfg = ctx.config
    mapper = JEMMapper(cfg)
    mapper.index(ds.contigs)

    # (a) the paper's scheme: prefix/suffix end segments
    segments, infos, bench = __prepare(ds, cfg)
    t0 = time.perf_counter()
    seg_result = mapper.map_segments(segments, infos)
    seg_time = time.perf_counter() - t0
    seg_quality = evaluate_mapping(seg_result, bench)
    links = 0
    for r in range(len(ds.reads)):
        a, b = int(seg_result.subject[2 * r]), int(seg_result.subject[2 * r + 1])
        if a >= 0 and b >= 0 and a != b:
            links += 1

    # (b) whole reads as single queries; truth intervals = the whole read
    t0 = time.perf_counter()
    whole_result = mapper.map_segments(ds.reads)
    whole_time = time.perf_counter() - t0
    whole_bench = build_benchmark(ds.reads, ds.contigs, ds.genome, k=cfg.k)
    whole_quality = evaluate_mapping(whole_result, whole_bench)

    seg_bases = int(segments.total_bases)
    whole_bases = int(ds.reads.total_bases)
    rows = [
        ["end segments", f"{100 * seg_quality.precision:.2f}",
         f"{100 * seg_quality.recall:.2f}", str(links), f"{seg_bases:,}",
         f"{seg_time:.3f}"],
        ["whole reads", f"{100 * whole_quality.precision:.2f}",
         f"{100 * whole_quality.recall:.2f}", "0", f"{whole_bases:,}",
         f"{whole_time:.3f}"],
    ]
    text = render_table(
        f"Ablation — end-segment queries vs whole-read queries on {name} "
        f"(scale={ctx.scale:g})",
        ["query mode", "precision %", "recall %", "contig links", "bases sketched",
         "map seconds"],
        rows,
    )
    return _finish(
        ctx,
        ExperimentOutput(
            "ablation_segments",
            text,
            {"segments": seg_quality, "whole": whole_quality,
             "seg_time": seg_time, "whole_time": whole_time,
             "links": links, "seg_bases": seg_bases, "whole_bases": whole_bases},
        ),
    )


def ablation_window(
    ctx: BenchContext, *, windows: tuple[int, ...] = (20, 50, 100, 200)
) -> ExperimentOutput:
    """Minimizer window sweep: quality, index size and indexing time vs w."""
    name = ctx.pick(("human_chr7",))[0]
    ds = ctx.dataset(name)
    precision, recall, entries, idx_time = [], [], [], []
    segments = infos = bench = None
    for w in windows:
        cfg = replace(ctx.config, w=w)
        if bench is None:
            segments, infos, bench = __prepare(ds, cfg)
        mapper = JEMMapper(cfg)
        t0 = time.perf_counter()
        table = mapper.index(ds.contigs)
        idx_time.append(time.perf_counter() - t0)
        q = evaluate_mapping(mapper.map_segments(segments, infos), bench)
        precision.append(100 * q.precision)
        recall.append(100 * q.recall)
        entries.append(table.total_entries)
    text = render_series(
        f"Ablation — minimizer window w on {name} (scale={ctx.scale:g})",
        "w", windows,
        {
            "precision %": precision,
            "recall %": recall,
            "table entries": [float(e) for e in entries],
            "index seconds": idx_time,
        },
        fmt="{:,.4g}",
    )
    return _finish(
        ctx,
        ExperimentOutput(
            "ablation_window", text,
            {"w": windows, "precision": precision, "recall": recall,
             "entries": entries, "index_seconds": idx_time},
        ),
    )


def ablation_counter(ctx: BenchContext) -> ExperimentOutput:
    """Lazy-update counter (paper's Section III-C) vs vectorised groupby."""
    name = ctx.pick(("c_elegans",))[0]
    ds = ctx.dataset(name)
    cfg = ctx.config
    mapper = JEMMapper(cfg)
    table = mapper.index(ds.contigs)
    segments, _infos = extract_end_segments(ds.reads, cfg.ell)
    sketches = query_sketch_values(segments, cfg.k, cfg.w, cfg.hash_family())
    # keep the lazy reference affordable: cap the query count
    n = min(len(segments), 300)
    values = sketches.values[:, :n]
    mask = sketches.has[:n]
    t0 = time.perf_counter()
    lazy = count_hits_lazy(table, values, query_mask=mask)
    t_lazy = time.perf_counter() - t0
    t0 = time.perf_counter()
    vec = count_hits_vectorised(table, values, query_mask=mask)
    t_vec = time.perf_counter() - t0
    identical = bool(np.array_equal(lazy.subject, vec.subject))
    rows = [
        ["lazy counter (paper)", f"{t_lazy:.4f}", f"{n / t_lazy:,.0f}"],
        ["vectorised groupby", f"{t_vec:.4f}", f"{n / t_vec:,.0f}"],
    ]
    text = render_table(
        f"Ablation — hit-counting strategy on {name}, {n} queries "
        f"(identical output: {identical})",
        ["strategy", "seconds", "queries/s"],
        rows,
    )
    return _finish(
        ctx,
        ExperimentOutput(
            "ablation_counter", text,
            {"t_lazy": t_lazy, "t_vectorised": t_vec, "identical": identical, "n": n},
        ),
    )


def ablation_threshold(
    ctx: BenchContext, *, thresholds: tuple[int, ...] = (1, 2, 3, 5, 10, 15)
) -> ExperimentOutput:
    """Hit-count confidence threshold: the precision/recall tradeoff curve."""
    from ..eval.metrics import threshold_sweep

    name = ctx.pick(("human_chr7",))[0]
    ds = ctx.dataset(name)
    cfg = ctx.config
    segments, infos, bench = __prepare(ds, cfg)
    mapper = JEMMapper(cfg)
    mapper.index(ds.contigs)
    result = mapper.map_segments(segments, infos)
    reports = threshold_sweep(result, bench, thresholds)
    text = render_series(
        f"Ablation — hit-count threshold on {name} (T={cfg.trials}, scale={ctx.scale:g})",
        "min hits", thresholds,
        {
            "precision %": [100 * r.precision for r in reports],
            "recall %": [100 * r.recall for r in reports],
            "mapped": [float(r.n_mapped) for r in reports],
        },
        fmt="{:,.4g}",
    )
    return _finish(
        ctx,
        ExperimentOutput(
            "ablation_threshold", text,
            {"thresholds": thresholds, "reports": reports},
        ),
    )


def ablation_kmer(
    ctx: BenchContext, *, ks: tuple[int, ...] = (10, 12, 14, 16)
) -> ExperimentOutput:
    """k-mer size sweep: specificity vs sensitivity.

    Short k-mers repeat by chance (4^10 ≈ 10^6), inflating spurious
    collisions on larger genomes; k = 16 (the paper's choice) makes random
    collisions negligible at these scales.  The benchmark is rebuilt per k
    because the >= k-overlap rule depends on it.
    """
    name = ctx.pick(("human_chr7",))[0]
    ds = ctx.dataset(name)
    precision, recall = [], []
    for k in ks:
        cfg = replace(ctx.config, k=k)
        segments, infos = extract_end_segments(ds.reads, cfg.ell)
        bench = build_benchmark(segments, ds.contigs, ds.genome, k=cfg.k)
        mapper = JEMMapper(cfg)
        mapper.index(ds.contigs)
        q = evaluate_mapping(mapper.map_segments(segments, infos), bench)
        precision.append(100 * q.precision)
        recall.append(100 * q.recall)
    text = render_series(
        f"Ablation — k-mer size on {name} (scale={ctx.scale:g})",
        "k", ks,
        {"precision %": precision, "recall %": recall},
        fmt="{:.2f}",
    )
    return _finish(
        ctx,
        ExperimentOutput(
            "ablation_kmer", text, {"k": ks, "precision": precision, "recall": recall}
        ),
    )


def ablation_ingredients(ctx: BenchContext) -> ExperimentOutput:
    """Which ingredient matters: minimizers alone, or the ℓ-intervals?

    Three schemes share everything (k, T, hash family, hit counting) and
    differ only in the subject sketch base set:

    * classical MinHash — bottom-1 over *all* k-mers (Broder);
    * minimizer MinHash — bottom-1 over the (w, k)-minimizer set;
    * JEM — bottom-1 per ℓ-interval of the minimizer list.

    If JEM's win came from winnowing alone, the middle scheme would match
    it; the paper's position-constrained intervals are the actual recall
    mechanism, so the middle scheme stays near classical MinHash.
    """
    from ..baselines.classical_minhash import ClassicalMinHashMapper

    name = ctx.pick(("b_splendens",))[0]
    ds = ctx.dataset(name)
    # a low trial budget makes the contrast sharp (cf. Fig. 6 at T=10)
    cfg = ctx.config.with_trials(min(ctx.config.trials, 10))
    segments, infos, bench = __prepare(ds, cfg)
    rows = []
    data: dict = {}
    schemes = [
        ("classical MinHash", ClassicalMinHashMapper(cfg)),
        ("minimizer MinHash", ClassicalMinHashMapper(cfg, use_minimizers=True)),
        ("JEM (intervals)", JEMMapper(cfg)),
    ]
    for label, mapper in schemes:
        mapper.index(ds.contigs)
        q = evaluate_mapping(mapper.map_segments(segments, infos), bench)
        rows.append([label, f"{100 * q.precision:.2f}", f"{100 * q.recall:.2f}"])
        data[label] = q
    text = render_table(
        f"Ablation — sketch ingredients on {name} (T={cfg.trials}, scale={ctx.scale:g})",
        ["scheme", "precision %", "recall %"],
        rows,
    )
    return _finish(ctx, ExperimentOutput("ablation_ingredients", text, data))


def ablation_seeds(
    ctx: BenchContext, *, seeds: tuple[int, ...] = (1, 2, 3)
) -> ExperimentOutput:
    """Robustness: do the quality conclusions survive dataset resampling?

    The whole pipeline (genome → short reads → assembly → HiFi reads →
    benchmark → both mappers) is regenerated under different seeds; the
    Fig. 5 conclusions must hold for every replicate, not just the one the
    headline tables happen to use.
    """
    from ..eval.datasets import load_or_generate
    from ..eval.pipeline import run_mappers

    name = ctx.pick(("c_elegans",))[0]
    rows = []
    jem_p, jem_r, mm_p, mm_r = [], [], [], []
    for seed in seeds:
        ds = load_or_generate(name, scale=ctx.scale, seed=seed, cache_dir=ctx.cache_dir)
        res = run_mappers(ds, ctx.config, mappers=("jem", "mashmap"))
        j, m = res["jem"].quality, res["mashmap"].quality
        jem_p.append(100 * j.precision)
        jem_r.append(100 * j.recall)
        mm_p.append(100 * m.precision)
        mm_r.append(100 * m.recall)
        rows.append(
            [str(seed), f"{jem_p[-1]:.2f}", f"{jem_r[-1]:.2f}",
             f"{mm_p[-1]:.2f}", f"{mm_r[-1]:.2f}"]
        )
    rows.append(
        ["mean±std",
         f"{np.mean(jem_p):.2f}±{np.std(jem_p):.2f}",
         f"{np.mean(jem_r):.2f}±{np.std(jem_r):.2f}",
         f"{np.mean(mm_p):.2f}±{np.std(mm_p):.2f}",
         f"{np.mean(mm_r):.2f}±{np.std(mm_r):.2f}"]
    )
    text = render_table(
        f"Ablation — seed robustness on {name} (scale={ctx.scale:g})",
        ["seed", "JEM prec %", "JEM recall %", "Mashmap prec %", "Mashmap recall %"],
        rows,
    )
    return _finish(
        ctx,
        ExperimentOutput(
            "ablation_seeds", text,
            {"seeds": seeds, "jem_precision": jem_p, "jem_recall": jem_r,
             "mashmap_precision": mm_p, "mashmap_recall": mm_r},
        ),
    )


def ablation_error_rate(
    ctx: BenchContext,
    *,
    error_rates: tuple[float, ...] = (0.001, 0.005, 0.01, 0.03, 0.06, 0.12),
) -> ExperimentOutput:
    """Read-accuracy sensitivity: why the paper scopes to HiFi.

    Reads are resimulated from one genome at increasing error rates, from
    HiFi (0.1 %) up to first-generation long-read territory (12 %, the
    ONT/PacBio-CLR regime the paper's introduction contrasts against).
    A single trial collision suffices for a best hit, so recall degrades
    far more gracefully than per-k-mer survival (1-e)^16 suggests — it
    holds into the mid-single digits and only breaks down near raw
    long-read error rates, quantifying (and slightly generalising) the
    paper's HiFi scoping.
    """
    from ..simulate import ErrorModel, HiFiProfile, simulate_hifi_reads

    name = ctx.pick(("c_elegans",))[0]
    ds = ctx.dataset(name)
    cfg = ctx.config
    mapper = JEMMapper(cfg)
    mapper.index(ds.contigs)
    precision, recall = [], []
    for rate in error_rates:
        model = ErrorModel(
            substitution=rate * 0.6, insertion=rate * 0.2, deletion=rate * 0.2
        )
        reads = simulate_hifi_reads(
            ds.genome,
            HiFiProfile(coverage=5.0, median_length=10_000, errors=model),
            np.random.default_rng(ctx.seed + 77),
        )
        segments, infos = extract_end_segments(reads, cfg.ell)
        bench = build_benchmark(segments, ds.contigs, ds.genome, k=cfg.k)
        q = evaluate_mapping(mapper.map_segments(segments, infos), bench)
        precision.append(100 * q.precision)
        recall.append(100 * q.recall)
    text = render_series(
        f"Ablation — read error rate on {name} (scale={ctx.scale:g})",
        "error rate", [f"{100 * e:g}%" for e in error_rates],
        {"precision %": precision, "recall %": recall},
        fmt="{:.2f}",
    )
    return _finish(
        ctx,
        ExperimentOutput(
            "ablation_error_rate", text,
            {"error_rates": error_rates, "precision": precision, "recall": recall},
        ),
    )


ABLATIONS = {
    "ablation_topx": ablation_topx,
    "ablation_segments": ablation_segments,
    "ablation_window": ablation_window,
    "ablation_counter": ablation_counter,
    "ablation_threshold": ablation_threshold,
    "ablation_kmer": ablation_kmer,
    "ablation_ingredients": ablation_ingredients,
    "ablation_seeds": ablation_seeds,
    "ablation_error_rate": ablation_error_rate,
}
