"""One experiment per table/figure of the paper's evaluation (Section IV).

Every ``exp_*`` function regenerates one artifact: it runs the relevant
workload, renders a plain-text table shaped like the paper's, writes it to
``<results_dir>/<name>.txt`` and returns the underlying numbers so the
benchmark suite can assert the *shape* findings (who wins, how curves
move).  Scale is configurable; absolute seconds are this implementation's,
not the paper cluster's (see EXPERIMENTS.md for the comparison discipline).
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass, field

import numpy as np

from ..align import segment_identity
from ..core.config import JEMConfig
from ..core.segments import extract_end_segments
from ..eval.datasets import DATASETS, LARGE_DATASETS, Dataset, load_or_generate
from ..eval.metrics import evaluate_mapping
from ..eval.pipeline import prepare_benchmark, run_mappers
from ..eval.report import render_series, render_table
from ..parallel.costmodel import CostModel
from ..parallel.driver import run_parallel_jem
from ..seq.stats import set_stats

__all__ = [
    "BenchContext",
    "ExperimentOutput",
    "ThreadScalingModel",
    "exp_table1",
    "exp_table2",
    "exp_fig5",
    "exp_fig6",
    "exp_fig7",
    "exp_fig8",
    "exp_fig9",
    "exp_kernels",
    "exp_serve",
    "exp_serve_concurrent",
    "exp_store",
    "EXPERIMENTS",
]

#: Process counts of Table II / Figs. 7-8.
P_VALUES = (4, 8, 16, 32, 64)

#: Trial counts of the Fig. 6 sweep.
TRIALS_SWEEP = (5, 10, 20, 30, 50, 100, 150)


@dataclass(frozen=True)
class ThreadScalingModel:
    """Amdahl-style model of Mashmap's shared-memory multithreading.

    The paper runs Mashmap with 64 threads; this host has one core, so the
    64-thread runtime is modelled from the measured sequential runtime as

        T(t) = T_seq * (serial_fraction + (1 - serial_fraction) / (t * efficiency))

    with a serial fraction (index construction, output) and a per-thread
    efficiency typical of memory-bound mapping workloads.  Both constants
    are documented inputs, not fit to the paper's numbers.
    """

    serial_fraction: float = 0.05
    efficiency: float = 0.7

    def threaded_time(self, sequential_seconds: float, threads: int) -> float:
        par = (1.0 - self.serial_fraction) / (threads * self.efficiency)
        return sequential_seconds * (self.serial_fraction + par)


@dataclass(frozen=True)
class BenchContext:
    """Shared knobs for every experiment run."""

    scale: float = 1.0 / 400.0
    seed: int = 1
    cache_dir: str = ".dataset_cache"
    results_dir: str = "results"
    datasets: tuple[str, ...] | None = None  # None = experiment default
    config: JEMConfig = field(default_factory=JEMConfig)
    cost_model: CostModel = field(default_factory=CostModel)
    thread_model: ThreadScalingModel = field(default_factory=ThreadScalingModel)

    @classmethod
    def from_env(cls, **overrides) -> "BenchContext":
        """Context honouring REPRO_BENCH_SCALE / REPRO_BENCH_DATASETS."""
        kwargs: dict = {}
        if "REPRO_BENCH_SCALE" in os.environ:
            kwargs["scale"] = float(os.environ["REPRO_BENCH_SCALE"])
        if "REPRO_BENCH_DATASETS" in os.environ:
            kwargs["datasets"] = tuple(os.environ["REPRO_BENCH_DATASETS"].split(","))
        kwargs.update(overrides)
        return cls(**kwargs)

    def pick(self, default: tuple[str, ...]) -> tuple[str, ...]:
        if self.datasets is None:
            return default
        return tuple(n for n in self.datasets if n in default) or default[:1]

    def dataset(self, name: str) -> Dataset:
        return load_or_generate(
            name, scale=self.scale, seed=self.seed, cache_dir=self.cache_dir
        )


def _jsonable(obj):
    """Best-effort conversion of experiment data to JSON-safe values."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    return str(obj)


@dataclass
class ExperimentOutput:
    """Rendered text plus the raw numbers of one experiment."""

    name: str
    text: str
    data: dict
    context: dict = field(default_factory=dict)
    elapsed_seconds: float | None = None

    def save(self, results_dir: str) -> str:
        os.makedirs(results_dir, exist_ok=True)
        path = os.path.join(results_dir, f"{self.name}.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.text + "\n")
        return path

    def save_bench_json(self, out_dir: str = ".") -> str:
        """Write the machine-readable ``BENCH_<name>.json`` trajectory file.

        Every experiment emits one: name, run configuration, wall time,
        and the raw numbers behind the rendered table — so runs are
        diffable across commits without parsing text tables.
        """
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, f"BENCH_{self.name}.json")
        payload = {
            "name": self.name,
            "config": _jsonable(self.context),
            "elapsed_seconds": self.elapsed_seconds,
            "data": _jsonable(self.data),
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        return path


def _finish(ctx: BenchContext, out: ExperimentOutput) -> ExperimentOutput:
    out.context = {
        "scale": ctx.scale,
        "seed": ctx.seed,
        "datasets": ctx.datasets,
        "jem_config": ctx.config,
    }
    out.save(ctx.results_dir)
    return out


# -- Table I -----------------------------------------------------------------


def exp_table1(ctx: BenchContext) -> ExperimentOutput:
    """Input statistics per dataset (contigs >= 500 bp, HiFi reads)."""
    names = ctx.pick(tuple(DATASETS))
    rows = []
    data: dict = {}
    for name in names:
        ds = ctx.dataset(name)
        cs = set_stats(ds.contigs, min_length=500)
        rs = set_stats(ds.reads)
        rows.append(
            [
                DATASETS[name].organism,
                f"{ds.genome.size:,}",
                f"{cs.count:,}",
                f"{cs.total_bases:,}",
                f"{cs.mean_length:,.0f} ± {cs.std_length:,.0f}",
                f"{rs.count:,}",
                f"{rs.total_bases:,}",
                f"{rs.mean_length:,.0f} ± {rs.std_length:,.0f}",
            ]
        )
        data[name] = {"contigs": cs, "reads": rs, "genome_length": int(ds.genome.size)}
    text = render_table(
        f"Table I — input data sets (scale={ctx.scale:g})",
        [
            "Input", "Genome bp", "No. contigs (>=500bp)", "Subject bp",
            "Contig len (avg±std)", "No. reads", "Query bp", "Read len (avg±std)",
        ],
        rows,
    )
    return _finish(ctx, ExperimentOutput("table1", text, data))


# -- Table II ------------------------------------------------------------------


def exp_table2(ctx: BenchContext) -> ExperimentOutput:
    """Strong scaling of JEM-mapper vs Mashmap with 64 threads."""
    names = ctx.pick(LARGE_DATASETS)
    rows = []
    data: dict = {}
    for name in names:
        ds = ctx.dataset(name)
        jem_times = {}
        for p in P_VALUES:
            # best-of-2 damps scheduler noise on millisecond-scale runs
            jem_times[p] = min(
                run_parallel_jem(
                    ds.contigs, ds.reads, ctx.config, p=p, cost_model=ctx.cost_model
                ).total_time
                for _ in range(2)
            )
        res = run_mappers(ds, ctx.config, mappers=("jem", "mashmap"))
        jem_seq = res["jem"].total_seconds
        mm_seq = res["mashmap"].total_seconds
        mm_t64 = ctx.thread_model.threaded_time(mm_seq, 64)
        speedup = mm_t64 / jem_times[64] if jem_times[64] > 0 else float("inf")
        rows.append(
            [DATASETS[name].organism]
            + [f"{jem_times[p]:.3f}" for p in P_VALUES]
            + [f"{mm_t64:.3f}", f"{speedup:.2f}x", f"{mm_seq / jem_seq:.2f}x"]
        )
        data[name] = {
            "jem": jem_times,
            "jem_seq": jem_seq,
            "mashmap_seq": mm_seq,
            "mashmap_t64": mm_t64,
            "speedup_vs_mashmap": speedup,
            "seq_speedup_vs_mashmap": mm_seq / jem_seq,
        }
    text = render_table(
        f"Table II — parallel runtimes in seconds (scale={ctx.scale:g}; "
        "JEM modelled over p simulated ranks, Mashmap t=64 via thread model)",
        ["Input"] + [f"JEM p={p}" for p in P_VALUES]
        + ["Mashmap t=64", "JEM speedup (p=64)", "JEM speedup (seq)"],
        rows,
    )
    return _finish(ctx, ExperimentOutput("table2", text, data))


# -- Fig. 5 --------------------------------------------------------------------


def exp_fig5(ctx: BenchContext) -> ExperimentOutput:
    """Precision and recall of JEM-mapper vs Mashmap on the simulated inputs."""
    names = ctx.pick(tuple(n for n in DATASETS if not DATASETS[n].is_real_like))
    rows = []
    data: dict = {}
    for name in names:
        ds = ctx.dataset(name)
        res = run_mappers(ds, ctx.config, mappers=("jem", "mashmap"))
        j, m = res["jem"].quality, res["mashmap"].quality
        rows.append(
            [
                DATASETS[name].organism,
                f"{100 * j.precision:.2f}", f"{100 * j.recall:.2f}",
                f"{100 * m.precision:.2f}", f"{100 * m.recall:.2f}",
            ]
        )
        data[name] = {"jem": j, "mashmap": m}
    text = render_table(
        f"Fig. 5 — mapping quality, JEM-mapper vs Mashmap (scale={ctx.scale:g})",
        ["Input", "JEM prec %", "JEM recall %", "Mashmap prec %", "Mashmap recall %"],
        rows,
    )
    return _finish(ctx, ExperimentOutput("fig5", text, data))


# -- Fig. 6 --------------------------------------------------------------------


def exp_fig6(
    ctx: BenchContext, *, trials_sweep: tuple[int, ...] = TRIALS_SWEEP
) -> ExperimentOutput:
    """Effect of the number of trials T on JEM vs classical MinHash."""
    name = ctx.pick(("b_splendens",))[0]
    ds = ctx.dataset(name)
    base = ctx.config.with_trials(max(trials_sweep))
    segments, infos, bench = prepare_benchmark(ds, base)
    series: dict[str, list[float]] = {
        "jem_precision": [], "jem_recall": [],
        "minhash_precision": [], "minhash_recall": [],
    }
    for trials in trials_sweep:
        cfg = ctx.config.with_trials(trials)
        res = run_mappers(
            ds, cfg, mappers=("jem", "minhash"),
            benchmark=bench, segments=segments, infos=infos,
        )
        series["jem_precision"].append(100 * res["jem"].quality.precision)
        series["jem_recall"].append(100 * res["jem"].quality.recall)
        series["minhash_precision"].append(100 * res["minhash"].quality.precision)
        series["minhash_recall"].append(100 * res["minhash"].quality.recall)
    text = render_series(
        f"Fig. 6 — quality vs number of trials T on {DATASETS[name].organism} "
        f"(scale={ctx.scale:g})",
        "T", trials_sweep, series, fmt="{:.2f}",
    )
    return _finish(
        ctx, ExperimentOutput("fig6", text, {"trials": trials_sweep, **series})
    )


# -- Fig. 7 --------------------------------------------------------------------


def exp_fig7(ctx: BenchContext) -> ExperimentOutput:
    """(a) runtime breakdown at p=16; (b) query throughput vs p."""
    names = ctx.pick(LARGE_DATASETS)
    breakdown_rows = []
    throughput: dict[str, list[float]] = {}
    data: dict = {"breakdown": {}, "throughput": {}, "n_segments": {}}
    for name in names:
        ds = ctx.dataset(name)
        # best-of-3 per step: damps scheduler/GC noise on ms-scale timings
        candidates = [
            run_parallel_jem(
                ds.contigs, ds.reads, ctx.config, p=16, cost_model=ctx.cost_model
            ).steps.breakdown()
            for _ in range(3)
        ]
        b = {key: min(c[key] for c in candidates) for key in candidates[0]}
        total = sum(b.values())
        breakdown_rows.append(
            [DATASETS[name].organism]
            + [f"{b[key]:.3f} ({100 * b[key] / total:.0f}%)" for key in b]
        )
        data["breakdown"][name] = b
        thr = []
        for p in P_VALUES:
            # best-of-2: the throughput is n_segments / max-rank map time,
            # which is noisy when per-rank times reach the millisecond floor
            thr.append(
                max(
                    run_parallel_jem(
                        ds.contigs, ds.reads, ctx.config, p=p, cost_model=ctx.cost_model
                    ).query_throughput
                    for _ in range(2)
                )
            )
        throughput[DATASETS[name].organism] = thr
        data["throughput"][name] = dict(zip(P_VALUES, thr))
        data["n_segments"][name] = 2 * len(ds.reads)
    text_a = render_table(
        f"Fig. 7a — runtime breakdown by step at p=16, seconds (scale={ctx.scale:g})",
        ["Input", "input_load", "subject_sketch", "sketch_gather", "query_map"],
        breakdown_rows,
    )
    text_b = render_series(
        "Fig. 7b — querying throughput (segments/sec) vs p",
        "p", P_VALUES, throughput, fmt="{:,.0f}",
    )
    return _finish(ctx, ExperimentOutput("fig7", text_a + "\n\n" + text_b, data))


# -- Fig. 8 --------------------------------------------------------------------


def exp_fig8(ctx: BenchContext) -> ExperimentOutput:
    """Computation vs communication fraction for two large inputs."""
    names = ctx.pick(("human_chr7", "b_splendens"))
    data: dict = {}
    sections = []
    for name in names:
        ds = ctx.dataset(name)
        comp, comm = [], []
        for p in P_VALUES:
            run = run_parallel_jem(
                ds.contigs, ds.reads, ctx.config, p=p, cost_model=ctx.cost_model
            )
            frac = run.steps.comm_fraction
            comm.append(100 * frac)
            comp.append(100 * (1 - frac))
        data[name] = {"p": P_VALUES, "comm_pct": comm, "comp_pct": comp}
        sections.append(
            render_series(
                f"Fig. 8 — computation vs communication %, {DATASETS[name].organism} "
                f"(scale={ctx.scale:g})",
                "p", P_VALUES,
                {"computation %": comp, "communication %": comm},
                fmt="{:.1f}",
            )
        )
    return _finish(ctx, ExperimentOutput("fig8", "\n\n".join(sections), data))


# -- Fig. 9 --------------------------------------------------------------------


def exp_fig9(ctx: BenchContext, *, max_pairs: int = 400) -> ExperimentOutput:
    """Percent-identity histogram of JEM mappings on the real-like data set."""
    name = ctx.pick(("o_sativa_chr8",))[0]
    ds = ctx.dataset(name)
    res = run_mappers(ds, ctx.config, mappers=("jem",))
    mapping = res["jem"].result
    segments, _ = extract_end_segments(ds.reads, ctx.config.ell)
    mapped = np.flatnonzero(mapping.mapped_mask)
    rng = np.random.default_rng(ctx.seed)
    if mapped.size > max_pairs:
        mapped = rng.choice(mapped, size=max_pairs, replace=False)
    identities = np.array(
        [
            segment_identity(
                segments.codes_of(int(i)), ds.contigs.codes_of(int(mapping.subject[i]))
            )
            for i in mapped
        ]
    )
    bins = [0, 50, 80, 90, 95, 98, 100.0001]
    labels = ["<50", "50-80", "80-90", "90-95", "95-98", "98-100"]
    counts, _ = np.histogram(identities, bins=bins)
    pct = 100 * counts / identities.size
    text = render_table(
        f"Fig. 9 — percent identity of {identities.size} sampled JEM mappings on "
        f"{DATASETS[name].organism} (scale={ctx.scale:g})",
        ["identity bin %"] + labels,
        [["fraction of mappings %"] + [f"{v:.1f}" for v in pct]],
    )
    data = {
        "identities": identities,
        "bins": dict(zip(labels, counts.tolist())),
        "frac_ge_95": float((identities >= 95).mean()),
        "quality": res["jem"].quality,
    }
    return _finish(ctx, ExperimentOutput("fig9", text, data))


# -- Kernel batching -----------------------------------------------------------


def exp_kernels(ctx: BenchContext, *, repeats: int = 5) -> ExperimentOutput:
    """Batched multi-trial kernels vs the retained per-trial reference.

    Times the S2 kernel (``subject_kernel``) and the S4 kernel
    (``query_kernel``) against their per-trial ``*_reference``
    implementations on one dataset's pre-extracted minimizer intervals —
    minimizer extraction is identical on both sides, so it is hoisted out
    of the timed region to keep the comparison about the kernels.  Each
    side is min-over-``repeats``.  Bit-identity is asserted end to end on
    the public entry points (extraction included) and the parity bits land
    in the JSON so CI can gate on them.  The speedup is the whole point of
    the batched kernels, so regressions show up as a falling ``speedup``
    field in ``BENCH_kernels.json`` across commits.  The JSON also records
    which backend the batched side ran on (``native`` when the compiled
    fast path is available, else ``numpy``) since the two have different
    expected speedup floors.
    """
    from ..sketch.jem import (
        _concat_minimizer_lists,
        _query_minimizer_concat,
        query_kernel,
        query_kernel_reference,
        query_sketch_values,
        query_sketch_values_reference,
        subject_kernel,
        subject_kernel_reference,
        subject_sketch_pairs,
        subject_sketch_pairs_reference,
    )
    from ..sketch import _native
    from ..sketch.minimizers import minimizers_set

    name = ctx.pick(("e_coli",))[0]
    ds = ctx.dataset(name)
    cfg = ctx.config
    family = cfg.hash_family()
    backend = "native" if _native.load() is not None else "numpy"
    segments, _ = extract_end_segments(ds.reads, cfg.ell)

    def _timed(fn) -> float:
        t0 = time.perf_counter()
        fn()
        return time.perf_counter() - t0

    def best(fn) -> float:
        return min(_timed(fn) for _ in range(repeats))

    # end-to-end parity on the public entry points (extraction included)
    subj_batched = subject_sketch_pairs(ds.contigs, cfg.k, cfg.w, cfg.ell, family)
    subj_reference = subject_sketch_pairs_reference(
        ds.contigs, cfg.k, cfg.w, cfg.ell, family
    )
    subject_parity = all(
        np.array_equal(a, b) for a, b in zip(subj_batched, subj_reference)
    )
    q_batched = query_sketch_values(segments, cfg.k, cfg.w, family)
    q_reference = query_sketch_values_reference(segments, cfg.k, cfg.w, family)
    query_parity = bool(
        np.array_equal(q_batched.has, q_reference.has)
        and np.array_equal(
            q_batched.values[:, q_batched.has],
            q_reference.values[:, q_reference.has],
        )
    )

    # timed region: the kernels only, over shared pre-extracted intervals
    s_values, s_positions, s_owner, _ = _concat_minimizer_lists(
        minimizers_set(ds.contigs, cfg.k, cfg.w), cfg.ell
    )
    s_ends = np.searchsorted(s_positions, s_positions + cfg.ell, side="right")
    s_ids = s_owner.astype(np.uint64)
    t_subj_batched = best(lambda: subject_kernel(s_values, s_ends, s_ids, family))
    t_subj_reference = best(
        lambda: subject_kernel_reference(s_values, s_ends, s_ids, family)
    )

    _, _, q_values, q_starts = _query_minimizer_concat(segments, cfg.k, cfg.w)
    t_query_batched = best(lambda: query_kernel(q_values, q_starts, family))
    t_query_reference = best(
        lambda: query_kernel_reference(q_values, q_starts, family)
    )

    subject_speedup = t_subj_reference / t_subj_batched if t_subj_batched > 0 else float("inf")
    query_speedup = t_query_reference / t_query_batched if t_query_batched > 0 else float("inf")

    # -- fused end-to-end S4: sketch + lookup + vote ------------------------
    # Two numpy baselines bracket the fused kernel.  The *reference* is the
    # faithful per-trial pipeline the other rows also gate against:
    # per-trial sketch (query_kernel_reference) + the paper's lazy-update
    # vote (count_hits_lazy) — the retained parity oracle.  The *vectorised*
    # baseline is the best batched numpy path (numpy query_kernel +
    # count_hits_vectorised), i.e. what actually runs under REPRO_NO_NATIVE;
    # it is recorded alongside so the fused win over the already-optimised
    # path is visible, not just the win over the oracle.  The fused side is
    # one native map_block call over the same pre-extracted minimizer
    # block.  Parity is asserted on the final BestHits against both
    # baselines — the strongest gate, since it covers sketch, lookup and
    # vote at once.
    from ..core.hitcounter import (
        count_hits_fused,
        count_hits_lazy,
        count_hits_vectorised,
    )
    from ..core.store import ColumnarSketchStore
    from ..sketch._native import thread_count

    store = ColumnarSketchStore.from_trial_keys(subj_batched, len(ds.contigs))
    q_has, q_nonempty, qq_values, qq_starts = _query_minimizer_concat(
        segments, cfg.k, cfg.w
    )
    n_seg = len(segments)

    def sketch_reference():
        sk = np.zeros((family.size, n_seg), dtype=np.uint64)
        if q_nonempty.size:
            sk[:, q_nonempty] = query_kernel_reference(qq_values, qq_starts, family)
        return sk

    def e2e_reference():
        return count_hits_lazy(
            store, sketch_reference(), min_hits=cfg.min_hits, query_mask=q_has
        )

    def e2e_vectorised():
        os.environ["REPRO_NO_NATIVE"] = "1"
        try:
            sk = np.zeros((family.size, n_seg), dtype=np.uint64)
            if q_nonempty.size:
                sk[:, q_nonempty] = query_kernel(qq_values, qq_starts, family)
        finally:
            del os.environ["REPRO_NO_NATIVE"]
        return count_hits_vectorised(
            store, sk, min_hits=cfg.min_hits, query_mask=q_has
        )

    t_e2e_reference = best(e2e_reference)
    t_e2e_vectorised = best(e2e_vectorised)
    hits_reference = e2e_reference()
    hits_vectorised = e2e_vectorised()

    end_to_end: dict = {
        "reference_seconds": t_e2e_reference,
        "vectorised_seconds": t_e2e_vectorised,
        "n_segments": n_seg,
        "min_hits": cfg.min_hits,
        "default_threads": thread_count(),
        "fused_seconds": None,
        "speedup": None,
        "speedup_vs_vectorised": None,
        "parity": None,
        "threads": {},
    }
    e2e_rows: list[list[str]] = []
    if backend == "native":
        def e2e_fused(threads: int):
            return count_hits_fused(
                store, qq_values, qq_starts, family, min_hits=cfg.min_hits,
                n_queries=n_seg, nonempty=q_nonempty, threads=threads,
            )

        hits_fused = e2e_fused(thread_count())
        fused_parity = bool(
            hits_fused is not None
            and np.array_equal(hits_fused.subject, hits_reference.subject)
            and np.array_equal(hits_fused.count, hits_reference.count)
            and np.array_equal(hits_fused.subject, hits_vectorised.subject)
            and np.array_equal(hits_fused.count, hits_vectorised.count)
        )
        t_fused_default = best(lambda: e2e_fused(thread_count()))
        e2e_speedup = (
            t_e2e_reference / t_fused_default if t_fused_default > 0 else float("inf")
        )
        end_to_end.update(
            fused_seconds=t_fused_default,
            speedup=e2e_speedup,
            speedup_vs_vectorised=(
                t_e2e_vectorised / t_fused_default
                if t_fused_default > 0
                else float("inf")
            ),
            parity=fused_parity,
        )
        # thread scaling: bit-identical output, wall-clock per thread count
        scaling_counts = sorted({1, 2, thread_count()})
        t_one = None
        for nt in scaling_counts:
            t_nt = best(lambda nt=nt: e2e_fused(nt))
            if t_one is None:
                t_one = t_nt
            end_to_end["threads"][str(nt)] = {
                "seconds": t_nt,
                "speedup_vs_1": t_one / t_nt if t_nt > 0 else float("inf"),
            }
        e2e_rows = [
            ["fused map (S4 e2e)", f"{t_e2e_reference:.4f}", f"{t_fused_default:.4f}",
             f"{e2e_speedup:.2f}x", "yes" if fused_parity else "NO"],
            ["fused vs numpy-vect", f"{t_e2e_vectorised:.4f}", f"{t_fused_default:.4f}",
             f"{end_to_end['speedup_vs_vectorised']:.2f}x",
             "yes" if fused_parity else "NO"],
        ]

    rows = [
        ["subject sketch (S2)", f"{t_subj_reference:.4f}", f"{t_subj_batched:.4f}",
         f"{subject_speedup:.2f}x", "yes" if subject_parity else "NO"],
        ["query sketch (S4)", f"{t_query_reference:.4f}", f"{t_query_batched:.4f}",
         f"{query_speedup:.2f}x", "yes" if query_parity else "NO"],
        *e2e_rows,
    ]
    text = render_table(
        f"Kernel batching — {DATASETS[name].organism}, T={cfg.trials} "
        f"(scale={ctx.scale:g}, {backend} backend, min of {repeats} runs)",
        ["kernel", "per-trial (s)", "batched (s)", "speedup", "bit-identical"],
        rows,
    )
    data = {
        "dataset": name,
        "backend": backend,
        "trials": cfg.trials,
        "n_contigs": len(ds.contigs),
        "n_segments": len(segments),
        "subject": {
            "reference_seconds": t_subj_reference,
            "batched_seconds": t_subj_batched,
            "speedup": subject_speedup,
            "parity": subject_parity,
        },
        "query": {
            "reference_seconds": t_query_reference,
            "batched_seconds": t_query_batched,
            "speedup": query_speedup,
            "parity": query_parity,
        },
        "end_to_end": end_to_end,
    }
    return _finish(ctx, ExperimentOutput("kernels", text, data))


# -- Fault-injection smoke -----------------------------------------------------


def exp_faults(ctx: BenchContext) -> ExperimentOutput:
    """Recovery-overhead smoke: seeded fault plans must not change output.

    Runs the simulated S1–S4 driver on one dataset at p=8 under several
    seeded recoverable fault plans and reports, per seed, the faults that
    fired, the modelled recovery time, and whether the mapping stayed
    bit-identical to the fault-free run — a fast regression tripwire for
    the recovery machinery's overhead and correctness.
    """
    from ..parallel.faults import FaultPlan
    from ..parallel.retry import RetryPolicy

    name = ctx.pick(("e_coli",))[0]
    ds = ctx.dataset(name)
    p = 8
    baseline = run_parallel_jem(
        ds.contigs, ds.reads, ctx.config, p=p, cost_model=ctx.cost_model
    )
    policy = RetryPolicy(base_delay=0.005, max_delay=0.05)
    rows = []
    data: dict = {"dataset": name, "p": p, "seeds": {}}
    for seed in (1, 2, 3, 4):
        plan = FaultPlan.seeded(seed, p, delay=0.02)
        run = run_parallel_jem(
            ds.contigs, ds.reads, ctx.config, p=p,
            cost_model=ctx.cost_model, faults=plan, retry=policy,
        )
        identical = bool(
            np.array_equal(run.mapping.subject, baseline.mapping.subject)
            and np.array_equal(run.mapping.hit_count, baseline.mapping.hit_count)
            and run.mapping.segment_names == baseline.mapping.segment_names
        )
        rows.append([
            str(seed),
            str(plan.total_fired),
            f"{run.recovery_time:.4f}",
            str(run.steps.gather_retries),
            "yes" if identical else "NO",
        ])
        data["seeds"][seed] = {
            "faults_fired": plan.total_fired,
            "recovery_time": run.recovery_time,
            "gather_retries": run.steps.gather_retries,
            "identical": identical,
        }
    text = render_table(
        f"Fault-injection smoke — {DATASETS[name].organism}, p={p}",
        ["seed", "faults fired", "recovery (s)", "gather retries", "output identical"],
        rows,
    )
    return _finish(ctx, ExperimentOutput("faults", text, data))


# -- Service throughput --------------------------------------------------------


def exp_serve(
    ctx: BenchContext, *, n_batches: int = 5, passes: int = 2
) -> ExperimentOutput:
    """Resident mapping service vs repeated one-shot ``jem map``.

    The one-shot baseline re-indexes the contigs for every arriving batch
    (exactly what ``jem map -s contigs.fasta`` does per invocation); the
    service builds the index once, then streams the same arrival schedule
    through the admission queue, micro-batcher, and result cache.  The
    stream is played ``passes`` times, so the later passes are pure
    duplicates — the cache-hit regime of a production mapper.  Reported
    throughput counts every read of every pass for both sides, and the
    service output is verified bit-identical to the one-shot mapping.
    """
    from ..core.mapper import JEMMapper
    from ..service import MappingService, ServiceConfig

    name = ctx.pick(("e_coli",))[0]
    ds = ctx.dataset(name)
    bounds = np.linspace(0, len(ds.reads), n_batches + 1).astype(np.int64)
    batches = [
        ds.reads.slice(int(bounds[b]), int(bounds[b + 1]))
        for b in range(n_batches)
        if bounds[b] < bounds[b + 1]
    ]
    total_reads = passes * len(ds.reads)

    # one-shot: every batch pays index load + map, like a fresh CLI run
    t0 = time.perf_counter()
    oneshot_results = []
    for _ in range(passes):
        for batch in batches:
            mapper = JEMMapper(ctx.config)
            mapper.index(ds.contigs)
            oneshot_results.append(mapper.map_reads(batch))
    oneshot_seconds = time.perf_counter() - t0

    # service: index resident, batched, cached
    service_config = ServiceConfig(max_batch_size=64, max_wait_ms=1.0)
    t0 = time.perf_counter()
    service = MappingService.from_contigs(ds.contigs, ctx.config, service_config)
    service_results = []
    for _ in range(passes):
        for batch in batches:
            service_results.append(service.map_reads(batch))
    service.drain()
    service_seconds = time.perf_counter() - t0

    identical = all(
        s.segment_names == o.segment_names
        and np.array_equal(s.subject, o.subject)
        and np.array_equal(s.hit_count, o.hit_count)
        for s, o in zip(service_results, oneshot_results)
    )
    snapshot = service.metrics.snapshot()
    oneshot_tp = total_reads / oneshot_seconds if oneshot_seconds > 0 else 0.0
    service_tp = total_reads / service_seconds if service_seconds > 0 else 0.0
    speedup = service_tp / oneshot_tp if oneshot_tp > 0 else float("inf")
    latency = snapshot["histograms"]["request_latency_seconds"]
    rows = [
        ["one-shot (reindex per batch)", f"{oneshot_seconds:.3f}",
         f"{oneshot_tp:,.0f}", "-", "-", "-", "-"],
        ["service (resident+batch+cache)", f"{service_seconds:.3f}",
         f"{service_tp:,.0f}", f"{1000 * latency['p50']:.1f}",
         f"{1000 * latency['p95']:.1f}", f"{1000 * latency['p99']:.1f}",
         f"{100 * snapshot['cache_hit_ratio']:.0f}%"],
    ]
    text = render_table(
        f"Service throughput — {DATASETS[name].organism}, {total_reads} reads "
        f"({passes} passes x {len(batches)} batches, scale={ctx.scale:g}); "
        f"speedup {speedup:.1f}x, output identical: {'yes' if identical else 'NO'}",
        ["mode", "wall (s)", "reads/s", "lat p50 (ms)", "lat p95 (ms)",
         "lat p99 (ms)", "cache hits"],
        rows,
    )
    data = {
        "dataset": name,
        "n_reads": total_reads,
        "passes": passes,
        "n_batches": len(batches),
        "oneshot_seconds": oneshot_seconds,
        "service_seconds": service_seconds,
        "oneshot_reads_per_s": oneshot_tp,
        "service_reads_per_s": service_tp,
        "speedup": speedup,
        "identical": identical,
        "service_config": service_config,
        "metrics": snapshot,
    }
    return _finish(ctx, ExperimentOutput("serve", text, data))


# -- Concurrent serving --------------------------------------------------------


def exp_serve_concurrent(
    ctx: BenchContext,
    *,
    replica_counts: tuple[int, ...] = (1, 2, 4),
    n_batches: int = 5,
    passes: int = 2,
    repeats: int = 7,
    overload_factor: int = 10,
) -> ExperimentOutput:
    """Replicated serving scale-up over the single-service baseline.

    Same workload and service configuration as :func:`exp_serve`'s
    service mode (so the 1-replica row reproduces ``BENCH_serve.json``'s
    ``service_reads_per_s``), scaled out over N replicas.

    This host has one core, so — like the Mashmap thread model — replica
    scaling is *modelled from isolated measurements* rather than timed
    concurrently: the front-end routes each replica an equal contiguous
    share of the stream (affinity routing, so repeated reads hit the same
    replica's cache), each replica's busy time is the min-of-``repeats``
    wall of streaming its whole share through a fresh service once per
    pass, and the modelled wall is the slowest replica's busy time.  The
    *real* concurrent path is exercised separately on the same stream —
    batched arrivals and all — through
    :class:`~repro.netserve.ReplicaSet` under both placement policies,
    and its output is verified bit-identical to the sequential mapper —
    the correctness half of the claim is never modelled.

    An overload phase then offers ``overload_factor`` x the measured
    baseline throughput at the replicated front door and reads the
    aggregate p99: admission control must hold the tail to roughly a full
    queue's worth of service time instead of letting it grow with the
    offered backlog.
    """
    from ..core.mapper import JEMMapper
    from ..errors import ServiceOverloadError
    from ..netserve import ReplicaSet, make_placement
    from ..service import MappingService, ServiceConfig
    from ..service.metrics import aggregate_metrics

    name = ctx.pick(("e_coli",))[0]
    ds = ctx.dataset(name)
    n_reads = len(ds.reads)
    batch_bounds = np.linspace(0, n_reads, n_batches + 1).astype(np.int64)
    total_reads = passes * n_reads
    service_config = ServiceConfig(max_batch_size=64, max_wait_ms=1.0)

    jem = JEMMapper(ctx.config, store_kind="columnar")
    jem.index(ds.contigs)
    batches = [
        ds.reads.slice(int(batch_bounds[b]), int(batch_bounds[b + 1]))
        for b in range(n_batches)
        if batch_bounds[b] < batch_bounds[b + 1]
    ]
    sequential = [jem.map_reads(batch) for batch in batches]

    def same(a, b) -> bool:
        return bool(
            a.segment_names == b.segment_names
            and np.array_equal(a.subject, b.subject)
            and np.array_equal(a.hit_count, b.hit_count)
        )

    # Modelled scale-up: per-replica busy time in isolation, wall = max.
    # Repeats are interleaved round-robin across every (count, replica)
    # cell so a transient host stall lands on one round of many cells
    # rather than on every repeat of one cell — min-per-cell then removes
    # it instead of skewing one configuration's whole measurement.
    cells = []
    for n in replica_counts:
        replica_bounds = np.linspace(0, n_reads, n + 1).astype(np.int64)
        for i in range(n):
            cells.append((n, i, ds.reads.slice(
                int(replica_bounds[i]), int(replica_bounds[i + 1])
            )))
    walls: dict[tuple[int, int], list[float]] = {}
    cell_p99s: dict[tuple[int, int], list[float]] = {}
    for _round in range(repeats):
        for n, i, share in cells:
            service = MappingService(jem, service_config)
            t0 = time.perf_counter()
            for _ in range(passes):
                service.map_reads(share)
            walls.setdefault((n, i), []).append(time.perf_counter() - t0)
            snapshot = service.metrics.snapshot()
            cell_p99s.setdefault((n, i), []).append(
                snapshot["histograms"]["request_latency_seconds"]["p99"]
            )
            service.drain()
    per_count: dict[int, dict] = {}
    for n in replica_counts:
        busy = [min(walls[(n, i)]) for i in range(n)]
        p99s = [min(cell_p99s[(n, i)]) for i in range(n)]
        wall = max(busy)
        per_count[n] = {
            "per_replica_busy_s": busy,
            "modelled_wall_s": wall,
            "reads_per_s": total_reads / wall if wall > 0 else 0.0,
            "steady_p99_ms": 1000.0 * max(p99s),
        }
    baseline_tp = per_count[replica_counts[0]]["reads_per_s"]
    for n in replica_counts:
        per_count[n]["speedup"] = (
            per_count[n]["reads_per_s"] / baseline_tp if baseline_tp > 0 else 0.0
        )

    # real concurrent path: both placements, output bit-identical
    real: dict[str, dict] = {}
    for kind in ("replicate", "scatter"):
        for n in replica_counts:
            if n == 1 and kind == "scatter":
                continue
            with ReplicaSet(
                jem.table, jem.subject_names, ctx.config,
                placement=make_placement(kind, n),
                service_config=service_config,
            ) as replica_set:
                t0 = time.perf_counter()
                results = [
                    replica_set.map_reads(batch)
                    for _ in range(passes)
                    for batch in batches
                ]
                wall = time.perf_counter() - t0
            identical = all(
                same(got, sequential[j % len(batches)])
                for j, got in enumerate(results)
            )
            real[f"{kind}_x{n}"] = {
                "wall_s": wall,
                "identical": identical,
            }

    # overload: distinct (uncacheable) reads offered as fast as the host
    # can submit them, against the uncached sustainable rate.  Admission
    # control must pin the tail to queue depth x service time — shedding
    # the rest — instead of letting latency grow with the offered backlog.
    n_max = max(replica_counts)
    attempts = overload_factor * n_reads
    burst = []
    for j in range(attempts):
        mutated = ds.reads.codes_of(j % n_reads).copy()
        mutated[j % mutated.size] = (mutated[j % mutated.size] + 1) % 4
        burst.append((f"burst_{j}", mutated))
    overload_config = dataclasses.replace(
        service_config, cache_capacity=0, queue_capacity=32
    )
    sustained_walls: list[float] = []
    for _rep in range(repeats):
        uncached = MappingService(jem, overload_config)
        t0 = time.perf_counter()
        uncached.map_reads(ds.reads)
        sustained_walls.append(time.perf_counter() - t0)
        uncached.drain()
    sustained_tp = n_reads / min(sustained_walls)
    with ReplicaSet(
        jem.table, jem.subject_names, ctx.config,
        placement=make_placement("replicate", n_max),
        service_config=overload_config,
    ) as replica_set:
        futures = []
        shed = 0
        t0 = time.perf_counter()
        for read_name, read_codes in burst:
            try:
                futures.append(replica_set.submit(read_name, read_codes))
            except ServiceOverloadError:
                shed += 1
        submit_wall = time.perf_counter() - t0
        for future in futures:
            future.result(300.0)
        aggregate = aggregate_metrics(replica_set.metrics_registries())
    offered_rate = attempts / submit_wall if submit_wall > 0 else float("inf")
    overload_p99 = aggregate["histograms"]["request_latency_seconds"]["p99"]
    # every replica's queue can be full at once on this one-core host, so
    # the admissible tail is the whole set's queued work, with 2x slack
    p99_bound_s = 2.0 * n_max * overload_config.queue_capacity / sustained_tp
    overload = {
        "attempts": attempts,
        "accepted": len(futures),
        "shed": shed,
        "sustained_reads_per_s": sustained_tp,
        "offered_reads_per_s": offered_rate,
        "offered_over_sustained": offered_rate / sustained_tp,
        "p99_ms": 1000.0 * overload_p99,
        "p99_bound_ms": 1000.0 * p99_bound_s,
        "held": bool(overload_p99 <= p99_bound_s),
    }

    targets = {2: 1.7, 4: 3.0}
    targets_met = {
        str(n): bool(per_count[n]["speedup"] >= target)
        for n, target in targets.items()
        if n in per_count
    }
    rows = []
    for n in replica_counts:
        entry = per_count[n]
        verified = real.get(f"replicate_x{n}")
        rows.append([
            str(n),
            f"{entry['modelled_wall_s']:.3f}",
            f"{entry['reads_per_s']:,.0f}",
            f"{entry['speedup']:.2f}x",
            f">={targets[n]:.1f}x" if n in targets else "-",
            f"{entry['steady_p99_ms']:.1f}",
            "-" if verified is None else ("yes" if verified["identical"] else "NO"),
        ])
    text = render_table(
        f"Concurrent serving — {DATASETS[name].organism}, {total_reads} reads "
        f"({passes} passes, scale={ctx.scale:g}); modelled replica scale-up, "
        f"overload p99 {overload['p99_ms']:.1f} ms at "
        f"{overload['offered_over_sustained']:.0f}x offered "
        f"({'held' if overload['held'] else 'NOT HELD'})",
        ["replicas", "wall (s)", "reads/s", "speedup", "target",
         "p99 (ms)", "identical"],
        rows,
    )
    data = {
        "dataset": name,
        "n_reads": total_reads,
        "passes": passes,
        "n_batches": len(batches),
        "baseline_reads_per_s": baseline_tp,
        "replicas": {str(n): per_count[n] for n in replica_counts},
        "targets": {str(n): t for n, t in targets.items()},
        "targets_met": targets_met,
        "real_concurrent": real,
        "overload": overload,
        "service_config": service_config,
    }
    return _finish(ctx, ExperimentOutput("serve_concurrent", text, data))


# -- Sketch-store layouts ------------------------------------------------------


def exp_store(ctx: BenchContext, *, repeats: int = 5) -> ExperimentOutput:
    """Columnar vs dict sketch store: resident bytes, lookup rate, parity.

    Builds both resident layouts from one dataset's trial keys, verifies
    that every trial's batch lookup is bit-identical between them, and
    measures resident memory plus batch-lookup throughput (all T trials of
    the full query sketch matrix, min-over-``repeats``).  The JSON records
    ``memory_ratio`` (dict bytes / columnar bytes) and ``throughput_ratio``
    (columnar lookups/s over dict lookups/s), so CI can gate on the
    columnar layout's headline claim: at least one of the two >= 2x.
    """
    from ..core.mapper import JEMMapper
    from ..core.store import ColumnarSketchStore, DictSketchStore
    from ..sketch.jem import query_sketch_values

    name = ctx.pick(("e_coli",))[0]
    ds = ctx.dataset(name)
    cfg = ctx.config
    segments, _ = extract_end_segments(ds.reads, cfg.ell)

    packed = JEMMapper(cfg, store_kind="packed").index(ds.contigs)
    keys = [packed.trial_keys(t) for t in range(packed.trials)]
    columnar = ColumnarSketchStore.from_trial_keys(keys, packed.n_subjects)
    dictstore = DictSketchStore.from_trial_keys(keys, packed.n_subjects)

    sketches = query_sketch_values(segments, cfg.k, cfg.w, cfg.hash_family())
    queries = [sketches.values[t, sketches.has] for t in range(cfg.trials)]
    n_lookups = cfg.trials * int(sketches.has.sum())

    parity = all(
        np.array_equal(ch.query_index, dh.query_index)
        and np.array_equal(ch.subjects, dh.subjects)
        for t, qv in enumerate(queries)
        for ch, dh in ((columnar.lookup_trial(t, qv), dictstore.lookup_trial(t, qv)),)
    )

    def sweep(store) -> float:
        t0 = time.perf_counter()
        for t, qv in enumerate(queries):
            store.lookup_trial(t, qv)
        return time.perf_counter() - t0

    col_seconds = min(sweep(columnar) for _ in range(repeats))
    dict_seconds = min(sweep(dictstore) for _ in range(repeats))
    col_rate = n_lookups / col_seconds if col_seconds > 0 else float("inf")
    dict_rate = n_lookups / dict_seconds if dict_seconds > 0 else float("inf")
    memory_ratio = dictstore.nbytes / columnar.nbytes if columnar.nbytes else float("inf")
    throughput_ratio = col_rate / dict_rate if dict_rate > 0 else float("inf")

    rows = [
        ["columnar", f"{columnar.nbytes / 1e6:.2f}", f"{col_seconds:.4f}",
         f"{col_rate:,.0f}", "yes" if parity else "NO"],
        ["dict", f"{dictstore.nbytes / 1e6:.2f}", f"{dict_seconds:.4f}",
         f"{dict_rate:,.0f}", "(oracle)"],
    ]
    text = render_table(
        f"Sketch-store layouts — {DATASETS[name].organism}, T={cfg.trials} "
        f"(scale={ctx.scale:g}, min of {repeats} sweeps); memory "
        f"{memory_ratio:.1f}x smaller, lookups {throughput_ratio:.1f}x faster",
        ["store", "resident (MB)", "sweep (s)", "lookups/s", "bit-identical"],
        rows,
    )
    data = {
        "dataset": name,
        "trials": cfg.trials,
        "n_contigs": len(ds.contigs),
        "n_queries": int(sketches.has.sum()),
        "n_lookups": n_lookups,
        "columnar_bytes": int(columnar.nbytes),
        "dict_bytes": int(dictstore.nbytes),
        "columnar_seconds": col_seconds,
        "dict_seconds": dict_seconds,
        "columnar_lookups_per_s": col_rate,
        "dict_lookups_per_s": dict_rate,
        "memory_ratio": memory_ratio,
        "throughput_ratio": throughput_ratio,
        "parity": parity,
    }
    return _finish(ctx, ExperimentOutput("store", text, data))


def exp_mutation(ctx: BenchContext, *, repeats: int = 3) -> ExperimentOutput:
    """Online-mutation cost: lookup latency per index shape + compaction.

    Seeds a mutable LSM index from most of one dataset's contigs, streams
    the rest in online, and sweeps the full query batch against each
    resident shape the index passes through: the clean seed segment, the
    memtable-resident adds, four flushed delta segments, and the
    compacted fold.  Times the compaction itself, and checks the headline
    invariant twice — after all adds, and again after a removal +
    compaction, the packed keys are **bit-identical** to a monolithic
    rebuild over the live contigs.
    """
    from ..core.lsm import MutableSketchStore
    from ..core.mapper import JEMMapper
    from ..seq.records import SequenceSet
    from ..sketch.jem import query_sketch_values

    name = ctx.pick(("e_coli",))[0]
    ds = ctx.dataset(name)
    cfg = ctx.config
    segments, _ = extract_end_segments(ds.reads, cfg.ell)
    sketches = query_sketch_values(segments, cfg.k, cfg.w, cfg.hash_family())
    queries = [sketches.values[t, sketches.has] for t in range(cfg.trials)]
    n_lookups = cfg.trials * int(sketches.has.sum())

    def subset(indices) -> SequenceSet:
        return SequenceSet.from_records([ds.contigs[int(i)] for i in indices])

    n = len(ds.contigs)
    hold = max(4, n // 5)  # contigs streamed in online, in 4 batches
    batches = np.array_split(np.arange(n - hold, n), 4)
    base = subset(range(n - hold))
    seed_mapper = JEMMapper(cfg, store_kind="columnar")
    seed_mapper.index(base)
    handle = MutableSketchStore.in_memory(
        cfg, base_store=seed_mapper.table, subject_names=base.names
    )

    def sweep() -> float:
        store = handle.current
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            for t, qv in enumerate(queries):
                store.lookup_trial(t, qv)
            best = min(best, time.perf_counter() - t0)
        return best

    def shape_row(label: str) -> dict:
        gen = handle.current
        seconds = sweep()
        return {
            "shape": label,
            "segments": len(gen.segments),
            "memtable_entries": int(gen.memtable_entries),
            "seconds": seconds,
            "lookups_per_s": n_lookups / seconds if seconds > 0 else float("inf"),
        }

    shapes = [shape_row("clean seed")]
    handle.add_contigs(subset(batches[0]))
    shapes.append(shape_row("memtable adds"))
    handle.flush()
    for batch in batches[1:]:
        handle.add_contigs(subset(batch))
        handle.flush()
    shapes.append(shape_row("4 delta segments"))

    full_mapper = JEMMapper(cfg, store_kind="columnar")
    full_mapper.index(ds.contigs)
    parity_full = all(
        np.array_equal(handle.trial_keys(t), full_mapper.table.trial_keys(t))
        for t in range(cfg.trials)
    )

    t0 = time.perf_counter()
    handle.compact()
    compact_seconds = time.perf_counter() - t0
    shapes.append(shape_row("compacted"))

    # removal parity: drop the final batch; survivor ids stay contiguous,
    # so a monolithic rebuild over the survivors allocates identical ids
    handle.remove_contigs([ds.contigs.names[int(i)] for i in batches[-1]])
    handle.compact()
    survivors = subset(range(n - len(batches[-1])))
    live_mapper = JEMMapper(cfg, store_kind="columnar")
    live_mapper.index(survivors)
    parity_removed = all(
        np.array_equal(handle.trial_keys(t), live_mapper.table.trial_keys(t))
        for t in range(cfg.trials)
    )

    clean_s = shapes[0]["seconds"]
    rows = [
        [s["shape"], str(s["segments"]), str(s["memtable_entries"]),
         f"{s['seconds']:.4f}", f"{s['lookups_per_s']:,.0f}",
         f"{s['seconds'] / clean_s:.2f}x" if clean_s > 0 else "-"]
        for s in shapes
    ]
    text = render_table(
        f"Mutable-index shapes — {DATASETS[name].organism}, T={cfg.trials} "
        f"(scale={ctx.scale:g}, min of {repeats} sweeps); compaction "
        f"{compact_seconds:.3f}s, parity "
        f"{'yes' if parity_full and parity_removed else 'NO'}",
        ["shape", "segments", "memtable", "sweep (s)", "lookups/s", "vs clean"],
        rows,
    )
    data = {
        "dataset": name,
        "trials": cfg.trials,
        "n_contigs": n,
        "online_added": int(hold),
        "n_lookups": n_lookups,
        "shapes": shapes,
        "compact_seconds": compact_seconds,
        "final_generation": handle.generation,
        "parity": parity_full,
        "parity_after_removal": parity_removed,
    }
    return _finish(ctx, ExperimentOutput("mutation", text, data))


#: Experiment registry for the CLI.
EXPERIMENTS = {
    "table1": exp_table1,
    "table2": exp_table2,
    "fig5": exp_fig5,
    "fig6": exp_fig6,
    "fig7": exp_fig7,
    "fig8": exp_fig8,
    "fig9": exp_fig9,
    "kernels": exp_kernels,
    "faults": exp_faults,
    "serve": exp_serve,
    "serve_concurrent": exp_serve_concurrent,
    "store": exp_store,
    "mutation": exp_mutation,
}
