"""Command-line interface: ``jem-mapper`` / ``python -m repro``.

Subcommands:

* ``simulate`` — generate one of the Table I datasets to FASTA/FASTQ files;
* ``map``      — map long reads (FASTA/FASTQ) to contigs (FASTA) and write
  a TSV of ⟨segment, contig, hits⟩ (mapper: jem / mashmap / minhash;
  ``-p`` > 1 runs the simulated-SPMD parallel driver);
* ``store-stats`` — inspect a saved index (bundle or mutable directory):
  generation, segments, memtable, tombstones, byte breakdown;
* ``serve``    — long-lived mapping service over stdin/stdout NDJSON
  (index resident, micro-batched, cached; see ``docs/service.md``);
* ``client``   — drive a ``serve`` process from a FASTA/FASTQ file and
  write the same TSV as ``map``;
* ``chaos``    — seeded kill-resume chaos cycles against ``index``/``map``
  with output-parity verification (see ``docs/robustness.md``);
* ``eval``     — end-to-end quality evaluation on a generated dataset;
* ``bench``    — regenerate one (or all) of the paper's tables/figures;
* ``datasets`` — list the dataset registry.

``index`` and ``map`` accept ``--checkpoint-dir DIR`` to commit every
completed S2 shard / S4 query block durably, and ``--resume DIR`` to
re-run the recorded invocation, skipping finished units — the resumed
output is bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

from . import __version__
from .bench import ALL_EXPERIMENTS as EXPERIMENTS
from .bench.experiments import BenchContext
from .core.config import JEMConfig
from .core.engine import MAPPER_KINDS, MappingEngine, PipelineConfig, read_sequences
from .core.mapper import JEMMapper
from .core.store import DEFAULT_STORE_KIND, STORE_KINDS
from .eval.datasets import DEFAULT_SCALE, dataset_names, load_or_generate
from .eval.pipeline import run_mappers
from .seq.io_fasta import read_fasta, write_fasta
from .seq.io_fastq import write_fastq
from .seq.records import SequenceSet
from .seq.stats import set_stats

__all__ = ["main", "build_parser"]


def _add_config_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--k", type=int, default=16, help="k-mer size (default 16)")
    parser.add_argument("--w", type=int, default=100, help="minimizer window (default 100)")
    parser.add_argument("--ell", type=int, default=1000, help="end-segment length (default 1000)")
    parser.add_argument("--trials", type=int, default=30, help="MinHash trials T (default 30)")
    parser.add_argument("--seed", type=int, default=20230157, help="hash-constant seed")


def _config_from(args: argparse.Namespace) -> JEMConfig:
    return JEMConfig(k=args.k, w=args.w, ell=args.ell, trials=args.trials, seed=args.seed)


def _add_checkpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="commit every completed work unit durably to DIR; "
                             "a killed run restarted with the same command (or "
                             "--resume DIR) skips finished units")
    parser.add_argument("--resume", default=None, metavar="DIR",
                        help="re-run the invocation recorded in DIR by an "
                             "earlier --checkpoint-dir run, loading its "
                             "completed units")


def _apply_resume(args: argparse.Namespace, command: str) -> argparse.Namespace:
    """Replace ``args`` with the invocation a ``--resume`` directory recorded."""
    if not getattr(args, "resume", None):
        return args
    from .errors import CheckpointError
    from .resilience import load_invocation

    payload = load_invocation(args.resume)
    if payload.get("command") != command:
        raise CheckpointError(
            f"{args.resume!r} was created by `jem {payload.get('command')}`, "
            f"not `jem {command}`"
        )
    resumed = argparse.Namespace(**payload["args"])
    resumed.command = command
    resumed.resume = None
    return resumed


def _invocation_payload(args: argparse.Namespace, command: str) -> dict:
    """Everything ``--resume`` needs to reconstruct this command line."""
    return {
        "command": command,
        "args": {
            k: v for k, v in vars(args).items() if k not in ("command", "resume")
        },
    }


def _add_store_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--store", choices=STORE_KINDS, default=DEFAULT_STORE_KIND,
                        help="resident sketch-store layout: columnar "
                             "(sorted value/contig arrays, default), dict "
                             "(hash-map oracle) or packed (legacy uint64 keys)")


def _engine_from(args: argparse.Namespace) -> MappingEngine:
    """Engine wired from ``--index`` or ``-s`` (shared by map/serve)."""
    engine = MappingEngine(PipelineConfig.from_args(args))
    if getattr(args, "index", None):
        return engine.use_index(args.index)
    return engine.load_subjects(args.subjects)


def _add_service_args(parser: argparse.ArgumentParser) -> None:
    """Scheduling/admission/caching knobs shared by ``serve`` and ``client``."""
    parser.add_argument("--max-batch", type=int, default=64,
                        help="most reads coalesced into one micro-batch (default 64)")
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="longest a non-full batch waits for more reads (default 2)")
    parser.add_argument("--queue-capacity", type=int, default=1024,
                        help="admission queue bound; beyond it requests are "
                             "rejected with a retry-after hint (default 1024)")
    parser.add_argument("--cache-capacity", type=int, default=4096,
                        help="query-sketch LRU result cache entries; 0 disables "
                             "(default 4096)")
    parser.add_argument("-p", "--processes", type=int, default=1,
                        help="simulated ranks for the fault-tolerant batch "
                             "dispatch (1 = inline fast path)")
    parser.add_argument("--strict", action=argparse.BooleanOptionalAction, default=True,
                        help="fail a whole batch on unrecoverable faults "
                             "(--no-strict fails only the lost reads)")
    parser.add_argument("--inject-faults", type=int, default=None, metavar="SEED",
                        help="inject a seeded recoverable fault plan (testing/demo)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the final metrics snapshot as JSON")
    parser.add_argument("--breaker-failures", type=int, default=0,
                        help="failed batches in the rolling window that trip "
                             "the circuit breaker into degraded single-trial "
                             "mapping (0 = breaker disabled, default)")
    parser.add_argument("--watchdog-interval-ms", type=float, default=0.0,
                        help="self-healing watchdog period (orphaned-shm sweep, "
                             "pool rebuild, scheduled index compaction); "
                             "0 = disabled (default)")
    parser.add_argument("--memtable-flush-entries", type=int, default=0,
                        help="auto-flush the mutable index's memtable once an "
                             "online add leaves this many entries in it "
                             "(0 = disabled, default)")
    parser.add_argument("--compact-segments", type=int, default=0,
                        help="watchdog compacts the mutable index once it holds "
                             "this many segments (0 = disabled, default)")


def _service_config_from(args: argparse.Namespace):
    from .service import ServiceConfig

    return ServiceConfig(
        max_batch_size=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_capacity=args.queue_capacity,
        cache_capacity=args.cache_capacity,
        processes=args.processes,
        strict=args.strict,
        breaker_failures=getattr(args, "breaker_failures", 0),
        watchdog_interval_ms=getattr(args, "watchdog_interval_ms", 0.0),
        memtable_flush_entries=getattr(args, "memtable_flush_entries", 0),
        compact_segments=getattr(args, "compact_segments", 0),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="jem-mapper",
        description="JEM-mapper: parallel sketch-based mapping of long reads to contigs",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="generate a Table I dataset to disk")
    p_sim.add_argument("dataset", choices=dataset_names())
    p_sim.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument("--out", default=".", help="output directory")

    p_index = sub.add_parser("index", help="build and save a JEM index from contigs")
    p_index.add_argument("-s", "--subjects", help="contigs FASTA")
    p_index.add_argument("-o", "--output", help="index file (.npz) or, with any "
                                               "mutable-index flag, a v4 directory")
    p_index.add_argument("--shards", type=int, default=1,
                         help="sketch the contigs in this many checkpointable "
                              "shards (bit-identical to a one-shot build)")
    p_index.add_argument("--mutable", action="store_true",
                         help="write a mutable (format v4) index directory "
                              "instead of a .npz bundle; -o names the directory")
    p_index.add_argument("--from-index", default=None, metavar="BUNDLE",
                         help="seed the mutable directory at -o from an existing "
                              ".npz bundle (one-shot v3 -> v4 migration)")
    p_index.add_argument("--append", default=None, metavar="FASTA",
                         help="add these contigs to the mutable index at -o "
                              "(WAL-logged, crash-safe)")
    p_index.add_argument("--remove", default=None, metavar="NAMES",
                         help="comma list of contig names to tombstone in the "
                              "mutable index at -o")
    p_index.add_argument("--flush", action="store_true",
                         help="seal the mutable index's memtable into an "
                              "immutable on-disk segment")
    p_index.add_argument("--compact", action="store_true",
                         help="fold the mutable index into one clean segment "
                              "(drops tombstoned entries, restores the fused "
                              "lookup path)")
    _add_checkpoint_args(p_index)
    _add_config_args(p_index)
    _add_store_arg(p_index)

    p_stats = sub.add_parser(
        "store-stats",
        help="inspect a saved index: generation, segments, memtable, tombstones",
    )
    p_stats.add_argument("--index", required=True,
                         help="index bundle (.npz) or mutable index directory")
    p_stats.add_argument("--json", action="store_true",
                         help="emit the stats block as JSON instead of text")

    p_map = sub.add_parser("map", help="map long reads to contigs")
    p_map.add_argument("-q", "--queries", help="long reads FASTA/FASTQ")
    p_map.add_argument("-s", "--subjects", help="contigs FASTA")
    p_map.add_argument("--index", help="saved JEM index (alternative to -s)")
    p_map.add_argument("-o", "--output", default="-", help="output TSV ('-' = stdout)")
    p_map.add_argument("--mapper", choices=MAPPER_KINDS, default="jem")
    p_map.add_argument("-p", "--processes", type=int, default=1,
                       help="simulated ranks for the parallel driver (jem only)")
    p_map.add_argument("--backend", choices=("simulated", "process"), default="simulated",
                       help="parallel backend for -p > 1: instrumented SPMD "
                            "simulation or real worker processes")
    p_map.add_argument("--paf", action="store_true",
                       help="write PAF with coordinates instead of the TSV "
                            "(requires -s, not --index)")
    p_map.add_argument("--strict", action=argparse.BooleanOptionalAction, default=True,
                       help="abort on unrecoverable faults (--no-strict degrades "
                            "to a partial mapping and reports the lost reads)")
    p_map.add_argument("--timeout", type=float, default=60.0,
                       help="per-work-unit timeout in seconds for the process "
                            "backend (dead/hung worker detection; default 60)")
    p_map.add_argument("--transport", choices=("shm", "pickle"), default="shm",
                       help="process-backend transport for read-only blocks: "
                            "publish once in shared memory (default) or pickle "
                            "a copy into every work unit")
    p_map.add_argument("--on-error", choices=("raise", "skip"), default="raise",
                       help="input parser policy: abort on malformed records "
                            "or skip them with a counted warning")
    p_map.add_argument("--inject-faults", type=int, default=None, metavar="SEED",
                       help="inject a seeded recoverable fault plan "
                            "(testing/demo; recovery shows up in the timing line)")
    _add_checkpoint_args(p_map)
    _add_config_args(p_map)
    _add_store_arg(p_map)

    p_serve = sub.add_parser(
        "serve",
        help="long-lived mapping service: NDJSON requests on stdin, "
             "responses on stdout (see docs/service.md)",
    )
    p_serve.add_argument("-s", "--subjects", help="contigs FASTA (indexed at startup)")
    p_serve.add_argument("--index", help="saved JEM index (alternative to -s)")
    p_serve.add_argument("--on-error", choices=("raise", "skip"), default="raise",
                         help="contig parser policy")
    p_serve.add_argument("--listen", default=None, metavar="HOST:PORT",
                         help="serve the NDJSON protocol over TCP instead of "
                              "stdin/stdout; port 0 picks a free port "
                              "(see docs/serving.md)")
    p_serve.add_argument("--replicas", type=int, default=1,
                         help="mapping service workers behind --listen "
                              "(default 1)")
    p_serve.add_argument("--placement", choices=("scatter", "replicate"),
                         default="scatter",
                         help="replica index ownership: scatter = key-range "
                              "shards + central vote, replicate = full copies "
                              "+ round-robin (default scatter)")
    p_serve.add_argument("--tenant-quota", type=int, default=None,
                         help="max in-flight maps per tenant tag across all "
                              "connections (default: unlimited)")
    p_serve.add_argument("--no-supervise", action="store_true",
                         help="disable the fleet supervisor behind --listen "
                              "(dead/wedged replicas are then never respawned)")
    p_serve.add_argument("--probe-interval-ms", type=float, default=500.0,
                         help="supervisor heartbeat interval behind --listen "
                              "(default 500; probe deadline is half of it)")
    p_serve.add_argument("--hedge-timeout-ms", type=float, default=2000.0,
                         help="scatter share deadline before the gather stage "
                              "hedges the answer inline from the root store "
                              "(0 disables hedging; default 2000)")
    p_serve.add_argument("--max-line-bytes", type=int, default=1 << 20,
                         help="longest accepted NDJSON request line behind "
                              "--listen; oversized lines get a typed error "
                              "(default 1MiB)")
    p_serve.add_argument("--idle-timeout", type=float, default=300.0,
                         metavar="SECONDS",
                         help="per-connection read deadline behind --listen "
                              "(slow-loris guard; 0 disables, default 300)")
    _add_config_args(p_serve)
    _add_store_arg(p_serve)
    _add_service_args(p_serve)

    p_client = sub.add_parser(
        "client",
        help="stream a FASTA/FASTQ file through a `jem serve` process and "
             "write the same TSV as `map`",
    )
    p_client.add_argument("-q", "--queries", required=True, help="long reads FASTA/FASTQ")
    p_client.add_argument("-s", "--subjects", help="contigs FASTA")
    p_client.add_argument("--index", help="saved JEM index (alternative to -s)")
    p_client.add_argument("-o", "--output", default="-", help="output TSV ('-' = stdout)")
    p_client.add_argument("--on-error", choices=("raise", "skip"), default="raise",
                          help="input parser policy")
    p_client.add_argument("--server-cmd", default=None,
                          help="shell command for the server (default: spawn "
                               "`%(prog)s serve` with the matching flags)")
    p_client.add_argument("--connect", default=None, metavar="HOST:PORT",
                          help="connect to a running `jem serve --listen` "
                               "server instead of spawning a pipe-mode one")
    _add_config_args(p_client)
    _add_store_arg(p_client)
    _add_service_args(p_client)

    p_chaos = sub.add_parser(
        "chaos",
        help="seeded kill-resume chaos cycles against index/map with "
             "output-parity verification (see docs/robustness.md)",
    )
    p_chaos.add_argument("target", choices=("index", "map", "serve"),
                         help="which surface to torture: a checkpointed "
                              "index/map run, or the supervised replica "
                              "fleet behind the network service")
    p_chaos.add_argument("-s", "--subjects", required=True, help="contigs FASTA")
    p_chaos.add_argument("-q", "--queries",
                         help="long reads FASTA/FASTQ (map and serve targets)")
    p_chaos.add_argument("--replicas", type=int, default=3,
                         help="scatter fleet size for the serve target "
                              "(default 3)")
    p_chaos.add_argument("--max-events", type=int, default=2,
                         help="most kills/wedges per serve plan (default 2)")
    p_chaos.add_argument("--seeds", default="1,2,3,4,5",
                         help="comma list of chaos plan seeds (default 1,2,3,4,5)")
    p_chaos.add_argument("--shards", type=int, default=4,
                         help="index shards for the index target (default 4)")
    p_chaos.add_argument("-p", "--processes", type=int, default=2,
                         help="simulated ranks for the map target (default 2)")
    p_chaos.add_argument("--max-damage", type=int, default=2,
                         help="most post-kill damage actions per plan (default 2)")
    p_chaos.add_argument("--workdir", default=None,
                         help="where per-seed run directories land "
                              "(default: a fresh temp dir)")
    p_chaos.add_argument("--keep", action="store_true",
                         help="keep the run directories for inspection")
    _add_config_args(p_chaos)
    _add_store_arg(p_chaos)

    p_scaf = sub.add_parser("scaffold", help="hybrid scaffolding from reads + contigs")
    p_scaf.add_argument("-q", "--queries", required=True, help="long reads FASTA/FASTQ")
    p_scaf.add_argument("-s", "--subjects", required=True, help="contigs FASTA")
    p_scaf.add_argument("-o", "--output", required=True, help="scaffolds FASTA")
    p_scaf.add_argument("--min-support", type=int, default=2,
                        help="reads required to accept a contig link")
    _add_config_args(p_scaf)

    p_eval = sub.add_parser("eval", help="quality evaluation on a generated dataset")
    p_eval.add_argument("dataset", choices=dataset_names())
    p_eval.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    p_eval.add_argument("--data-seed", type=int, default=0)
    p_eval.add_argument("--cache-dir", default=".dataset_cache")
    p_eval.add_argument(
        "--mappers", default="jem,mashmap",
        help=f"comma list from: {','.join(MAPPER_KINDS)}",
    )
    _add_config_args(p_eval)

    p_bench = sub.add_parser("bench", help="regenerate a paper table/figure")
    p_bench.add_argument("experiment", choices=list(EXPERIMENTS) + ["all"])
    p_bench.add_argument("--scale", type=float, default=None)
    p_bench.add_argument("--seed", type=int, default=1)
    p_bench.add_argument("--datasets", default=None, help="comma list to restrict inputs")
    p_bench.add_argument("--cache-dir", default=".dataset_cache")
    p_bench.add_argument("--results-dir", default="results")
    p_bench.add_argument("--bench-json-dir", default=".",
                         help="where BENCH_<name>.json trajectory files land "
                              "(default: current directory, i.e. the repo root)")

    sub.add_parser("datasets", help="list the dataset registry")
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    dataset = load_or_generate(args.dataset, scale=args.scale, seed=args.seed)
    os.makedirs(args.out, exist_ok=True)
    genome_path = os.path.join(args.out, f"{args.dataset}_genome.fasta")
    contig_path = os.path.join(args.out, f"{args.dataset}_contigs.fasta")
    reads_path = os.path.join(args.out, f"{args.dataset}_reads.fastq")
    write_fasta(
        genome_path,
        SequenceSet(
            dataset.genome,
            np.array([0, dataset.genome.size], dtype=np.int64),
            [f"{args.dataset}_reference"],
        ),
    )
    write_fasta(contig_path, dataset.contigs)
    write_fastq(reads_path, dataset.reads)
    print(f"genome : {genome_path} ({dataset.genome.size:,} bp)")
    print(f"contigs: {contig_path} ({set_stats(dataset.contigs).format_row()})")
    print(f"reads  : {reads_path} ({set_stats(dataset.reads).format_row()})")
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    from .core.persist import save_index

    args = _apply_resume(args, "index")
    if (args.mutable or args.from_index or args.append or args.remove
            or args.flush or args.compact):
        return _cmd_index_mutable(args)
    if args.subjects is None or args.output is None:
        print("error: index requires -s/--subjects and -o/--output", file=sys.stderr)
        return 2
    config = _config_from(args)
    subjects = read_fasta(args.subjects)
    t0 = time.perf_counter()
    if args.checkpoint_dir:
        from .resilience import build_index_checkpointed, save_invocation

        save_invocation(args.checkpoint_dir, _invocation_payload(args, "index"))
        mapper = build_index_checkpointed(
            subjects, config, store_kind=args.store, shards=args.shards,
            run_dir=args.checkpoint_dir, subjects_path=args.subjects,
        )
    elif args.shards > 1:
        from .parallel.partition import partition_set

        mapper = JEMMapper(config, store_kind=args.store)
        mapper.index_partitioned(partition_set(subjects, args.shards))
    else:
        mapper = JEMMapper(config, store_kind=args.store)
        mapper.index(subjects)
    table = mapper.table
    path = save_index(mapper, args.output)
    print(f"indexed {len(subjects)} contigs in {time.perf_counter() - t0:.2f}s: "
          f"{table.total_entries:,} sketch entries ({table.nbytes / 1e6:.1f} MB) -> {path}")
    return 0


def _format_store_stats(stats: dict) -> str:
    nbytes = stats["nbytes"]
    lines = [
        f"generation      : {stats['generation']}",
        f"segments        : {stats['segments']} "
        f"(entries: {', '.join(str(n) for n in stats['segment_entries']) or '-'})",
        f"memtable entries: {stats['memtable_entries']}",
        f"tombstones      : {stats['tombstones']}",
        f"contigs         : {stats['live_subjects']} live / "
        f"{stats['n_subjects']} allocated",
        f"total entries   : {stats['total_entries']:,}",
        f"bytes           : {nbytes['total']:,} "
        f"(segments {nbytes['segments']:,} + memtable {nbytes['memtable']:,})",
    ]
    return "\n".join(lines)


def _cmd_index_mutable(args: argparse.Namespace) -> int:
    """``jem index`` with any mutable-index flag: operate on a v4 directory."""
    from .core.lsm import MANIFEST_NAME, MutableSketchStore, store_stats

    if args.output is None:
        print("error: mutable index operations require -o/--output DIR",
              file=sys.stderr)
        return 2
    run_dir = args.output
    t0 = time.perf_counter()
    actions: list[str] = []
    if os.path.exists(os.path.join(run_dir, MANIFEST_NAME)):
        handle = MutableSketchStore.open(run_dir)
    elif args.from_index:
        handle = MutableSketchStore.from_bundle(args.from_index, run_dir=run_dir)
        actions.append(f"migrated {args.from_index} -> v4 directory")
    elif args.subjects:
        config = _config_from(args)
        subjects = read_fasta(args.subjects)
        mapper = JEMMapper(config, store_kind=args.store)
        mapper.index(subjects)
        handle = MutableSketchStore.create(
            run_dir, config, base_store=mapper.table,
            subject_names=subjects.names,
        )
        actions.append(f"indexed {len(subjects)} contig(s)")
    else:
        print(f"error: no mutable index at {run_dir!r}; seed it with "
              "-s contigs.fasta or --from-index bundle.npz", file=sys.stderr)
        return 2
    with handle:
        if args.append:
            extra = read_fasta(args.append)
            handle.add_contigs(extra)
            actions.append(f"appended {len(extra)} contig(s)")
        if args.remove:
            names = [n.strip() for n in args.remove.split(",") if n.strip()]
            handle.remove_contigs(names)
            actions.append(f"removed {len(names)} contig(s)")
        if args.flush:
            handle.flush()
            actions.append("flushed memtable")
        if args.compact:
            handle.compact()
            actions.append("compacted")
        stats = store_stats(handle)
    did = "; ".join(actions) if actions else "no changes"
    print(f"{run_dir}: {did} in {time.perf_counter() - t0:.2f}s "
          f"(generation {stats['generation']}, {stats['segments']} segment(s), "
          f"{stats['memtable_entries']} memtable entries, "
          f"{stats['tombstones']} tombstone(s), "
          f"{stats['total_entries']:,} total entries)")
    return 0


def _cmd_store_stats(args: argparse.Namespace) -> int:
    import json

    from .core.lsm import MutableSketchStore, store_stats
    from .core.persist import load_index

    if os.path.isdir(args.index):
        with MutableSketchStore.open(args.index) as handle:
            stats = store_stats(handle)
    else:
        mapper = load_index(args.index)
        stats = store_stats(mapper.table)
    if args.json:
        print(json.dumps(stats, indent=2))
    else:
        print(f"index           : {args.index}")
        print(_format_store_stats(stats))
    return 0


def _report_partial(partial) -> None:
    """Warn (stderr) when a run degraded to a partial mapping."""
    if partial is not None:
        print(f"warning: partial result — {partial.describe()}", file=sys.stderr)
        for name in partial.failed_reads:
            print(f"warning: unmapped read {name}", file=sys.stderr)


def _cmd_map(args: argparse.Namespace) -> int:
    args = _apply_resume(args, "map")
    if args.queries is None:
        print("error: map requires -q/--queries", file=sys.stderr)
        return 2
    if not _require_one_source(args):
        return 2
    if args.checkpoint_dir:
        from .resilience import save_invocation

        save_invocation(args.checkpoint_dir, _invocation_payload(args, "map"))
    engine = _engine_from(args)
    config = engine.pipeline.jem
    queries = read_sequences(args.queries, on_error=args.on_error)
    run = engine.map_queries(queries)
    result = run.mapping
    subject_names = run.subject_names
    timing = run.timing_line()
    _report_partial(run.partial)
    if args.paf:
        if args.index is not None:
            print("error: --paf needs contig sequences; use -s", file=sys.stderr)
            return 2
        from .core.paf import write_paf
        from .core.segments import extract_end_segments

        segments, _ = extract_end_segments(queries, config.ell)
        n = write_paf(args.output, result, segments, engine.subjects,
                      trials=config.trials, k=config.k)
        print(f"wrote {n} PAF records", file=sys.stderr)
        return 0
    out = sys.stdout if args.output == "-" else open(args.output, "w", encoding="utf-8")
    try:
        out.write(f"# jem-mapper {__version__} {timing}\n")
        out.write("segment\tcontig\thits\n")
        for i in range(len(result)):
            sid = int(result.subject[i])
            label = subject_names[sid] if sid >= 0 else "*"
            out.write(f"{result.segment_names[i]}\t{label}\t{int(result.hit_count[i])}\n")
    finally:
        if out is not sys.stdout:
            out.close()
    mapped = result.n_mapped
    print(f"mapped {mapped}/{len(result)} segments ({100 * mapped / max(len(result), 1):.1f}%)",
          file=sys.stderr)
    return 0


def _require_one_source(args: argparse.Namespace) -> bool:
    if (args.subjects is None) == (args.index is None):
        print("error: provide exactly one of -s/--subjects or --index", file=sys.stderr)
        return False
    return True


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from .service import serve_loop

    if not _require_one_source(args):
        return 2
    t0 = time.perf_counter()
    engine = _engine_from(args)
    if args.listen is not None:
        return _serve_listen(args, engine, t0)
    service = engine.service(_service_config_from(args))
    mapper = engine.mapper
    print(
        f"# serving {len(mapper.subject_names)} contigs "
        f"({mapper.table.total_entries:,} sketch entries, "
        f"ready in {time.perf_counter() - t0:.2f}s); NDJSON on stdin",
        file=sys.stderr,
    )
    stats = serve_loop(service, sys.stdin, sys.stdout)
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(service.metrics.snapshot(), fh, indent=2)
    print(
        f"# drained: {stats.mapped} mapped, {stats.errors} errors, "
        f"{stats.rejected} rejected",
        file=sys.stderr,
    )
    return 0


def _serve_listen(args: argparse.Namespace, engine: MappingEngine, t0: float) -> int:
    """``jem serve --listen``: asyncio TCP front-end over a replica set."""
    import asyncio
    import contextlib
    import json
    import signal

    from .netserve import (
        FleetSupervisor,
        NetFrontend,
        ReplicaSet,
        SupervisorConfig,
        make_placement,
        parse_hostport,
    )

    host, port = parse_hostport(args.listen)
    placement = make_placement(args.placement, args.replicas)
    replica_set = ReplicaSet.from_engine(
        engine, placement, _service_config_from(args),
        hedge_timeout_s=(
            args.hedge_timeout_ms / 1000.0 if args.hedge_timeout_ms > 0 else None
        ),
    )
    frontend = NetFrontend(
        replica_set, host=host, port=port, tenant_quota=args.tenant_quota,
        max_line_bytes=args.max_line_bytes,
        idle_timeout_s=args.idle_timeout if args.idle_timeout > 0 else None,
    )
    supervisor = None
    if not args.no_supervise:
        interval_s = max(args.probe_interval_ms, 1.0) / 1000.0
        supervisor = FleetSupervisor(
            replica_set,
            SupervisorConfig(
                probe_interval_s=interval_s,
                probe_deadline_s=interval_s / 2.0,
            ),
        )

    async def main() -> None:
        bound_host, bound_port = await frontend.start()
        # machine-parseable banner: CI and tests discover port 0 from it
        print(
            f"# jem-netserve listening on {bound_host}:{bound_port} "
            f"({placement.kind} x{placement.n_replicas}, "
            f"{len(replica_set.subject_names)} contigs, "
            f"ready in {time.perf_counter() - t0:.2f}s)",
            file=sys.stderr,
            flush=True,
        )
        if supervisor is not None:
            supervisor.start()
        stop_requested = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(sig, stop_requested.set)

        def request_rolling_restart() -> None:
            # SIGHUP: drain → respawn → parity-probe → re-admit one member
            # at a time off the event loop; the fleet never drops below N-1
            def run() -> None:
                try:
                    out = replica_set.rolling_restart()
                    print(
                        f"# jem-netserve rolling restart done: "
                        f"replicas {out['restarted']}, "
                        f"generation {out['generation']}",
                        file=sys.stderr, flush=True,
                    )
                except Exception as exc:  # noqa: BLE001 - report, keep serving
                    print(
                        f"# jem-netserve rolling restart failed: {exc}",
                        file=sys.stderr, flush=True,
                    )
            loop.run_in_executor(None, run)

        if hasattr(signal, "SIGHUP"):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(signal.SIGHUP, request_rolling_restart)
        await stop_requested.wait()
        await frontend.stop()

    try:
        asyncio.run(main())
    finally:
        replica_set.drain()
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(replica_set.metrics_snapshot(), fh, indent=2)
    print("# jem-netserve stopped", file=sys.stderr)
    return 0


def _client_report(args: argparse.Namespace, queries, stats, elapsed: float) -> int:
    """Write the client TSV + summary for any transport (pipe or socket)."""
    import json

    out = sys.stdout if args.output == "-" else open(args.output, "w", encoding="utf-8")
    mapped_segments = 0
    total_segments = 0
    try:
        out.write(f"# jem-mapper {__version__} # serve client: {elapsed:.3f}s wall\n")
        out.write("segment\tcontig\thits\n")
        for response in stats.responses:
            if "error" in response:
                print(f"warning: read {response.get('name', response.get('id'))!r} "
                      f"failed: {response['error']}", file=sys.stderr)
                continue
            for row in response["results"]:
                total_segments += 1
                contig = row["contig"] if row["contig"] is not None else "*"
                if row["contig"] is not None:
                    mapped_segments += 1
                out.write(f"{row['segment']}\t{contig}\t{row['hits']}\n")
    finally:
        if out is not sys.stdout:
            out.close()
    if args.metrics_out and stats.drained_reply is not None:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(stats.drained_reply["metrics"], fh, indent=2)
    drained = stats.drained_reply is not None
    print(
        f"mapped {mapped_segments}/{total_segments} segments from "
        f"{len(queries)} reads in {elapsed:.2f}s "
        f"({len(queries) / elapsed:,.0f} reads/s); "
        f"{stats.retries} backpressure retries; "
        f"drain {'clean' if drained else 'MISSING'}",
        file=sys.stderr,
    )
    if not drained or stats.errors:
        return 1
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    import shlex
    import subprocess

    from .service import stream_reads

    if (
        args.server_cmd is None
        and args.connect is None
        and not _require_one_source(args)
    ):
        return 2
    queries = read_sequences(args.queries, on_error=args.on_error)
    if args.connect is not None:
        from .netserve import parse_hostport
        from .service import SocketTransport, run_session

        host, port = parse_hostport(args.connect)
        t0 = time.perf_counter()
        stats = run_session(queries, SocketTransport.connect(host, port))
        return _client_report(args, queries, stats, time.perf_counter() - t0)
    if args.server_cmd is not None:
        command = shlex.split(args.server_cmd)
    else:
        command = [sys.executable, "-m", "repro.cli", "serve"]
        command += ["--index", args.index] if args.index else ["-s", args.subjects]
        command += [
            "--k", str(args.k), "--w", str(args.w), "--ell", str(args.ell),
            "--trials", str(args.trials), "--seed", str(args.seed),
            "--store", args.store,
            "--max-batch", str(args.max_batch),
            "--max-wait-ms", str(args.max_wait_ms),
            "--queue-capacity", str(args.queue_capacity),
            "--cache-capacity", str(args.cache_capacity),
            "--processes", str(args.processes),
            "--strict" if args.strict else "--no-strict",
        ]
        if args.inject_faults is not None:
            command += ["--inject-faults", str(args.inject_faults)]
    t0 = time.perf_counter()
    proc = subprocess.Popen(
        command, stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True
    )
    try:
        stats = stream_reads(queries, proc)
    finally:
        if proc.poll() is None:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
    return _client_report(args, queries, stats, time.perf_counter() - t0)


def _chaos_fingerprint(target: str, path: str):
    """What parity means per target: TSV body for map, content checksum
    for index (the npz container bytes legitimately differ run to run)."""
    from .resilience.chaos import read_tsv_body

    if target == "map":
        return read_tsv_body(path)
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    with np.load(path, allow_pickle=False) as data:
        return int(data["checksum"])


def _cmd_chaos(args: argparse.Namespace) -> int:
    import shutil
    import tempfile

    from .errors import ChaosError
    from .resilience import ChaosPlan, run_kill_resume_cycle

    if args.target in ("map", "serve") and args.queries is None:
        print(f"error: chaos {args.target} requires -q/--queries",
              file=sys.stderr)
        return 2
    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    if not seeds:
        print("error: --seeds is empty", file=sys.stderr)
        return 2
    if args.target == "serve":
        return _chaos_serve(args, seeds)
    workdir = args.workdir or tempfile.mkdtemp(prefix="jem-chaos-")
    os.makedirs(workdir, exist_ok=True)
    config_argv = [
        "--k", str(args.k), "--w", str(args.w), "--ell", str(args.ell),
        "--trials", str(args.trials), "--seed", str(args.seed),
        "--store", args.store,
    ]

    def victim_argv(out: str, run_dir: str | None = None) -> list[str]:
        if args.target == "index":
            argv = ["index", "-s", args.subjects, "-o", out,
                    "--shards", str(args.shards)]
        else:
            argv = ["map", "-q", args.queries, "-s", args.subjects, "-o", out,
                    "-p", str(args.processes)]
        argv += config_argv
        if run_dir is not None:
            argv += ["--checkpoint-dir", run_dir]
        return argv

    # one checkpoint record lands per completed unit: S2 shards for index,
    # S2 + S4 blocks for map
    if args.target == "index":
        total_units = max(args.shards, 1)
    else:
        total_units = 2 * max(args.processes, 1)

    ext = ".npz" if args.target == "index" else ".tsv"
    ref_out = os.path.join(workdir, "reference" + ext)
    if main(victim_argv(ref_out)) != 0:  # uninterrupted parity reference
        print("error: reference run failed", file=sys.stderr)
        return 1
    reference = _chaos_fingerprint(args.target, ref_out)

    failures = 0
    for seed in seeds:
        run_dir = os.path.join(workdir, f"seed{seed}")
        os.makedirs(run_dir, exist_ok=True)
        out = os.path.join(run_dir, "output" + ext)
        plan = ChaosPlan.seeded(
            seed, total_units=total_units, max_damage=args.max_damage
        )
        try:
            cycle = run_kill_resume_cycle(
                victim_argv(out, run_dir), run_dir=run_dir, plan=plan,
                resume_argv=[args.target, "--resume", run_dir],
            )
        except ChaosError as exc:
            failures += 1
            print(f"seed {seed}: ERROR {exc}", file=sys.stderr)
            continue
        if not cycle.resumed_ok:
            failures += 1
            print(f"seed {seed}: FAIL resume rc={cycle.resume_returncode}\n"
                  f"{cycle.resume_stderr[-1000:]}", file=sys.stderr)
            continue
        story = (
            f"killed after record {plan.kill.after_records}"
            + (" (torn frame)" if plan.kill.kind == "torn_kill" else "")
            + f", {cycle.records_surviving} unit(s) survived"
            if cycle.killed
            else "finished before the kill point"
        )
        if cycle.damage_applied:
            story += "; " + "; ".join(cycle.damage_applied)
        parity = _chaos_fingerprint(args.target, out) == reference
        if not parity:
            failures += 1
        print(f"seed {seed}: {'ok' if parity else 'PARITY FAIL'} [{story}]")
    if not args.keep and args.workdir is None:
        shutil.rmtree(workdir, ignore_errors=True)
    what = "index content checksum" if args.target == "index" else "mapping TSV body"
    print(f"{len(seeds) - failures}/{len(seeds)} chaos cycles reproduced the "
          f"uninterrupted {what}" + ("" if args.keep or args.workdir else
                                     " (run dirs removed; --keep to inspect)"))
    return 1 if failures else 0


def _chaos_serve(args: argparse.Namespace, seeds: list[int]) -> int:
    """``jem chaos serve``: seeded fleet torture with a parity gate.

    Per seed: draw a :class:`ServeChaosPlan`, kill/wedge replicas of a
    supervised scatter fleet while the reads stream through it, and pass
    only on byte-identical output, zero dropped accepted requests, a
    fully recovered fleet, restored scatter throughput, and no leaked
    shm segments.
    """
    from .errors import ChaosError
    from .resilience import ServeChaosPlan, run_serve_chaos

    config = _config_from(args)
    contigs = read_fasta(args.subjects, on_error="raise")
    reads = read_sequences(args.queries, on_error="raise")
    failures = 0
    for seed in seeds:
        plan = ServeChaosPlan.seeded(
            seed, n_replicas=args.replicas, total_reads=len(reads),
            max_events=args.max_events,
        )
        try:
            report = run_serve_chaos(
                contigs, reads, config, plan=plan, n_replicas=args.replicas,
            )
        except ChaosError as exc:
            failures += 1
            print(f"seed {seed}: ERROR {exc}", file=sys.stderr)
            continue
        if not report.ok:
            failures += 1
        print(f"seed {seed}: {report.story()}")
    print(
        f"{len(seeds) - failures}/{len(seeds)} serve-chaos cycles kept "
        f"{len(reads)} streamed reads byte-identical through kill/wedge "
        f"storms ({args.replicas} scatter replicas, supervised)"
    )
    return 1 if failures else 0


def _cmd_scaffold(args: argparse.Namespace) -> int:
    from .scaffold import Scaffolder

    config = _config_from(args)
    contigs = read_fasta(args.subjects)
    reads = read_sequences(args.queries)
    scaffolder = Scaffolder(config, min_support=args.min_support)
    t0 = time.perf_counter()
    result = scaffolder.scaffold(contigs, reads)
    write_fasta(args.output, result.sequences)
    print(
        f"{len(contigs)} contigs + {len(reads)} reads -> "
        f"{result.n_scaffolds} scaffolds ({result.n_links_used} links) "
        f"in {time.perf_counter() - t0:.1f}s; span "
        f"{result.span(contigs.lengths):,} bp -> {args.output}"
    )
    for i, path in enumerate(result.paths[:5]):
        chain = " - ".join(
            f"{contigs.names[c]}{'+' if o == 1 else '-'}"
            for c, o in zip(path.order, path.orientations)
        )
        print(f"  scaffold_{i:04d}: {chain}")
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    dataset = load_or_generate(
        args.dataset, scale=args.scale, seed=args.data_seed, cache_dir=args.cache_dir
    )
    config = _config_from(args)
    mappers = tuple(m.strip() for m in args.mappers.split(",") if m.strip())
    result = run_mappers(dataset, config, mappers=mappers)
    print(f"dataset {args.dataset}: genome={dataset.genome.size:,} bp, "
          f"{len(dataset.contigs)} contigs, {len(dataset.reads)} reads")
    for label, run in result.runs.items():
        print(run.quality.format_row(label)
              + f"  [index {run.index_seconds:.2f}s + map {run.map_seconds:.2f}s]")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    overrides: dict = {
        "seed": args.seed,
        "cache_dir": args.cache_dir,
        "results_dir": args.results_dir,
    }
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.datasets:
        overrides["datasets"] = tuple(args.datasets.split(","))
    ctx = BenchContext.from_env(**overrides)
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        t0 = time.perf_counter()
        output = EXPERIMENTS[name](ctx)
        output.elapsed_seconds = time.perf_counter() - t0
        json_path = output.save_bench_json(args.bench_json_dir)
        print(output.text)
        print(f"[{name}: {output.elapsed_seconds:.1f}s; saved to "
              f"{os.path.join(ctx.results_dir, name + '.txt')} + {json_path}]\n")
    return 0


def _cmd_datasets(_args: argparse.Namespace) -> int:
    from .eval.datasets import DATASETS

    print(f"{'name':<16} {'organism':<28} {'genome bp':>12} repeats")
    for name, spec in DATASETS.items():
        print(
            f"{name:<16} {spec.organism:<28} {spec.full_genome_length:>12,} "
            f"{spec.repeat_fraction:.0%} x {spec.repeat_length} bp "
            f"@ {spec.repeat_divergence:.1%} divergence"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "index": _cmd_index,
        "store-stats": _cmd_store_stats,
        "map": _cmd_map,
        "serve": _cmd_serve,
        "client": _cmd_client,
        "chaos": _cmd_chaos,
        "scaffold": _cmd_scaffold,
        "eval": _cmd_eval,
        "bench": _cmd_bench,
        "datasets": _cmd_datasets,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
