"""JEM-mapper core: configuration, segments, sketch stores, engine, mapper."""

from .config import JEMConfig
from .engine import (
    EngineRun,
    Mapper,
    MappingEngine,
    PipelineConfig,
    build_mapper,
    read_sequences,
    register_mapper,
)
from .hitcounter import (
    BestHits,
    count_hits_fused,
    count_hits_lazy,
    count_hits_vectorised,
)
from .lsm import IndexGeneration, MutableSketchStore, store_stats
from .mapper import JEMMapper, MappingResult, map_segment_batch
from .paf import paf_records, write_paf
from .persist import load_index, save_index
from .segments import PREFIX, SUFFIX, SegmentInfo, extract_end_segments
from .sketch_table import SketchTable, TrialHits
from .store import (
    DEFAULT_STORE_KIND,
    STORE_KINDS,
    ColumnarSketchStore,
    DictSketchStore,
    SketchStore,
    build_store,
)
from .streaming import map_file, map_reads_stream
from .tiling import TileInfo, extract_tiled_segments, map_reads_tiled
from .topx import TopHits, count_hits_topx

__all__ = [
    "JEMConfig",
    "JEMMapper",
    "map_segment_batch",
    "MappingResult",
    "MappingEngine",
    "PipelineConfig",
    "EngineRun",
    "Mapper",
    "build_mapper",
    "register_mapper",
    "read_sequences",
    "SketchStore",
    "ColumnarSketchStore",
    "DictSketchStore",
    "build_store",
    "STORE_KINDS",
    "DEFAULT_STORE_KIND",
    "BestHits",
    "count_hits_fused",
    "count_hits_lazy",
    "count_hits_vectorised",
    "TopHits",
    "count_hits_topx",
    "save_index",
    "load_index",
    "IndexGeneration",
    "MutableSketchStore",
    "store_stats",
    "paf_records",
    "write_paf",
    "map_file",
    "map_reads_stream",
    "TileInfo",
    "extract_tiled_segments",
    "map_reads_tiled",
    "PREFIX",
    "SUFFIX",
    "SegmentInfo",
    "extract_end_segments",
    "SketchTable",
    "TrialHits",
]
