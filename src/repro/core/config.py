"""Configuration for JEM-mapper.

Defaults are the paper's: k = 16, w = 100, ℓ = 1000, T = 30
(Section IV-A, "Software configuration").
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigError
from ..sketch.hashing import HashFamily

__all__ = ["JEMConfig"]


@dataclass(frozen=True)
class JEMConfig:
    """All tunables of the JEM-mapper pipeline.

    Attributes
    ----------
    k:
        k-mer size (paper: 16; must be <= 16 for packed minimizers).
    w:
        Minimizer window: one k-mer is selected out of ``w`` consecutive
        k-mers (paper: 100).
    ell:
        End-segment length ℓ, also the subject interval length (paper: 1000).
    trials:
        Number of MinHash trials T (paper: 30).
    seed:
        Seed for the hash-constant generator; fixing it makes every run of
        the mapper bit-reproducible.
    min_hits:
        Minimum number of trial collisions required to report a mapping
        (1 = report any best hit, the paper's behaviour).
    """

    k: int = 16
    w: int = 100
    ell: int = 1000
    trials: int = 30
    seed: int = 20230157  # IPDPSW 2023, paper page 157
    min_hits: int = 1

    def __post_init__(self) -> None:
        if not 1 <= self.k <= 16:
            raise ConfigError(f"k must be in [1, 16], got {self.k}")
        if self.w < 1:
            raise ConfigError(f"w must be >= 1, got {self.w}")
        if self.ell < self.k:
            raise ConfigError(f"ell ({self.ell}) must be >= k ({self.k})")
        if self.trials < 1:
            raise ConfigError(f"trials must be >= 1, got {self.trials}")
        if self.min_hits < 1:
            raise ConfigError(f"min_hits must be >= 1, got {self.min_hits}")

    def hash_family(self) -> HashFamily:
        """The T-function hash family determined by (trials, seed)."""
        return HashFamily.generate(self.trials, self.seed)

    def with_trials(self, trials: int) -> "JEMConfig":
        """Copy with a different T (used by the Fig. 6 sweep)."""
        return replace(self, trials=trials)
