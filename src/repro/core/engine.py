"""One engine, five frontends — the build-index / map-queries lifecycle.

Before this module, every frontend assembled the pipeline its own way: the
CLI's ``map`` had four hand-rolled dispatch branches plus
``_jem_mapper_from``, ``serve`` repeated the same wiring, the parallel
driver carried its own S1–S4 assembly, and the service had
``from_index``/``from_contigs`` classmethods — five places to touch for any
change to how an index is built or a store is chosen.

Now there is one typed :class:`PipelineConfig` (algorithm constants +
mapper choice + store kind + execution backend), a :class:`Mapper`
protocol with a registry (``jem``, ``minhash``, ``mashmap``,
``minimap-lite``), and a :class:`MappingEngine` that owns the lifecycle:

* :meth:`MappingEngine.use_subjects` / :meth:`MappingEngine.use_index`
  declare where the index comes from (sequences or a persisted bundle);
* :meth:`MappingEngine.map_queries` runs one batch through the configured
  execution mode (inline, instrumented SPMD simulation, or the
  worker-process backend) and returns an :class:`EngineRun` carrying the
  mapping plus the run's timing/fault telemetry;
* :meth:`MappingEngine.map_stream`, :meth:`MappingEngine.map_tiled` and
  :meth:`MappingEngine.service` expose the streaming, tiled and resident
  frontends over the same mapper instance.

The engine never changes *what* is computed — for any config, every
execution mode yields the sequential mapper's output bit for bit (the
cross-frontend parity suite pins this down, store kinds included).
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Protocol, runtime_checkable

import numpy as np

from ..errors import MappingError
from ..seq.io_fasta import read_fasta
from ..seq.records import SequenceSet
from .config import JEMConfig
from .mapper import JEMMapper, MappingResult
from .store import DEFAULT_STORE_KIND, STORE_KINDS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..parallel.costmodel import StepTimes
    from ..parallel.faults import FaultPlan, PartialResult, RecoveryReport
    from ..service.config import ServiceConfig
    from ..service.service import MappingService

__all__ = [
    "PipelineConfig",
    "Mapper",
    "MAPPER_KINDS",
    "register_mapper",
    "build_mapper",
    "MappingEngine",
    "EngineRun",
    "native_summary",
    "read_sequences",
]

#: Execution backends for ``processes > 1`` (jem only).
BACKENDS = ("simulated", "process")


@runtime_checkable
class Mapper(Protocol):
    """What every registered mapper provides.

    ``index(subjects)`` builds the resident index; ``map_reads(reads)``
    extracts end segments and maps them; ``map_segments`` maps
    pre-extracted segments.  ``subject_names`` labels the subject ids in
    the returned :class:`~repro.core.mapper.MappingResult`.
    """

    def index(self, subjects: SequenceSet) -> Any: ...

    def map_reads(self, reads: SequenceSet) -> MappingResult: ...

    def map_segments(
        self, segments: SequenceSet, infos: list | None = None
    ) -> MappingResult: ...

    @property
    def subject_names(self) -> list[str]: ...


@dataclass(frozen=True)
class PipelineConfig:
    """Everything needed to assemble a mapping pipeline, in one place.

    The CLI's argparse namespace, the service's startup wiring and direct
    API use all collapse into this object; :meth:`from_args` is the single
    argparse adapter that used to be duplicated per subcommand.
    """

    jem: JEMConfig = field(default_factory=JEMConfig)
    mapper: str = "jem"
    store: str = DEFAULT_STORE_KIND
    processes: int = 1
    backend: str = "simulated"
    transport: str = "shm"
    strict: bool = True
    timeout: float = 60.0
    on_error: str = "raise"
    inject_faults: int | None = None
    #: run directory for durable checkpoint/resume (jem only); None = off.
    #: Excluded from the manifest's config identity — the same logical run
    #: may live in different directories.
    checkpoint_dir: str | None = None

    def __post_init__(self) -> None:
        if self.store not in STORE_KINDS:
            raise MappingError(
                f"unknown store kind {self.store!r}; expected one of {STORE_KINDS}"
            )
        if self.backend not in BACKENDS:
            raise MappingError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.processes < 1:
            raise MappingError(f"processes must be >= 1, got {self.processes}")

    @classmethod
    def from_args(cls, args: Any) -> "PipelineConfig":
        """Adapter from an argparse namespace (map/serve/client flags)."""
        jem = JEMConfig(
            k=args.k, w=args.w, ell=args.ell, trials=args.trials, seed=args.seed
        )
        return cls(
            jem=jem,
            mapper=getattr(args, "mapper", "jem"),
            store=getattr(args, "store", None) or DEFAULT_STORE_KIND,
            processes=getattr(args, "processes", 1),
            backend=getattr(args, "backend", "simulated"),
            transport=getattr(args, "transport", "shm"),
            strict=getattr(args, "strict", True),
            timeout=getattr(args, "timeout", 60.0),
            on_error=getattr(args, "on_error", "raise"),
            inject_faults=getattr(args, "inject_faults", None),
            checkpoint_dir=getattr(args, "checkpoint_dir", None),
        )

    def fault_plan(self) -> "FaultPlan | None":
        """The seeded fault plan of ``inject_faults`` (None when unset)."""
        if self.inject_faults is None:
            return None
        from ..parallel.faults import FaultPlan

        return FaultPlan.seeded(self.inject_faults, max(self.processes, 1))


# -- mapper registry ---------------------------------------------------------


def _make_jem(pipeline: PipelineConfig) -> Mapper:
    return JEMMapper(pipeline.jem, store_kind=pipeline.store)


def _make_minhash(pipeline: PipelineConfig) -> Mapper:
    from ..baselines.classical_minhash import ClassicalMinHashMapper

    return ClassicalMinHashMapper(pipeline.jem, store_kind=pipeline.store)


def _make_mashmap(pipeline: PipelineConfig) -> Mapper:
    from ..baselines.mashmap import MashmapConfig, MashmapLikeMapper

    return MashmapLikeMapper(
        MashmapConfig(k=pipeline.jem.k, ell=pipeline.jem.ell)
    )


def _make_minimap_lite(pipeline: PipelineConfig) -> Mapper:
    from ..baselines.minimap_lite import MinimapLiteMapper

    return MinimapLiteMapper(ell=pipeline.jem.ell)


_REGISTRY: dict[str, Callable[[PipelineConfig], Mapper]] = {
    "jem": _make_jem,
    "minhash": _make_minhash,
    "mashmap": _make_mashmap,
    "minimap-lite": _make_minimap_lite,
}

#: Mapper names the registry resolves (CLI ``--mapper`` choices).
MAPPER_KINDS = tuple(_REGISTRY)


def register_mapper(name: str, factory: Callable[[PipelineConfig], Mapper]) -> None:
    """Register a custom mapper factory under ``name`` (overwrites)."""
    _REGISTRY[name] = factory


def build_mapper(pipeline: PipelineConfig) -> Mapper:
    """Instantiate the pipeline's mapper from the registry (unindexed)."""
    try:
        factory = _REGISTRY[pipeline.mapper]
    except KeyError:
        raise MappingError(
            f"unknown mapper {pipeline.mapper!r}; "
            f"registered: {tuple(_REGISTRY)}"
        ) from None
    return factory(pipeline)


# -- input loading -----------------------------------------------------------


def read_sequences(path: str, *, on_error: str = "raise") -> SequenceSet:
    """Load FASTA or FASTQ by extension, with the shared skip-warning.

    The one argparse-independent input loader every frontend shares (the
    CLI's ``map``/``client``/``scaffold`` all used private copies of this).
    """
    from ..seq.io_fasta import ParseReport

    report = ParseReport()
    if path.endswith((".fq", ".fastq", ".fq.gz", ".fastq.gz")):
        from ..seq.io_fastq import read_fastq

        seqs = read_fastq(path, on_error=on_error, report=report)
    else:
        seqs = read_fasta(path, on_error=on_error, report=report)
    if report.skipped:
        print(
            f"warning: skipped {report.skipped} malformed record(s) in {path}",
            file=sys.stderr,
        )
    return seqs


# -- the engine --------------------------------------------------------------


def native_summary() -> str:
    """One token describing the native-kernel state, for timing lines.

    ``native=fused,threads=N`` when the compiled fast path is loaded,
    ``native=off(<reason>)`` otherwise — the reason being the kill switch
    or the recorded compile failure, so a pasted timing line is enough to
    tell which backend produced a run and why.
    """
    from ..sketch import _native

    info = _native.availability()
    if info["available"]:
        return f"native=fused,threads={info['threads']}"
    reason = info["error"] or "unavailable"
    return f"native=off({reason.splitlines()[0][:60]})"


@dataclass
class EngineRun:
    """One :meth:`MappingEngine.map_queries` batch and its telemetry.

    ``mode`` names the execution path taken (``inline``, ``saved-index``,
    ``simulated``, ``process``); ``steps`` carries the simulation's
    modelled S1–S4 breakdown and ``report`` the process backend's recovery
    accounting (each ``None`` on the other paths).
    """

    mapping: MappingResult
    subject_names: list[str]
    mode: str
    elapsed: float
    mapper_name: str = "jem"
    processes: int = 1
    partial: "PartialResult | None" = None
    steps: "StepTimes | None" = None
    report: "RecoveryReport | None" = None

    def timing_line(self) -> str:
        """The ``#``-comment timing summary the CLI writes above the TSV.

        Ends with the native-kernel state (``native=fused,threads=N`` or
        ``native=off(<reason>)``) so a TSV header always records whether
        the fused C path or the numpy fallback produced the run.
        """
        if self.mode == "saved-index":
            line = f"# jem (saved index): {self.elapsed:.3f}s wall"
        elif self.mode == "simulated":
            assert self.steps is not None
            line = (
                f"# parallel p={self.processes}: modelled time "
                f"{self.steps.total_time:.3f}s, "
                f"comm {100 * self.steps.comm_fraction:.1f}%"
            )
            if self.steps.recovery_time > 0:
                line += f", recovery {self.steps.recovery_time:.3f}s"
        elif self.mode == "process":
            assert self.report is not None
            line = (
                f"# process backend p={self.processes} "
                f"({self.report.transport}): {self.elapsed:.3f}s wall"
            )
            if self.report.faults_encountered:
                line += (
                    f", recovery {self.report.recovery_seconds:.3f}s "
                    f"({self.report.redispatches} re-dispatches)"
                )
        else:
            line = f"# {self.mapper_name}: {self.elapsed:.3f}s wall"
        return f"{line} [{native_summary()}]"


class MappingEngine:
    """Owns a mapper's lifecycle: source -> index -> map, on any backend.

    One engine instance wraps one mapper and one resident index; every
    frontend (one-shot batch, stream, tiled, resident service) maps
    through the same object, so store kind and mapper choice are decided
    exactly once, in the :class:`PipelineConfig`.
    """

    def __init__(self, pipeline: PipelineConfig | None = None) -> None:
        self.pipeline = pipeline if pipeline is not None else PipelineConfig()
        self._mapper: Mapper | None = None
        self._subjects: SequenceSet | None = None
        self._from_saved_index = False
        self._index_path: str | None = None

    # -- source selection ---------------------------------------------------

    def use_subjects(self, subjects: SequenceSet) -> "MappingEngine":
        """Index will be built from these contig sequences (lazily)."""
        self._subjects = subjects
        self._mapper = None
        self._from_saved_index = False
        return self

    def load_subjects(self, path: str) -> "MappingEngine":
        """Read a contigs FASTA and use it as the subject source."""
        return self.use_subjects(
            read_sequences(path, on_error=self.pipeline.on_error)
        )

    def use_index(self, path: str) -> "MappingEngine":
        """Use a persisted index (jem only; config comes from disk).

        ``path`` may be a v2/v3 single-file bundle or a format-v4 mutable
        index *directory* (manifest + segments + WAL, see
        :mod:`repro.core.lsm`); directories replay their WAL suffix on
        load, so the mapper sees every durably applied mutation.
        """
        if self.pipeline.mapper != "jem":
            raise MappingError(
                f"saved indexes are jem-only; pipeline requests {self.pipeline.mapper!r}"
            )
        from .persist import load_index

        self._mapper = load_index(path, store=self.pipeline.store)
        self._subjects = None
        self._from_saved_index = True
        self._index_path = path
        return self

    @classmethod
    def from_index(
        cls, path: str, pipeline: PipelineConfig | None = None
    ) -> "MappingEngine":
        return cls(pipeline).use_index(path)

    # -- mapper access ------------------------------------------------------

    @property
    def mapper(self) -> Mapper:
        """The engine's mapper, built and indexed on first access."""
        if self._mapper is None:
            if self._subjects is None:
                raise MappingError(
                    "no index source: call use_subjects()/use_index() first"
                )
            mapper = build_mapper(self.pipeline)
            mapper.index(self._subjects)
            self._mapper = mapper
        return self._mapper

    @property
    def subject_names(self) -> list[str]:
        return self.mapper.subject_names

    @property
    def subjects(self) -> SequenceSet:
        if self._subjects is None:
            raise MappingError("engine has no subject sequences (saved index?)")
        return self._subjects

    # -- batch mapping ------------------------------------------------------

    def map_queries(self, reads: SequenceSet) -> EngineRun:
        """Map one read batch through the configured execution mode.

        Inline (``processes == 1``, any mapper, or a saved index), the
        instrumented SPMD simulation, or the worker-process backend — all
        produce bit-identical mappings; the mode only changes telemetry.
        """
        pipe = self.pipeline
        t0 = time.perf_counter()
        if pipe.checkpoint_dir is not None:
            if pipe.mapper != "jem":
                raise MappingError(
                    f"checkpointed runs are jem-only; pipeline requests "
                    f"{pipe.mapper!r}"
                )
            from ..resilience.runner import map_queries_checkpointed

            return map_queries_checkpointed(self, reads, t0=t0)
        if self._from_saved_index:
            mapping = self.mapper.map_reads(reads)
            return EngineRun(
                mapping=mapping,
                subject_names=self.mapper.subject_names,
                mode="saved-index",
                elapsed=time.perf_counter() - t0,
                mapper_name=pipe.mapper,
            )
        if pipe.mapper != "jem" or pipe.processes == 1:
            mapping = self.mapper.map_reads(reads)
            return EngineRun(
                mapping=mapping,
                subject_names=self.mapper.subject_names,
                mode="inline",
                elapsed=time.perf_counter() - t0,
                mapper_name=pipe.mapper,
            )
        if pipe.backend == "process":
            from ..parallel.faults import RecoveryReport
            from ..parallel.mp_backend import map_reads_multiprocess

            report = RecoveryReport()
            mapping = map_reads_multiprocess(
                self.subjects,
                reads,
                pipe.jem,
                processes=pipe.processes,
                faults=pipe.fault_plan(),
                strict=pipe.strict,
                timeout=pipe.timeout,
                report=report,
                transport=pipe.transport,
                store_kind=pipe.store,
            )
            return EngineRun(
                mapping=mapping,
                subject_names=list(self.subjects.names),
                mode="process",
                elapsed=time.perf_counter() - t0,
                mapper_name=pipe.mapper,
                processes=pipe.processes,
                partial=report.partial,
                report=report,
            )
        from ..parallel.driver import run_parallel_jem

        run = run_parallel_jem(
            self.subjects,
            reads,
            pipe.jem,
            p=pipe.processes,
            faults=pipe.fault_plan(),
            strict=pipe.strict,
            store_kind=pipe.store,
        )
        return EngineRun(
            mapping=run.mapping,
            subject_names=list(self.subjects.names),
            mode="simulated",
            elapsed=time.perf_counter() - t0,
            mapper_name=pipe.mapper,
            processes=pipe.processes,
            partial=run.partial,
            steps=run.steps,
        )

    # -- streaming / tiled frontends ----------------------------------------

    def map_stream(
        self,
        records: Iterable[tuple[str, "str | np.ndarray"]],
        *,
        batch_size: int = 512,
    ) -> Iterator[MappingResult]:
        """Constant-memory streaming over (name, sequence) records."""
        from .streaming import map_reads_stream

        return map_reads_stream(self.mapper, records, batch_size=batch_size)

    def map_tiled(
        self,
        reads: SequenceSet,
        *,
        stride: int | None = None,
        min_tile_hits: int = 2,
    ):
        """Whole-read tiled mapping (ℓ-tiles, not just end segments)."""
        from .tiling import map_reads_tiled

        return map_reads_tiled(
            self.mapper, reads, stride=stride, min_tile_hits=min_tile_hits
        )

    def service(
        self,
        service_config: "ServiceConfig | None" = None,
        **kwargs: Any,
    ) -> "MappingService":
        """A resident :class:`MappingService` over this engine's index.

        The pipeline's fault plan is injected unless the caller passes an
        explicit ``faults=`` keyword.
        """
        from ..service.service import MappingService

        if self.pipeline.mapper != "jem":
            raise MappingError(
                f"the mapping service is jem-only; pipeline requests "
                f"{self.pipeline.mapper!r}"
            )
        kwargs.setdefault("faults", self.pipeline.fault_plan())
        mapper = self.mapper
        if not isinstance(mapper, JEMMapper):  # pragma: no cover - registry misuse
            raise MappingError("service requires a JEMMapper instance")
        return MappingService(mapper, service_config, **kwargs)
