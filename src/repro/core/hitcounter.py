"""Best-hit selection from per-trial collisions (Algorithm 2, lines 5-8).

Three interchangeable implementations:

* :func:`count_hits_lazy` — the paper's lazy-update counter array A[1..n] of
  ⟨u, v⟩ tuples: queries are processed one at a time; the counter of a
  subject is reset implicitly when its stored query id differs from the
  current query (Section III-C, implementation notes).
* :func:`count_hits_vectorised` — a groupby over packed (query, subject)
  pairs; processes the entire query set at once.
* :func:`count_hits_fused` — the fused native path: hands the *pre-sketch*
  minimizer block to :meth:`ColumnarSketchStore.lookup_fused`, which runs
  sketch → per-trial binary search → lazy-update vote in one multi-threaded
  C pass.  Available only for columnar stores with the compiled kernels
  loaded; returns ``None`` otherwise so callers fall back.

All return identical results (unit tests enforce parity); ties on the
maximum hit count are broken toward the smallest subject id so output is
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import MappingError
from .sketch_table import TrialHits

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .store import SketchStore

__all__ = ["BestHits", "count_hits_fused", "count_hits_lazy", "count_hits_vectorised"]

#: Subject id reported for unmapped queries.
UNMAPPED = -1


@dataclass(frozen=True)
class BestHits:
    """Per-query best hit.

    Attributes
    ----------
    subject:
        Best-matching subject id per query, ``-1`` when unmapped.
    count:
        Number of trials in which the query collided with that subject
        (0 when unmapped).
    """

    subject: np.ndarray
    count: np.ndarray

    def __post_init__(self) -> None:
        if self.subject.shape != self.count.shape:
            raise MappingError("subject/count shape mismatch")

    def __len__(self) -> int:
        return int(self.subject.size)

    @property
    def mapped_mask(self) -> np.ndarray:
        return self.subject >= 0

    @property
    def n_mapped(self) -> int:
        return int(np.count_nonzero(self.mapped_mask))


def count_hits_lazy(
    table: "SketchStore",
    query_values: np.ndarray,
    *,
    min_hits: int = 1,
    query_mask: np.ndarray | None = None,
) -> BestHits:
    """The paper's lazy-update counter strategy (faithful reference).

    ``query_values`` is the (T, n_queries) sketch matrix.  An array
    ``A[1..n]`` of ⟨counter u, query id v⟩ is allocated once (O(n) init);
    for a hit of query j on subject i, if ``A[i].v == j`` the counter is
    incremented, otherwise it is re-seeded to (1, j) — avoiding an O(n)
    reset per query.
    """
    query_values = np.asarray(query_values, dtype=np.uint64)
    trials, n_queries = query_values.shape
    if trials != table.trials:
        raise MappingError(f"{trials} query trials vs table with {table.trials}")
    counter_u = np.zeros(table.n_subjects, dtype=np.int64)
    counter_v = np.full(table.n_subjects, -1, dtype=np.int64)
    best_subject = np.full(n_queries, UNMAPPED, dtype=np.int64)
    best_count = np.zeros(n_queries, dtype=np.int64)
    for j in range(n_queries):
        if query_mask is not None and not query_mask[j]:
            continue
        top_count = 0
        top_subject = UNMAPPED
        for t in range(trials):
            for i in table.lookup_scalar(t, int(query_values[t, j])):
                i = int(i)
                if counter_v[i] != j:
                    counter_v[i] = j
                    counter_u[i] = 0
                counter_u[i] += 1
                u = counter_u[i]
                if u > top_count or (u == top_count and i < top_subject):
                    top_count = u
                    top_subject = i
        if top_count >= min_hits:
            best_subject[j] = top_subject
            best_count[j] = top_count
    return BestHits(best_subject, best_count)


def count_hits_fused(
    table: "SketchStore",
    minimizer_values: np.ndarray,
    segment_starts: np.ndarray,
    family,
    *,
    min_hits: int = 1,
    n_queries: int | None = None,
    nonempty: np.ndarray | None = None,
    threads: int | None = None,
) -> BestHits | None:
    """Fused native best-hit selection, or ``None`` when unsupported.

    ``minimizer_values``/``segment_starts`` describe the query block
    *before sketching* (concatenated minimizer ranks of the non-empty
    segments + per-segment offsets); the store's fused kernel does the
    per-trial sketch itself.  ``nonempty`` maps the block's rows back to
    query indices in a batch of ``n_queries`` (segments outside it had no
    minimizers and are reported unmapped, exactly like a ``query_mask``).

    ``None`` is returned — and the caller must take the numpy path — when
    the store has no fused entry point (dict/packed stores, scatter-gather
    lanes) or the native library is unavailable (no compiler,
    ``REPRO_NO_NATIVE``).  When a result is returned it is bit-identical
    to :func:`count_hits_vectorised` over the same batch.
    """
    lookup_fused = getattr(table, "lookup_fused", None)
    if lookup_fused is None:
        return None
    fused = lookup_fused(
        minimizer_values, segment_starts, family,
        min_hits=min_hits, threads=threads,
    )
    if fused is None:
        return None
    subject, count = fused
    if nonempty is None and n_queries is None:
        return BestHits(subject, count)
    if n_queries is None:
        raise MappingError("count_hits_fused: nonempty requires n_queries")
    best_subject = np.full(n_queries, UNMAPPED, dtype=np.int64)
    best_count = np.zeros(n_queries, dtype=np.int64)
    rows = np.arange(subject.size) if nonempty is None else np.asarray(nonempty)
    best_subject[rows] = subject
    best_count[rows] = count
    return BestHits(best_subject, best_count)


def count_hits_vectorised(
    table: "SketchStore",
    query_values: np.ndarray,
    *,
    min_hits: int = 1,
    query_mask: np.ndarray | None = None,
) -> BestHits:
    """Vectorised best-hit selection over the whole query set.

    All per-trial collisions are concatenated, multiplicities per
    (query, subject) pair are counted with one ``np.unique`` over packed
    64-bit pairs, and the best subject per query is selected with a single
    lexicographic sort (count descending, subject ascending).

    ``query_mask`` marks queries that produced sketches; masked-out queries
    are reported unmapped without lookups.
    """
    query_values = np.asarray(query_values, dtype=np.uint64)
    trials, n_queries = query_values.shape
    if trials != table.trials:
        raise MappingError(f"{trials} query trials vs table with {table.trials}")
    if n_queries >> 32:
        raise MappingError("too many queries for packed pair counting")  # pragma: no cover

    chunks: list[np.ndarray] = []
    for t in range(trials):
        hits: TrialHits = table.lookup_trial(t, query_values[t])
        if len(hits):
            pair = (hits.query_index.astype(np.uint64) << np.uint64(32)) | hits.subjects.astype(
                np.uint64
            )
            chunks.append(pair)

    best_subject = np.full(n_queries, UNMAPPED, dtype=np.int64)
    best_count = np.zeros(n_queries, dtype=np.int64)
    if chunks:
        pairs = np.concatenate(chunks)
        uniq, counts = np.unique(pairs, return_counts=True)
        q = (uniq >> np.uint64(32)).astype(np.int64)
        s = (uniq & np.uint64(0xFFFFFFFF)).astype(np.int64)
        # Sort by (query asc, count desc, subject asc); first row per query
        # is then its deterministic best hit.
        order = np.lexsort((s, -counts, q))
        q, s, counts = q[order], s[order], counts[order]
        first = np.ones(q.size, dtype=bool)
        first[1:] = q[1:] != q[:-1]
        sel = first & (counts >= min_hits)
        best_subject[q[sel]] = s[sel]
        best_count[q[sel]] = counts[sel]
    if query_mask is not None:
        query_mask = np.asarray(query_mask, dtype=bool)
        best_subject[~query_mask] = UNMAPPED
        best_count[~query_mask] = 0
    return BestHits(best_subject, best_count)
