"""Log-structured mutability over the sketch store — online add/remove.

The paper builds the contig index once (S1–S3) and treats it as immutable
during mapping (S4).  Production assemblies are not static: contigs are
added, split and retired while mapping traffic continues (Minimap2's
on-the-fly indexing, ntLink's iterative re-scaffolding).  This module makes
the index *mutable* without giving up the immutable read path every
consumer relies on, using the classic LSM-tree decomposition:

:class:`IndexGeneration`
    One immutable snapshot of the whole index, satisfying the
    :class:`~repro.core.store.SketchStore` protocol.  It layers

    * a stack of immutable sorted :class:`ColumnarSketchStore` **segments**
      (sealed batches of contigs),
    * a small **memtable** — the contigs added since the last flush, held
      as a :class:`DictSketchStore` (the oracle store, reused as-is), and
    * contig-level **tombstones** — ids masked out of every lookup, so a
      remove is O(1) and never rewrites a segment.

    ``lookup_trial`` merges per-source hits back into the (query index,
    subject id) order the vote kernel requires; each contig's entries live
    in exactly one source (ids are never reused), so the merge is a
    concatenate + tombstone mask + stable lexsort — bit-identical to a
    from-scratch rebuild over the surviving contigs.  When the generation
    is *clean* (exactly one segment, empty memtable, no tombstones — the
    state compaction produces) ``lookup_fused`` delegates straight to the
    segment's fused native kernel, so a compacted mutable index maps at
    full S4 speed.

:class:`MutableSketchStore`
    The mutable handle: applies ``add_contigs`` / ``remove_contigs`` /
    ``flush`` / ``compact`` and publishes a fresh :class:`IndexGeneration`
    per mutation (copy-on-write — readers holding the previous generation
    are never disturbed).  With a directory attached the handle is
    *durable*: every mutation is logged to a CRC-framed
    :class:`~repro.resilience.checkpoint.CheckpointLog` WAL before it is
    applied, segment files are committed atomically, and ``manifest.json``
    (index format **v4**) snapshots the applied state so replay only
    re-runs the WAL suffix.  A crash — including SIGKILL mid-compaction —
    loses at most the un-fsynced tail of the WAL; replay is torn-tail-safe
    and converges to exactly the state the completed mutations describe.

    Format v3 bundles load as a single-segment generation-0 index
    (:meth:`MutableSketchStore.from_bundle`), so existing saved indexes
    migrate without a rebuild.

Durability protocol (why replay is crash-safe at every step):

* ``add``/``remove`` append one WAL record (fsync'd) *before* mutating
  memory.  Add records carry the raw sequences; replay re-sketches them
  deterministically (the sketch kernels are pure functions of config).
* ``flush``/``compact`` write the new segment file atomically *first*,
  then append the WAL record naming it (with its CRC32), then rewrite the
  manifest with ``applied_seq`` = that record's seq, then reset the WAL
  (and, for compact, delete the superseded segment files).  A crash
  between any two steps replays to the same state: the record is ignored
  if its file is missing or bad (the memtable/segments it would fold are
  still live), and records with ``seq <= applied_seq`` are skipped because
  the manifest already incorporates them.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from typing import Iterable

import numpy as np

from ..errors import IndexCorruptError, MappingError, SketchError
from ..seq.records import SequenceSet
from ..sketch.jem import subject_sketch_pairs
from .config import JEMConfig
from .sketch_table import SketchTable, TrialHits
from .store import ColumnarSketchStore, DictSketchStore, SketchStore

__all__ = [
    "IndexGeneration",
    "MutableSketchStore",
    "store_stats",
    "MUTABLE_FORMAT_VERSION",
    "MANIFEST_NAME",
    "WAL_NAME",
]

#: Index format v4: a directory with a manifest of segment files + a WAL.
MUTABLE_FORMAT_VERSION = 4

MANIFEST_NAME = "manifest.json"
WAL_NAME = "wal.log"
_SEGMENTS_DIR = "segments"


class IndexGeneration:
    """One immutable, generation-stamped snapshot of the mutable index.

    Satisfies the :class:`~repro.core.store.SketchStore` protocol, so
    every existing consumer — the vote kernels, the service, persistence,
    shard planning — reads it like any other store.  All state is fixed at
    construction; mutations happen by building a *new* generation
    (:class:`MutableSketchStore` does this), never by touching this one.
    """

    __slots__ = (
        "segments",
        "memtable",
        "tombstones",
        "removed",
        "n_subjects",
        "subject_names",
        "generation",
        "_tomb_arr",
        "_table",
    )

    def __init__(
        self,
        segments: tuple[ColumnarSketchStore, ...],
        memtable: DictSketchStore | None,
        tombstones: frozenset[int],
        n_subjects: int,
        subject_names: tuple[str, ...],
        generation: int,
        removed: frozenset[int] = frozenset(),
    ) -> None:
        self.segments = tuple(segments)
        self.memtable = memtable
        self.tombstones = frozenset(tombstones)
        self.removed = frozenset(removed) | self.tombstones
        self.n_subjects = int(n_subjects)
        self.subject_names = tuple(subject_names)
        self.generation = int(generation)
        self._tomb_arr = (
            np.fromiter(sorted(self.tombstones), dtype=np.int64, count=len(self.tombstones))
            if self.tombstones
            else None
        )
        self._table: SketchTable | None = None

    # -- structure -----------------------------------------------------------

    @property
    def is_clean(self) -> bool:
        """True for the compacted shape: one segment, no memtable, no tombstones.

        Clean generations take the fused native read path unchanged; dirty
        ones merge per-source hits on the numpy path until compaction.
        """
        return (
            len(self.segments) == 1
            and self.memtable is None
            and not self.tombstones
        )

    def _sources(self) -> list[SketchStore]:
        sources: list[SketchStore] = []
        if self.memtable is not None:
            sources.append(self.memtable)
        sources.extend(self.segments)
        return sources

    @property
    def memtable_entries(self) -> int:
        return self.memtable.total_entries if self.memtable is not None else 0

    @property
    def live_subjects(self) -> int:
        # ``removed`` is monotone across compactions; tombstones alone
        # would undercount once the entries are physically folded away.
        return self.n_subjects - len(self.removed)

    # -- SketchStore protocol ------------------------------------------------

    @property
    def trials(self) -> int:
        for src in self._sources():
            return src.trials
        return 0

    @property
    def total_entries(self) -> int:
        return int(sum(src.total_entries for src in self._sources()))

    @property
    def nbytes(self) -> int:
        return int(sum(src.nbytes for src in self._sources()))

    def lookup_trial(self, t: int, query_values: np.ndarray) -> TrialHits:
        """Merged lookup: concatenate per-source hits, mask tombstones, resort.

        Each subject's entries live in exactly one source (contigs are
        added atomically and ids are never reused), so the concatenation
        has no duplicates and the final ``lexsort`` restores the exact
        (query index, subject id) order a monolithic rebuilt store returns.
        """
        sources = self._sources()
        if not sources:
            empty = np.empty(0, dtype=np.int64)
            return TrialHits(empty, empty)
        if len(sources) == 1 and self._tomb_arr is None:
            return sources[0].lookup_trial(t, query_values)
        idx_chunks: list[np.ndarray] = []
        sub_chunks: list[np.ndarray] = []
        for src in sources:
            hits = src.lookup_trial(t, query_values)
            if len(hits):
                idx_chunks.append(hits.query_index)
                sub_chunks.append(hits.subjects)
        if not idx_chunks:
            empty = np.empty(0, dtype=np.int64)
            return TrialHits(empty, empty)
        query_index = np.concatenate(idx_chunks)
        subjects = np.concatenate(sub_chunks)
        if self._tomb_arr is not None:
            keep = np.isin(subjects, self._tomb_arr, invert=True)
            query_index = query_index[keep]
            subjects = subjects[keep]
        order = np.lexsort((subjects, query_index))
        return TrialHits(query_index[order], subjects[order])

    def lookup_scalar(self, t: int, value: int) -> np.ndarray:
        return self.lookup_trial(t, np.array([value], dtype=np.uint64)).subjects

    def lookup_fused(
        self,
        query_values: np.ndarray,
        query_starts: np.ndarray,
        family,
        *,
        min_hits: int = 1,
        threads: int | None = None,
    ):
        """Fused native S4 pass — only on the clean (compacted) shape.

        A dirty generation returns ``None`` so callers fall back to the
        numpy merge path; after :meth:`MutableSketchStore.compact` the
        single sealed segment answers through its cached ``flat_columns``
        exactly as an immutable index would.
        """
        if not self.is_clean:
            return None
        return self.segments[0].lookup_fused(
            query_values, query_starts, family, min_hits=min_hits, threads=threads
        )

    def values_of_trial(self, t: int) -> np.ndarray:
        values = np.unique(
            np.concatenate(
                [np.asarray(src.values_of_trial(t), dtype=np.uint64) for src in self._sources()]
            )
            if self._sources()
            else np.empty(0, dtype=np.uint64)
        )
        if self._tomb_arr is None:
            return values
        # drop values whose only carriers are tombstoned
        keep = np.fromiter(
            (self.lookup_scalar(t, int(v)).size > 0 for v in values),
            dtype=bool,
            count=values.size,
        )
        return values[keep]

    def trial_keys(self, t: int) -> np.ndarray:
        """Merged sorted packed keys of trial ``t``, tombstones filtered out."""
        chunks = [
            np.asarray(src.trial_keys(t), dtype=np.uint64) for src in self._sources()
        ]
        if not chunks:
            return np.empty(0, dtype=np.uint64)
        keys = np.concatenate(chunks)
        if self._tomb_arr is not None and keys.size:
            subjects = (keys & np.uint64(0xFFFFFFFF)).astype(np.int64)
            keys = keys[np.isin(subjects, self._tomb_arr, invert=True)]
        return np.sort(keys)

    def as_table(self) -> SketchTable:
        if self._table is None:
            self._table = SketchTable(
                [self.trial_keys(t) for t in range(self.trials)],
                n_subjects=self.n_subjects,
            )
        return self._table

    #: packed-key view for call sites that iterate ``store.keys``
    @property
    def keys(self) -> list[np.ndarray]:
        return self.as_table().keys

    def as_columnar(self) -> ColumnarSketchStore:
        """Fold this generation into one columnar store (same subject ids).

        This *is* the compaction kernel: merged sorted keys minus
        tombstones, repacked into sorted value/subject columns whose
        ``flat_columns`` feed the fused kernel.  ``n_subjects`` stays the
        allocated id count so live ids keep their meaning.
        """
        if len(self.segments) == 1 and self.memtable is None and not self.tombstones:
            return self.segments[0]
        return ColumnarSketchStore.from_trial_keys(
            [self.trial_keys(t) for t in range(self.trials)], self.n_subjects
        )

    def __repr__(self) -> str:
        return (
            f"IndexGeneration(gen={self.generation}, segments={len(self.segments)}, "
            f"memtable={self.memtable_entries}, tombstones={len(self.tombstones)}, "
            f"n_subjects={self.n_subjects})"
        )


def store_stats(store) -> dict:
    """Uniform stats block for any store — plain or generational.

    ``jem store-stats``, the NDJSON ``stats`` op and the service metrics
    all report through this one shape, so a static columnar index and a
    mutable generation read the same way.
    """
    gen = getattr(store, "current", None)
    if isinstance(store, IndexGeneration):
        gen = store
    elif gen is None or not isinstance(gen, IndexGeneration):
        gen = None
    if gen is None:
        return {
            "generation": 0,
            "segments": 1,
            "segment_entries": [int(store.total_entries)],
            "memtable_entries": 0,
            "tombstones": 0,
            "n_subjects": int(store.n_subjects),
            "live_subjects": int(store.n_subjects),
            "total_entries": int(store.total_entries),
            "nbytes": {
                "segments": int(store.nbytes),
                "memtable": 0,
                "total": int(store.nbytes),
            },
        }
    seg_bytes = int(sum(s.nbytes for s in gen.segments))
    mem_bytes = int(gen.memtable.nbytes) if gen.memtable is not None else 0
    return {
        "generation": gen.generation,
        "segments": len(gen.segments),
        "segment_entries": [int(s.total_entries) for s in gen.segments],
        "memtable_entries": int(gen.memtable_entries),
        "tombstones": len(gen.tombstones),
        "n_subjects": int(gen.n_subjects),
        "live_subjects": int(gen.live_subjects),
        "total_entries": int(gen.total_entries),
        "nbytes": {
            "segments": seg_bytes,
            "memtable": mem_bytes,
            "total": seg_bytes + mem_bytes,
        },
    }


def _config_to_dict(cfg: JEMConfig) -> dict:
    return {
        "k": cfg.k,
        "w": cfg.w,
        "ell": cfg.ell,
        "trials": cfg.trials,
        "seed": cfg.seed,
        "min_hits": cfg.min_hits,
    }


def _config_from_dict(data: dict) -> JEMConfig:
    return JEMConfig(
        k=int(data["k"]),
        w=int(data["w"]),
        ell=int(data["ell"]),
        trials=int(data["trials"]),
        seed=int(data["seed"]),
        min_hits=int(data["min_hits"]),
    )


def _store_to_segment(store: SketchStore) -> ColumnarSketchStore:
    if isinstance(store, ColumnarSketchStore):
        return store
    return ColumnarSketchStore.from_trial_keys(
        [store.trial_keys(t) for t in range(store.trials)], store.n_subjects
    )


class MutableSketchStore:
    """The mutable index handle: LSM writes over immutable generation reads.

    All reads delegate to :attr:`current`, the latest
    :class:`IndexGeneration` — the handle itself satisfies the
    :class:`~repro.core.store.SketchStore` protocol, so a mapper can adopt
    it directly and every query routes through a consistent snapshot.
    Mutations (under an internal lock) build and publish the next
    generation; readers holding an older one finish on it undisturbed.

    With ``run_dir`` set the handle is durable (format v4, see the module
    docstring for the WAL/manifest protocol); without it, mutations are
    memory-only — the shape the service uses when it wraps a static index
    on the first online mutation.
    """

    def __init__(
        self,
        config: JEMConfig,
        *,
        run_dir: str | None = None,
        _replay: bool = True,
    ) -> None:
        from ..resilience.checkpoint import CheckpointLog

        self.config = config
        self._family = config.hash_family()
        self._dir = os.fspath(run_dir) if run_dir is not None else None
        self._lock = threading.RLock()
        self._segments: list[ColumnarSketchStore] = []
        self._segment_files: list[dict] = []  # durable: {"file", "crc32", "entries"}
        self._mem_chunks: list[list[np.ndarray]] = []  # per add: per-trial keys
        self._names: list[str] = []  # allocated ids, index == subject id
        self._live: dict[str, int] = {}
        #: pending lookup mask — cleared when compaction drops the entries
        self._tombstones: set[int] = set()
        #: every id ever removed — monotone, never cleared (ids don't revive)
        self._removed: set[int] = set()
        self._generation = 0
        self._seq = 0
        self._wal: CheckpointLog | None = None
        if self._dir is not None:
            os.makedirs(os.path.join(self._dir, _SEGMENTS_DIR), exist_ok=True)
            self._wal = CheckpointLog(os.path.join(self._dir, WAL_NAME))
            if _replay:
                self._load_manifest()
                self._replay_wal()
        self._current = self._snapshot()

    # -- construction --------------------------------------------------------

    @classmethod
    def in_memory(
        cls,
        config: JEMConfig,
        *,
        base_store: SketchStore | None = None,
        subject_names: Iterable[str] = (),
    ) -> "MutableSketchStore":
        """Memory-only handle, optionally seeded from an existing store.

        The seed store becomes the single generation-0 segment — exactly
        how a static index goes mutable without a rebuild.
        """
        self = cls(config, run_dir=None)
        self._adopt_base(base_store, subject_names)
        return self

    @classmethod
    def create(
        cls,
        run_dir: str,
        config: JEMConfig,
        *,
        base_store: SketchStore | None = None,
        subject_names: Iterable[str] = (),
    ) -> "MutableSketchStore":
        """Initialise a fresh durable index directory (format v4)."""
        run_dir = os.fspath(run_dir)
        manifest_path = os.path.join(run_dir, MANIFEST_NAME)
        if os.path.exists(manifest_path):
            raise MappingError(
                f"mutable index already exists at {run_dir!r}; open it instead"
            )
        os.makedirs(os.path.join(run_dir, _SEGMENTS_DIR), exist_ok=True)
        self = cls(config, run_dir=run_dir, _replay=False)
        self._adopt_base(base_store, subject_names)
        if base_store is not None:
            # seal the seed as an on-disk segment so the directory is
            # self-contained from the very first generation
            seg = self._segments[0]
            rel, crc = self._write_segment_file(self._seq, seg)
            self._segment_files = [
                {"file": rel, "crc32": crc, "entries": int(seg.total_entries)}
            ]
        self._write_manifest()
        self._current = self._snapshot()
        return self

    @classmethod
    def open(cls, run_dir: str) -> "MutableSketchStore":
        """Open an existing v4 directory: manifest + WAL-suffix replay."""
        run_dir = os.fspath(run_dir)
        manifest_path = os.path.join(run_dir, MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            raise MappingError(f"no mutable index manifest in {run_dir!r}")
        with open(manifest_path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        return cls(_config_from_dict(data["config"]), run_dir=run_dir)

    @classmethod
    def from_bundle(
        cls, bundle_path: str, *, run_dir: str | None = None
    ) -> "MutableSketchStore":
        """Load a format-v3 (or v2) bundle as a single-segment generation 0.

        The auto-migration path: the immutable bundle's store becomes the
        seed segment unchanged — same subject ids, same lookups — and the
        result is mutable from there on (durably, when ``run_dir`` given).
        """
        from .persist import load_index

        mapper = load_index(bundle_path)
        if run_dir is not None:
            return cls.create(
                run_dir,
                mapper.config,
                base_store=mapper.table,
                subject_names=mapper.subject_names,
            )
        return cls.in_memory(
            mapper.config,
            base_store=mapper.table,
            subject_names=mapper.subject_names,
        )

    def _adopt_base(
        self, base_store: SketchStore | None, subject_names: Iterable[str]
    ) -> None:
        if base_store is None:
            return
        names = list(subject_names)
        if len(names) != base_store.n_subjects:
            raise MappingError(
                f"{len(names)} subject names for a store with "
                f"{base_store.n_subjects} subjects"
            )
        if base_store.trials != self.config.trials:
            raise MappingError(
                f"store has {base_store.trials} trials, config expects "
                f"{self.config.trials}"
            )
        self._segments = [_store_to_segment(base_store)]
        self._names = names
        self._live = {n: i for i, n in enumerate(names)}
        if len(self._live) != len(names):
            raise MappingError("duplicate contig names in base store")
        self._current = self._snapshot()

    # -- state ---------------------------------------------------------------

    @property
    def current(self) -> IndexGeneration:
        """The latest immutable generation (capture once per batch)."""
        return self._current

    @property
    def generation(self) -> int:
        return self._current.generation

    @property
    def durable(self) -> bool:
        return self._dir is not None

    @property
    def run_dir(self) -> str | None:
        return self._dir

    @property
    def subject_names(self) -> list[str]:
        return list(self._names)

    @property
    def live_subject_names(self) -> list[str]:
        """Names of contigs that are currently mappable, in id order.

        This is the authoritative liveness view: tombstone *sets* fold away
        at compaction (the entries are physically gone), but a removed
        contig stays dead — and its name free for re-use — forever.
        """
        return [n for n, _ in sorted(self._live.items(), key=lambda kv: kv[1])]

    def is_live(self, name: str) -> bool:
        return name in self._live

    def _snapshot(self) -> IndexGeneration:
        memtable: DictSketchStore | None = None
        if self._mem_chunks:
            trials = self.config.trials
            keys = [
                np.sort(np.concatenate([chunk[t] for chunk in self._mem_chunks]))
                for t in range(trials)
            ]
            memtable = DictSketchStore.from_trial_keys(keys, len(self._names))
        return IndexGeneration(
            segments=tuple(self._segments),
            memtable=memtable,
            tombstones=frozenset(self._tombstones),
            n_subjects=len(self._names),
            subject_names=tuple(self._names),
            generation=self._generation,
            removed=frozenset(self._removed),
        )

    def _publish(self) -> IndexGeneration:
        self._current = self._snapshot()
        return self._current

    # -- mutations -----------------------------------------------------------

    def add_contigs(self, contigs: SequenceSet) -> IndexGeneration:
        """Sketch and add new contigs; returns the new generation.

        New contigs get the next free subject ids (ids are never reused),
        land in the memtable, and are WAL-logged (raw sequences — replay
        re-sketches deterministically) before memory changes.
        """
        if len(contigs) == 0:
            raise MappingError("add_contigs: empty contig set")
        with self._lock:
            for name in contigs.names:
                if name in self._live:
                    raise MappingError(f"contig {name!r} already in the index")
            if len(set(contigs.names)) != len(contigs.names):
                raise MappingError("add_contigs: duplicate names in batch")
            if self._wal is not None:
                self._seq += 1
                self._wal.append(
                    {
                        "op": "add",
                        "seq": self._seq,
                        "names": list(contigs.names),
                        "seqs": [contigs[i].sequence for i in range(len(contigs))],
                    }
                )
            self._apply_add(contigs)
            self._generation += 1
            return self._publish()

    def _apply_add(self, contigs: SequenceSet) -> None:
        cfg = self.config
        base = len(self._names)
        keys = subject_sketch_pairs(
            contigs, cfg.k, cfg.w, cfg.ell, self._family, subject_id_offset=base
        )
        self._mem_chunks.append([np.asarray(k, dtype=np.uint64) for k in keys])
        for i, name in enumerate(contigs.names):
            self._live[name] = base + i
        self._names.extend(contigs.names)

    def remove_contigs(self, names: Iterable[str]) -> IndexGeneration:
        """Tombstone live contigs by name; returns the new generation."""
        names = list(names)
        if not names:
            raise MappingError("remove_contigs: no names given")
        with self._lock:
            for name in names:
                if name not in self._live:
                    raise MappingError(f"contig {name!r} not in the index")
            if self._wal is not None:
                self._seq += 1
                self._wal.append({"op": "remove", "seq": self._seq, "names": names})
            self._apply_remove(names)
            self._generation += 1
            return self._publish()

    def _apply_remove(self, names: list[str]) -> None:
        for name in names:
            sid = self._live.pop(name)
            self._tombstones.add(sid)
            self._removed.add(sid)

    def flush(self) -> IndexGeneration:
        """Seal the memtable into a new immutable sorted segment.

        No-op when the memtable is empty.  Durable flushes commit the
        segment file before the WAL record, then checkpoint the manifest
        and reset the WAL (adds/removes up to here are now in the
        manifest snapshot, so their records need never replay again).
        """
        with self._lock:
            if not self._mem_chunks:
                return self._current
            segment = self._seal_memtable()
            if self._wal is not None:
                self._seq += 1
                rel, crc = self._write_segment_file(self._seq, segment)
                self._wal.append(
                    {"op": "flush", "seq": self._seq, "file": rel, "crc32": crc}
                )
                self._segments.append(segment)
                self._mem_chunks = []
                self._segment_files.append(
                    {"file": rel, "crc32": crc, "entries": int(segment.total_entries)}
                )
                self._generation += 1
                self._checkpoint()
            else:
                self._segments.append(segment)
                self._mem_chunks = []
                self._generation += 1
            return self._publish()

    def _seal_memtable(self) -> ColumnarSketchStore:
        trials = self.config.trials
        keys = [
            np.sort(np.concatenate([chunk[t] for chunk in self._mem_chunks]))
            for t in range(trials)
        ]
        return ColumnarSketchStore.from_trial_keys(keys, len(self._names))

    def compact(self) -> IndexGeneration:
        """Fold memtable + segments − tombstones into one fresh segment.

        The resulting generation is *clean*: its single segment's
        ``flat_columns`` are rebuilt, so the fused native kernel serves it
        at full speed.  Durable compactions follow the full checkpoint
        protocol (segment file → WAL record → manifest → WAL reset →
        delete superseded files); a SIGKILL at any point replays back to
        a state bit-identical to either before or after the compaction.
        """
        with self._lock:
            merged = self._snapshot().as_columnar()
            if self._wal is not None:
                self._seq += 1
                rel, crc = self._write_segment_file(self._seq, merged)
                self._wal.append(
                    {"op": "compact", "seq": self._seq, "file": rel, "crc32": crc}
                )
                old_files = [meta["file"] for meta in self._segment_files]
                self._segments = [merged]
                self._mem_chunks = []
                self._tombstones = set()
                self._segment_files = [
                    {"file": rel, "crc32": crc, "entries": int(merged.total_entries)}
                ]
                self._generation += 1
                self._checkpoint()
                for old in old_files:
                    if old != rel:
                        try:
                            os.unlink(os.path.join(self._dir, old))
                        except OSError:  # pragma: no cover - already gone
                            pass
            else:
                self._segments = [merged]
                self._mem_chunks = []
                self._tombstones = set()
                self._generation += 1
            return self._publish()

    # -- durability ----------------------------------------------------------

    @property
    def manifest_path(self) -> str:
        assert self._dir is not None
        return os.path.join(self._dir, MANIFEST_NAME)

    def _write_segment_file(
        self, seq: int, segment: ColumnarSketchStore
    ) -> tuple[str, int]:
        import io

        from ..resilience.checkpoint import atomic_write_bytes

        payload_arrays = {
            "n_subjects": np.int64(segment.n_subjects),
            "trials": np.int64(segment.trials),
        }
        for t in range(segment.trials):
            payload_arrays[f"trial_{t:03d}"] = np.stack(
                [segment.values[t], segment.subjects[t]]
            )
        buf = io.BytesIO()
        np.savez_compressed(buf, **payload_arrays)
        payload = buf.getvalue()
        rel = os.path.join(_SEGMENTS_DIR, f"seg_{seq:06d}.npz")
        atomic_write_bytes(os.path.join(self._dir, rel), payload)
        return rel, zlib.crc32(payload) & 0xFFFFFFFF

    def _load_segment_file(self, meta: dict) -> ColumnarSketchStore | None:
        path = os.path.join(self._dir, meta["file"])
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except OSError:
            return None
        if (zlib.crc32(raw) & 0xFFFFFFFF) != int(meta["crc32"]):
            return None
        import io

        try:
            with np.load(io.BytesIO(raw), allow_pickle=False) as data:
                trials = int(data["trials"])
                n_subjects = int(data["n_subjects"])
                stacked = [data[f"trial_{t:03d}"] for t in range(trials)]
        except (KeyError, ValueError, OSError, EOFError):  # pragma: no cover
            return None
        return ColumnarSketchStore(
            [arr[0] for arr in stacked], [arr[1] for arr in stacked], n_subjects
        )

    def _write_manifest(self) -> None:
        from ..resilience.checkpoint import atomic_write_bytes

        manifest = {
            "format_version": MUTABLE_FORMAT_VERSION,
            "config": _config_to_dict(self.config),
            "generation": self._generation,
            "applied_seq": self._seq,
            "subject_names": list(self._names),
            "tombstones": sorted(self._tombstones),
            "removed": sorted(self._removed),
            "segments": list(self._segment_files),
            "wal": WAL_NAME,
        }
        atomic_write_bytes(
            self.manifest_path,
            json.dumps(manifest, indent=2, sort_keys=True).encode(),
        )

    def _checkpoint(self) -> None:
        """Manifest rewrite + WAL reset — the durable state is now the manifest."""
        self._write_manifest()
        assert self._wal is not None
        self._wal.reset()

    def _load_manifest(self) -> None:
        if not os.path.exists(self.manifest_path):
            return
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise IndexCorruptError(
                f"unreadable mutable-index manifest {self.manifest_path!r}: {exc}",
                path=self.manifest_path,
            ) from exc
        version = int(data.get("format_version", 0))
        if version != MUTABLE_FORMAT_VERSION:
            raise MappingError(
                f"mutable index format {version} unsupported "
                f"(expected {MUTABLE_FORMAT_VERSION})"
            )
        manifest_cfg = _config_from_dict(data["config"])
        if manifest_cfg != self.config:
            raise MappingError(
                "mutable index was built with a different JEMConfig; "
                "refusing to open"
            )
        self._generation = int(data["generation"])
        self._seq = int(data["applied_seq"])
        self._names = [str(n) for n in data["subject_names"]]
        self._tombstones = {int(i) for i in data.get("tombstones", [])}
        self._removed = {int(i) for i in data.get("removed", [])}
        # duplicate names can only exist via remove-then-re-add, so the one
        # non-removed occurrence per name is unique
        self._live = {
            n: i for i, n in enumerate(self._names) if i not in self._removed
        }
        self._segments = []
        self._segment_files = []
        for meta in data.get("segments", []):
            segment = self._load_segment_file(meta)
            if segment is None:
                raise IndexCorruptError(
                    f"mutable index segment {meta['file']!r} is missing or "
                    "fails its CRC; the manifest references it, so the "
                    "directory is damaged — restore or rebuild",
                    path=os.path.join(self._dir, str(meta["file"])),
                )
            self._segments.append(segment)
            self._segment_files.append(dict(meta))

    def _replay_wal(self) -> None:
        """Apply the WAL suffix (seq > applied_seq); torn tails drop safely.

        Flush/compact records whose segment file is missing or bad are
        *skipped*, not fatal: the memtable/segments they would have folded
        are still live in the replayed state, so the logical index is
        unchanged — the next flush/compact simply redoes the work.
        """
        assert self._wal is not None
        applied = self._seq
        for record in self._wal.replay():
            seq = int(record.get("seq", 0))
            if seq <= applied:
                continue
            op = record.get("op")
            if op == "add":
                contigs = SequenceSet.from_strings(
                    list(zip(record["names"], record["seqs"]))
                )
                self._apply_add(contigs)
            elif op == "remove":
                self._apply_remove([str(n) for n in record["names"]])
            elif op == "flush":
                segment = self._load_segment_file(record)
                if segment is not None and self._mem_chunks:
                    self._segments.append(segment)
                    self._mem_chunks = []
                    self._segment_files.append(
                        {
                            "file": record["file"],
                            "crc32": int(record["crc32"]),
                            "entries": int(segment.total_entries),
                        }
                    )
            elif op == "compact":
                segment = self._load_segment_file(record)
                if segment is not None:
                    self._segments = [segment]
                    self._mem_chunks = []
                    self._tombstones = set()
                    self._segment_files = [
                        {
                            "file": record["file"],
                            "crc32": int(record["crc32"]),
                            "entries": int(segment.total_entries),
                        }
                    ]
            self._seq = seq
            self._generation += 1

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()

    def __enter__(self) -> "MutableSketchStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- SketchStore protocol (delegated to the current generation) ----------

    @property
    def trials(self) -> int:
        trials = self._current.trials
        return trials if trials else self.config.trials

    @property
    def n_subjects(self) -> int:
        return self._current.n_subjects

    @property
    def total_entries(self) -> int:
        return self._current.total_entries

    @property
    def nbytes(self) -> int:
        return self._current.nbytes

    def lookup_trial(self, t: int, query_values: np.ndarray) -> TrialHits:
        return self._current.lookup_trial(t, query_values)

    def lookup_scalar(self, t: int, value: int) -> np.ndarray:
        return self._current.lookup_scalar(t, value)

    def lookup_fused(self, *args, **kwargs):
        return self._current.lookup_fused(*args, **kwargs)

    def values_of_trial(self, t: int) -> np.ndarray:
        return self._current.values_of_trial(t)

    def trial_keys(self, t: int) -> np.ndarray:
        return self._current.trial_keys(t)

    def as_table(self) -> SketchTable:
        return self._current.as_table()

    @property
    def keys(self) -> list[np.ndarray]:
        return self._current.keys

    def __repr__(self) -> str:
        mode = f"dir={self._dir!r}" if self._dir else "in-memory"
        return f"MutableSketchStore({self._current!r}, {mode})"
