"""JEM-mapper — the paper's primary contribution (Algorithms 1 and 2).

Public usage::

    from repro import JEMConfig, JEMMapper

    mapper = JEMMapper(JEMConfig(k=16, w=100, ell=1000, trials=30))
    mapper.index(contigs)                 # Algorithm 1 over all subjects
    result = mapper.map_reads(long_reads) # end segments + Algorithm 2

``result`` pairs every read end segment with its best-matching contig (or
-1), ready for precision/recall evaluation or scaffolding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import MappingError
from ..seq.records import SequenceSet
from ..sketch.hashing import HashFamily
from ..sketch.jem import (
    query_kernel,
    query_minimizer_concat,
    query_sketch_values,
    subject_sketch_pairs,
)
from .config import JEMConfig
from .hitcounter import BestHits, count_hits_fused, count_hits_vectorised
from .segments import SegmentInfo, extract_end_segments
from .sketch_table import SketchTable
from .store import DEFAULT_STORE_KIND, SketchStore, build_store, store_from_table

__all__ = ["JEMMapper", "MappingResult", "map_segment_batch"]


@dataclass
class MappingResult:
    """Output of the L2C mapping Φ : Q → S.

    One row per query segment.  ``subject[i]`` is the contig index in the
    indexed contig set (-1 when unmapped) and ``hit_count[i]`` the number of
    trial collisions supporting it.
    """

    segment_names: list[str]
    subject: np.ndarray
    hit_count: np.ndarray
    infos: list[SegmentInfo] = field(default_factory=list)

    def __len__(self) -> int:
        return int(self.subject.size)

    @property
    def mapped_mask(self) -> np.ndarray:
        return self.subject >= 0

    @property
    def n_mapped(self) -> int:
        return int(np.count_nonzero(self.mapped_mask))

    @property
    def mapped_fraction(self) -> float:
        return self.n_mapped / len(self) if len(self) else 0.0

    def pairs(self, subject_names: list[str] | None = None) -> list[tuple[str, str]]:
        """(segment name, contig name-or-index) for every mapped segment."""
        out = []
        for i in np.flatnonzero(self.mapped_mask):
            s = int(self.subject[i])
            label = subject_names[s] if subject_names is not None else str(s)
            out.append((self.segment_names[int(i)], label))
        return out

    @classmethod
    def from_best_hits(
        cls, names: list[str], hits: BestHits, infos: list[SegmentInfo] | None = None
    ) -> "MappingResult":
        return cls(
            segment_names=list(names),
            subject=hits.subject,
            hit_count=hits.count,
            infos=list(infos) if infos is not None else [],
        )


def map_segment_batch(
    table: SketchStore,
    segments: SequenceSet,
    config: JEMConfig,
    family: HashFamily,
    infos: list[SegmentInfo] | None = None,
) -> MappingResult:
    """Algorithm 2 over one segment batch — the S4 hot path, shared.

    The one place sketch + lookup + vote happens: :class:`JEMMapper`, the
    parallel driver's per-block S4 stage and the service's inline path all
    call this, so every frontend takes the same route.  When the store is
    columnar and the compiled kernels are loaded, the whole pipeline runs
    as one fused multi-threaded C pass
    (:func:`~repro.core.hitcounter.count_hits_fused`); otherwise the numpy
    path — batched sketch kernel feeding
    :func:`~repro.core.hitcounter.count_hits_vectorised` — runs on the
    *same* pre-extracted minimizer block, so the fallback never re-extracts
    minimizers.  Both routes are bit-identical (the parity oracle contract;
    ``REPRO_NO_NATIVE=1`` forces the numpy route).
    """
    has, nonempty, values, starts = query_minimizer_concat(
        segments, config.k, config.w
    )
    hits = count_hits_fused(
        table, values, starts, family,
        min_hits=config.min_hits, n_queries=len(segments), nonempty=nonempty,
    )
    if hits is None:
        sketch_values = np.zeros((family.size, len(segments)), dtype=np.uint64)
        if nonempty.size:
            sketch_values[:, nonempty] = query_kernel(values, starts, family)
        hits = count_hits_vectorised(
            table, sketch_values, min_hits=config.min_hits, query_mask=has
        )
    return MappingResult.from_best_hits(segments.names, hits, infos)


class JEMMapper:
    """Sketch-based long-read-to-contig mapper.

    The mapper is *deterministic* for a fixed :class:`JEMConfig` (the hash
    constants derive from ``config.seed``), and the index can be built
    incrementally from partitions (:meth:`index_partitioned`) — that is the
    sequential equivalent of the paper's parallel steps S2+S3.
    """

    def __init__(
        self, config: JEMConfig | None = None, *, store_kind: str | None = None
    ) -> None:
        self.config = config if config is not None else JEMConfig()
        self.store_kind = store_kind if store_kind is not None else DEFAULT_STORE_KIND
        self._family: HashFamily = self.config.hash_family()
        self._table: SketchStore | None = None
        self._subject_names: list[str] = []

    # -- index construction (Algorithm 1 over subjects) ---------------------

    @property
    def table(self) -> SketchStore:
        if self._table is None:
            raise MappingError("index() must be called before mapping")
        return self._table

    #: alias — the resident index is a store; ``table`` is the legacy name
    @property
    def store(self) -> SketchStore:
        return self.table

    @property
    def is_indexed(self) -> bool:
        return self._table is not None

    @property
    def subject_names(self) -> list[str]:
        return self._subject_names

    def adopt_store(self, store: SketchStore, subject_names: list[str]) -> None:
        """Install a pre-built store (persist load, shm attach, engine)."""
        self._table = store
        self._subject_names = list(subject_names)

    def index(self, contigs: SequenceSet) -> SketchStore:
        """Sketch all subjects and build the per-trial tables S[1..T]."""
        if len(contigs) == 0:
            raise MappingError("cannot index an empty contig set")
        cfg = self.config
        keys = subject_sketch_pairs(contigs, cfg.k, cfg.w, cfg.ell, self._family)
        self._table = build_store(self.store_kind, keys, n_subjects=len(contigs))
        self._subject_names = list(contigs.names)
        return self._table

    def index_partitioned(self, partitions: list[SequenceSet]) -> SketchStore:
        """Build the index from disjoint contig partitions.

        Each partition is sketched with subject ids offset by its position —
        the same global ids the parallel driver assigns — and the per-trial
        tables are unioned, mirroring S2 + S3.  The result is identical to
        :meth:`index` on the concatenated set.
        """
        if not partitions:
            raise MappingError("no partitions given")
        cfg = self.config
        parts: list[SketchTable] = []
        offset = 0
        names: list[str] = []
        for part in partitions:
            keys = subject_sketch_pairs(
                part, cfg.k, cfg.w, cfg.ell, self._family, subject_id_offset=offset
            )
            offset += len(part)
            names.extend(part.names)
            parts.append(SketchTable.from_pairs(keys, n_subjects=offset))
        self._table = store_from_table(self.store_kind, SketchTable.union(parts))
        self._subject_names = names
        return self._table

    # -- mapping (Algorithm 2) ----------------------------------------------

    def map_segments(self, segments: SequenceSet, infos: list[SegmentInfo] | None = None) -> MappingResult:
        """Map pre-extracted query segments against the index.

        Routes through :func:`map_segment_batch`: the fused native pass
        when the store is columnar and the compiled kernels are loaded,
        the batched numpy path otherwise — bit-identical either way.
        """
        return map_segment_batch(
            self.table, segments, self.config, self._family, infos
        )

    def map_reads(self, reads: SequenceSet) -> MappingResult:
        """Extract prefix/suffix end segments of length ℓ and map them."""
        segments, infos = extract_end_segments(reads, self.config.ell)
        return self.map_segments(segments, infos)

    def map_segments_topx(self, segments: SequenceSet, x: int = 3) -> "TopHits":
        """Ranked top-x hits per segment (Section IV-C's proposed extension)."""
        from .topx import count_hits_topx

        cfg = self.config
        sketches = query_sketch_values(segments, cfg.k, cfg.w, self._family)
        return count_hits_topx(
            self.table, sketches.values, x=x,
            min_hits=cfg.min_hits, query_mask=sketches.has,
        )
