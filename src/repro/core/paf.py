"""PAF output — the de-facto interchange format for mapping results.

JEM-mapper's native output is ⟨segment, contig⟩ pairs; downstream tools
(scaffolders, viewers) speak PAF (the Pairwise mApping Format used by
minimap2 and Mashmap).  This writer reconstructs the coordinate fields by
anchor-placing each mapped segment on its contig, and converts the
trial-collision count into an approximate mapping quality.

PAF columns: qname qlen qstart qend strand tname tlen tstart tend
residue_matches alignment_length mapq (+ optional tags).
"""

from __future__ import annotations

import os
from collections.abc import Iterable

import numpy as np

from ..align.identity import locate_segment
from ..errors import MappingError
from ..seq.records import SequenceSet
from .mapper import MappingResult

__all__ = ["paf_records", "write_paf"]


def _mapq(hit_count: int, trials: int) -> int:
    """Map trial support to a 0-60 quality (saturating, minimap2-style cap)."""
    if trials <= 0:
        return 0
    return int(round(60.0 * min(hit_count / trials, 1.0)))


def paf_records(
    result: MappingResult,
    segments: SequenceSet,
    contigs: SequenceSet,
    *,
    trials: int,
    k: int = 16,
    w: int = 20,
) -> Iterable[str]:
    """Yield one PAF line per mapped segment (unmapped segments skipped)."""
    if len(result) != len(segments):
        raise MappingError(
            f"result has {len(result)} rows for {len(segments)} segments"
        )
    for i in range(len(result)):
        subject = int(result.subject[i])
        if subject < 0:
            continue
        seg = segments.codes_of(i)
        contig = contigs.codes_of(subject)
        placed = locate_segment(seg, contig, k, w)
        if placed is None:
            # mapped by sketch collision but unplaceable by anchors: emit a
            # coordinate-less stub covering the whole query
            qlo, qhi, clo, chi, strand = 0, seg.size, 0, min(seg.size, contig.size), 1
        else:
            qlo, qhi, clo, chi, strand = placed
        span = max(chi - clo, 1)
        matches = min(qhi - qlo, span)
        yield "\t".join(
            [
                result.segment_names[i],
                str(seg.size),
                str(qlo),
                str(qhi),
                "+" if strand == 1 else "-",
                contigs.names[subject],
                str(int(contig.size)),
                str(clo),
                str(chi),
                str(matches),
                str(span),
                str(_mapq(int(result.hit_count[i]), trials)),
                f"nh:i:{int(result.hit_count[i])}",
            ]
        )


def write_paf(
    path: str | os.PathLike,
    result: MappingResult,
    segments: SequenceSet,
    contigs: SequenceSet,
    *,
    trials: int,
    k: int = 16,
    w: int = 20,
) -> int:
    """Write PAF to a file ('-' = stdout); returns the record count."""
    import sys

    lines = paf_records(result, segments, contigs, trials=trials, k=k, w=w)
    count = 0
    handle = sys.stdout if os.fspath(path) == "-" else open(path, "w", encoding="ascii")
    try:
        for line in lines:
            handle.write(line + "\n")
            count += 1
    finally:
        if handle is not sys.stdout:
            handle.close()
    return count
