"""Index persistence: save/load a built JEM index as one ``.npz`` bundle.

A production mapper indexes the contig set once and maps many read batches
against it; this module makes the sketch table a durable artifact.  The
bundle records the full :class:`JEMConfig` so a loaded mapper is guaranteed
to sketch queries with the same constants the index was built with —
loading with a mismatched config is impossible by construction.
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import MappingError
from .config import JEMConfig
from .mapper import JEMMapper
from .sketch_table import SketchTable

__all__ = ["save_index", "load_index", "INDEX_FORMAT_VERSION"]

#: Bumped on any incompatible change to the on-disk layout.
INDEX_FORMAT_VERSION = 1


def save_index(mapper: JEMMapper, path: str | os.PathLike) -> str:
    """Write a mapper's index (table + config + subject names) to ``path``.

    Returns the path written.  The mapper must be indexed.
    """
    table = mapper.table  # raises MappingError when not indexed
    cfg = mapper.config
    payload: dict = {
        "format_version": np.int64(INDEX_FORMAT_VERSION),
        "config": np.array(
            [cfg.k, cfg.w, cfg.ell, cfg.trials, cfg.seed, cfg.min_hits], dtype=np.int64
        ),
        "n_subjects": np.int64(table.n_subjects),
        "subject_names": np.array(mapper.subject_names),
    }
    for t, keys in enumerate(table.keys):
        payload[f"trial_{t:03d}"] = keys
    path = os.fspath(path)
    np.savez_compressed(path, **payload)
    # np.savez appends .npz when missing; report the real file name
    return path if path.endswith(".npz") else path + ".npz"


def load_index(path: str | os.PathLike) -> JEMMapper:
    """Reconstruct a ready-to-map :class:`JEMMapper` from a saved index."""
    path = os.fspath(path)
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != INDEX_FORMAT_VERSION:
            raise MappingError(
                f"index format {version} unsupported (expected {INDEX_FORMAT_VERSION})"
            )
        k, w, ell, trials, seed, min_hits = (int(v) for v in data["config"])
        config = JEMConfig(k=k, w=w, ell=ell, trials=trials, seed=seed, min_hits=min_hits)
        keys = [data[f"trial_{t:03d}"] for t in range(trials)]
        n_subjects = int(data["n_subjects"])
        names = [str(n) for n in data["subject_names"]]
    mapper = JEMMapper(config)
    mapper._table = SketchTable(keys, n_subjects=n_subjects)
    mapper._subject_names = names
    return mapper
