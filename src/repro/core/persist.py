"""Index persistence: save/load a built JEM index as one ``.npz`` bundle.

A production mapper indexes the contig set once and maps many read batches
against it; this module makes the sketch table a durable artifact.  The
bundle records the full :class:`JEMConfig` so a loaded mapper is guaranteed
to sketch queries with the same constants the index was built with —
loading with a mismatched config is impossible by construction.

The bundle also carries a CRC32 content checksum (config + names + every
trial's keys) that is verified on load, so a truncated, bit-rotted or
hand-edited index surfaces as a clear :class:`~repro.errors.MappingError`
instead of a silently wrong mapping or a raw ``numpy``/``KeyError`` leak.
"""

from __future__ import annotations

import os
import zipfile
import zlib

import numpy as np

from ..errors import MappingError
from .config import JEMConfig
from .mapper import JEMMapper
from .sketch_table import SketchTable

__all__ = ["save_index", "load_index", "INDEX_FORMAT_VERSION"]

#: Bumped on any incompatible change to the on-disk layout.
#: v2 added the content checksum; v1 bundles must be rebuilt.
INDEX_FORMAT_VERSION = 2

#: Low-level failures that mean "this file is not a readable index".
_CORRUPTION_ERRORS = (
    KeyError,
    ValueError,
    OSError,
    EOFError,
    zipfile.BadZipFile,
    zlib.error,
)


def _content_checksum(
    config_arr: np.ndarray, n_subjects: int, names: np.ndarray, keys: list[np.ndarray]
) -> int:
    """CRC32 over everything that determines mapping behaviour."""
    crc = zlib.crc32(np.ascontiguousarray(config_arr).tobytes())
    crc = zlib.crc32(str(int(n_subjects)).encode(), crc)
    crc = zlib.crc32("\x00".join(str(n) for n in names).encode(), crc)
    for k in keys:
        crc = zlib.crc32(np.ascontiguousarray(k).tobytes(), crc)
    return crc & 0xFFFFFFFF


def save_index(mapper: JEMMapper, path: str | os.PathLike) -> str:
    """Write a mapper's index (table + config + subject names) to ``path``.

    Returns the path written.  The mapper must be indexed.
    """
    table = mapper.table  # raises MappingError when not indexed
    cfg = mapper.config
    config_arr = np.array(
        [cfg.k, cfg.w, cfg.ell, cfg.trials, cfg.seed, cfg.min_hits], dtype=np.int64
    )
    names_arr = np.array(mapper.subject_names)
    payload: dict = {
        "format_version": np.int64(INDEX_FORMAT_VERSION),
        "config": config_arr,
        "n_subjects": np.int64(table.n_subjects),
        "subject_names": names_arr,
        "checksum": np.uint32(
            _content_checksum(config_arr, table.n_subjects, names_arr, table.keys)
        ),
    }
    for t, keys in enumerate(table.keys):
        payload[f"trial_{t:03d}"] = keys
    path = os.fspath(path)
    np.savez_compressed(path, **payload)
    # np.savez appends .npz when missing; report the real file name
    return path if path.endswith(".npz") else path + ".npz"


def load_index(path: str | os.PathLike) -> JEMMapper:
    """Reconstruct a ready-to-map :class:`JEMMapper` from a saved index.

    Truncated, corrupted, or future-format files raise
    :class:`~repro.errors.MappingError` with the root cause chained.
    """
    path = os.fspath(path)
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    try:
        with np.load(path, allow_pickle=False) as data:
            version = int(data["format_version"])
            if version != INDEX_FORMAT_VERSION:
                hint = (
                    "rebuild the index with save_index"
                    if version < INDEX_FORMAT_VERSION
                    else "upgrade this library"
                )
                raise MappingError(
                    f"index format {version} unsupported "
                    f"(expected {INDEX_FORMAT_VERSION}); {hint}"
                )
            config_arr = np.asarray(data["config"], dtype=np.int64)
            k, w, ell, trials, seed, min_hits = (int(v) for v in config_arr)
            config = JEMConfig(
                k=k, w=w, ell=ell, trials=trials, seed=seed, min_hits=min_hits
            )
            keys = [data[f"trial_{t:03d}"] for t in range(trials)]
            n_subjects = int(data["n_subjects"])
            names_arr = data["subject_names"]
            names = [str(n) for n in names_arr]
            stored = int(data["checksum"])
    except MappingError:
        raise
    except _CORRUPTION_ERRORS as exc:
        raise MappingError(f"corrupt or unreadable index {path!r}: {exc}") from exc
    actual = _content_checksum(config_arr, n_subjects, names_arr, keys)
    if actual != stored:
        raise MappingError(
            f"index {path!r} failed its integrity check "
            f"(stored {stored:#010x}, computed {actual:#010x}); "
            "the file is corrupt — rebuild the index"
        )
    mapper = JEMMapper(config)
    mapper._table = SketchTable(keys, n_subjects=n_subjects)
    mapper._subject_names = names
    return mapper
