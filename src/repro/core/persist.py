"""Index persistence: save/load a built JEM index as one ``.npz`` bundle.

A production mapper indexes the contig set once and maps many read batches
against it; this module makes the sketch store a durable artifact.  The
bundle records the full :class:`JEMConfig` so a loaded mapper is guaranteed
to sketch queries with the same constants the index was built with —
loading with a mismatched config is impossible by construction.

The bundle also carries a CRC32 content checksum (config + names + every
trial's columns) that is verified on load, so a truncated, bit-rotted or
hand-edited index surfaces as a typed
:class:`~repro.errors.IndexCorruptError` — localised to a byte offset
when the damage can be placed — instead of a silently wrong mapping or a
raw ``numpy``/``KeyError`` leak.  Saves are atomic (tmp file +
``os.replace`` + fsync): a crash mid-save can leave a stale tmp file but
never a torn bundle under the index's name.

**Format v3** stores the columnar layout natively: each ``trial_{t:03d}``
entry is a ``(2, n)`` ``uint32`` array — row 0 the sorted sketch-value
column, row 1 the parallel contig-id column — exactly the resident form of
:class:`~repro.core.store.ColumnarSketchStore`, so loading builds the
store without repacking (and at half the bytes of the packed ``uint64``
keys v2 wrote).  v2 bundles (packed keys) are still loaded: their own v2
checksum is verified first, then the keys are migrated in memory to the
requested store kind.  See ``docs/architecture.md`` for the layout.
"""

from __future__ import annotations

import io
import os
import zipfile
import zlib

import numpy as np

from ..errors import IndexCorruptError, MappingError, SketchError
from .config import JEMConfig
from .mapper import JEMMapper
from .store import (
    DEFAULT_STORE_KIND,
    ColumnarSketchStore,
    build_store,
    store_from_table,
)

__all__ = ["save_index", "load_index", "INDEX_FORMAT_VERSION"]

#: Bumped on any incompatible change to the on-disk layout.
#: v4 is the *mutable* layout — a directory holding a manifest of segment
#: files (per-segment CRCs) plus a WAL (see :mod:`repro.core.lsm`);
#: :func:`load_index` dispatches on a directory path.  Single-file bundles
#: stay at v3 (columnar (2, n) uint32 trial columns); v2 (packed uint64
#: keys, content checksum) is auto-migrated on load; v1 must be rebuilt.
INDEX_FORMAT_VERSION = 3

#: Oldest version :func:`load_index` can still migrate.
_OLDEST_READABLE_VERSION = 2

#: Low-level failures that mean "this file is not a readable index".
#: ``NotImplementedError`` covers a flipped compression-method byte in a
#: member header (zipfile refuses the bogus method instead of failing CRC).
_CORRUPTION_ERRORS = (
    KeyError,
    ValueError,
    OSError,
    EOFError,
    zipfile.BadZipFile,
    zlib.error,
    NotImplementedError,
)


def _content_checksum(
    config_arr: np.ndarray, n_subjects: int, names: np.ndarray, trials: list[np.ndarray]
) -> int:
    """CRC32 over everything that determines mapping behaviour.

    ``trials`` is whatever per-trial array the format version stores —
    packed ``uint64`` keys for v2, stacked ``(2, n)`` ``uint32`` columns
    for v3 — so each version's checksum covers its own bytes.
    """
    crc = zlib.crc32(np.ascontiguousarray(config_arr).tobytes())
    crc = zlib.crc32(str(int(n_subjects)).encode(), crc)
    crc = zlib.crc32("\x00".join(str(n) for n in names).encode(), crc)
    for arr in trials:
        crc = zlib.crc32(np.ascontiguousarray(arr).tobytes(), crc)
    return crc & 0xFFFFFFFF


def save_index(mapper: JEMMapper, path: str | os.PathLike) -> str:
    """Write a mapper's index (store + config + subject names) to ``path``.

    Returns the path written.  The mapper must be indexed.  Any store kind
    saves through the same v3 layout (columns are derived when the
    resident store is not already columnar).
    """
    store = mapper.table  # raises MappingError when not indexed
    if not isinstance(store, ColumnarSketchStore):
        store = ColumnarSketchStore.from_trial_keys(
            [store.trial_keys(t) for t in range(store.trials)], store.n_subjects
        )
    cfg = mapper.config
    config_arr = np.array(
        [cfg.k, cfg.w, cfg.ell, cfg.trials, cfg.seed, cfg.min_hits], dtype=np.int64
    )
    names_arr = np.array(mapper.subject_names)
    stacked = [
        np.stack([store.values[t], store.subjects[t]]) for t in range(store.trials)
    ]
    payload: dict = {
        "format_version": np.int64(INDEX_FORMAT_VERSION),
        "config": config_arr,
        "n_subjects": np.int64(store.n_subjects),
        "subject_names": names_arr,
        "checksum": np.uint32(
            _content_checksum(config_arr, store.n_subjects, names_arr, stacked)
        ),
    }
    for t, columns in enumerate(stacked):
        payload[f"trial_{t:03d}"] = columns
    path = os.fspath(path)
    # np.savez appends .npz when missing; commit under the real file name
    final = path if path.endswith(".npz") else path + ".npz"
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **payload)
    # atomic commit: a crash mid-save can leave a stale tmp file, never a
    # torn bundle under the index's name
    tmp = f"{final}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        fh.write(buffer.getbuffer())
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, final)
    parent = os.path.dirname(os.path.abspath(final))
    try:
        dir_fd = os.open(parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return final
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return final


def load_index(
    path: str | os.PathLike, *, store: str = DEFAULT_STORE_KIND
) -> JEMMapper:
    """Reconstruct a ready-to-map :class:`JEMMapper` from a saved index.

    ``store`` selects the resident store kind the loaded index is held in
    (v3 columnar bundles build the default columnar store zero-conversion).
    Truncated, corrupted, or future-format files raise
    :class:`~repro.errors.MappingError` with the root cause chained; v2
    bundles are checksum-verified against their own layout and migrated in
    memory.
    """
    path = os.fspath(path)
    if os.path.isdir(path):
        # format v4: a mutable-index directory (manifest + segments + WAL).
        # The resident store is the generational handle itself — the
        # ``store`` kind is fixed by the layout, so the argument is ignored.
        from .lsm import MutableSketchStore

        handle = MutableSketchStore.open(path)
        mapper = JEMMapper(handle.config)
        mapper.adopt_store(handle, handle.subject_names)
        return mapper
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    try:
        with np.load(path, allow_pickle=False) as data:
            version = int(data["format_version"])
            if not _OLDEST_READABLE_VERSION <= version <= INDEX_FORMAT_VERSION:
                hint = (
                    "rebuild the index with save_index"
                    if version < INDEX_FORMAT_VERSION
                    else "upgrade this library"
                )
                raise MappingError(
                    f"index format {version} unsupported "
                    f"(expected {_OLDEST_READABLE_VERSION}"
                    f"..{INDEX_FORMAT_VERSION}); {hint}"
                )
            config_arr = np.asarray(data["config"], dtype=np.int64)
            k, w, ell, trials, seed, min_hits = (int(v) for v in config_arr)
            config = JEMConfig(
                k=k, w=w, ell=ell, trials=trials, seed=seed, min_hits=min_hits
            )
            trial_arrays = [data[f"trial_{t:03d}"] for t in range(trials)]
            n_subjects = int(data["n_subjects"])
            names_arr = data["subject_names"]
            names = [str(n) for n in names_arr]
            stored = int(data["checksum"])
    except MappingError:
        raise
    except FileNotFoundError as exc:
        raise MappingError(f"no such index: {path!r}") from exc
    except _CORRUPTION_ERRORS as exc:
        raise _corrupt_error(path, str(exc)) from exc
    actual = _content_checksum(config_arr, n_subjects, names_arr, trial_arrays)
    if actual != stored:
        raise _corrupt_error(
            path,
            f"failed its integrity check (stored {stored:#010x}, "
            f"computed {actual:#010x})",
        )
    try:
        resident = _build_resident_store(version, trial_arrays, n_subjects, store)
    except (SketchError, *_CORRUPTION_ERRORS) as exc:
        raise _corrupt_error(path, str(exc)) from exc
    mapper = JEMMapper(config, store_kind=store)
    mapper.adopt_store(resident, names)
    return mapper


def _locate_corruption(path: str) -> int | None:
    """Best-effort byte offset where reading the bundle first goes wrong.

    A truncated container (the zip central directory at EOF is missing)
    localises to the file size — the truncation point; a damaged member
    localises to that member's local header offset by decoding every
    member in turn (unlike :meth:`zipfile.ZipFile.testzip` this survives
    members whose damage raises instead of failing the CRC).  ``None``
    when the damage cannot be placed (e.g. the corruption only shows up
    as a checksum mismatch over structurally valid zip data).
    """
    try:
        size = os.path.getsize(path)
    except OSError:
        return None
    try:
        with zipfile.ZipFile(path) as zf:
            for info in zf.infolist():
                try:
                    with zf.open(info) as member:
                        while member.read(1 << 20):
                            pass
                except _CORRUPTION_ERRORS:
                    return int(info.header_offset)
    except zipfile.BadZipFile:
        return size
    except OSError:  # pragma: no cover - unreadable mid-scan
        return None
    return None


def _corrupt_error(path: str, cause: str) -> IndexCorruptError:
    """Typed corruption error, localised to a byte offset when possible."""
    offset = _locate_corruption(path)
    where = f" (first bad byte near offset {offset})" if offset is not None else ""
    return IndexCorruptError(
        f"corrupt or unreadable index {path!r}: {cause}{where}; "
        "rebuild the index",
        path=path,
        offset=offset,
    )


def _build_resident_store(
    version: int, trial_arrays: list[np.ndarray], n_subjects: int, kind: str
):
    """Turn the bundle's per-trial arrays into the requested store kind."""
    if version >= 3:
        columnar = ColumnarSketchStore(
            [arr[0] for arr in trial_arrays],
            [arr[1] for arr in trial_arrays],
            n_subjects,
        )
        if kind == "columnar":
            return columnar
        return store_from_table(kind, columnar.as_table())
    # v2 migration: packed uint64 keys -> requested store kind
    keys = [np.asarray(arr, dtype=np.uint64) for arr in trial_arrays]
    return build_store(kind, keys, n_subjects)
