"""End-segment extraction (Section III-B.1).

Instead of sketching a whole long read, JEM-mapper maps only its two end
segments: the first ℓ bases (prefix) and the last ℓ bases (suffix).  A read
set of m reads therefore becomes a query set of 2m segments of length ℓ.

Ground-truth coordinates attached by the read simulator (``ref_start``,
``ref_end``, ``ref_strand`` in the record meta) are propagated to each
segment so the evaluation can place the segment on the reference exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SequenceError
from ..seq.records import SequenceSet, SequenceSetBuilder

__all__ = ["PREFIX", "SUFFIX", "SegmentInfo", "extract_end_segments"]

#: Segment-kind markers stored in segment meta and names.
PREFIX = "prefix"
SUFFIX = "suffix"


@dataclass(frozen=True)
class SegmentInfo:
    """Bookkeeping for one extracted segment."""

    read_index: int
    kind: str  # PREFIX or SUFFIX

    @property
    def suffix_flag(self) -> int:
        return 1 if self.kind == SUFFIX else 0


def _segment_meta(read_meta: dict, kind: str, read_len: int, ell: int) -> dict:
    """Segment meta, including projected reference coordinates when known."""
    meta = {"kind": kind}
    if "ref_start" in read_meta and "ref_end" in read_meta:
        start = int(read_meta["ref_start"])
        end = int(read_meta["ref_end"])
        strand = int(read_meta.get("ref_strand", 1))
        seg_len = min(ell, read_len)
        # A prefix of the read corresponds to the reference interval at the
        # read's start for forward reads, and at its end for reverse reads.
        at_start = (kind == PREFIX) == (strand == 1)
        if at_start:
            meta["ref_start"], meta["ref_end"] = start, min(start + seg_len, end)
        else:
            meta["ref_start"], meta["ref_end"] = max(end - seg_len, start), end
        meta["ref_strand"] = strand
        if "ref_name" in read_meta:
            meta["ref_name"] = read_meta["ref_name"]
    return meta


def extract_end_segments(
    reads: SequenceSet, ell: int
) -> tuple[SequenceSet, list[SegmentInfo]]:
    """Build the 2m-segment query set Q from m long reads.

    Reads shorter than ℓ contribute their full sequence as both prefix and
    suffix (the two segments then coincide, which is what mapping the "ends"
    of such a read degenerates to).  Empty reads are rejected.

    Returns
    -------
    (segments, infos):
        ``segments[2*i]`` is read i's prefix, ``segments[2*i + 1]`` its
        suffix; ``infos`` parallels the segment set.
    """
    if ell < 1:
        raise SequenceError(f"segment length must be >= 1, got {ell}")
    builder = SequenceSetBuilder()
    infos: list[SegmentInfo] = []
    for i in range(len(reads)):
        codes = reads.codes_of(i)
        if codes.size == 0:
            raise SequenceError(f"read {reads.names[i]!r} is empty")
        name = reads.names[i]
        meta = reads.metas[i]
        n = codes.size
        prefix = codes[: min(ell, n)]
        suffix = codes[max(0, n - ell) :]
        builder.add(f"{name}/{PREFIX}", prefix, _segment_meta(meta, PREFIX, n, ell))
        infos.append(SegmentInfo(read_index=i, kind=PREFIX))
        builder.add(f"{name}/{SUFFIX}", suffix, _segment_meta(meta, SUFFIX, n, ell))
        infos.append(SegmentInfo(read_index=i, kind=SUFFIX))
    return builder.build(), infos
