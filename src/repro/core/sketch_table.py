"""The per-trial sketch table S[1..T] (Fig. 2 of the paper).

Each trial's table is one **sorted** ``uint64`` array of packed
``(sketch k-mer value << 32) | subject id`` keys.  Because keys sort by
value first, looking up every query value of a trial is a pair of
``searchsorted`` calls, and the union of tables from different ranks
(the Allgatherv of step S3) is a concatenate-and-sort.
"""

from __future__ import annotations

import numpy as np

from ..errors import SketchError
from ..sketch.jem import pack_key, unpack_keys

__all__ = ["SketchTable", "TrialHits"]


class TrialHits:
    """Collisions of one trial's lookups, in flat (query, subject) form.

    Attributes
    ----------
    query_index:
        For every collision, the index of the query that produced it.
    subjects:
        The colliding subject id (parallel to ``query_index``).
    """

    __slots__ = ("query_index", "subjects")

    def __init__(self, query_index: np.ndarray, subjects: np.ndarray) -> None:
        self.query_index = query_index
        self.subjects = subjects

    def __len__(self) -> int:
        return int(self.query_index.size)


class SketchTable:
    """T per-trial sorted key arrays plus subject-count metadata."""

    __slots__ = ("keys", "n_subjects")

    def __init__(self, keys: list[np.ndarray], n_subjects: int) -> None:
        if not keys:
            raise SketchError("sketch table needs at least one trial")
        self.keys = [np.ascontiguousarray(k, dtype=np.uint64) for k in keys]
        for arr in self.keys:
            if arr.size > 1 and (arr[1:] < arr[:-1]).any():
                raise SketchError("trial key arrays must be sorted")
        self.n_subjects = int(n_subjects)

    # -- properties --------------------------------------------------------

    @property
    def trials(self) -> int:
        return len(self.keys)

    @property
    def total_entries(self) -> int:
        return int(sum(k.size for k in self.keys))

    @property
    def nbytes(self) -> int:
        """Bytes held by the key arrays — the Allgatherv volume of step S3."""
        return int(sum(k.nbytes for k in self.keys))

    # -- construction ------------------------------------------------------

    @classmethod
    def from_pairs(
        cls, per_trial_keys: list[np.ndarray], n_subjects: int, *, presorted: bool = True
    ) -> "SketchTable":
        """Build from per-trial packed-key arrays (sorting if needed)."""
        if presorted:
            return cls(per_trial_keys, n_subjects)
        return cls([np.unique(np.asarray(k, dtype=np.uint64)) for k in per_trial_keys], n_subjects)

    @classmethod
    def union(cls, parts: list["SketchTable"]) -> "SketchTable":
        """Union of tables built by different ranks — the S3 gather.

        Trials must agree across parts; duplicate keys (same sketch from the
        same subject observed on two ranks, impossible under disjoint
        partitions but tolerated) are collapsed.
        """
        if not parts:
            raise SketchError("cannot union zero tables")
        trials = parts[0].trials
        if any(p.trials != trials for p in parts):
            raise SketchError("trial count mismatch across table parts")
        merged = [
            np.unique(np.concatenate([p.keys[t] for p in parts])) for t in range(trials)
        ]
        return cls(merged, max(p.n_subjects for p in parts))

    # -- queries -----------------------------------------------------------

    def lookup_trial(self, t: int, query_values: np.ndarray) -> TrialHits:
        """All (query, subject) collisions of trial ``t``.

        ``query_values[i]`` is query i's sketch k-mer for this trial; every
        subject whose trial-t sketch list contains that k-mer is returned.
        """
        if not 0 <= t < self.trials:
            raise SketchError(f"trial {t} out of range [0, {self.trials})")
        keys = self.keys[t]
        qv = np.asarray(query_values, dtype=np.uint64)
        left = np.searchsorted(keys, pack_key(qv, np.zeros(qv.size, dtype=np.uint64)))
        right = np.searchsorted(
            keys, pack_key(qv, np.full(qv.size, 0xFFFFFFFF, dtype=np.uint64)), side="right"
        )
        lengths = right - left
        total = int(lengths.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return TrialHits(empty, empty)
        query_index = np.repeat(np.arange(qv.size, dtype=np.int64), lengths)
        # Gather the concatenation of keys[left[i]:right[i]] without a loop:
        # within each run, offsets count up from the run's 'left'.
        run_starts = np.zeros(qv.size, dtype=np.int64)
        np.cumsum(lengths[:-1], out=run_starts[1:])
        flat = np.arange(total, dtype=np.int64) - run_starts[query_index] + left[query_index]
        _, subjects = unpack_keys(keys[flat])
        return TrialHits(query_index, subjects)

    def lookup_scalar(self, t: int, value: int) -> np.ndarray:
        """Subjects colliding with one sketch value (reference/lazy path)."""
        hits = self.lookup_trial(t, np.array([value], dtype=np.uint64))
        return hits.subjects

    def values_of_trial(self, t: int) -> np.ndarray:
        """Distinct sketch values present in trial ``t`` (diagnostics)."""
        values, _ = unpack_keys(self.keys[t])
        return np.unique(values)

    # -- SketchStore protocol ----------------------------------------------

    def trial_keys(self, t: int) -> np.ndarray:
        """Trial ``t``'s sorted packed-key array (store-protocol accessor)."""
        if not 0 <= t < self.trials:
            raise SketchError(f"trial {t} out of range [0, {self.trials})")
        return self.keys[t]

    def as_table(self) -> "SketchTable":
        """This object — the packed table *is* the canonical table form."""
        return self
