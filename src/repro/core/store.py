"""Pluggable sketch stores — the resident form of the tables S[1..T].

The per-trial sketch tables of Algorithm 2 used to exist in exactly one
shape: the packed :class:`~repro.core.sketch_table.SketchTable`.  Every
consumer (hit counting, the parallel driver, the service, persistence,
shared memory) was welded to that one layout, so trying a different
resident representation meant touching five frontends at once.

This module introduces the :class:`SketchStore` protocol and two
implementations:

* :class:`DictSketchStore` — an adapter over the packed
  :class:`SketchTable` that answers lookups from per-trial Python dicts
  (``sketch value -> subject-id array``).  It is the *equivalence oracle*:
  a maximally simple, obviously correct lookup path the columnar store is
  tested against bit for bit, and the memory/throughput baseline the
  ``bench store`` experiment measures against.
* :class:`ColumnarSketchStore` — the production layout, following
  Minimap2's sorted-seed-array design (Li 2016, 2018): per trial, one
  **sorted** ``uint32`` sketch-value array plus a parallel ``uint32``
  contig-id array.  Batch lookup is a pair of ``np.searchsorted`` calls
  over the value column (half the key-compare traffic of the packed
  layout, and no per-lookup bound-key materialisation), feeding
  :func:`~repro.core.hitcounter.count_hits_vectorised` unchanged.  The
  store supports key-range sharding for partitioned lookup and zero-copy
  export over the :mod:`repro.parallel.shm` segments so worker processes
  attach instead of unpickling.

Every store is **order-preserving**: for the same trial keys, all three
layouts (packed table included) return identical
:class:`~repro.core.sketch_table.TrialHits` for any query batch — the
invariant the cross-frontend parity suite pins down.
"""

from __future__ import annotations

import sys
from typing import Protocol, runtime_checkable

import numpy as np

from ..errors import SketchError
from .sketch_table import SketchTable, TrialHits

__all__ = [
    "SketchStore",
    "DictSketchStore",
    "ColumnarSketchStore",
    "StoreShard",
    "STORE_KINDS",
    "DEFAULT_STORE_KIND",
    "build_store",
    "store_from_table",
    "shard_bounds",
    "lookup_trial_sharded",
]

#: Store kinds accepted by :func:`build_store` (first is the default).
STORE_KINDS = ("columnar", "dict", "packed")

#: What every frontend builds unless explicitly told otherwise.
DEFAULT_STORE_KIND = "columnar"

_LOW32 = np.uint64(0xFFFFFFFF)


@runtime_checkable
class SketchStore(Protocol):
    """Resident per-trial sketch tables, behind one lookup contract.

    ``lookup_trial(t, qv)`` returns every (query, subject) collision of
    trial ``t`` with hits ordered by (query index, subject id) — the order
    :func:`~repro.core.hitcounter.count_hits_vectorised` relies on for
    bit-identical best-hit selection across store implementations.

    :class:`~repro.core.sketch_table.SketchTable` itself satisfies this
    protocol (it is the "packed" store), so existing call sites keep
    working unchanged.
    """

    @property
    def trials(self) -> int: ...

    @property
    def n_subjects(self) -> int: ...

    @property
    def total_entries(self) -> int: ...

    @property
    def nbytes(self) -> int: ...

    def lookup_trial(self, t: int, query_values: np.ndarray) -> TrialHits: ...

    def lookup_scalar(self, t: int, value: int) -> np.ndarray: ...

    def values_of_trial(self, t: int) -> np.ndarray: ...

    def trial_keys(self, t: int) -> np.ndarray: ...

    def as_table(self) -> SketchTable: ...


def _check_query_values(qv: np.ndarray) -> np.ndarray:
    qv = np.asarray(qv, dtype=np.uint64)
    if qv.size and int(qv.max()) >> 32:
        raise SketchError("sketch values must fit in 32 bits (k <= 16)")
    return qv


class DictSketchStore:
    """Dict-backed adapter over the packed :class:`SketchTable` (the oracle).

    One Python dict per trial maps each distinct sketch value to the sorted
    array of subject ids carrying it.  Lookups walk the query batch in a
    Python loop — deliberately the simplest possible implementation, kept
    as the equivalence oracle and the baseline the ``bench store``
    experiment measures the columnar layout against.
    """

    __slots__ = ("_table", "_maps")

    def __init__(self, table: SketchTable) -> None:
        self._table = table
        self._maps: list[dict[int, np.ndarray]] = []
        for t in range(table.trials):
            values, subjects = _split_keys(table.keys[t])
            mapping: dict[int, np.ndarray] = {}
            if values.size:
                starts = np.concatenate(
                    [[0], np.flatnonzero(np.diff(values)) + 1, [values.size]]
                )
                for i in range(starts.size - 1):
                    lo, hi = int(starts[i]), int(starts[i + 1])
                    run = subjects[lo:hi]
                    # hits must come back in sorted-subject order (the merge
                    # contract the LSM layer and the columnar store share),
                    # not merely as a set — sort the rare unsorted run
                    if run.size > 1 and (run[1:] < run[:-1]).any():
                        run = np.sort(run)
                    mapping[int(values[lo])] = run
            self._maps.append(mapping)

    @classmethod
    def from_trial_keys(
        cls, keys: list[np.ndarray], n_subjects: int
    ) -> "DictSketchStore":
        return cls(SketchTable(keys, n_subjects))

    # -- protocol ----------------------------------------------------------

    @property
    def trials(self) -> int:
        return self._table.trials

    @property
    def n_subjects(self) -> int:
        return self._table.n_subjects

    @property
    def total_entries(self) -> int:
        return self._table.total_entries

    @property
    def nbytes(self) -> int:
        """Resident bytes of the dict machinery (not the wrapped table).

        Counts each trial's dict, its boxed integer keys and its subject
        arrays — the price actually paid to hold a dict-backed index in
        memory, which is what the store bench compares layouts on.
        """
        total = 0
        for mapping in self._maps:
            total += sys.getsizeof(mapping)
            for key, arr in mapping.items():
                total += sys.getsizeof(key) + sys.getsizeof(arr) + arr.nbytes
        return total

    def lookup_trial(self, t: int, query_values: np.ndarray) -> TrialHits:
        if not 0 <= t < self.trials:
            raise SketchError(f"trial {t} out of range [0, {self.trials})")
        qv = _check_query_values(query_values)
        mapping = self._maps[t]
        idx_chunks: list[np.ndarray] = []
        sub_chunks: list[np.ndarray] = []
        for i in range(qv.size):
            subjects = mapping.get(int(qv[i]))
            if subjects is not None:
                idx_chunks.append(np.full(subjects.size, i, dtype=np.int64))
                sub_chunks.append(subjects)
        if not idx_chunks:
            empty = np.empty(0, dtype=np.int64)
            return TrialHits(empty, empty)
        return TrialHits(np.concatenate(idx_chunks), np.concatenate(sub_chunks))

    def lookup_scalar(self, t: int, value: int) -> np.ndarray:
        return self.lookup_trial(t, np.array([value], dtype=np.uint64)).subjects

    def values_of_trial(self, t: int) -> np.ndarray:
        return self._table.values_of_trial(t)

    def trial_keys(self, t: int) -> np.ndarray:
        return self._table.keys[t]

    def as_table(self) -> SketchTable:
        return self._table

    #: packed-key view for call sites that iterate ``store.keys``
    @property
    def keys(self) -> list[np.ndarray]:
        return self._table.keys

    def __repr__(self) -> str:
        return (
            f"DictSketchStore(trials={self.trials}, "
            f"entries={self.total_entries}, n_subjects={self.n_subjects})"
        )


class ColumnarSketchStore:
    """Per-trial sorted value columns + parallel contig-id columns.

    ``values[t]`` is the sorted ``uint32`` sketch-value column of trial
    ``t`` and ``subjects[t]`` the parallel contig-id column; together they
    carry exactly the information of the packed key array, in the layout
    Minimap2 uses for its seed index.  Batch lookup binary-searches the
    value column directly — no bound-key materialisation, half the
    key-compare memory traffic — and the column pairs are flat arrays,
    ready for zero-copy publication in shared memory.
    """

    __slots__ = ("values", "subjects", "n_subjects", "_table", "_flat")

    def __init__(
        self,
        values: list[np.ndarray],
        subjects: list[np.ndarray],
        n_subjects: int,
    ) -> None:
        if not values or len(values) != len(subjects):
            raise SketchError("columnar store needs matching value/subject columns")
        self.values = [np.ascontiguousarray(v, dtype=np.uint32) for v in values]
        self.subjects = [np.ascontiguousarray(s, dtype=np.uint32) for s in subjects]
        for v, s in zip(self.values, self.subjects):
            if v.shape != s.shape:
                raise SketchError("value/subject column length mismatch")
            if v.size > 1 and (v[1:] < v[:-1]).any():
                raise SketchError("value columns must be sorted")
        self.n_subjects = int(n_subjects)
        self._table: SketchTable | None = None
        self._flat: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    @classmethod
    def from_trial_keys(
        cls, keys: list[np.ndarray], n_subjects: int
    ) -> "ColumnarSketchStore":
        """Split sorted packed-key arrays into (value, subject) columns.

        The packed keys sort by value first, subject second, so the split
        columns inherit exactly the order the packed lookups returned —
        which is what keeps the layouts bit-identical.
        """
        values: list[np.ndarray] = []
        subjects: list[np.ndarray] = []
        for k in keys:
            v, s = _split_keys(np.asarray(k, dtype=np.uint64))
            values.append(v)
            subjects.append(s)
        return cls(values, subjects, n_subjects)

    @classmethod
    def from_table(cls, table: SketchTable) -> "ColumnarSketchStore":
        store = cls.from_trial_keys(table.keys, table.n_subjects)
        store._table = table
        return store

    @classmethod
    def from_columns(
        cls, columns: list[np.ndarray], n_subjects: int
    ) -> "ColumnarSketchStore":
        """Rebuild from the flat column list of :meth:`export_columns`.

        ``columns`` alternates value/subject pairs per trial — the exact
        array list a shared-memory attach or a format-v3 bundle yields —
        so reconstruction is zero-copy.
        """
        if len(columns) % 2:
            raise SketchError("column list must pair values with subjects")
        return cls(columns[0::2], columns[1::2], n_subjects)

    def export_columns(self) -> list[np.ndarray]:
        """Flat [values_0, subjects_0, values_1, subjects_1, ...] list."""
        out: list[np.ndarray] = []
        for v, s in zip(self.values, self.subjects):
            out.append(v)
            out.append(s)
        return out

    def flat_columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The fused kernel's view: all trials in two flat arrays.

        Returns ``(values, subjects, offsets)`` where trial ``t`` occupies
        ``values[offsets[t]:offsets[t+1]]`` (and the same slice of
        ``subjects``) — :meth:`export_columns` concatenated once and cached,
        so repeated fused map calls pay zero copies after the first.
        """
        if self._flat is None:
            offsets = np.zeros(self.trials + 1, dtype=np.int64)
            np.cumsum([v.size for v in self.values], out=offsets[1:])
            self._flat = (
                np.ascontiguousarray(
                    np.concatenate(self.values)
                    if self.total_entries
                    else np.empty(0, dtype=np.uint32)
                ),
                np.ascontiguousarray(
                    np.concatenate(self.subjects)
                    if self.total_entries
                    else np.empty(0, dtype=np.uint32)
                ),
                offsets,
            )
        return self._flat

    def lookup_fused(
        self,
        query_values: np.ndarray,
        query_starts: np.ndarray,
        family,
        *,
        min_hits: int = 1,
        threads: int | None = None,
    ) -> "tuple[np.ndarray, np.ndarray] | None":
        """Fused native S4: sketch → lookup → vote in one C pass.

        ``query_values``/``query_starts`` are the concatenated minimizer
        ranks and per-segment offsets of a query block (the
        :func:`~repro.sketch.jem.query_kernel` layout — *pre-sketch*, so
        the native kernel hashes, binary-searches the value columns and
        runs the paper's lazy-update vote without ever materialising the
        (T, n) sketch matrix in Python).  Returns per-segment
        ``(best_subject, best_count)`` int64 arrays (-1/0 unmapped),
        bit-identical to sketching with :func:`query_kernel` and voting
        with :func:`~repro.core.hitcounter.count_hits_vectorised`; or
        ``None`` when the native library is unavailable (callers fall
        back to the numpy path).
        """
        from ..sketch import _native

        native = _native.load()
        if native is None:
            return None
        if family.size != self.trials:
            raise SketchError(
                f"{family.size} hash trials vs store with {self.trials}"
            )
        query_values = np.ascontiguousarray(query_values, dtype=np.uint64)
        if query_values.size and int(query_values.max()) >> 32:
            raise SketchError("sketch values must fit in 32 bits (k <= 16)")
        flat_values, flat_subjects, offsets = self.flat_columns()
        return native.map_block(
            query_values,
            np.ascontiguousarray(query_starts, dtype=np.int64),
            family,
            flat_values,
            flat_subjects,
            offsets,
            self.n_subjects,
            min_hits=min_hits,
            threads=threads,
        )

    # -- protocol ----------------------------------------------------------

    @property
    def trials(self) -> int:
        return len(self.values)

    @property
    def total_entries(self) -> int:
        return int(sum(v.size for v in self.values))

    @property
    def nbytes(self) -> int:
        """Resident bytes of the columns (the index's working-set size)."""
        return int(
            sum(v.nbytes for v in self.values) + sum(s.nbytes for s in self.subjects)
        )

    def lookup_trial(self, t: int, query_values: np.ndarray) -> TrialHits:
        """All (query, subject) collisions of trial ``t`` — batch lookup.

        One ``searchsorted`` pair over the value column finds every run of
        matching entries; the subject column is gathered with the same
        flat-index trick the packed table used, so hit order (query index
        ascending, subject ascending within a query) is preserved exactly.
        """
        if not 0 <= t < self.trials:
            raise SketchError(f"trial {t} out of range [0, {self.trials})")
        values = self.values[t]
        qv = _check_query_values(query_values).astype(np.uint32)
        left = np.searchsorted(values, qv, side="left")
        right = np.searchsorted(values, qv, side="right")
        lengths = right - left
        total = int(lengths.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return TrialHits(empty, empty)
        query_index = np.repeat(np.arange(qv.size, dtype=np.int64), lengths)
        run_starts = np.zeros(qv.size, dtype=np.int64)
        np.cumsum(lengths[:-1], out=run_starts[1:])
        flat = np.arange(total, dtype=np.int64) - run_starts[query_index] + left[query_index]
        return TrialHits(query_index, self.subjects[t][flat].astype(np.int64))

    def lookup_scalar(self, t: int, value: int) -> np.ndarray:
        return self.lookup_trial(t, np.array([value], dtype=np.uint64)).subjects

    def values_of_trial(self, t: int) -> np.ndarray:
        if not 0 <= t < self.trials:
            raise SketchError(f"trial {t} out of range [0, {self.trials})")
        return np.unique(self.values[t]).astype(np.uint64)

    def trial_keys(self, t: int) -> np.ndarray:
        """Repack trial ``t`` into the sorted packed-key layout."""
        if not 0 <= t < self.trials:
            raise SketchError(f"trial {t} out of range [0, {self.trials})")
        return (self.values[t].astype(np.uint64) << np.uint64(32)) | self.subjects[
            t
        ].astype(np.uint64)

    def as_table(self) -> SketchTable:
        """Packed :class:`SketchTable` view (repacked once, then cached)."""
        if self._table is None:
            self._table = SketchTable(
                [self.trial_keys(t) for t in range(self.trials)],
                n_subjects=self.n_subjects,
            )
        return self._table

    #: packed-key view for call sites that iterate ``store.keys``
    @property
    def keys(self) -> list[np.ndarray]:
        return self.as_table().keys

    # -- key-range sharding -------------------------------------------------

    def restrict(self, lo: int, hi: int) -> "StoreShard":
        """One key-range shard: this store restricted to values in ``[lo, hi)``.

        The single-shard building block behind :meth:`shard` — and the
        fleet supervisor's respawn path, which must rebuild exactly one
        replica's shard at the *current* placement boundaries without
        re-slicing every other shard.
        """
        lo, hi = int(lo), int(hi)
        values: list[np.ndarray] = []
        subjects: list[np.ndarray] = []
        for t in range(self.trials):
            a = int(np.searchsorted(self.values[t], np.uint32(lo), side="left"))
            b = (
                int(np.searchsorted(self.values[t], np.uint32(hi - 1), side="right"))
                if hi > lo
                else a
            )
            values.append(self.values[t][a:b])
            subjects.append(self.subjects[t][a:b])
        return StoreShard(
            store=ColumnarSketchStore(values, subjects, self.n_subjects),
            lo=lo,
            hi=hi,
        )

    def shard(self, n_shards: int) -> list["StoreShard"]:
        """Split into ``n_shards`` disjoint key-range shards.

        Boundaries come from :func:`shard_bounds` (equal-frequency over the
        pooled value columns) so shards carry comparable entry counts; each
        shard is itself a :class:`ColumnarSketchStore` restricted to
        ``[lo, hi)`` of the value space.  :func:`lookup_trial_sharded`
        routes a query batch across the shards and reassembles hits in
        the unsharded order — the partitioned-lookup building block.
        """
        bounds = shard_bounds(self, n_shards)
        return [
            self.restrict(int(bounds[i]), int(bounds[i + 1]))
            for i in range(n_shards)
        ]

    def __repr__(self) -> str:
        return (
            f"ColumnarSketchStore(trials={self.trials}, "
            f"entries={self.total_entries}, n_subjects={self.n_subjects})"
        )


class StoreShard:
    """One key-range shard: a columnar store owning values in ``[lo, hi)``."""

    __slots__ = ("store", "lo", "hi")

    def __init__(self, store: ColumnarSketchStore, lo: int, hi: int) -> None:
        self.store = store
        self.lo = int(lo)
        self.hi = int(hi)

    def owns(self, qv: np.ndarray) -> np.ndarray:
        qv = np.asarray(qv, dtype=np.uint64)
        return (qv >= np.uint64(self.lo)) & (qv < np.uint64(self.hi))

    def __repr__(self) -> str:
        return f"StoreShard([{self.lo:#x}, {self.hi:#x}), {self.store!r})"


def shard_bounds(store: ColumnarSketchStore, n_shards: int) -> np.ndarray:
    """Equal-frequency key-range boundaries over the pooled value columns.

    Returns ``n_shards + 1`` ascending bounds covering the full 32-bit
    value space (first is 0, last 2^32), chosen from quantiles of the
    concatenated trial values so every shard holds a comparable share of
    the entries regardless of how sketch values cluster.
    """
    if n_shards < 1:
        raise SketchError(f"n_shards must be >= 1, got {n_shards}")
    pooled = (
        np.concatenate(store.values)
        if store.total_entries
        else np.empty(0, dtype=np.uint32)
    )
    bounds = np.empty(n_shards + 1, dtype=np.int64)
    bounds[0] = 0
    bounds[-1] = 1 << 32
    if pooled.size == 0:
        interior = np.linspace(0, 1 << 32, n_shards + 1)[1:-1]
        bounds[1:-1] = interior.astype(np.int64)
        return bounds
    pooled = np.sort(pooled)
    for i in range(1, n_shards):
        q = pooled[min(int(round(i * pooled.size / n_shards)), pooled.size - 1)]
        bounds[i] = int(q)
    # boundaries must be non-decreasing even for tiny/pathological inputs
    np.maximum.accumulate(bounds, out=bounds)
    return bounds


def lookup_trial_sharded(
    shards: list[StoreShard], t: int, query_values: np.ndarray
) -> TrialHits:
    """Partitioned lookup: route a query batch across key-range shards.

    Each query value is answered by exactly the shard owning its key range
    (boundaries are disjoint by construction); the per-shard hits are
    stitched back together in ascending (query, subject) order, so the
    result equals the unsharded :meth:`ColumnarSketchStore.lookup_trial`
    bit for bit — asserted by the store test suite.
    """
    qv = _check_query_values(query_values)
    idx_chunks: list[np.ndarray] = []
    sub_chunks: list[np.ndarray] = []
    for shard in shards:
        mine = np.flatnonzero(shard.owns(qv))
        if mine.size == 0:
            continue
        hits = shard.store.lookup_trial(t, qv[mine])
        if len(hits):
            idx_chunks.append(mine[hits.query_index])
            sub_chunks.append(hits.subjects)
    if not idx_chunks:
        empty = np.empty(0, dtype=np.int64)
        return TrialHits(empty, empty)
    query_index = np.concatenate(idx_chunks)
    subjects = np.concatenate(sub_chunks)
    order = np.lexsort((subjects, query_index))
    return TrialHits(query_index[order], subjects[order])


def _split_keys(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split sorted packed keys into (uint32 values, uint32 subjects)."""
    keys = np.asarray(keys, dtype=np.uint64)
    return (
        (keys >> np.uint64(32)).astype(np.uint32),
        (keys & _LOW32).astype(np.uint32),
    )


def build_store(
    kind: str, trial_keys: list[np.ndarray], n_subjects: int
) -> "SketchStore":
    """Build a store of the requested kind from per-trial packed keys.

    ``kind`` is one of :data:`STORE_KINDS`; ``"packed"`` returns the plain
    :class:`SketchTable` (which satisfies the protocol), kept for
    comparisons and for callers that need the legacy object.
    """
    if kind == "columnar":
        return ColumnarSketchStore.from_trial_keys(trial_keys, n_subjects)
    if kind == "dict":
        return DictSketchStore.from_trial_keys(trial_keys, n_subjects)
    if kind == "packed":
        return SketchTable(trial_keys, n_subjects)
    raise SketchError(f"unknown store kind {kind!r}; expected one of {STORE_KINDS}")


def store_from_table(kind: str, table: SketchTable) -> "SketchStore":
    """Adapt an existing packed table to the requested store kind."""
    if kind == "columnar":
        return ColumnarSketchStore.from_table(table)
    if kind == "dict":
        return DictSketchStore(table)
    if kind == "packed":
        return table
    raise SketchError(f"unknown store kind {kind!r}; expected one of {STORE_KINDS}")
