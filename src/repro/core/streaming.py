"""Batched/streaming query mapping — bounded memory for huge read sets.

The paper's real-data input (O. sativa) has 532 K reads / 10.5 Gbp; loading
such a set wholesale is wasteful when the mapper only ever needs one batch
of end segments at a time.  :func:`map_reads_stream` consumes any record
iterator (e.g. :func:`repro.seq.iter_fastq`) in fixed-size batches and
yields per-batch results; :func:`map_file` wires it to a FASTA/FASTQ path.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING

from ..errors import MappingError
from ..seq.records import SeqRecord, SequenceSetBuilder
from .mapper import MappingResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Mapper

__all__ = ["map_reads_stream", "map_file"]


def map_reads_stream(
    mapper: "Mapper",
    records: Iterable[SeqRecord],
    *,
    batch_size: int = 1_000,
) -> Iterator[MappingResult]:
    """Yield one :class:`MappingResult` per batch of reads.

    ``mapper`` is any indexed :class:`~repro.core.engine.Mapper` (the
    engine's :meth:`~repro.core.engine.MappingEngine.map_stream` passes its
    resident one).  Segment rows follow the usual layout (two per read,
    prefix first); ``infos[i].read_index`` is the index *within the batch*.
    """
    if batch_size < 1:
        raise MappingError(f"batch_size must be >= 1, got {batch_size}")
    if not getattr(mapper, "is_indexed", True):
        raise MappingError("index() must be called before streaming")
    builder = SequenceSetBuilder()
    for record in records:
        builder.add(record.name, record.codes, record.meta)
        if len(builder) >= batch_size:
            yield mapper.map_reads(builder.build())
            builder = SequenceSetBuilder()
    if len(builder):
        yield mapper.map_reads(builder.build())


def map_file(
    mapper: "Mapper", path: str, *, batch_size: int = 1_000
) -> Iterator[MappingResult]:
    """Stream-map a FASTA/FASTQ file (gzip ok) against an indexed mapper."""
    if path.endswith((".fq", ".fastq", ".fq.gz", ".fastq.gz")):
        from ..seq.io_fastq import iter_fastq as reader
    else:
        from ..seq.io_fasta import iter_fasta as reader
    return map_reads_stream(mapper, reader(path), batch_size=batch_size)
