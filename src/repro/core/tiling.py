"""Interior (tiled) query segments — the contained-contig extension.

Section III-B.1's caveat: "for non-scaffolding applications, this
segment-based approach may not apply to cases where a contig may be
completely contained within an interior region of a long read.  In such
cases, an extension of the approach will be needed."

This module is that extension: in addition to the two end segments, the
read interior is tiled with ℓ-length segments at a configurable stride, so
a short contig lying wholly inside a long read still receives query
sketches drawn from its locus.  :func:`map_reads_tiled` aggregates the
per-tile best hits into the set of *all* contigs a read covers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import SequenceError
from ..seq.records import SequenceSet, SequenceSetBuilder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Mapper

__all__ = ["TileInfo", "extract_tiled_segments", "map_reads_tiled"]


@dataclass(frozen=True)
class TileInfo:
    """Provenance of one tiled segment."""

    read_index: int
    offset: int  # start of the tile within the read


def extract_tiled_segments(
    reads: SequenceSet, ell: int, *, stride: int | None = None
) -> tuple[SequenceSet, list[TileInfo]]:
    """Tile every read with ℓ-length segments (stride defaults to ℓ).

    The first tile is the read prefix and the last tile is the read suffix
    (it is shifted left so it never runs past the read end), so end-segment
    behaviour is a strict subset of tiled behaviour.
    """
    if ell < 1:
        raise SequenceError(f"segment length must be >= 1, got {ell}")
    stride = ell if stride is None else stride
    if stride < 1:
        raise SequenceError(f"stride must be >= 1, got {stride}")
    builder = SequenceSetBuilder()
    infos: list[TileInfo] = []
    for i in range(len(reads)):
        codes = reads.codes_of(i)
        n = codes.size
        if n == 0:
            raise SequenceError(f"read {reads.names[i]!r} is empty")
        meta = reads.metas[i]
        offsets = list(range(0, max(n - ell, 0) + 1, stride))
        if offsets[-1] != max(n - ell, 0):
            offsets.append(max(n - ell, 0))
        for off in offsets:
            seg = codes[off : off + ell]
            tile_meta = {"kind": "tile", "offset": off}
            if "ref_start" in meta and "ref_end" in meta:
                strand = int(meta.get("ref_strand", 1))
                if strand == 1:
                    tile_meta["ref_start"] = int(meta["ref_start"]) + off
                else:
                    tile_meta["ref_start"] = int(meta["ref_end"]) - off - seg.size
                tile_meta["ref_end"] = tile_meta["ref_start"] + seg.size
                tile_meta["ref_strand"] = strand
            builder.add(f"{reads.names[i]}/tile{off}", seg, tile_meta)
            infos.append(TileInfo(read_index=i, offset=off))
    return builder.build(), infos


def map_reads_tiled(
    mapper: "Mapper",
    reads: SequenceSet,
    *,
    stride: int | None = None,
    min_tile_hits: int | None = None,
) -> list[dict[int, int]]:
    """All contigs covered by each read, via tiled mapping.

    Returns one dict per read: ``{contig_id: supporting tiles}``.  A contig
    contained in the read interior shows up here even though neither end
    segment touches it.  ``mapper`` is any indexed
    :class:`~repro.core.engine.Mapper` (the engine's
    :meth:`~repro.core.engine.MappingEngine.map_tiled` passes its resident
    one); ℓ comes from the mapper's config (or its ``ell`` attribute).
    """
    ell = int(getattr(getattr(mapper, "config", mapper), "ell"))
    segments, infos = extract_tiled_segments(reads, ell, stride=stride)
    result = mapper.map_segments(segments)
    per_read: list[dict[int, int]] = [dict() for _ in range(len(reads))]
    for row, info in enumerate(infos):
        subject = int(result.subject[row])
        if subject < 0:
            continue
        bucket = per_read[info.read_index]
        bucket[subject] = bucket.get(subject, 0) + 1
    if min_tile_hits is not None and min_tile_hits > 1:
        per_read = [
            {c: n for c, n in bucket.items() if n >= min_tile_hits}
            for bucket in per_read
        ]
    return per_read
