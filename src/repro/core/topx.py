"""Top-x hit reporting — the extension Section IV-C sketches.

The paper observes that most recall loss comes from a wrong contig winning
the single best-hit slot, and that "if we are to extend our method to
report a fixed number, say top x hits per read, then several of the
missing contig hits could possibly be recovered."  This module implements
that extension: per query, the x most frequent colliding subjects, ranked
by (trial collisions desc, subject id asc).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MappingError
from .sketch_table import SketchTable

__all__ = ["TopHits", "count_hits_topx"]


@dataclass(frozen=True)
class TopHits:
    """Ranked hit lists: row per query, up to x columns.

    Unused slots hold subject -1 / count 0.  Rank 0 equals the single
    best hit of :func:`~repro.core.hitcounter.count_hits_vectorised`.
    """

    subjects: np.ndarray  # (n_queries, x) int64
    counts: np.ndarray  # (n_queries, x) int64

    def __post_init__(self) -> None:
        if self.subjects.shape != self.counts.shape or self.subjects.ndim != 2:
            raise MappingError("subjects/counts must be equal-shaped 2-d arrays")

    @property
    def x(self) -> int:
        return int(self.subjects.shape[1])

    def __len__(self) -> int:
        return int(self.subjects.shape[0])

    @property
    def best(self) -> np.ndarray:
        """Rank-0 subjects (the classic single best hit)."""
        return self.subjects[:, 0]

    def hit_any(self, truth_mask_fn) -> np.ndarray:
        """Bool per query: does *any* reported hit satisfy ``truth_mask_fn``?

        ``truth_mask_fn(query_idx, subjects)`` receives flat arrays and
        returns a bool array; used by recall@x evaluation.
        """
        n, x = self.subjects.shape
        q = np.repeat(np.arange(n, dtype=np.int64), x)
        s = self.subjects.reshape(-1)
        valid = s >= 0
        ok = np.zeros(n * x, dtype=bool)
        if valid.any():
            ok[valid] = truth_mask_fn(q[valid], s[valid])
        return ok.reshape(n, x).any(axis=1)


def count_hits_topx(
    table: SketchTable,
    query_values: np.ndarray,
    *,
    x: int = 3,
    min_hits: int = 1,
    query_mask: np.ndarray | None = None,
) -> TopHits:
    """Vectorised top-x selection over the whole query set.

    Same collision counting as the best-hit path, but keeping the first x
    rows per query of the (count desc, subject asc) ordering.
    """
    if x < 1:
        raise MappingError(f"x must be >= 1, got {x}")
    query_values = np.asarray(query_values, dtype=np.uint64)
    trials, n_queries = query_values.shape
    if trials != table.trials:
        raise MappingError(f"{trials} query trials vs table with {table.trials}")

    chunks: list[np.ndarray] = []
    for t in range(trials):
        hits = table.lookup_trial(t, query_values[t])
        if len(hits):
            chunks.append(
                (hits.query_index.astype(np.uint64) << np.uint64(32))
                | hits.subjects.astype(np.uint64)
            )
    subjects = np.full((n_queries, x), -1, dtype=np.int64)
    counts = np.zeros((n_queries, x), dtype=np.int64)
    if chunks:
        pairs = np.concatenate(chunks)
        uniq, multiplicity = np.unique(pairs, return_counts=True)
        q = (uniq >> np.uint64(32)).astype(np.int64)
        s = (uniq & np.uint64(0xFFFFFFFF)).astype(np.int64)
        keep = multiplicity >= min_hits
        q, s, multiplicity = q[keep], s[keep], multiplicity[keep]
        order = np.lexsort((s, -multiplicity, q))
        q, s, multiplicity = q[order], s[order], multiplicity[order]
        # rank within each query's run
        first = np.ones(q.size, dtype=bool)
        first[1:] = q[1:] != q[:-1]
        run_starts = np.flatnonzero(first)
        rank = np.arange(q.size, dtype=np.int64) - np.repeat(
            run_starts, np.diff(np.append(run_starts, q.size))
        )
        sel = rank < x
        subjects[q[sel], rank[sel]] = s[sel]
        counts[q[sel], rank[sel]] = multiplicity[sel]
    if query_mask is not None:
        query_mask = np.asarray(query_mask, dtype=bool)
        subjects[~query_mask] = -1
        counts[~query_mask] = 0
    return TopHits(subjects=subjects, counts=counts)
