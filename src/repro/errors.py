"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SequenceError",
    "ParseError",
    "ConfigError",
    "SketchError",
    "MappingError",
    "IndexCorruptError",
    "CommError",
    "FaultError",
    "RankTimeoutError",
    "PartialResultError",
    "CheckpointError",
    "ChaosError",
    "ServiceError",
    "ServiceClosedError",
    "ServiceOverloadError",
    "DeadlineExceededError",
    "AssemblyError",
    "DatasetError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SequenceError(ReproError):
    """Invalid sequence data (bad characters, empty input, bad lengths)."""


class ParseError(ReproError):
    """Malformed FASTA/FASTQ or other on-disk format."""

    def __init__(self, message: str, *, path: str | None = None, line: int | None = None):
        location = ""
        if path is not None:
            location += f"{path}"
        if line is not None:
            location += f":{line}"
        if location:
            message = f"{location}: {message}"
        super().__init__(message)
        self.path = path
        self.line = line


class ConfigError(ReproError):
    """Invalid configuration parameter combination."""


class SketchError(ReproError):
    """Failure while building or querying sketches."""


class MappingError(ReproError):
    """Failure in the mapping stage."""


class IndexCorruptError(MappingError):
    """A persisted index bundle is truncated, bit-rotted, or hand-edited.

    ``offset`` is the byte position in the file where reading first went
    wrong (best effort: the truncation point for short files, the bad zip
    member's header offset for payload corruption, ``None`` when the
    failure cannot be localised).  Subclasses :class:`MappingError` so
    existing corruption handling keeps working.
    """

    def __init__(self, message: str, *, path: str | None = None, offset: int | None = None):
        super().__init__(message)
        self.path = path
        self.offset = offset


class CommError(ReproError):
    """Misuse of the communicator / SPMD engine."""


class FaultError(ReproError):
    """A (possibly injected) fault hit a parallel work unit.

    Raised by the fault-injection hooks and by the recovery machinery when
    a work unit exhausts its retry budget.  The ``__cause__`` chain keeps
    the root fault visible through the retry wrapper.
    """


class RankTimeoutError(CommError):
    """One or more ranks failed to finish a phase within the deadline.

    ``ranks`` lists the stuck ranks so a caller (or operator) can tell a
    straggler from a global deadlock.
    """

    def __init__(self, message: str, *, ranks: tuple[int, ...] = ()):
        super().__init__(message)
        self.ranks = tuple(ranks)


class PartialResultError(ReproError):
    """Strict-mode signal that part of the query set could not be mapped.

    ``failed_reads`` names the reads whose blocks were lost; with
    ``strict=False`` the same information is returned as a
    :class:`~repro.parallel.faults.PartialResult` instead of raised.
    """

    def __init__(self, message: str, *, failed_reads: tuple[str, ...] = ()):
        super().__init__(message)
        self.failed_reads = tuple(failed_reads)


class CheckpointError(ReproError):
    """A checkpointed run cannot start, continue, or resume.

    Raised when a run directory's manifest disagrees with the requested
    configuration or inputs (resuming would silently mix incompatible
    results), or when the checkpoint structures are misused.
    """


class ChaosError(ReproError):
    """The chaos harness was misconfigured or a chaos cycle failed."""


class ServiceError(ReproError):
    """Failure inside the long-lived mapping service."""


class ServiceClosedError(ServiceError):
    """A request arrived after the service began draining or shut down."""


class ServiceOverloadError(ServiceError):
    """Admission control rejected a request because the queue is full.

    ``retry_after`` is the service's estimate (seconds) of when capacity
    will free up, suitable for a Retry-After style client backoff.
    """

    def __init__(self, message: str, *, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class DeadlineExceededError(ServiceError):
    """A request's deadline expired before its batch was dispatched.

    The service sheds such requests instead of mapping them: the caller
    has already given up, so computing the answer would only steal
    capacity from requests that can still meet their deadlines.
    ``elapsed`` is how long the request had been queued when it was shed.
    """

    def __init__(self, message: str, *, elapsed: float = 0.0):
        super().__init__(message)
        self.elapsed = float(elapsed)


class AssemblyError(ReproError):
    """Failure inside the de Bruijn graph assembler."""


class DatasetError(ReproError):
    """Unknown dataset name or inconsistent dataset artifacts."""
