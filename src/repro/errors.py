"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SequenceError",
    "ParseError",
    "ConfigError",
    "SketchError",
    "MappingError",
    "CommError",
    "FaultError",
    "RankTimeoutError",
    "PartialResultError",
    "ServiceError",
    "ServiceClosedError",
    "ServiceOverloadError",
    "AssemblyError",
    "DatasetError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SequenceError(ReproError):
    """Invalid sequence data (bad characters, empty input, bad lengths)."""


class ParseError(ReproError):
    """Malformed FASTA/FASTQ or other on-disk format."""

    def __init__(self, message: str, *, path: str | None = None, line: int | None = None):
        location = ""
        if path is not None:
            location += f"{path}"
        if line is not None:
            location += f":{line}"
        if location:
            message = f"{location}: {message}"
        super().__init__(message)
        self.path = path
        self.line = line


class ConfigError(ReproError):
    """Invalid configuration parameter combination."""


class SketchError(ReproError):
    """Failure while building or querying sketches."""


class MappingError(ReproError):
    """Failure in the mapping stage."""


class CommError(ReproError):
    """Misuse of the communicator / SPMD engine."""


class FaultError(ReproError):
    """A (possibly injected) fault hit a parallel work unit.

    Raised by the fault-injection hooks and by the recovery machinery when
    a work unit exhausts its retry budget.  The ``__cause__`` chain keeps
    the root fault visible through the retry wrapper.
    """


class RankTimeoutError(CommError):
    """One or more ranks failed to finish a phase within the deadline.

    ``ranks`` lists the stuck ranks so a caller (or operator) can tell a
    straggler from a global deadlock.
    """

    def __init__(self, message: str, *, ranks: tuple[int, ...] = ()):
        super().__init__(message)
        self.ranks = tuple(ranks)


class PartialResultError(ReproError):
    """Strict-mode signal that part of the query set could not be mapped.

    ``failed_reads`` names the reads whose blocks were lost; with
    ``strict=False`` the same information is returned as a
    :class:`~repro.parallel.faults.PartialResult` instead of raised.
    """

    def __init__(self, message: str, *, failed_reads: tuple[str, ...] = ()):
        super().__init__(message)
        self.failed_reads = tuple(failed_reads)


class ServiceError(ReproError):
    """Failure inside the long-lived mapping service."""


class ServiceClosedError(ServiceError):
    """A request arrived after the service began draining or shut down."""


class ServiceOverloadError(ServiceError):
    """Admission control rejected a request because the queue is full.

    ``retry_after`` is the service's estimate (seconds) of when capacity
    will free up, suitable for a Retry-After style client backoff.
    """

    def __init__(self, message: str, *, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class AssemblyError(ReproError):
    """Failure inside the de Bruijn graph assembler."""


class DatasetError(ReproError):
    """Unknown dataset name or inconsistent dataset artifacts."""
