"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SequenceError",
    "ParseError",
    "ConfigError",
    "SketchError",
    "MappingError",
    "CommError",
    "AssemblyError",
    "DatasetError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SequenceError(ReproError):
    """Invalid sequence data (bad characters, empty input, bad lengths)."""


class ParseError(ReproError):
    """Malformed FASTA/FASTQ or other on-disk format."""

    def __init__(self, message: str, *, path: str | None = None, line: int | None = None):
        location = ""
        if path is not None:
            location += f"{path}"
        if line is not None:
            location += f":{line}"
        if location:
            message = f"{location}: {message}"
        super().__init__(message)
        self.path = path
        self.line = line


class ConfigError(ReproError):
    """Invalid configuration parameter combination."""


class SketchError(ReproError):
    """Failure while building or querying sketches."""


class MappingError(ReproError):
    """Failure in the mapping stage."""


class CommError(ReproError):
    """Misuse of the communicator / SPMD engine."""


class AssemblyError(ReproError):
    """Failure inside the de Bruijn graph assembler."""


class DatasetError(ReproError):
    """Unknown dataset name or inconsistent dataset artifacts."""
