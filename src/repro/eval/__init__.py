"""Evaluation: benchmark truth (Fig. 4), metrics, datasets (Table I), pipeline."""

from .datasets import (
    DATASETS,
    DEFAULT_SCALE,
    LARGE_DATASETS,
    Dataset,
    DatasetSpec,
    dataset_names,
    generate_dataset,
    load_or_generate,
)
from .coverage import ContigCoverage, contig_coverage
from .metrics import QualityReport, evaluate_mapping, recall_at_x, threshold_sweep
from .pipeline import ExperimentResult, MapperRun, prepare_benchmark, run_mappers
from .report import format_seconds, render_series, render_table
from .truth import Benchmark, build_benchmark, place_contigs

__all__ = [
    "DATASETS",
    "DEFAULT_SCALE",
    "LARGE_DATASETS",
    "Dataset",
    "DatasetSpec",
    "dataset_names",
    "generate_dataset",
    "load_or_generate",
    "QualityReport",
    "evaluate_mapping",
    "recall_at_x",
    "threshold_sweep",
    "ContigCoverage",
    "contig_coverage",
    "ExperimentResult",
    "MapperRun",
    "prepare_benchmark",
    "run_mappers",
    "format_seconds",
    "render_series",
    "render_table",
    "Benchmark",
    "build_benchmark",
    "place_contigs",
]
