"""Per-contig mapping coverage — QC for the scaffolding use-case.

For hybrid scaffolding, what matters is not only segment-level precision
but whether every contig *end* accumulates read-end evidence: a contig
whose ends attract no mappings can never be linked into a scaffold.  This
module aggregates a :class:`MappingResult` into per-contig counts and
flags "dark" contigs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.mapper import MappingResult
from ..errors import MappingError
from ..seq.records import SequenceSet

__all__ = ["ContigCoverage", "contig_coverage"]


@dataclass(frozen=True)
class ContigCoverage:
    """Mapping-evidence counts per contig."""

    hits: np.ndarray  # segments mapped to each contig
    n_contigs: int
    n_segments: int

    @property
    def dark_contigs(self) -> np.ndarray:
        """Indices of contigs that attracted no mappings at all."""
        return np.flatnonzero(self.hits == 0)

    @property
    def dark_fraction(self) -> float:
        return self.dark_contigs.size / self.n_contigs if self.n_contigs else 0.0

    @property
    def mean_hits(self) -> float:
        return float(self.hits.mean()) if self.n_contigs else 0.0

    @property
    def max_hits(self) -> int:
        return int(self.hits.max()) if self.n_contigs else 0

    def format_report(self, contig_names: list[str] | None = None, *, top: int = 5) -> str:
        lines = [
            f"contig coverage: {self.n_segments:,} mapped segments over "
            f"{self.n_contigs:,} contigs "
            f"(mean {self.mean_hits:.1f}, max {self.max_hits})",
            f"dark contigs (no evidence): {self.dark_contigs.size} "
            f"({100 * self.dark_fraction:.1f}%)",
        ]
        order = np.argsort(self.hits)[::-1][:top]
        for idx in order:
            label = contig_names[int(idx)] if contig_names else f"#{int(idx)}"
            lines.append(f"  {label}: {int(self.hits[idx])} segments")
        return "\n".join(lines)


def contig_coverage(result: MappingResult, contigs: SequenceSet) -> ContigCoverage:
    """Count mapped segments per contig (repeat-magnet and dark-contig QC)."""
    n = len(contigs)
    if n == 0:
        raise MappingError("empty contig set")
    mapped = result.subject[result.subject >= 0]
    if mapped.size and int(mapped.max()) >= n:
        raise MappingError(
            f"mapping references contig {int(mapped.max())} outside set of {n}"
        )
    hits = np.bincount(mapped, minlength=n).astype(np.int64)
    return ContigCoverage(hits=hits, n_contigs=n, n_segments=int(mapped.size))
