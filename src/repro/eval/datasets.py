"""Dataset registry — the eight Table I inputs, scaled.

Each :class:`DatasetSpec` mirrors one organism row of Table I: genome size,
repeat character (which drives contig fragmentation and mapping precision),
short-read coverage feeding the assembler, and the HiFi read profile.  The
``scale`` parameter shrinks genomes so the full suite runs on one machine
in minutes; Table I's *relative* statistics (contig counts and length
distributions across organisms, read counts at 10x coverage) are preserved.

Generated datasets are cached as ``.npz`` bundles keyed by
(name, scale, seed) so the seven benchmark programs can share them.
"""

from __future__ import annotations

import os
import zipfile
import zlib
from dataclasses import dataclass, field

import numpy as np

from ..assembly import AssemblyConfig, assemble
from ..errors import DatasetError
from ..seq.packed import pack_codes, unpack_codes
from ..seq.records import SequenceSet
from ..simulate import (
    GenomeProfile,
    HiFiProfile,
    IlluminaProfile,
    simulate_genome,
    simulate_hifi_reads,
    simulate_short_reads,
)

__all__ = ["DatasetSpec", "Dataset", "DATASETS", "dataset_names", "generate_dataset", "load_or_generate"]

#: Default genome scale: 1/200 of the organism's true size (floored below).
DEFAULT_SCALE = 1.0 / 200.0

#: Smallest genome generated regardless of scale (keeps tiny bacteria viable).
MIN_GENOME = 100_000


@dataclass(frozen=True)
class DatasetSpec:
    """One Table I input, parameterised for regeneration at any scale."""

    name: str
    organism: str
    full_genome_length: int
    repeat_fraction: float
    repeat_divergence: float
    repeat_length: int
    short_read_coverage: float
    hifi_coverage: float = 10.0
    hifi_median_length: int = 10_000
    assembly_k: int = 25
    assembly_min_count: int = 3
    min_contig_length: int = 300
    is_real_like: bool = False

    def genome_length(self, scale: float) -> int:
        return max(int(self.full_genome_length * scale), MIN_GENOME)

    def genome_profile(self, scale: float) -> GenomeProfile:
        return GenomeProfile(
            length=self.genome_length(scale),
            repeat_fraction=self.repeat_fraction,
            repeat_divergence=self.repeat_divergence,
            repeat_length=self.repeat_length,
        )

    def hifi_profile(self, scale: float) -> HiFiProfile:
        median = min(self.hifi_median_length, max(2_000, self.genome_length(scale) // 4))
        return HiFiProfile(
            coverage=self.hifi_coverage,
            median_length=median,
            min_length=min(1_000, median),
        )

    def illumina_profile(self) -> IlluminaProfile:
        return IlluminaProfile(coverage=self.short_read_coverage)

    def assembly_config(self) -> AssemblyConfig:
        return AssemblyConfig(
            k=self.assembly_k,
            min_count=self.assembly_min_count,
            min_contig_length=self.min_contig_length,
        )


@dataclass
class Dataset:
    """A generated dataset: reference genome, contigs (S), long reads (Q)."""

    spec: DatasetSpec
    scale: float
    seed: int
    genome: np.ndarray
    contigs: SequenceSet
    reads: SequenceSet

    @property
    def name(self) -> str:
        return self.spec.name


# Bacterial genomes assemble into long contigs (Table I: ~12-13 kbp mean);
# eukaryotes are repeat-rich and fragment into ~2-3.5 kbp contigs.  Repeat
# fraction/divergence and short-read coverage are tuned to reproduce that
# contrast at reduced scale.
DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        # Repeat parameters are calibrated so assembled contig length
        # statistics track Table I: bacteria ~ 7-12 kbp mean contigs,
        # nematode/fish ~ 2-3.5 kbp, fly ~ 2.5 kbp, human/rice ~ 2 kbp.
        # Short (300-400 bp) lightly-diverged repeats fragment the de
        # Bruijn graph (any >= 25 bp exact copy branches it) while leaving
        # 1000 bp end segments mostly unique — the same balance real
        # transposon landscapes strike.
        DatasetSpec(
            name="e_coli", organism="E. coli",
            full_genome_length=4_641_652,
            repeat_fraction=0.004, repeat_divergence=0.05, repeat_length=1_000,
            short_read_coverage=25.0,
        ),
        DatasetSpec(
            name="p_aeruginosa", organism="P. aeruginosa",
            full_genome_length=6_264_404,
            repeat_fraction=0.006, repeat_divergence=0.05, repeat_length=1_000,
            short_read_coverage=25.0,
        ),
        DatasetSpec(
            name="c_elegans", organism="C. elegans",
            full_genome_length=100_286_401,
            repeat_fraction=0.07, repeat_divergence=0.01, repeat_length=400,
            short_read_coverage=25.0,
        ),
        DatasetSpec(
            name="d_busckii", organism="D. busckii",
            full_genome_length=118_492_362,
            repeat_fraction=0.08, repeat_divergence=0.01, repeat_length=400,
            short_read_coverage=25.0,
        ),
        DatasetSpec(
            name="human_chr7", organism="Human chr 7",
            full_genome_length=159_345_973,
            repeat_fraction=0.12, repeat_divergence=0.015, repeat_length=400,
            short_read_coverage=25.0,
        ),
        DatasetSpec(
            name="human_chr8", organism="Human chr 8",
            full_genome_length=145_138_636,
            repeat_fraction=0.12, repeat_divergence=0.015, repeat_length=400,
            short_read_coverage=25.0,
        ),
        DatasetSpec(
            name="b_splendens", organism="B. splendens",
            full_genome_length=339_050_970,
            repeat_fraction=0.06, repeat_divergence=0.01, repeat_length=400,
            short_read_coverage=25.0,
        ),
        DatasetSpec(
            name="o_sativa_chr8", organism="O. sativa chr 8 (real-like)",
            full_genome_length=28_443_022,
            repeat_fraction=0.12, repeat_divergence=0.015, repeat_length=400,
            short_read_coverage=25.0,
            hifi_coverage=25.0, hifi_median_length=19_600,
            is_real_like=True,
        ),
    ]
}

#: The inputs Table II / Fig. 7 call "larger".
LARGE_DATASETS = (
    "c_elegans", "d_busckii", "human_chr7", "human_chr8", "b_splendens", "o_sativa_chr8",
)


def dataset_names() -> list[str]:
    return list(DATASETS)


def generate_dataset(
    name: str, *, scale: float = DEFAULT_SCALE, seed: int = 0
) -> Dataset:
    """Generate one dataset from scratch: genome → short reads → contigs; HiFi reads."""
    if name not in DATASETS:
        raise DatasetError(f"unknown dataset {name!r}; known: {', '.join(DATASETS)}")
    if scale <= 0:
        raise DatasetError(f"scale must be > 0, got {scale}")
    spec = DATASETS[name]
    rng = np.random.default_rng(
        np.random.SeedSequence([seed, zlib.crc32(name.encode("ascii"))])
    )
    genome = simulate_genome(spec.genome_profile(scale), rng)
    short_reads = simulate_short_reads(genome, spec.illumina_profile(), rng)
    contigs = assemble(short_reads, spec.assembly_config())
    if len(contigs) == 0:
        raise DatasetError(f"dataset {name!r}: assembly produced no contigs")
    reads = simulate_hifi_reads(genome, spec.hifi_profile(scale), rng)
    return Dataset(spec=spec, scale=scale, seed=seed, genome=genome, contigs=contigs, reads=reads)


# -- on-disk caching ---------------------------------------------------------


def _save_set(npz: dict, prefix: str, sequences: SequenceSet, with_truth: bool) -> None:
    packed, invalid = pack_codes(sequences.buffer)
    npz[f"{prefix}_packed"] = packed
    npz[f"{prefix}_invalid"] = invalid
    npz[f"{prefix}_offsets"] = sequences.offsets
    npz[f"{prefix}_names"] = np.array(sequences.names)
    if with_truth:
        npz[f"{prefix}_start"] = np.array(
            [m.get("ref_start", -1) for m in sequences.metas], dtype=np.int64
        )
        npz[f"{prefix}_end"] = np.array(
            [m.get("ref_end", -1) for m in sequences.metas], dtype=np.int64
        )
        npz[f"{prefix}_strand"] = np.array(
            [m.get("ref_strand", 1) for m in sequences.metas], dtype=np.int64
        )


def _load_set(data, prefix: str, with_truth: bool) -> SequenceSet:
    offsets = data[f"{prefix}_offsets"]
    if f"{prefix}_packed" in data:
        buffer = unpack_codes(
            data[f"{prefix}_packed"], int(offsets[-1]), data[f"{prefix}_invalid"]
        )
    else:  # pre-packing cache format
        buffer = data[f"{prefix}_buffer"]
    names = [str(n) for n in data[f"{prefix}_names"]]
    metas = None
    if with_truth:
        starts = data[f"{prefix}_start"]
        ends = data[f"{prefix}_end"]
        strands = data[f"{prefix}_strand"]
        metas = [
            {"ref_start": int(s), "ref_end": int(e), "ref_strand": int(st)}
            for s, e, st in zip(starts, ends, strands)
        ]
    return SequenceSet(buffer, offsets, names, metas)


def load_or_generate(
    name: str,
    *,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
    cache_dir: str | os.PathLike | None = None,
) -> Dataset:
    """Generate a dataset, reusing an ``.npz`` cache when available."""
    if cache_dir is None:
        return generate_dataset(name, scale=scale, seed=seed)
    os.makedirs(cache_dir, exist_ok=True)
    tag = f"{name}_s{scale:.6f}_r{seed}".replace(".", "p")
    path = os.path.join(os.fspath(cache_dir), f"{tag}.npz")
    if os.path.exists(path):
        try:
            with np.load(path, allow_pickle=False) as data:
                if "genome_packed" in data:
                    genome = unpack_codes(
                        data["genome_packed"], int(data["genome_len"]), data["genome_invalid"]
                    )
                else:  # pre-packing cache format
                    genome = data["genome"]
                return Dataset(
                    spec=DATASETS[name],
                    scale=scale,
                    seed=seed,
                    genome=genome,
                    contigs=_load_set(data, "contigs", with_truth=False),
                    reads=_load_set(data, "reads", with_truth=True),
                )
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            # A truncated or otherwise unreadable cache file (interrupted
            # write, checkout mangling a binary) is a cache miss, not an
            # error: fall through and regenerate deterministically.
            pass
    dataset = generate_dataset(name, scale=scale, seed=seed)
    g_packed, g_invalid = pack_codes(dataset.genome)
    payload: dict = {
        "genome_packed": g_packed,
        "genome_invalid": g_invalid,
        "genome_len": np.int64(dataset.genome.size),
    }
    _save_set(payload, "contigs", dataset.contigs, with_truth=False)
    _save_set(payload, "reads", dataset.reads, with_truth=True)
    np.savez_compressed(path, **payload)
    return dataset
