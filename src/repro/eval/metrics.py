"""Quality metrics — the TP/FP/FN/TN classification of Section IV-B.

Given the benchmark ``Bench`` (all true pairs) and a mapper's output
``Test`` (at most one best-hit pair per segment), classification is at
segment granularity — a segment can satisfy the benchmark with any one of
its true contigs, since "there is room for only one best hit":

* TP — a mapped segment whose output pair is in Bench;
* FP — a mapped segment whose output pair is not in Bench;
* FN — a segment that has at least one true contig but was not recalled
  (either unmapped, or mapped to a wrong contig — which is why the paper
  notes every false positive is by implication also a false negative, and
  recall is upper-bounded by precision);
* TN — segments with no true contig that were correctly left unmapped.

precision = TP / (TP + FP);  recall = TP / (TP + FN).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.mapper import MappingResult
from .truth import Benchmark

__all__ = ["QualityReport", "evaluate_mapping", "recall_at_x", "threshold_sweep"]


@dataclass(frozen=True)
class QualityReport:
    """Confusion counts and derived rates for one mapper on one dataset."""

    tp: int
    fp: int
    fn: int
    tn: int
    n_segments: int
    n_mapped: int

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0

    def format_row(self, label: str = "") -> str:
        return (
            f"{label:<24} precision={100 * self.precision:6.2f}%  "
            f"recall={100 * self.recall:6.2f}%  "
            f"TP={self.tp} FP={self.fp} FN={self.fn}  "
            f"mapped={self.n_mapped}/{self.n_segments}"
        )


def threshold_sweep(
    result: MappingResult, bench: Benchmark, thresholds: "np.ndarray | list[int]"
) -> list[QualityReport]:
    """Precision/recall at increasing hit-count thresholds.

    A mapping is kept at threshold h iff its trial-collision count is >= h;
    the best hit itself never changes, so one mapping run yields the whole
    confidence curve.  Raising h trades recall for precision — the
    "algorithmic optimizations to further improve quality" axis the paper's
    future work names.
    """
    reports = []
    for h in thresholds:
        keep = result.hit_count >= int(h)
        filtered = MappingResult(
            segment_names=result.segment_names,
            subject=np.where(keep, result.subject, -1),
            hit_count=np.where(keep, result.hit_count, 0),
            infos=result.infos,
        )
        reports.append(evaluate_mapping(filtered, bench))
    return reports


def recall_at_x(tophits, bench: Benchmark) -> float:
    """Fraction of truth-bearing segments recovered by *any* of the top-x hits.

    At x = 1 this equals :func:`evaluate_mapping`'s recall; the paper's
    Section IV-C argues it rises quickly with x because most recall loss is
    a near-miss in the best-hit slot.
    """
    recovered = tophits.hit_any(
        lambda q, s: bench.contains(q.astype(np.uint64), s.astype(np.uint64))
    )
    n_with_truth = int(bench.segment_has_truth.sum())
    if n_with_truth == 0:
        return 0.0
    return float((recovered & bench.segment_has_truth).sum()) / n_with_truth


def evaluate_mapping(result: MappingResult, bench: Benchmark) -> QualityReport:
    """Score a mapping against the benchmark at segment granularity."""
    mapped = result.mapped_mask
    seg_idx = np.flatnonzero(mapped)
    subjects = result.subject[mapped]
    is_true = bench.contains(seg_idx.astype(np.uint64), subjects.astype(np.uint64))
    tp = int(is_true.sum())
    fp = int((~is_true).sum())
    n_with_truth = int(bench.segment_has_truth.sum())
    fn = n_with_truth - tp
    tn = bench.n_segments - n_with_truth - int((~bench.segment_has_truth[seg_idx]).sum())
    return QualityReport(
        tp=tp,
        fp=fp,
        fn=fn,
        tn=max(tn, 0),
        n_segments=bench.n_segments,
        n_mapped=int(mapped.sum()),
    )
