"""End-to-end experiment pipeline: dataset → mappers → benchmark → metrics.

This is the glue the figure/table experiments build on: given a dataset it
extracts the 2m end segments, builds the Fig. 4 benchmark once, runs any
subset of the three mappers with wall-clock timing, and scores each against
the benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.config import JEMConfig
from ..core.engine import MAPPER_KINDS, PipelineConfig, build_mapper
from ..core.mapper import MappingResult
from ..core.segments import extract_end_segments
from ..errors import DatasetError, MappingError
from ..seq.records import SequenceSet
from .datasets import Dataset
from .metrics import QualityReport, evaluate_mapping
from .truth import Benchmark, build_benchmark

__all__ = ["MapperRun", "ExperimentResult", "prepare_benchmark", "run_mappers"]


@dataclass
class MapperRun:
    """One mapper's output on one dataset, with timing split."""

    label: str
    result: MappingResult
    quality: QualityReport
    index_seconds: float
    map_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.index_seconds + self.map_seconds


@dataclass
class ExperimentResult:
    """All mapper runs for one dataset plus the shared benchmark."""

    dataset_name: str
    benchmark: Benchmark
    runs: dict[str, MapperRun] = field(default_factory=dict)

    def __getitem__(self, label: str) -> MapperRun:
        return self.runs[label]


def prepare_benchmark(
    dataset: Dataset, config: JEMConfig
) -> tuple[SequenceSet, list, Benchmark]:
    """Extract end segments and build the ground-truth benchmark."""
    segments, infos = extract_end_segments(dataset.reads, config.ell)
    bench = build_benchmark(segments, dataset.contigs, dataset.genome, k=config.k)
    return segments, infos, bench


def run_mappers(
    dataset: Dataset,
    config: JEMConfig | None = None,
    *,
    mappers: tuple[str, ...] = ("jem", "mashmap"),
    benchmark: Benchmark | None = None,
    segments: SequenceSet | None = None,
    infos=None,
) -> ExperimentResult:
    """Run the requested mappers on a dataset and score them.

    ``mappers`` may contain any registered mapper name (``"jem"``,
    ``"mashmap"``, ``"minhash"``, ``"minimap-lite"``); construction goes
    through the engine's mapper registry, so a custom
    :func:`~repro.core.engine.register_mapper` entry works here too.
    A pre-built benchmark/segment set can be passed to amortise truth
    construction across parameter sweeps (Fig. 6 reuses one benchmark for
    every T).
    """
    config = config if config is not None else JEMConfig()
    if segments is None or benchmark is None:
        segments, infos, benchmark = prepare_benchmark(dataset, config)
    out = ExperimentResult(dataset_name=dataset.name, benchmark=benchmark)
    for label in mappers:
        try:
            # Mashmap runs with its own (denser) winnowing default, just as
            # the paper ran the stock tool rather than forcing JEM's w.
            mapper = build_mapper(PipelineConfig(jem=config, mapper=label))
        except MappingError:
            raise DatasetError(
                f"unknown mapper label {label!r}; registered: {MAPPER_KINDS}"
            ) from None
        t0 = time.perf_counter()
        mapper.index(dataset.contigs)
        t1 = time.perf_counter()
        result = mapper.map_segments(segments, infos)
        t2 = time.perf_counter()
        out.runs[label] = MapperRun(
            label=label,
            result=result,
            quality=evaluate_mapping(result, benchmark),
            index_seconds=t1 - t0,
            map_seconds=t2 - t1,
        )
    return out
