"""Plain-text rendering of tables and figure series.

Every experiment prints through these helpers so benchmark output looks
like the paper's tables: one row per input, aligned columns, and explicit
series for the figures.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "render_series", "format_seconds"]


def format_seconds(seconds: float) -> str:
    if seconds >= 100:
        return f"{seconds:,.0f}s"
    if seconds >= 1:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def render_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """ASCII table with auto-sized columns."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[j]), *(len(row[j]) for row in cells)) if cells else len(headers[j])
        for j in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    title: str, x_label: str, xs: Sequence[object], series: dict[str, Sequence[float]],
    *, fmt: str = "{:.4g}",
) -> str:
    """A figure rendered as one column per x value, one row per series."""
    headers = [x_label] + [str(x) for x in xs]
    rows = [[name] + [fmt.format(v) for v in values] for name, values in series.items()]
    return render_table(title, headers, rows)
