"""Benchmark construction — Section IV-B and Fig. 4 of the paper.

``Bench`` is the set of all true ⟨read end segment, contig⟩ pairs: a
segment truly maps to a contig iff their reference-coordinate intervals
intersect in at least k positions (k = the mapper's k-mer size).

Coordinates come from two places, exactly as in the paper:

* segments: the read simulator records each read's source interval, and
  :func:`~repro.core.segments.extract_end_segments` projects it onto the
  prefix/suffix (this replaces "extract the coordinates of the long reads
  with Minimap2" — the simulator's truth is strictly better);
* contigs: placed on the reference with minimap-lite
  (:class:`~repro.baselines.minimap_lite.MinimapLite`), the stand-in for
  the paper's Minimap2 pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.minimap_lite import MinimapLite
from ..errors import DatasetError
from ..seq.records import SequenceSet

__all__ = ["Benchmark", "place_contigs", "build_benchmark"]


@dataclass(frozen=True)
class Benchmark:
    """True segment→contig pairs plus interval bookkeeping.

    ``pair_keys`` holds packed ``(segment_index << 32) | contig_id`` for
    every true pair, sorted — membership tests are ``searchsorted``.
    """

    pair_keys: np.ndarray
    n_segments: int
    n_contigs: int
    segment_has_truth: np.ndarray  # segments with >= 1 true contig

    @property
    def n_pairs(self) -> int:
        return int(self.pair_keys.size)

    def contains(self, segment_idx: np.ndarray, contig_id: np.ndarray) -> np.ndarray:
        """Vectorised membership: is each (segment, contig) pair true?"""
        segment_idx = np.asarray(segment_idx, dtype=np.uint64)
        contig_id = np.asarray(contig_id, dtype=np.uint64)
        keys = (segment_idx << np.uint64(32)) | contig_id
        pos = np.searchsorted(self.pair_keys, keys)
        ok = pos < self.pair_keys.size
        out = np.zeros(keys.shape, dtype=bool)
        out[ok] = self.pair_keys[pos[ok]] == keys[ok]
        return out


def place_contigs(
    contigs: SequenceSet, reference: np.ndarray, *, k: int = 14, w: int = 12
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reference intervals of every contig via minimap-lite.

    Returns ``(starts, ends, placed_mask)``; unplaceable contigs get
    (-1, -1) and a false mask entry.
    """
    mapper = MinimapLite(k=k, w=w)
    mapper.index(np.asarray(reference, dtype=np.uint8))
    n = len(contigs)
    starts = np.full(n, -1, dtype=np.int64)
    ends = np.full(n, -1, dtype=np.int64)
    placed = np.zeros(n, dtype=bool)
    for i in range(n):
        placement = mapper.place(contigs.codes_of(i))
        if placement is not None:
            starts[i], ends[i] = placement.ref_start, placement.ref_end
            placed[i] = True
    return starts, ends, placed


def build_benchmark(
    segments: SequenceSet,
    contigs: SequenceSet,
    reference: np.ndarray,
    *,
    k: int = 16,
    contig_coords: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> Benchmark:
    """All true ⟨segment, contig⟩ pairs under the >= k-overlap rule (Fig. 4).

    Segment coordinates are read from the segment metas (``ref_start`` /
    ``ref_end``, attached by the simulator and propagated by the segment
    extractor); contig coordinates come from ``contig_coords`` or a fresh
    minimap-lite placement.
    """
    n_segments = len(segments)
    n_contigs = len(contigs)
    if n_segments == 0 or n_contigs == 0:
        raise DatasetError("benchmark needs non-empty segments and contigs")
    if contig_coords is None:
        contig_coords = place_contigs(contigs, reference)
    c_start, c_end, placed = contig_coords

    s_start = np.empty(n_segments, dtype=np.int64)
    s_end = np.empty(n_segments, dtype=np.int64)
    for i, meta in enumerate(segments.metas):
        if "ref_start" not in meta or "ref_end" not in meta:
            raise DatasetError(
                f"segment {segments.names[i]!r} lacks truth coordinates; "
                "simulate reads with a truth-aware simulator"
            )
        s_start[i] = int(meta["ref_start"])
        s_end[i] = int(meta["ref_end"])

    # Sweep contigs sorted by start; for every segment, candidate contigs
    # are those with c_start < s_end - k and c_end > s_start + k.
    order = np.argsort(c_start, kind="stable")
    cs, ce = c_start[order], c_end[order]
    ids = np.arange(n_contigs, dtype=np.int64)[order]
    valid = placed[order]

    pair_chunks: list[np.ndarray] = []
    has_truth = np.zeros(n_segments, dtype=bool)
    # Candidate window per segment: contigs whose start lies in
    # (s_start - max_contig_len, s_end - k); anything outside cannot reach
    # the k-overlap.  Keeps the sweep near-linear for tiled contig sets.
    max_len = int((ce - cs).max()) if n_contigs else 0
    hi_all = np.searchsorted(cs, s_end - k, side="left")
    lo_all = np.searchsorted(cs, s_start - max_len + k, side="left")
    for i in range(n_segments):
        lo, hi = int(lo_all[i]), int(hi_all[i])
        if hi <= lo:
            continue
        window = slice(lo, hi)
        overlap = np.minimum(ce[window], s_end[i]) - np.maximum(cs[window], s_start[i])
        mask = (overlap >= k) & valid[window]
        if mask.any():
            hit_ids = ids[window][mask].astype(np.uint64)
            keys = (np.uint64(i) << np.uint64(32)) | hit_ids
            pair_chunks.append(keys)
            has_truth[i] = True
    pair_keys = (
        np.sort(np.concatenate(pair_chunks)) if pair_chunks else np.empty(0, dtype=np.uint64)
    )
    return Benchmark(
        pair_keys=pair_keys,
        n_segments=n_segments,
        n_contigs=n_contigs,
        segment_has_truth=has_truth,
    )
