"""repro.netserve — concurrent network serving over replicated shard workers.

The network tier on top of :mod:`repro.service`: an asyncio TCP front-end
(:class:`NetFrontend`) speaks the existing NDJSON protocol to many
concurrent clients with per-client fairness and optional per-tenant
quotas, and hands every read to a :class:`ReplicaSet` — N
:class:`~repro.service.MappingService` workers whose index ownership is
decided by a pluggable :class:`PlacementPolicy`:

* ``scatter`` — each replica owns one key-range shard of the columnar
  store (``ColumnarSketchStore.shard`` + shm ``export_columns``); a
  scatter/gather router fans per-trial lookups to shard owners and runs
  the vote centrally, bit-identical to single-session serving.
* ``replicate`` — every replica attaches the full store from one shared
  segment; whole reads round-robin across healthy replicas.

A :class:`FleetSupervisor` keeps the topology honest under failure:
heartbeat probes detect dead or wedged members, hedged retry serves
their scatter shares inline meanwhile, and respawn + parity probe
re-admit a rebuilt replica at the current index generation — see
``docs/robustness.md`` ("fleet recovery").

See ``docs/serving.md`` for the topology and lifecycle contracts.
"""

from .frontend import NetFrontend, parse_hostport
from .placement import (
    FULL_RANGE,
    PlacementPolicy,
    ReplicatedPlacement,
    ScatterPlacement,
    make_placement,
)
from .replica import Replica, ReplicaSet
from .router import ScatterGatherStore
from .supervisor import FleetSupervisor, SupervisorConfig

__all__ = [
    "NetFrontend",
    "parse_hostport",
    "PlacementPolicy",
    "ScatterPlacement",
    "ReplicatedPlacement",
    "make_placement",
    "FULL_RANGE",
    "Replica",
    "ReplicaSet",
    "ScatterGatherStore",
    "FleetSupervisor",
    "SupervisorConfig",
]
