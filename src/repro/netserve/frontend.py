"""Asyncio TCP front-end: the NDJSON protocol over many connections.

One event loop multiplexes every client:

* a per-connection **reader** task parses NDJSON lines into the
  connection's intake queue (``health`` is answered immediately, off the
  ordered path, so probes never wait behind a slow batch);
* one global **dispatcher** task drains intakes round-robin, at most
  ``fair_chunk`` messages per connection per cycle — per-client fairness:
  a firehose client cannot starve a trickle client's admissions;
* a per-connection **writer** task emits responses *in request order*
  (the protocol's transcript-determinism contract), awaiting each
  mapping's completion as it reaches the head of the line.

Thread boundary: the backend (:class:`~repro.netserve.ReplicaSet` or a
bare :class:`~repro.service.MappingService`) completes futures on its
scheduler threads; ``MapFuture.add_done_callback`` +
``loop.call_soon_threadsafe`` bridge each completion to an
``asyncio.Future``, so no executor thread is parked per in-flight
request.

Backpressure is layered: the admission queue rejects in-band with
``retry_after`` (same as pipe mode); a connection with ``max_pending``
unanswered maps stops being read (TCP pushes back); an optional
**per-tenant quota** caps in-flight maps per ``tenant`` tag across all
connections, rejecting the excess in-band so one tenant cannot occupy
the whole admission queue.

Hostile or broken clients are contained per frame, not per connection:
request lines are bounded by ``max_line_bytes`` (an oversized line is
discarded through its newline and answered with a typed ``error``
frame), a connection that cannot complete one line within
``idle_timeout_s`` is cut loose (slow-loris), and any exception a
malformed payload provokes during dispatch is answered in-band — the
shared dispatcher task serving every other connection never dies for
one client's garbage.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from collections import deque
from dataclasses import dataclass, field

from ..errors import ReproError, ServiceOverloadError
from ..service.protocol import (
    ADMIN_OPS,
    MAX_PENDING,
    MUTATION_OPS,
    mutation_response,
    response_for_mapping,
)
from ..service.queue import MapFuture

__all__ = ["NetFrontend", "parse_hostport"]

#: Messages the dispatcher drains from one connection per fairness cycle.
FAIR_CHUNK = 16

#: retry hint for tenant-quota rejections (the tenant's own responses
#: drain the quota, so a short client-side pause is enough).
TENANT_RETRY_S = 0.05

#: Longest accepted NDJSON request line.  Oversized lines are discarded
#: through their terminating newline and answered with a typed error —
#: the session survives.
MAX_LINE_BYTES = 1 << 20

#: Per-connection read deadline: a client that cannot deliver one
#: complete line in this long (slow-loris) is disconnected.
IDLE_TIMEOUT_S = 300.0


def _error(detail: str, **extra) -> dict:
    """Typed in-band protocol error frame."""
    return {**extra, "type": "error", "error": detail}


class _LineReader:
    """Bounded NDJSON line assembly over a raw :class:`asyncio.StreamReader`.

    ``StreamReader.readline`` raises once a line exceeds the stream limit
    and leaves the stream unusable, so one hostile frame would take the
    whole connection down.  This reader enforces ``max_line_bytes``
    itself: an oversized line is discarded through its terminating
    newline and reported as ``None``, letting the session answer with a
    typed in-band error and keep serving.
    """

    def __init__(self, reader: asyncio.StreamReader, max_line_bytes: int) -> None:
        self._reader = reader
        self._max = int(max_line_bytes)
        self._buf = bytearray()
        self._eof = False

    async def readline(self) -> bytes | None:
        """Next line (newline kept), ``b""`` at EOF, ``None`` if oversized."""
        while True:
            nl = self._buf.find(b"\n")
            if nl >= 0:
                line = bytes(self._buf[: nl + 1])
                del self._buf[: nl + 1]
                return None if nl > self._max else line
            if len(self._buf) > self._max:
                del self._buf[:]
                if await self._skip_to_newline():
                    return None
                return b""  # EOF inside the oversized line: session over
            if self._eof:
                line = bytes(self._buf)  # a final unterminated line, or b""
                del self._buf[:]
                return line
            chunk = await self._reader.read(65536)
            if not chunk:
                self._eof = True
            else:
                self._buf.extend(chunk)

    async def _skip_to_newline(self) -> bool:
        """Drop the rest of an oversized line; False when EOF comes first."""
        while True:
            chunk = await self._reader.read(65536)
            if not chunk:
                self._eof = True
                return False
            nl = chunk.find(b"\n")
            if nl >= 0:
                self._buf.extend(chunk[nl + 1:])
                return True


def parse_hostport(spec: str, *, default_host: str = "127.0.0.1") -> tuple[str, int]:
    """``HOST:PORT`` / ``:PORT`` / ``PORT`` → (host, port)."""
    host, sep, port = spec.rpartition(":")
    if not sep:
        host, port = default_host, spec
    if not host:
        host = default_host
    try:
        return host, int(port)
    except ValueError as exc:
        raise ReproError(f"bad listen address {spec!r}: {exc}") from None


@dataclass
class _Connection:
    """Per-client state shared by the reader/dispatcher/writer tasks."""

    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    intake: deque = field(default_factory=deque)
    #: ordered responses: ("map", header, afut, tenant) | ("ready", dict)
    #: | ("metrics",) | ("mutation", afut) | ("drain",)
    pending: asyncio.Queue = field(default_factory=asyncio.Queue)
    outstanding: int = 0  # dispatched maps not yet written
    resume_read: asyncio.Event = field(default_factory=asyncio.Event)
    mapped: int = 0
    errors: int = 0
    rejected: int = 0
    closed: bool = False

    def send_json(self, obj: dict) -> None:
        # whole lines only: StreamWriter.write is a synchronous buffer
        # append, so health replies interleave safely with the writer task
        self.writer.write((json.dumps(obj) + "\n").encode("utf-8"))


class NetFrontend:
    """Serve the NDJSON protocol on TCP over a submit/healthz/metrics backend.

    ``backend`` needs ``submit(name, seq, *, deadline_s) -> MapFuture``,
    ``healthz() -> dict``, and ``metrics_snapshot() -> dict`` — satisfied
    by :class:`~repro.netserve.ReplicaSet`; a single
    :class:`~repro.service.MappingService` works too when wrapped with a
    ``metrics_snapshot`` adapter (see ``jem serve --listen --replicas 1``).
    """

    def __init__(
        self,
        backend,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        tenant_quota: int | None = None,
        fair_chunk: int = FAIR_CHUNK,
        max_pending: int = MAX_PENDING,
        max_line_bytes: int = MAX_LINE_BYTES,
        idle_timeout_s: float | None = IDLE_TIMEOUT_S,
    ) -> None:
        if tenant_quota is not None and tenant_quota < 1:
            raise ReproError(f"tenant_quota must be >= 1, got {tenant_quota}")
        if max_line_bytes < 1:
            raise ReproError(f"max_line_bytes must be >= 1, got {max_line_bytes}")
        if idle_timeout_s is not None and idle_timeout_s <= 0:
            raise ReproError(
                f"idle_timeout_s must be > 0 or None, got {idle_timeout_s}"
            )
        self.backend = backend
        self.host = host
        self.port = int(port)
        self.tenant_quota = tenant_quota
        self.fair_chunk = int(fair_chunk)
        self.max_pending = int(max_pending)
        self.max_line_bytes = int(max_line_bytes)
        self.idle_timeout_s = idle_timeout_s
        self.address: tuple[str, int] | None = None
        self._server: asyncio.AbstractServer | None = None
        self._handlers: set[asyncio.Task] = set()
        self._connections: list[_Connection] = []
        self._tenant_inflight: dict[str, int] = {}
        self._dispatch_wake = asyncio.Event()
        self._dispatcher: asyncio.Task | None = None
        self._stopping = asyncio.Event()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the actual (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.address = self._server.sockets[0].getsockname()[:2]
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="jem-net-dispatch"
        )
        return self.address

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._stopping.wait()

    async def stop(self, *, session_grace_s: float = 10.0) -> None:
        """Stop accepting, let open sessions finish their pending work."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in list(self._connections):
            with contextlib.suppress(Exception):
                conn.writer.close()  # readers see EOF, sessions drain out
        if self._handlers:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    asyncio.gather(*list(self._handlers), return_exceptions=True),
                    session_grace_s,
                )
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatcher
        self._stopping.set()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(reader=reader, writer=writer)
        conn.resume_read.set()
        self._connections.append(conn)
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        writer_task = asyncio.create_task(self._write_loop(conn))
        try:
            await self._read_loop(conn)
        finally:
            conn.intake.append(("drain",))
            self._dispatch_wake.set()
            await writer_task
            self._connections.remove(conn)
            with contextlib.suppress(ConnectionError):
                conn.writer.close()
                await conn.writer.wait_closed()

    async def _read_loop(self, conn: _Connection) -> None:
        lines = _LineReader(conn.reader, self.max_line_bytes)
        while True:
            await conn.resume_read.wait()  # pending-cap backpressure
            try:
                if self.idle_timeout_s is not None:
                    line = await asyncio.wait_for(
                        lines.readline(), self.idle_timeout_s
                    )
                else:
                    line = await lines.readline()
            except asyncio.TimeoutError:
                # slow-loris: the client held the connection without ever
                # completing a request line — cut it loose
                conn.send_json(_error(
                    "idle timeout: no complete request line in "
                    f"{self.idle_timeout_s:g}s"
                ))
                await self._drain_writer(conn)
                return
            except ConnectionError:
                return
            if line is None:  # oversized, already discarded to its newline
                conn.send_json(_error(
                    f"line too long: limit is {self.max_line_bytes} bytes"
                ))
                await self._drain_writer(conn)
                continue
            if not line:  # EOF = implicit drain, as in pipe mode
                return
            line = line.strip()
            if not line:
                continue
            try:
                message = json.loads(line)
                op = message.get("op", "map")
            except (json.JSONDecodeError, AttributeError, UnicodeDecodeError) as exc:
                conn.send_json(_error(f"bad request line: {exc}"))
                continue
            if op == "health":
                # immediate, off the ordered path: probes never queue
                conn.send_json({"op": "health", **self.backend.healthz()})
                await self._drain_writer(conn)
            elif op == "drain":
                conn.intake.append(("drain",))
                self._dispatch_wake.set()
                return
            elif (
                op in ("map", "ping", "metrics")
                or op in MUTATION_OPS
                or op in ADMIN_OPS
            ):
                conn.intake.append(("msg", message))
                self._dispatch_wake.set()
            else:
                conn.send_json(_error(f"unknown op {op!r}"))
                await self._drain_writer(conn)

    @staticmethod
    async def _drain_writer(conn: _Connection) -> None:
        with contextlib.suppress(ConnectionError):
            await conn.writer.drain()

    # -- fair dispatch -------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        """Round-robin drain across connection intakes — per-client fairness."""
        while True:
            progressed = False
            for conn in list(self._connections):
                if conn.closed:
                    continue
                for _ in range(self.fair_chunk):
                    if not conn.intake:
                        break
                    entry = conn.intake.popleft()
                    progressed = True
                    if entry[0] == "drain":
                        conn.closed = True
                        conn.pending.put_nowait(("drain",))
                        break
                    self._dispatch_message(conn, entry[1])
            if not progressed:
                self._dispatch_wake.clear()
                if not any(
                    c.intake for c in self._connections if not c.closed
                ):
                    await self._dispatch_wake.wait()

    def _dispatch_message(self, conn: _Connection, message: dict) -> None:
        op = message.get("op", "map")
        if op == "ping":
            # ordered behind earlier maps: pong only after they are written
            conn.pending.put_nowait(("ready", {"op": "pong"}))
            return
        if op == "metrics":
            # snapshot taken at *write* time, after earlier maps resolved
            conn.pending.put_nowait(("metrics",))
            return
        if op in MUTATION_OPS or op in ADMIN_OPS:
            # blocking work (sketching, segment rebuild, shm re-publish,
            # rolling restart) runs off the loop; the reply stays in this
            # connection's response order.  Maps already in flight keep
            # the generation they captured — a mid-flight mutation never
            # mixes into them.
            loop = asyncio.get_running_loop()
            afut = loop.run_in_executor(
                None, mutation_response, self.backend, op, message
            )
            conn.pending.put_nowait(("mutation", afut))
            return
        header = {"id": message.get("id"), "name": message.get("name", "")}
        tenant = str(message.get("tenant", ""))
        if (
            self.tenant_quota is not None
            and self._tenant_inflight.get(tenant, 0) >= self.tenant_quota
        ):
            conn.pending.put_nowait((
                "ready",
                {**header, "error": "overloaded",
                 "retry_after": TENANT_RETRY_S, "tenant": tenant or None},
            ))
            conn.rejected += 1
            return
        deadline_ms = message.get("deadline_ms")
        try:
            future = self.backend.submit(
                header["name"] or "read",
                message.get("seq", ""),
                deadline_s=(
                    float(deadline_ms) / 1000.0 if deadline_ms is not None else None
                ),
            )
        except ServiceOverloadError as exc:
            conn.pending.put_nowait((
                "ready",
                {**header, "error": "overloaded", "retry_after": exc.retry_after},
            ))
            conn.rejected += 1
            return
        except ReproError as exc:
            conn.pending.put_nowait(("ready", {**header, "error": str(exc)}))
            conn.errors += 1
            return
        except Exception as exc:  # noqa: BLE001 - one client's hostile payload
            # (e.g. a non-string "seq" or "deadline_ms") must answer in-band,
            # never kill the dispatcher task shared by every connection
            conn.pending.put_nowait(
                ("ready", _error(f"bad request: {exc}", **header))
            )
            conn.errors += 1
            return
        self._tenant_inflight[tenant] = self._tenant_inflight.get(tenant, 0) + 1
        conn.outstanding += 1
        if conn.outstanding >= self.max_pending:
            conn.resume_read.clear()
        conn.pending.put_nowait(("map", header, self._bridge(future), tenant))

    def _bridge(self, future: MapFuture) -> asyncio.Future:
        """Thread-side MapFuture completion → loop-side asyncio.Future."""
        loop = asyncio.get_running_loop()
        afut: asyncio.Future = loop.create_future()

        def transfer(done: MapFuture) -> None:
            try:
                result = done.result()
            except BaseException as exc:  # noqa: BLE001 - re-raised loop-side
                loop.call_soon_threadsafe(self._complete, afut, None, exc)
            else:
                loop.call_soon_threadsafe(self._complete, afut, result, None)

        future.add_done_callback(transfer)
        return afut

    @staticmethod
    def _complete(afut: asyncio.Future, result, exc: BaseException | None) -> None:
        if afut.done():  # the session died while the mapping was in flight
            return
        if exc is not None:
            afut.set_exception(exc)
        else:
            afut.set_result(result)

    # -- ordered response writing --------------------------------------------

    async def _write_loop(self, conn: _Connection) -> None:
        while True:
            entry = await conn.pending.get()
            if entry[0] == "drain":
                break
            if entry[0] == "ready":
                conn.send_json(entry[1])
            elif entry[0] == "metrics":
                conn.send_json({"op": "metrics", **self.backend.metrics_snapshot()})
            elif entry[0] == "mutation":
                conn.send_json(await entry[1])
            else:
                _kind, header, afut, tenant = entry
                try:
                    mapping = await afut
                except ReproError as exc:
                    conn.send_json({**header, "error": str(exc)})
                    conn.errors += 1
                else:
                    conn.send_json(response_for_mapping(header, mapping))
                    conn.mapped += 1
                self._tenant_inflight[tenant] = max(
                    0, self._tenant_inflight.get(tenant, 0) - 1
                )
                conn.outstanding -= 1
                if conn.outstanding < self.max_pending // 2:
                    conn.resume_read.set()
            await self._drain_writer(conn)
        # session end: flush whatever was still pending, then summarise
        while not conn.pending.empty():
            leftover = conn.pending.get_nowait()
            if leftover[0] == "map":
                _kind, header, afut, tenant = leftover
                try:
                    mapping = await afut
                except ReproError as exc:
                    conn.send_json({**header, "error": str(exc)})
                    conn.errors += 1
                else:
                    conn.send_json(response_for_mapping(header, mapping))
                    conn.mapped += 1
                self._tenant_inflight[tenant] = max(
                    0, self._tenant_inflight.get(tenant, 0) - 1
                )
            elif leftover[0] == "ready":
                conn.send_json(leftover[1])
            elif leftover[0] == "metrics":
                conn.send_json(
                    {"op": "metrics", **self.backend.metrics_snapshot()}
                )
            elif leftover[0] == "mutation":
                conn.send_json(await leftover[1])
        conn.send_json({
            "op": "drained",
            "mapped": conn.mapped,
            "errors": conn.errors,
            "rejected": conn.rejected,
            "metrics": self.backend.metrics_snapshot(),
        })
        await self._drain_writer(conn)
