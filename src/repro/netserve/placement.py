"""Placement policies: which replica owns which slice of the index.

Placement is an explicit policy *object* in the Legion
``CAShardingFunctor`` / ``MachineView`` idiom: a small, deterministic
functor that maps index points (here: 32-bit sketch values) onto workers,
kept separate from both the data structure being placed and the machinery
that spawns the workers.  Two policies cover the serving design space:

* :class:`ScatterPlacement` — key-range sharding.  Replica *i* owns shard
  *i* of :meth:`~repro.core.store.ColumnarSketchStore.shard`'s
  equal-frequency split, so per-replica memory is ~1/N of the index
  (minimap2-style index partitioning).  Queries scatter by key ownership.
* :class:`ReplicatedPlacement` — full replication.  Every replica owns
  the whole value space and whole reads round-robin across replicas;
  memory stays bounded because all replicas attach the *same* shared
  segment.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..core.store import ColumnarSketchStore, StoreShard, shard_bounds
from ..errors import ServiceError

__all__ = [
    "FULL_RANGE",
    "PlacementPolicy",
    "ScatterPlacement",
    "ReplicatedPlacement",
    "make_placement",
]

#: The whole 32-bit sketch-value space, as a ``[lo, hi)`` pair.
FULL_RANGE = (0, 1 << 32)


class PlacementPolicy(ABC):
    """Maps index key ranges onto replicas (the sharding functor)."""

    #: policy name as spelled on the CLI (``--placement``).
    kind: str = ""

    def __init__(self, n_replicas: int) -> None:
        if n_replicas < 1:
            raise ServiceError(f"n_replicas must be >= 1, got {n_replicas}")
        self.n_replicas = int(n_replicas)

    @abstractmethod
    def plan(self, store: ColumnarSketchStore) -> list[StoreShard]:
        """Decide each replica's owned slice of ``store``.

        Returns one :class:`StoreShard` per replica — the store the
        replica will load plus the ``[lo, hi)`` key range it answers for.
        """

    def describe(self) -> dict:
        return {"kind": self.kind, "replicas": self.n_replicas}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_replicas={self.n_replicas})"


class ScatterPlacement(PlacementPolicy):
    """Key-range scatter: replica *i* owns shard *i* of the value space."""

    kind = "scatter"

    def __init__(self, n_replicas: int) -> None:
        super().__init__(n_replicas)
        self._bounds: np.ndarray | None = None

    def plan(self, store: ColumnarSketchStore) -> list[StoreShard]:
        self._bounds = shard_bounds(store, self.n_replicas)
        return store.shard(self.n_replicas)

    @property
    def bounds(self) -> np.ndarray:
        """The ``n_replicas + 1`` ascending key boundaries (after plan)."""
        if self._bounds is None:
            raise ServiceError("plan() must run before querying ownership")
        return self._bounds

    def owner_of(self, query_values: np.ndarray) -> np.ndarray:
        """Vectorised value → owning replica id — the functor proper.

        With duplicate boundaries (empty shards) a boundary value maps to
        the *last* shard whose ``lo`` equals it, which is exactly the
        shard whose ``[lo, hi)`` is non-empty — consistent with
        :meth:`StoreShard.owns` on the planned shards.
        """
        qv = np.asarray(query_values).astype(np.int64)
        return np.searchsorted(self.bounds, qv, side="right") - 1


class ReplicatedPlacement(PlacementPolicy):
    """Full replication: every replica owns the whole store."""

    kind = "replicate"

    def plan(self, store: ColumnarSketchStore) -> list[StoreShard]:
        lo, hi = FULL_RANGE
        return [StoreShard(store, lo, hi) for _ in range(self.n_replicas)]


def make_placement(kind: str, n_replicas: int) -> PlacementPolicy:
    """Policy factory keyed by CLI spelling."""
    policies = {
        ScatterPlacement.kind: ScatterPlacement,
        ReplicatedPlacement.kind: ReplicatedPlacement,
    }
    if kind not in policies:
        raise ServiceError(
            f"unknown placement {kind!r}; expected one of {sorted(policies)}"
        )
    return policies[kind](n_replicas)
