"""Replicated mapping workers behind one front door.

A :class:`ReplicaSet` spawns N :class:`~repro.service.MappingService`
workers.  Each worker *attaches* its owned store — the placement policy's
shard, or the full store under replication — from a shared-memory segment
published once with :func:`~repro.parallel.shm.share_store` (the columnar
store's ``export_columns`` travels zero-copy), so per-replica index
memory is bounded: N scatter replicas together hold ~one copy of the
index, and N full replicas all map the *same* segment.

Every replica keeps its own admission queue, circuit breaker, and
labelled metrics registry (all inside its ``MappingService``), so one
sick replica sheds or degrades alone while the set keeps serving:

* ``replicate`` placement routes whole reads round-robin across replicas
  whose breaker is not open, with overload failover to the next replica
  — an open-breaker replica would answer from its degraded single-trial
  path, so routing around it is what keeps the set's output bit-identical
  to a single healthy session.
* ``scatter`` placement serves every read through one *central* service
  over a :class:`~repro.netserve.router.ScatterGatherStore`; the replicas
  answer per-trial key-range lookups through their
  :class:`~repro.netserve.router.LookupLane`, and a sick owner's share is
  recomputed inline from the root store — same answer, one replica's
  speedup lost.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace

import numpy as np

from ..core.config import JEMConfig
from ..core.lsm import MutableSketchStore, store_stats
from ..core.mapper import JEMMapper, MappingResult
from ..core.segments import PREFIX, SUFFIX, SegmentInfo
from ..core.store import ColumnarSketchStore
from ..errors import ServiceClosedError, ServiceError, ServiceOverloadError
from ..parallel.faults import FaultPlan
from ..parallel.retry import RetryPolicy
from ..parallel.shm import SharedStore, release, share_store
from ..seq.records import SequenceSet
from ..service.config import ServiceConfig
from ..service.health import OPEN
from ..service.metrics import aggregate_metrics
from ..service.queue import MapFuture
from ..service.service import MappingService
from .placement import PlacementPolicy, ReplicatedPlacement, ScatterPlacement
from .router import LookupLane, ScatterGatherStore

__all__ = ["Replica", "ReplicaSet"]


class Replica:
    """One worker: a :class:`MappingService` over its shm-attached store."""

    def __init__(
        self,
        replica_id: int,
        shared,
        lo: int,
        hi: int,
        subject_names: list[str],
        jem_config: JEMConfig | None,
        service_config: ServiceConfig,
        *,
        placement_kind: str,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.id = int(replica_id)
        self.lo = int(lo)
        self.hi = int(hi)
        # ``shared`` is a SharedStore to attach zero-copy — or, for a
        # replicate-placement respawn after an online mutation, the
        # in-memory IndexGeneration every member already serves
        self.store = (
            shared.materialise() if isinstance(shared, SharedStore) else shared
        )
        mapper = JEMMapper(jem_config, store_kind="columnar")
        mapper.adopt_store(self.store, subject_names)
        self.service = MappingService(
            mapper,
            service_config,
            faults=faults,
            retry=retry,
            metrics_labels={
                "replica": str(self.id),
                "placement": placement_kind,
                "key_range": f"[{self.lo:#010x}, {self.hi:#010x})",
            },
        )

    def healthz(self) -> dict:
        health = self.service.healthz()
        health["replica"] = self.id
        health["key_range"] = [self.lo, self.hi]
        return health


class ReplicaSet:
    """N placement-assigned mapping workers behind one ``submit`` door."""

    def __init__(
        self,
        store: ColumnarSketchStore,
        subject_names: list[str],
        jem_config: JEMConfig | None = None,
        *,
        placement: PlacementPolicy,
        service_config: ServiceConfig | None = None,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        hedge_timeout_s: float | None = 2.0,
    ) -> None:
        if not isinstance(store, ColumnarSketchStore):
            # sharding and column export are columnar-only; repack once
            store = ColumnarSketchStore.from_table(store.as_table())
        self.placement = placement
        self.config = (
            service_config if service_config is not None else ServiceConfig()
        )
        self._store = store
        self._root = store  # current unsharded index (follows mutations)
        self._subject_names = list(subject_names)
        self._jem_config = jem_config if jem_config is not None else JEMConfig()
        self._faults = faults
        self._retry = retry
        self._hedge_timeout_s = hedge_timeout_s
        self._mutable: MutableSketchStore | None = None
        self._mutation_lock = threading.Lock()
        self._drained = False
        self._respawns = 0
        #: segments whose old lane thread outlived the respawn join —
        #: kept mapped until drain rather than risk unmapping under it
        self._deferred_segments: list[str] = []
        self.supervisor = None  # set by FleetSupervisor.attach
        self._extra_registries: list = []
        shards = placement.plan(store)
        if placement.kind == ReplicatedPlacement.kind:
            # one segment, every replica attaches it: memory stays ~1 copy
            shared = share_store(store, "columnar")
            shared_per_replica = [shared] * placement.n_replicas
        else:
            shared_per_replica = [share_store(s.store, "columnar") for s in shards]
        #: per-replica attachment source — SharedStore, or the in-memory
        #: generation after a replicate-placement mutation.  Respawn
        #: rebuilds replica i from exactly this slot.
        self._shared: list = list(shared_per_replica)
        self._segments = sorted({s.ref.name for s in shared_per_replica})
        self.replicas = [
            Replica(
                i, shared_per_replica[i], shards[i].lo, shards[i].hi,
                self._subject_names, jem_config, self.config,
                placement_kind=placement.kind,
                # replicate: faults strike a replica's own dispatch path;
                # scatter: faults strike the lookup lanes instead (below)
                faults=faults if placement.kind == ReplicatedPlacement.kind else None,
                retry=retry,
            )
            for i in range(placement.n_replicas)
        ]
        self._lanes: list[LookupLane] = []
        self._frontdoor: MappingService | None = None
        self._router: ScatterGatherStore | None = None
        self.scatter_stats = None
        if isinstance(placement, ScatterPlacement):
            self._lanes = [
                LookupLane(
                    r.id, r.store,
                    breaker=r.service.breaker,
                    metrics=r.service.metrics,
                    capacity=self.config.queue_capacity,
                    faults=faults,
                    retry=retry,
                )
                for r in self.replicas
            ]
            virtual = ScatterGatherStore(
                self._lanes, placement, store,
                hedge_timeout_s=self._hedge_timeout_s,
            )
            self._router = virtual
            self.scatter_stats = virtual.stats
            central = JEMMapper(jem_config, store_kind="columnar")
            central.adopt_store(virtual, self._subject_names)
            # the central service votes over the virtual store inline; a
            # process pool cannot ship a virtual store, and lane faults
            # already model the failure surface
            self._frontdoor = MappingService(
                central,
                replace(self.config, processes=1),
                metrics_labels={"replica": "front", "placement": placement.kind},
            )
            virtual.bind_metrics(self._frontdoor.metrics)
        self._cursor = 0
        self._cursor_lock = threading.Lock()

    # -- construction --------------------------------------------------------

    @classmethod
    def from_engine(
        cls,
        engine,
        placement: PlacementPolicy,
        service_config: ServiceConfig | None = None,
        **kwargs,
    ) -> "ReplicaSet":
        """Replica set over a :class:`MappingEngine`'s (jem) index."""
        mapper = engine.mapper
        if not isinstance(mapper, JEMMapper):
            raise ServiceError("netserve requires a JEMMapper index")
        kwargs.setdefault("faults", engine.pipeline.fault_plan())
        store = mapper.table
        if not isinstance(store, ColumnarSketchStore):
            store = ColumnarSketchStore.from_table(store.as_table())
        return cls(
            store, mapper.subject_names, mapper.config,
            placement=placement, service_config=service_config, **kwargs,
        )

    # -- request path --------------------------------------------------------

    @property
    def subject_names(self) -> list[str]:
        return self._subject_names

    def _route_order(self) -> list[int]:
        """Round-robin order for this read, healthy replicas first.

        A replica with an open breaker answers from its degraded
        single-trial path, so it is only used when *every* breaker is
        open — one sick replica degrades alone, the set stays exact.
        """
        n = len(self.replicas)
        with self._cursor_lock:
            start = self._cursor
            self._cursor = (self._cursor + 1) % n
        order = [(start + j) % n for j in range(n)]
        healthy = [
            i
            for i in order
            if self.replicas[i].service.breaker.state != OPEN
            and not self.replicas[i].service.draining
        ]
        if healthy:
            return healthy
        # all breakers open/draining: any replica still accepting work
        return [i for i in order if not self.replicas[i].service.draining] or order

    def submit(
        self,
        name: str,
        sequence: str | np.ndarray,
        *,
        deadline_s: float | None = None,
    ) -> MapFuture:
        """Admit one read through the placement-appropriate door."""
        if self._frontdoor is not None:
            return self._frontdoor.submit(name, sequence, deadline_s=deadline_s)
        last: ServiceOverloadError | None = None
        for i in self._route_order():
            try:
                return self.replicas[i].service.submit(
                    name, sequence, deadline_s=deadline_s
                )
            except ServiceOverloadError as exc:  # failover before rejecting
                last = exc
        assert last is not None
        raise last

    def map_reads(
        self, reads: SequenceSet, *, timeout: float | None = None
    ) -> MappingResult:
        """Blocking convenience with :meth:`MappingService.map_reads` layout."""
        futures: list[MapFuture] = []
        for i in range(len(reads)):
            while True:
                try:
                    futures.append(self.submit(reads.names[i], reads.codes_of(i)))
                    break
                except ServiceOverloadError as exc:
                    time.sleep(exc.retry_after)
        names: list[str] = []
        infos: list[SegmentInfo] = []
        subjects = np.empty(2 * len(reads), dtype=np.int64)
        hit_counts = np.empty(2 * len(reads), dtype=np.int64)
        for i, future in enumerate(futures):
            mapping = future.result(timeout)
            names.extend(mapping.segment_names)
            infos.append(SegmentInfo(read_index=i, kind=PREFIX))
            infos.append(SegmentInfo(read_index=i, kind=SUFFIX))
            subjects[2 * i], subjects[2 * i + 1] = mapping.subject
            hit_counts[2 * i], hit_counts[2 * i + 1] = mapping.hit_count
        return MappingResult(
            segment_names=names, subject=subjects, hit_count=hit_counts, infos=infos
        )

    # -- online index mutation -----------------------------------------------

    @property
    def index_generation(self) -> int:
        return self._mutable.generation if self._mutable is not None else 0

    def store_stats(self) -> dict:
        """Per-generation stats of the set's (shared) index."""
        target = self._mutable if self._mutable is not None else self._store
        stats = store_stats(target)
        stats["generation"] = self.index_generation
        return stats

    def _ensure_mutable(self) -> MutableSketchStore:
        """The set-level mutable handle, seeded from the root store once.

        One handle serves every replica: mutations are applied here and
        the resulting generation is *installed* into the replica services
        (replicate) or re-sharded behind new lookup lanes (scatter).
        Called under the mutation lock.
        """
        if self._mutable is None:
            self._mutable = MutableSketchStore.in_memory(
                self._jem_config,
                base_store=self._store,
                subject_names=self._subject_names,
            )
        return self._mutable

    def _install_generation(self) -> dict:
        """Publish the handle's latest generation across the whole set.

        ``replicate``: every replica's service adopts the *same*
        :class:`~repro.core.lsm.IndexGeneration` object (memory stays ~1
        copy) — in-flight batches finish on the view they captured.

        ``scatter``: the generation is folded to one columnar store, a
        fresh placement re-derives the equal-frequency ``shard_bounds``
        of the *new* key distribution, each shard is re-published over
        shared memory behind a new :class:`LookupLane` (reusing the
        replica's breaker and metrics, stamped with the new generation),
        and a new :class:`ScatterGatherStore` is installed in the front
        door atomically.  Old lanes are then closed and old segments
        released: an in-flight batch still holding the previous router
        sees closed lanes (or a generation mismatch) and falls back to
        its own generation's root store inline — fail closed, never a
        mixed-generation answer.  Called under the mutation lock.
        """
        handle = self._mutable
        assert handle is not None
        generation = handle.current
        names = list(handle.subject_names)
        self._subject_names = names
        old_lanes: list[LookupLane] = []
        if self._frontdoor is None:
            for i, replica in enumerate(self.replicas):
                replica.store = generation
                replica.service.install_index(generation, names)
                # respawns after this point re-adopt the generation object
                self._shared[i] = generation
            old_segments = self._segments
            self._segments = []
        else:
            merged = generation.as_columnar()
            placement = ScatterPlacement(self.placement.n_replicas)
            shards = placement.plan(merged)
            shared_per_replica = [
                share_store(s.store, "columnar") for s in shards
            ]
            new_lanes = []
            for i, replica in enumerate(self.replicas):
                replica.store = shared_per_replica[i].materialise()
                replica.lo, replica.hi = shards[i].lo, shards[i].hi
                replica.service.install_index(
                    replica.store, names, generation=generation.generation
                )
                new_lanes.append(
                    LookupLane(
                        replica.id, replica.store,
                        breaker=replica.service.breaker,
                        metrics=replica.service.metrics,
                        capacity=self.config.queue_capacity,
                        faults=self._faults,
                        retry=self._retry,
                        generation=generation.generation,
                    )
                )
            virtual = ScatterGatherStore(
                new_lanes, placement, merged,
                stats=self.scatter_stats,
                hedge_timeout_s=self._hedge_timeout_s,
                metrics=self._frontdoor.metrics,
                generation=generation.generation,
            )
            old_lanes, self._lanes = self._lanes, new_lanes
            old_segments = self._segments
            self._shared = list(shared_per_replica)
            self._segments = sorted({s.ref.name for s in shared_per_replica})
            self.placement = placement
            self._root = merged
            self._router = virtual
            self._frontdoor.install_index(virtual, names)
            for lane in old_lanes:
                lane.close()
        if all(lane.join(10.0) for lane in old_lanes):
            for name in old_segments:
                release(name)
        else:
            # a lane thread outlived its close join: releasing would
            # unmap the store it may still touch — defer to drain
            self._deferred_segments.extend(old_segments)
        return self.store_stats()

    def add_contigs(self, contigs: SequenceSet) -> dict:
        """Add contigs online across the whole set; returns store stats."""
        with self._mutation_lock:
            handle = self._ensure_mutable()
            handle.add_contigs(contigs)
            limit = self.config.memtable_flush_entries
            if limit and handle.current.memtable_entries >= limit:
                handle.flush()
            return self._install_generation()

    def remove_contigs(self, names: list[str]) -> dict:
        """Tombstone contigs across the whole set; returns store stats."""
        with self._mutation_lock:
            handle = self._ensure_mutable()
            handle.remove_contigs(names)
            return self._install_generation()

    def flush_index(self) -> dict:
        """Seal the set-level memtable into an immutable segment."""
        with self._mutation_lock:
            handle = self._ensure_mutable()
            before = handle.generation
            handle.flush()
            if handle.generation == before:
                return self.store_stats()
            return self._install_generation()

    def compact_index(self) -> dict:
        """Fold the set-level index into one clean segment."""
        with self._mutation_lock:
            handle = self._ensure_mutable()
            handle.compact()
            return self._install_generation()

    # -- fleet recovery (chaos doors + respawn) ------------------------------

    @property
    def respawns(self) -> int:
        return self._respawns

    def kill_replica(self, i: int) -> None:
        """Chaos door: replica ``i`` dies abruptly, SIGKILL-style.

        Its lookup lane (scatter) stops answering — in-flight shares hit
        the hedge deadline and are served inline — its service fails
        queued work typed and reports dead, and its shm attachment is
        left orphaned.  Nothing is repaired here: detection, sweep, and
        respawn are the supervisor's job.
        """
        replica = self.replicas[i]
        if self._lanes:
            self._lanes[i].kill()
        if not replica.service.drained:
            replica.service.kill()

    def wedge_replica(self, i: int, seconds: float) -> None:
        """Chaos door: replica ``i``'s lane stalls for ``seconds`` per task."""
        if not self._lanes:
            raise ServiceError("wedge_replica requires scatter placement")
        self._lanes[i].wedge(seconds)

    def _parity_probe(self, lane: LookupLane, replica: Replica) -> None:
        """Prove a respawned owner answers bit-identically before re-admission.

        A deterministic sample of the shard's own stored values plus its
        range boundaries is looked up *through the lane* (worker thread
        and all) for every trial and compared bit-for-bit against the
        root store over the same queries — the root covers ``[lo, hi)``
        completely, so any disagreement means the rebuilt shard or its
        shm attachment is wrong and the replica must not rejoin.
        """
        boundary = np.array(
            [replica.lo, max(replica.lo, replica.hi - 1)], dtype=np.uint64
        )
        for t in range(self._root.trials):
            col = replica.store.values[t]
            if col.size:
                picks = np.linspace(
                    0, col.size - 1, num=min(64, col.size), dtype=np.int64
                )
                qv = np.unique(
                    np.concatenate([col[picks].astype(np.uint64), boundary])
                )
            else:
                qv = boundary
            expected = self._root.lookup_trial(t, qv)
            try:
                got = lane.submit(t, qv).result(30.0)
            except Exception as exc:
                raise ServiceError(
                    f"replica {replica.id} parity probe failed at trial {t}: {exc}"
                ) from exc
            if not (
                np.array_equal(got.query_index, expected.query_index)
                and np.array_equal(got.subjects, expected.subjects)
            ):
                raise ServiceError(
                    f"replica {replica.id} parity probe mismatch at trial {t}"
                )

    def respawn_replica(
        self, i: int, *, graceful: bool = False, timeout: float | None = None
    ) -> dict:
        """Tear down replica ``i`` and rebuild it at the current generation.

        ``graceful`` drains the old member first (rolling restart: its
        accepted work completes); otherwise whatever is left of a corpse
        is killed off.  The dead attachment's shm segment is reclaimed
        exactly once, the shard is rebuilt from the *current* root store
        at the current placement bounds, re-published over fresh shared
        memory, and the new member passes :meth:`_parity_probe` through
        its new lane *before* the in-place lane swap re-admits it to the
        scatter path.  Runs under the mutation lock so a concurrent
        generation install can never interleave.
        """
        with self._mutation_lock:
            if self._drained:
                raise ServiceClosedError("replica set is drained")
            old = self.replicas[i]
            old_lane = self._lanes[i] if self._lanes else None
            if graceful:
                if old_lane is not None:
                    old_lane.close()
                if not old.service.drained:
                    old.service.drain(timeout)
            else:
                if old_lane is not None:
                    old_lane.kill()
                if not old.service.drained:
                    old.service.kill()
            generation = self.index_generation
            source = self._shared[i]
            if self._frontdoor is not None:
                # scatter: reclaim the orphaned segment (exactly once —
                # release() forgets the name) and re-publish a fresh shard.
                # The old worker thread must be confirmed gone first: its
                # store is zero-copy views on the segment, and unmapping
                # under a thread still wedged mid-stall is a segfault.  A
                # thread that will not exit defers the release to drain.
                if isinstance(source, SharedStore):
                    if old_lane is None or old_lane.join(10.0):
                        release(source.ref.name)
                    else:
                        self._deferred_segments.append(source.ref.name)
                shard = self._root.restrict(old.lo, old.hi)
                source = share_store(shard.store, "columnar")
                self._shared[i] = source
                self._segments = sorted(
                    {s.ref.name for s in self._shared if isinstance(s, SharedStore)}
                )
            replica = Replica(
                i, source, old.lo, old.hi,
                self._subject_names, self._jem_config, self.config,
                placement_kind=self.placement.kind,
                faults=(
                    self._faults
                    if self.placement.kind == ReplicatedPlacement.kind
                    else None
                ),
                retry=self._retry,
            )
            if self._frontdoor is not None and generation != 0:
                # stamp the rebuilt shard with the fleet's generation so
                # healthz agreement and the lane stamp line up
                replica.service.install_index(
                    replica.store, self._subject_names, generation=generation
                )
            if self._frontdoor is not None:
                lane = LookupLane(
                    replica.id, replica.store,
                    breaker=replica.service.breaker,
                    metrics=replica.service.metrics,
                    capacity=self.config.queue_capacity,
                    faults=self._faults,
                    retry=self._retry,
                    generation=generation,
                )
                try:
                    self._parity_probe(lane, replica)
                except ServiceError:
                    lane.close()
                    replica.service.drain()
                    raise
                # in-place swap into the list the live router scatters
                # over: this single assignment *is* re-admission
                self._lanes[i] = lane
            self.replicas[i] = replica
            self._respawns += 1
            if self._frontdoor is not None:
                self._frontdoor.metrics.replica_respawns_total.inc()
            return {
                "replica": i,
                "generation": generation,
                "graceful": graceful,
                "key_range": [replica.lo, replica.hi],
            }

    def rolling_restart(self, timeout: float | None = None) -> dict:
        """Drain → respawn → re-admit each replica in turn.

        Strictly sequential, so the fleet never runs below N-1 members
        and scatter coverage stays complete throughout (the one draining
        owner's shares are hedged inline).  Wired to SIGHUP and the
        NDJSON ``restart`` op by the network front-end.
        """
        restarted = [
            self.respawn_replica(i, graceful=True, timeout=timeout)["replica"]
            for i in range(len(self.replicas))
        ]
        return {
            "restarted": restarted,
            "generation": self.index_generation,
            "respawns": self._respawns,
        }

    # -- health, metrics, lifecycle ------------------------------------------

    def healthz(self) -> dict:
        """Set-level health: the set is ready while it can serve exactly.

        ``scatter``: the central service must be ready (sick owners only
        cost fallback CPU).  ``replicate``: at least one replica must be
        ready.  Per-replica detail rides in ``replicas``.
        """
        reps = [r.healthz() for r in self.replicas]
        if self._frontdoor is not None:
            front = self._frontdoor.healthz()
            ready = front["ready"]
            live = front["live"]
        else:
            front = None
            ready = any(h["ready"] for h in reps)
            live = any(h["live"] for h in reps)
        generations = [h["index_generation"] for h in reps]
        if front is not None:
            generations.append(front["index_generation"])
        health = {
            "live": live,
            "ready": ready,
            "placement": self.placement.describe(),
            "replicas_ready": sum(1 for h in reps if h["ready"]),
            "index_generation": self.index_generation,
            # scatter dispatch is refused (fails closed to the root-store
            # fallback) whenever a lane disagrees with the router, so a
            # False here costs speedup, never answer correctness
            "generations_agree": len(set(generations)) <= 1,
            "replicas": reps,
        }
        if front is not None:
            health["front"] = front
        if self.scatter_stats is not None:
            health["scatter"] = self.scatter_stats.as_dict()
        health["respawns"] = self._respawns
        if self.supervisor is not None:
            health["supervisor"] = self.supervisor.status()
        return health

    def metrics_registries(self) -> list:
        regs = [r.service.metrics for r in self.replicas]
        if self._frontdoor is not None:
            regs.append(self._frontdoor.metrics)
        regs.extend(self._extra_registries)
        return regs

    def metrics_snapshot(self) -> dict:
        """Aggregated view plus each labelled per-replica snapshot."""
        regs = self.metrics_registries()
        return {
            "aggregate": aggregate_metrics(regs),
            "replicas": [m.snapshot() for m in regs],
        }

    @property
    def drained(self) -> bool:
        return self._drained

    def drain(self, timeout: float | None = None) -> None:
        """Stop admission, finish accepted work, release the shared index.

        Order matters: the central door drains first (no new lookups),
        then the lanes, then the replica services, and only then are the
        shm segments released — the attached stores are zero-copy views
        into them and must not outlive the unlink.
        """
        if self._drained:
            return
        if self.supervisor is not None:  # no respawns during teardown
            self.supervisor.stop()
        if self._frontdoor is not None:
            self._frontdoor.drain(timeout)
        for lane in self._lanes:
            lane.close()
        for replica in self.replicas:
            replica.service.drain(timeout)
        for name in self._segments + self._deferred_segments:
            release(name)
        self._deferred_segments = []
        self._drained = True

    close = drain

    def __enter__(self) -> "ReplicaSet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.drain()
