"""Scatter/gather routing: per-trial lookups fanned to shard owners.

The router is a *virtual store*: :class:`ScatterGatherStore` satisfies the
:class:`~repro.core.store.SketchStore` protocol, but its ``lookup_trial``
scatters the query batch to the replicas owning each key range, gathers
their candidate hits, and stitches them back in ascending
(query index, subject) order — exactly the contract of
:func:`~repro.core.store.lookup_trial_sharded`.  A completely ordinary
central :class:`~repro.service.MappingService` then runs over a mapper
that adopted this store, so sketching, hit counting, and the **vote stay
central and unchanged** — which is why scatter serving is bit-identical
to single-session serving: the vote in
:func:`~repro.core.hitcounter.count_hits_vectorised` only needs each
trial's collision set, and the union of disjoint key-range lookups *is*
that set.

Each shard owner is reached only through its :class:`LookupLane` — a
per-replica admission queue plus worker thread, guarded by the replica's
own :class:`~repro.service.health.CircuitBreaker`.  A sick owner (injected
faults, open breaker, full queue) degrades **alone**: the router answers
that owner's share of the batch inline from the root store restricted to
the same key range, which returns the same hits bit for bit, while the
other owners keep serving normally.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.sketch_table import SketchTable, TrialHits
from ..core.store import ColumnarSketchStore, _check_query_values
from ..errors import (
    FaultError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadError,
)
from ..parallel.faults import FaultPlan, inject_compute_faults
from ..parallel.retry import RetryPolicy, retry_call
from ..service.queue import AdmissionQueue, MapFuture

__all__ = ["LookupLane", "ScatterGatherStore"]

#: How long the gather side waits for one owner's lookup before treating
#: the owner as sick and falling back inline (seconds).
LOOKUP_TIMEOUT_S = 30.0


class _LookupTask:
    __slots__ = ("t", "qv", "future")

    def __init__(self, t: int, qv: np.ndarray) -> None:
        self.t = t
        self.qv = qv
        self.future: MapFuture = MapFuture()


class LookupLane:
    """One shard owner's lookup executor: admission queue + worker thread.

    The lane is the scatter path's per-replica isolation boundary.  It
    shares the replica's circuit breaker and metrics registry with the
    replica's map path, so however the owner is reached, its health is
    accounted in one place: lookup failures open the same breaker the
    front door consults, and an open breaker short-circuits lane work
    until the cooldown half-opens it (a successful probe closes it).
    """

    def __init__(
        self,
        replica_id: int,
        store,
        *,
        breaker,
        metrics,
        capacity: int,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        generation: int = 0,
    ) -> None:
        self.replica_id = replica_id
        self.generation = int(generation)
        self._store = store
        self._breaker = breaker
        self._metrics = metrics
        self._faults = faults
        self._retry = retry if retry is not None else RetryPolicy()
        self._queue: AdmissionQueue[_LookupTask] = AdmissionQueue(capacity)
        self._seq = 0
        self._killed = False
        self._draining = False
        self._wedge_until = 0.0
        self._thread = threading.Thread(
            target=self._run, name=f"jem-lookup-{replica_id}", daemon=True
        )
        self._thread.start()

    @property
    def alive(self) -> bool:
        """True while the lane can still accept and answer lookups."""
        return (
            not self._killed
            and not self._queue.closed
            and self._thread.is_alive()
        )

    def submit(self, t: int, qv: np.ndarray) -> MapFuture:
        """Queue one trial's owned query slice; rejections raise immediately."""
        task = _LookupTask(t, qv)
        self._queue.put(task)  # ServiceOverloadError/ServiceClosedError propagate
        self._metrics.requests_total.inc()
        self._metrics.queue_depth.set(self._queue.depth)
        return task.future

    def close(self) -> None:
        self._draining = True
        self._queue.close()
        self._thread.join(timeout=10.0)

    def join(self, timeout: float) -> bool:
        """Wait for the worker thread to exit; True when it has.

        The respawn path must not release a dead owner's shm segment
        while this thread could still touch the store views built on it
        — join first, and only a confirmed-exited lane's segment may be
        unmapped.
        """
        self._thread.join(timeout)
        return not self._thread.is_alive()

    # -- chaos doors ---------------------------------------------------------

    def kill(self) -> None:
        """Chaos door: die like a SIGKILLed owner — without answering.

        Everything already queued is abandoned with its future left
        unresolved (a killed process never replies; the gather side's
        hedge deadline is what bounds the wait), the worker thread exits,
        and later submits are refused.  The replica's store attachment is
        deliberately *not* released — the orphaned shm segment is the
        supervisor's to sweep.
        """
        self._killed = True
        self._queue.dump()  # abandoned: futures stay pending forever

    def wedge(self, seconds: float) -> None:
        """Chaos door: the worker stalls for ``seconds`` before each task.

        Unlike :meth:`kill` the lane is still alive — it answers
        eventually — which is exactly the failure mode heartbeat probes
        with a deadline exist to catch.
        """
        self._wedge_until = time.monotonic() + float(seconds)

    # -- worker thread -------------------------------------------------------

    def _run(self) -> None:
        while True:
            batch = self._queue.take_batch(1, 0.0)
            if not batch:
                return  # closed and drained
            # honour a wedge in short slices so kill()/close() still
            # bound this thread's lifetime: the store views are built on
            # a shm mapping, and a stalled worker that outlives the
            # segment's release would fault on its next lookup
            while not self._killed and not self._draining:
                stall = self._wedge_until - time.monotonic()
                if stall <= 0:
                    break
                time.sleep(min(stall, 0.05))
            if self._killed:
                return  # a killed owner never answers or touches the store
            self._execute(batch[0])

    def _execute(self, task: _LookupTask) -> None:
        t0 = time.perf_counter()
        if self._breaker.decide() == "degraded":
            # open breaker: don't even try; the router serves this share
            # inline and this owner stays quarantined until half-open.
            self._metrics.degraded_total.inc()
            task.future.set_exception(
                FaultError(f"replica {self.replica_id} breaker open")
            )
            return
        self._seq += 1
        stream = self.replica_id * 1_000_003 + self._seq

        def attempt(_attempt: int) -> TrialHits:
            inject_compute_faults(
                self._faults, "map",
                block=self.replica_id, exec_rank=self.replica_id,
            )
            return self._store.lookup_trial(task.t, task.qv)

        try:
            hits, _attempts, _recovery = retry_call(
                attempt, policy=self._retry, stream=stream
            )
        except FaultError as exc:
            self._metrics.errors_total.inc()
            event = self._breaker.record_failure()
            if event == "opened":
                self._metrics.breaker_open_total.inc()
                self._metrics.breaker_open.set(1.0)
            task.future.set_exception(exc)
        else:
            event = self._breaker.record_success()
            if event == "recovered":
                self._metrics.recovered_total.inc()
                self._metrics.breaker_open.set(0.0)
            self._metrics.responses_total.inc()
            self._metrics.map_latency.observe(time.perf_counter() - t0)
            task.future.set_result(hits)


@dataclass
class ScatterStats:
    """Router-side accounting (observable from tests and ``healthz``)."""

    scattered: int = 0  # owner lookups dispatched to lanes
    fallbacks: int = 0  # owner shares answered inline from the root store
    mismatches: int = 0  # shares refused because the lane's generation differed
    hedged: int = 0  # fallbacks taken because the owner missed the hedge deadline
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def note(
        self,
        *,
        scattered: int = 0,
        fallbacks: int = 0,
        mismatches: int = 0,
        hedged: int = 0,
    ) -> None:
        with self._lock:
            self.scattered += scattered
            self.fallbacks += fallbacks
            self.mismatches += mismatches
            self.hedged += hedged

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "scattered": self.scattered,
                "fallbacks": self.fallbacks,
                "mismatches": self.mismatches,
                "hedged": self.hedged,
            }


class ScatterGatherStore:
    """Virtual :class:`SketchStore` fanning lookups across shard owners.

    Non-lookup protocol members (``trial_keys``, ``as_table``, ...)
    delegate to the root store: they serve index-shaped introspection and
    the central service's degraded fallback, which are front-end-local by
    design.  Only ``lookup_trial`` — the hot path — scatters.
    """

    def __init__(
        self,
        lanes: list[LookupLane],
        placement,
        root_store: ColumnarSketchStore,
        *,
        stats: ScatterStats | None = None,
        lookup_timeout_s: float = LOOKUP_TIMEOUT_S,
        hedge_timeout_s: float | None = None,
        metrics=None,
        generation: int = 0,
    ) -> None:
        if len(lanes) != placement.n_replicas:
            raise ServiceError(
                f"{len(lanes)} lanes for {placement.n_replicas} replicas"
            )
        self._lanes = lanes
        self._placement = placement
        self._root = root_store
        self._timeout = float(lookup_timeout_s)
        #: hedge deadline: how long to wait for an owner before serving its
        #: share inline from the root store (first answer wins — both are
        #: bit-identical by construction, so hedging never changes bytes).
        #: ``None`` keeps the plain long wait.
        self._hedge = float(hedge_timeout_s) if hedge_timeout_s is not None else None
        self._metrics = metrics
        #: index generation this router serves; lanes stamped differently
        #: are refused (fail closed to the root fallback) — a mis-wired
        #: lane would otherwise answer from a different index version
        self.generation = int(generation)
        self.stats = stats if stats is not None else ScatterStats()

    def bind_metrics(self, metrics) -> None:
        """Late-bind the registry counting ``hedged_requests_total``.

        The front-door service (whose registry outlives lane swaps) is
        constructed *after* its virtual store, hence the two-step wiring.
        """
        self._metrics = metrics

    # -- protocol: shape delegates to the root store -------------------------

    @property
    def trials(self) -> int:
        return self._root.trials

    @property
    def n_subjects(self) -> int:
        return self._root.n_subjects

    @property
    def total_entries(self) -> int:
        return self._root.total_entries

    @property
    def nbytes(self) -> int:
        return self._root.nbytes

    def lookup_scalar(self, t: int, value: int) -> np.ndarray:
        return self.lookup_trial(t, np.array([value], dtype=np.uint64)).subjects

    def values_of_trial(self, t: int) -> np.ndarray:
        return self._root.values_of_trial(t)

    def trial_keys(self, t: int) -> np.ndarray:
        return self._root.trial_keys(t)

    def as_table(self) -> SketchTable:
        return self._root.as_table()

    # -- the hot path --------------------------------------------------------

    def lookup_trial(self, t: int, query_values: np.ndarray) -> TrialHits:
        """Scatter one trial's query batch to owners; gather and stitch.

        Owner shares that cannot be served by their lane (overload at
        submit, fault budget exhausted, open breaker, timeout) fall back
        to an inline lookup on the root store over the *same* query
        subset — every entry for a value in ``[lo, hi)`` lives in that
        shard, so root and shard agree bit for bit and the fallback only
        costs front-end CPU, never answer quality.

        With ``hedge_timeout_s`` set, the wait for each owner is bounded
        by the hedge deadline instead of the long lookup timeout: an
        owner that has not answered by then (killed mid-task, wedged,
        overloaded) has its share *re-computed inline immediately* and
        the late answer — identical anyway — is discarded.  This is what
        keeps in-flight requests flowing while the supervisor is still
        detecting and respawning a corpse.
        """
        qv = _check_query_values(query_values)
        owner = self._placement.owner_of(qv)
        shares: list[tuple[np.ndarray, np.ndarray, MapFuture | None]] = []
        for i, lane in enumerate(self._lanes):
            mine = np.flatnonzero(owner == i)
            if mine.size == 0:
                continue
            sub = qv[mine]
            if lane.generation != self.generation:
                # generation disagreement: never mix answers from another
                # index version into this batch — serve the share inline
                self.stats.note(mismatches=1)
                future = None
            else:
                try:
                    future = lane.submit(t, sub)
                    self.stats.note(scattered=1)
                except (ServiceOverloadError, ServiceClosedError):
                    future = None
            shares.append((mine, sub, future))
        idx_chunks: list[np.ndarray] = []
        sub_chunks: list[np.ndarray] = []
        wait = self._hedge if self._hedge is not None else self._timeout
        for mine, sub, future in shares:
            hits = None
            hedged = 0
            if future is not None:
                try:
                    hits = future.result(wait)
                except TimeoutError:
                    hedged = 1 if self._hedge is not None else 0
                except FaultError:
                    hits = None
            if hits is None:
                self.stats.note(fallbacks=1, hedged=hedged)
                if hedged and self._metrics is not None:
                    self._metrics.hedged_requests_total.inc()
                hits = self._root.lookup_trial(t, sub)
            if len(hits):
                idx_chunks.append(mine[hits.query_index])
                sub_chunks.append(hits.subjects)
        if not idx_chunks:
            empty = np.empty(0, dtype=np.int64)
            return TrialHits(empty, empty)
        query_index = np.concatenate(idx_chunks)
        subjects = np.concatenate(sub_chunks)
        order = np.lexsort((subjects, query_index))
        return TrialHits(query_index[order], subjects[order])
