"""Fleet supervision: detect, respawn, and re-admit broken replicas.

The :class:`ReplicaSet` keeps serving *around* a dead member — hedged
retry re-computes the corpse's scatter shares inline from the root store
— but nothing in the set itself notices the corpse, reclaims its
orphaned shm segment, or restores full scatter throughput.  That is the
:class:`FleetSupervisor`'s job, in a loop of three verdicts:

``probe → verdict → repair``
    Every ``probe_interval_s`` each replica is probed twice over: process
    liveness (is the lane's worker thread alive, is the service still
    admitting?) and a heartbeat lookup *through the lane* with a short
    deadline.  The verdicts:

    * ``healthy`` — answered in time; strikes reset.
    * ``sick`` — answered with a fault.  The replica's own circuit
      breaker owns this failure mode (quarantine, cooldown, half-open
      probe); the supervisor only watches.
    * ``wedged`` — alive but silent past the probe deadline.  One strike;
      ``suspect_strikes`` consecutive strikes escalate to dead, so a
      brief GC-style stall never triggers a pointless respawn.
    * ``dead`` — the lane or service is gone.  Repair is immediate.

Repair delegates to :meth:`ReplicaSet.respawn_replica`: reclaim the
orphaned segment exactly once, rebuild the shard from the current root
store at the current placement bounds and generation, re-publish it over
fresh shared memory, and re-admit the member only after a bit-identical
parity probe through its new lane.  Requests in flight during the whole
episode are served via the router's hedged fallback — bit-identical by
construction — so recovery is zero-downtime *and* zero-drift.

The supervisor keeps its own labelled metrics registry (respawn counts
survive the per-replica registries, which die with their replica) and a
bounded transition history for ``healthz``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..errors import ReproError, ServiceError
from ..service.metrics import ServiceMetrics

__all__ = ["FleetSupervisor", "SupervisorConfig"]

HEALTHY = "healthy"
SICK = "sick"
SUSPECT = "suspect"
WEDGED = "wedged"
DEAD = "dead"
RESPAWNING = "respawning"


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs for the supervision loop.

    ``probe_deadline_s`` bounds the heartbeat wait — it must stay well
    under ``probe_interval_s`` or probes of a wedged fleet pile up.
    ``suspect_strikes`` consecutive missed heartbeats escalate a wedged
    replica to dead.  ``max_respawns`` caps total repairs (0 = unlimited)
    so a persistently failing parity probe cannot crash-loop forever.
    """

    probe_interval_s: float = 0.5
    probe_deadline_s: float = 0.25
    suspect_strikes: int = 2
    max_respawns: int = 0
    history: int = 64

    def __post_init__(self) -> None:
        if self.probe_interval_s <= 0:
            raise ServiceError(
                f"probe_interval_s must be > 0, got {self.probe_interval_s}"
            )
        if self.probe_deadline_s <= 0:
            raise ServiceError(
                f"probe_deadline_s must be > 0, got {self.probe_deadline_s}"
            )
        if self.suspect_strikes < 1:
            raise ServiceError(
                f"suspect_strikes must be >= 1, got {self.suspect_strikes}"
            )
        if self.max_respawns < 0:
            raise ServiceError(
                f"max_respawns must be >= 0, got {self.max_respawns}"
            )


class FleetSupervisor:
    """Keeps a :class:`ReplicaSet`'s members alive, exact, and re-admitted."""

    def __init__(self, replica_set, config: SupervisorConfig | None = None) -> None:
        self._set = replica_set
        self.config = config if config is not None else SupervisorConfig()
        self.metrics = ServiceMetrics(
            labels={
                "replica": "supervisor",
                "placement": replica_set.placement.kind,
            }
        )
        n = len(replica_set.replicas)
        self._states = [HEALTHY] * n
        self._strikes = [0] * n
        self._history: deque[dict] = deque(maxlen=self.config.history)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.ticks = 0
        self.respawn_failures = 0
        # the set surfaces supervisor status in healthz and folds this
        # registry into its fleet-wide metrics aggregation
        replica_set.supervisor = self
        replica_set._extra_registries.append(self.metrics)

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "FleetSupervisor":
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="jem-fleet-supervisor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float | None = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def __enter__(self) -> "FleetSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self.config.probe_interval_s):
            try:
                self.tick()
            except Exception:  # pragma: no cover - the supervisor must not die
                pass

    # -- probing -------------------------------------------------------------

    def probe(self, i: int) -> str:
        """One replica's verdict: healthy / sick / wedged / dead."""
        replica = self._set.replicas[i]
        lanes = self._set._lanes
        lane = lanes[i] if lanes else None
        if replica.service.drained or (lane is not None and not lane.alive):
            return DEAD
        if lane is None:
            # replicate placement: no lookup path to heartbeat; process
            # liveness (above) is the whole verdict
            return HEALTHY
        # heartbeat: a one-value lookup through the lane, bounded by the
        # probe deadline — a wedged worker is alive but will miss it
        qv = np.array([replica.lo], dtype=np.uint64)
        try:
            future = lane.submit(0, qv)
        except ReproError:
            return DEAD  # admission refused: the lane is closing/closed
        try:
            future.result(self.config.probe_deadline_s)
        except TimeoutError:
            return WEDGED
        except ReproError:
            return SICK
        return HEALTHY

    def _note(self, i: int, state: str, detail: str = "") -> None:
        with self._lock:
            if self._states[i] != state:
                self._history.append(
                    {
                        "replica": i,
                        "from": self._states[i],
                        "to": state,
                        "detail": detail,
                        "tick": self.ticks,
                    }
                )
            self._states[i] = state

    def _budget_left(self) -> bool:
        limit = self.config.max_respawns
        return limit == 0 or self.metrics.replica_respawns_total.value < limit

    def _repair(self, i: int, cause: str) -> None:
        if not self._budget_left():
            self._note(i, DEAD, f"{cause}; respawn budget exhausted")
            return
        self._note(i, RESPAWNING, cause)
        try:
            self._set.respawn_replica(i, graceful=False)
        except ReproError as exc:
            self.respawn_failures += 1
            self._note(i, DEAD, f"respawn failed: {exc}")
            return
        self.metrics.replica_respawns_total.inc()
        self._strikes[i] = 0
        self._note(i, HEALTHY, f"respawned after {cause}")

    def tick(self) -> list[str]:
        """One supervision pass; public so tests can drive it deterministically."""
        verdicts: list[str] = []
        for i in range(len(self._set.replicas)):
            verdict = self.probe(i)
            verdicts.append(verdict)
            if verdict == DEAD:
                self._repair(i, "dead: liveness probe failed")
            elif verdict == WEDGED:
                self._strikes[i] += 1
                if self._strikes[i] >= self.config.suspect_strikes:
                    self._repair(
                        i, f"wedged: {self._strikes[i]} missed heartbeats"
                    )
                else:
                    self._note(i, SUSPECT, "missed heartbeat")
            elif verdict == SICK:
                # the replica's breaker owns fault quarantine; strikes
                # reset because the member is demonstrably answering
                self._strikes[i] = 0
                self._note(i, SICK, "heartbeat answered with a fault")
            else:
                self._strikes[i] = 0
                self._note(i, HEALTHY)
        self.ticks += 1
        return verdicts

    def wait_healthy(self, timeout: float = 30.0) -> bool:
        """Block until every member probes healthy (True) or timeout (False)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if all(
                self.probe(i) == HEALTHY
                for i in range(len(self._set.replicas))
            ):
                return True
            time.sleep(0.02)
        return False

    # -- observability -------------------------------------------------------

    def status(self) -> dict:
        """Supervisor block for ``healthz``: states, strikes, history."""
        with self._lock:
            states = list(self._states)
            strikes = list(self._strikes)
            history = list(self._history)
        return {
            "running": self.running,
            "ticks": self.ticks,
            "states": states,
            "strikes": strikes,
            "respawns": int(self.metrics.replica_respawns_total.value),
            "respawn_failures": self.respawn_failures,
            "transitions": history,
        }
