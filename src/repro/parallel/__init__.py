"""Distributed-memory substrate: communicator, partitioning, cost model, driver."""

from .comm import Communicator, SerialComm, ThreadComm, spmd_run
from .costmodel import CostModel, StepTimes, modelled_runtime
from .driver import ParallelRunResult, run_parallel_jem, run_parallel_jem_threaded
from .mp_backend import map_reads_multiprocess
from .partition import partition_bounds, partition_imbalance, partition_set

__all__ = [
    "Communicator",
    "SerialComm",
    "ThreadComm",
    "spmd_run",
    "CostModel",
    "StepTimes",
    "modelled_runtime",
    "ParallelRunResult",
    "run_parallel_jem",
    "run_parallel_jem_threaded",
    "map_reads_multiprocess",
    "partition_bounds",
    "partition_imbalance",
    "partition_set",
]
