"""Distributed-memory substrate: communicator, partitioning, cost model,
driver, plus the fault-injection / recovery machinery."""

from .comm import Communicator, SerialComm, ThreadComm, spmd_run
from .costmodel import CostModel, StepTimes, modelled_runtime
from .driver import ParallelRunResult, run_parallel_jem, run_parallel_jem_threaded
from .faults import (
    FAULT_KINDS,
    FAULT_PHASES,
    FaultPlan,
    FaultSpec,
    PartialResult,
    RecoveryReport,
)
from .mp_backend import TRANSPORTS, map_reads_multiprocess
from .partition import partition_bounds, partition_imbalance, partition_set
from .retry import RetryPolicy, retry_call
from .shm import (
    SharedSeqBlock,
    SharedTable,
    ShmArrayRef,
    attach_arrays,
    release,
    release_all,
    share_arrays,
    share_sequence_set,
    share_table_keys,
)

__all__ = [
    "Communicator",
    "SerialComm",
    "ThreadComm",
    "spmd_run",
    "CostModel",
    "StepTimes",
    "modelled_runtime",
    "ParallelRunResult",
    "run_parallel_jem",
    "run_parallel_jem_threaded",
    "map_reads_multiprocess",
    "TRANSPORTS",
    "ShmArrayRef",
    "SharedSeqBlock",
    "SharedTable",
    "share_arrays",
    "attach_arrays",
    "share_sequence_set",
    "share_table_keys",
    "release",
    "release_all",
    "partition_bounds",
    "partition_imbalance",
    "partition_set",
    "FAULT_KINDS",
    "FAULT_PHASES",
    "FaultPlan",
    "FaultSpec",
    "PartialResult",
    "RecoveryReport",
    "RetryPolicy",
    "retry_call",
]
