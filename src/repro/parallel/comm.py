"""MPI-like communicator abstraction with a thread-backed SPMD engine.

The paper's implementation uses C/C++ + MPI; mpi4py is not available in
this environment, so the library defines the subset of the MPI interface
the algorithm needs (mpi4py naming conventions: lowercase = pickled
objects, capitalised-v = numpy buffer collectives) and provides:

* :class:`SerialComm` — size 1, every collective is the identity;
* :class:`ThreadComm` — p communicator endpoints backed by threads and
  barriers, with real MPI semantics (every rank must reach a collective);
  used by :func:`spmd_run` to execute an SPMD function over p ranks.

The numpy data movement is genuine (arrays are concatenated across ranks
exactly as ``MPI_Allgatherv`` would), so communicated byte counts — which
feed the cost model — are measured, not estimated.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

import numpy as np

from ..errors import CommError, RankTimeoutError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .faults import FaultPlan

__all__ = ["Communicator", "SerialComm", "ThreadComm", "spmd_run"]

#: Checksum-failed gathers are re-requested at most this many times.
MAX_GATHER_ATTEMPTS = 4


def _payload_checksum(buf: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(buf).tobytes())


def _tamper(buf: np.ndarray) -> np.ndarray:
    """A transit-corrupted copy of ``buf`` (first byte flipped)."""
    wire = np.ascontiguousarray(buf).copy()
    if wire.nbytes:
        flat = wire.view(np.uint8).reshape(-1)
        flat[0] ^= 0xFF
    return wire


class Communicator:
    """Minimal MPI-flavoured interface used by the parallel driver."""

    @property
    def rank(self) -> int:
        raise NotImplementedError

    @property
    def size(self) -> int:
        raise NotImplementedError

    def barrier(self) -> None:
        raise NotImplementedError

    def bcast(self, obj: Any, root: int = 0) -> Any:
        raise NotImplementedError

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        raise NotImplementedError

    def allgather(self, obj: Any) -> list[Any]:
        raise NotImplementedError

    def Allgatherv(self, sendbuf: np.ndarray) -> np.ndarray:
        """Concatenation of every rank's (variable-length) array, everywhere."""
        raise NotImplementedError

    @property
    def bytes_communicated(self) -> int:
        """Total bytes this endpoint contributed to collectives."""
        raise NotImplementedError


class SerialComm(Communicator):
    """The p = 1 communicator: every collective is the identity."""

    @property
    def rank(self) -> int:
        return 0

    @property
    def size(self) -> int:
        return 1

    def barrier(self) -> None:
        return None

    def bcast(self, obj: Any, root: int = 0) -> Any:
        return obj

    def gather(self, obj: Any, root: int = 0) -> list[Any]:
        return [obj]

    def allgather(self, obj: Any) -> list[Any]:
        return [obj]

    def Allgatherv(self, sendbuf: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(sendbuf)

    @property
    def bytes_communicated(self) -> int:
        return 0


class _SharedState:
    """Rendezvous state shared by the p endpoints of a ThreadComm world."""

    def __init__(self, size: int, fault_plan: "FaultPlan | None" = None) -> None:
        self.size = size
        self.barrier = threading.Barrier(size)
        self.slots: list[Any] = [None] * size
        self.lock = threading.Lock()
        self.fault_plan = fault_plan


class ThreadComm(Communicator):
    """One rank's endpoint of a p-way thread communicator.

    Collectives follow the MPI contract: deadlock-free only if every rank
    calls them in the same order.  A shared slot array plus two barrier
    phases (deposit, read) implements each collective.
    """

    def __init__(self, state: _SharedState, rank: int) -> None:
        self._state = state
        self._rank = rank
        self._bytes = 0
        self._regathers = 0

    @classmethod
    def world(
        cls, size: int, *, fault_plan: "FaultPlan | None" = None
    ) -> list["ThreadComm"]:
        """Create all p endpoints of a communicator world.

        ``fault_plan`` lets the test harness corrupt or drop Allgatherv
        payloads in transit; the checksum layer detects and re-requests.
        """
        if size < 1:
            raise CommError(f"communicator size must be >= 1, got {size}")
        state = _SharedState(size, fault_plan)
        return [cls(state, r) for r in range(size)]

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._state.size

    @property
    def bytes_communicated(self) -> int:
        return self._bytes

    def barrier(self) -> None:
        self._state.barrier.wait()

    def _exchange(self, obj: Any) -> list[Any]:
        """Deposit this rank's object; return everyone's after the barrier."""
        self._state.slots[self._rank] = obj
        self._state.barrier.wait()
        out = list(self._state.slots)
        self._state.barrier.wait()  # nobody resets slots before all have read
        return out

    def bcast(self, obj: Any, root: int = 0) -> Any:
        return self._exchange(obj if self._rank == root else None)[root]

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        everything = self._exchange(obj)
        return everything if self._rank == root else None

    def allgather(self, obj: Any) -> list[Any]:
        return self._exchange(obj)

    @property
    def gather_retries(self) -> int:
        """How many checksum-failed gathers this endpoint re-requested."""
        return self._regathers

    def Allgatherv(self, sendbuf: np.ndarray) -> np.ndarray:
        """Checksummed Allgatherv: corrupted payloads are re-requested.

        Every part travels with its CRC32; after the exchange the ranks
        vote on integrity (a second collective, so all endpoints agree)
        and redo the gather while any part fails its checksum, up to
        :data:`MAX_GATHER_ATTEMPTS` rounds.
        """
        sendbuf = np.ascontiguousarray(sendbuf)
        plan = self._state.fault_plan
        crc = _payload_checksum(sendbuf)
        for _attempt in range(MAX_GATHER_ATTEMPTS):
            self._bytes += int(sendbuf.nbytes)
            wire = sendbuf
            if plan is not None:
                for spec in plan.consume("gather", block=self._rank, exec_rank=self._rank):
                    wire = sendbuf[:0] if spec.kind == "drop" else _tamper(sendbuf)
            parts = self._exchange((wire, crc))
            ok = all(_payload_checksum(buf) == want for buf, want in parts)
            votes = self._exchange(bool(ok))
            if all(votes):
                return np.concatenate([buf for buf, _ in parts]) if parts else sendbuf
            self._regathers += 1
        raise CommError(
            f"Allgatherv payload failed integrity check {MAX_GATHER_ATTEMPTS} "
            f"times on rank {self._rank} (permanently corrupted link?)"
        )


def spmd_run(
    fn: Callable[[Communicator], Any],
    size: int,
    *,
    timeout: float | None = 300.0,
    fault_plan: "FaultPlan | None" = None,
) -> list[Any]:
    """Run ``fn(comm)`` on every rank of a ThreadComm world; return results.

    The single-rank case short-circuits to a :class:`SerialComm` call on
    the current thread.  Exceptions on any rank are re-raised after the
    world is joined (first failing rank wins).  Ranks that fail to finish
    within ``timeout`` seconds raise :class:`~repro.errors.RankTimeoutError`
    naming the stuck ranks, so a straggler is distinguishable from a
    global deadlock.
    """
    if size == 1:
        return [fn(SerialComm())]
    comms = ThreadComm.world(size, fault_plan=fault_plan)
    results: list[Any] = [None] * size
    failures: list[tuple[int, BaseException]] = []
    lock = threading.Lock()

    def runner(r: int) -> None:
        try:
            results[r] = fn(comms[r])
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            with lock:
                failures.append((r, exc))
            comms[r]._state.barrier.abort()

    threads = [threading.Thread(target=runner, args=(r,), daemon=True) for r in range(size)]
    deadline = None if timeout is None else time.monotonic() + timeout
    for t in threads:
        t.start()
    for t in threads:
        t.join(None if deadline is None else max(0.0, deadline - time.monotonic()))
    stuck = tuple(r for r, t in enumerate(threads) if t.is_alive())
    if stuck:
        # Unblock any rank parked at a collective with the stragglers, so
        # the world does not leak threads waiting forever.
        comms[0]._state.barrier.abort()
        raise RankTimeoutError(
            f"SPMD rank(s) {list(stuck)} still running after {timeout}s "
            "(straggler or deadlocked collective)",
            ranks=stuck,
        )
    if failures:
        # A rank's real exception aborts the barrier, making the others see
        # BrokenBarrierError — report the root cause, not the fallout.
        failures.sort(
            key=lambda f: (isinstance(f[1], threading.BrokenBarrierError), f[0])
        )
        rank, exc = failures[0]
        raise CommError(f"rank {rank} failed: {exc!r}") from exc
    return results
