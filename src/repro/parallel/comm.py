"""MPI-like communicator abstraction with a thread-backed SPMD engine.

The paper's implementation uses C/C++ + MPI; mpi4py is not available in
this environment, so the library defines the subset of the MPI interface
the algorithm needs (mpi4py naming conventions: lowercase = pickled
objects, capitalised-v = numpy buffer collectives) and provides:

* :class:`SerialComm` — size 1, every collective is the identity;
* :class:`ThreadComm` — p communicator endpoints backed by threads and
  barriers, with real MPI semantics (every rank must reach a collective);
  used by :func:`spmd_run` to execute an SPMD function over p ranks.

The numpy data movement is genuine (arrays are concatenated across ranks
exactly as ``MPI_Allgatherv`` would), so communicated byte counts — which
feed the cost model — are measured, not estimated.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from typing import Any

import numpy as np

from ..errors import CommError

__all__ = ["Communicator", "SerialComm", "ThreadComm", "spmd_run"]


class Communicator:
    """Minimal MPI-flavoured interface used by the parallel driver."""

    @property
    def rank(self) -> int:
        raise NotImplementedError

    @property
    def size(self) -> int:
        raise NotImplementedError

    def barrier(self) -> None:
        raise NotImplementedError

    def bcast(self, obj: Any, root: int = 0) -> Any:
        raise NotImplementedError

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        raise NotImplementedError

    def allgather(self, obj: Any) -> list[Any]:
        raise NotImplementedError

    def Allgatherv(self, sendbuf: np.ndarray) -> np.ndarray:
        """Concatenation of every rank's (variable-length) array, everywhere."""
        raise NotImplementedError

    @property
    def bytes_communicated(self) -> int:
        """Total bytes this endpoint contributed to collectives."""
        raise NotImplementedError


class SerialComm(Communicator):
    """The p = 1 communicator: every collective is the identity."""

    @property
    def rank(self) -> int:
        return 0

    @property
    def size(self) -> int:
        return 1

    def barrier(self) -> None:
        return None

    def bcast(self, obj: Any, root: int = 0) -> Any:
        return obj

    def gather(self, obj: Any, root: int = 0) -> list[Any]:
        return [obj]

    def allgather(self, obj: Any) -> list[Any]:
        return [obj]

    def Allgatherv(self, sendbuf: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(sendbuf)

    @property
    def bytes_communicated(self) -> int:
        return 0


class _SharedState:
    """Rendezvous state shared by the p endpoints of a ThreadComm world."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.barrier = threading.Barrier(size)
        self.slots: list[Any] = [None] * size
        self.lock = threading.Lock()


class ThreadComm(Communicator):
    """One rank's endpoint of a p-way thread communicator.

    Collectives follow the MPI contract: deadlock-free only if every rank
    calls them in the same order.  A shared slot array plus two barrier
    phases (deposit, read) implements each collective.
    """

    def __init__(self, state: _SharedState, rank: int) -> None:
        self._state = state
        self._rank = rank
        self._bytes = 0

    @classmethod
    def world(cls, size: int) -> list["ThreadComm"]:
        """Create all p endpoints of a communicator world."""
        if size < 1:
            raise CommError(f"communicator size must be >= 1, got {size}")
        state = _SharedState(size)
        return [cls(state, r) for r in range(size)]

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._state.size

    @property
    def bytes_communicated(self) -> int:
        return self._bytes

    def barrier(self) -> None:
        self._state.barrier.wait()

    def _exchange(self, obj: Any) -> list[Any]:
        """Deposit this rank's object; return everyone's after the barrier."""
        self._state.slots[self._rank] = obj
        self._state.barrier.wait()
        out = list(self._state.slots)
        self._state.barrier.wait()  # nobody resets slots before all have read
        return out

    def bcast(self, obj: Any, root: int = 0) -> Any:
        return self._exchange(obj if self._rank == root else None)[root]

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        everything = self._exchange(obj)
        return everything if self._rank == root else None

    def allgather(self, obj: Any) -> list[Any]:
        return self._exchange(obj)

    def Allgatherv(self, sendbuf: np.ndarray) -> np.ndarray:
        sendbuf = np.ascontiguousarray(sendbuf)
        parts = self._exchange(sendbuf)
        self._bytes += int(sendbuf.nbytes)
        return np.concatenate(parts) if parts else sendbuf


def spmd_run(
    fn: Callable[[Communicator], Any], size: int, *, timeout: float | None = 300.0
) -> list[Any]:
    """Run ``fn(comm)`` on every rank of a ThreadComm world; return results.

    The single-rank case short-circuits to a :class:`SerialComm` call on
    the current thread.  Exceptions on any rank are re-raised after the
    world is joined (first failing rank wins).
    """
    if size == 1:
        return [fn(SerialComm())]
    comms = ThreadComm.world(size)
    results: list[Any] = [None] * size
    failures: list[tuple[int, BaseException]] = []
    lock = threading.Lock()

    def runner(r: int) -> None:
        try:
            results[r] = fn(comms[r])
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            with lock:
                failures.append((r, exc))
            comms[r]._state.barrier.abort()

    threads = [threading.Thread(target=runner, args=(r,), daemon=True) for r in range(size)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
        if t.is_alive():
            raise CommError("SPMD run timed out (deadlocked collective?)")
    if failures:
        # A rank's real exception aborts the barrier, making the others see
        # BrokenBarrierError — report the root cause, not the fallout.
        failures.sort(
            key=lambda f: (isinstance(f[1], threading.BrokenBarrierError), f[0])
        )
        rank, exc = failures[0]
        raise CommError(f"rank {rank} failed: {exc!r}") from exc
    return results
