"""Analytic communication/parallel-time model (the cluster substitute).

This host has a single CPU core and no interconnect, so wall-clock
concurrency cannot be observed directly.  The paper's own complexity
analysis (Section III-C.1) writes the gather step as

    T_comm = tau * log p + mu * |S_global|        (latency-bandwidth form)

and the compute steps as per-rank work that the driver *measures* by
executing every rank's program.  The model combines the two:

    T(p) = max_r load_r + max_r sketch_r + T_comm(p, bytes) + max_r map_r

Defaults for tau and mu are calibrated so the communication *fraction*
lands in the regime Fig. 8 reports (growing with p, under 25 % at p = 64)
given this implementation's measured compute speeds; absolute seconds are
not comparable to the paper's C++/cluster numbers and are never claimed to
be (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import CommError

__all__ = ["CostModel", "StepTimes", "modelled_runtime"]


@dataclass(frozen=True)
class CostModel:
    """Latency-bandwidth (alpha-beta) model of the collectives.

    Attributes
    ----------
    tau:
        Per-message latency in seconds (Ethernet-class default).
    mu:
        Seconds per byte transferred (reciprocal bandwidth).
    io_bandwidth:
        Bytes/s for the shared-filesystem input load of step S1.
    """

    tau: float = 5.0e-4
    mu: float = 6.0e-9
    io_bandwidth: float = 500.0e6

    def __post_init__(self) -> None:
        if self.tau < 0 or self.mu < 0 or self.io_bandwidth <= 0:
            raise CommError("cost model constants must be positive")

    def allgatherv_time(self, p: int, total_bytes: int) -> float:
        """Time for an Allgatherv moving ``total_bytes`` across p ranks.

        Ring/recursive-doubling hybrid: latency term tau*ceil(log2 p) plus
        a bandwidth term over the data every rank must receive from the
        others ((p-1)/p of the union).
        """
        if p < 1:
            raise CommError(f"p must be >= 1, got {p}")
        if p == 1:
            return 0.0
        log_p = int(np.ceil(np.log2(p)))
        return self.tau * log_p + self.mu * total_bytes * (p - 1) / p

    def input_load_time(self, p: int, total_bytes: int) -> float:
        """Parallel input read: total bytes split across p readers."""
        return total_bytes / (self.io_bandwidth * p)


@dataclass
class StepTimes:
    """Per-rank measured compute seconds for the four steps S1..S4.

    ``recovery`` is per-rank time lost to fault handling (failed attempts,
    backoff, straggler delays, re-dispatched blocks); ``regather_comm`` is
    modelled communication spent re-requesting checksum-failed gather
    payloads, and ``gather_retries`` counts those re-requests.  All three
    are zero on a fault-free run, so Fig. 7/8-style breakdowns are
    unchanged unless faults actually fired.
    """

    load: np.ndarray
    sketch: np.ndarray
    map: np.ndarray
    gather_comm: float = 0.0
    comm_bytes: int = 0
    recovery: np.ndarray | None = None
    regather_comm: float = 0.0
    gather_retries: int = 0

    def __post_init__(self) -> None:
        if self.recovery is None:
            self.recovery = np.zeros_like(np.asarray(self.load, dtype=float))

    @property
    def p(self) -> int:
        return int(self.load.size)

    @property
    def compute_time(self) -> float:
        """Makespan of the compute phases (max over ranks per phase)."""
        return float(self.load.max() + self.sketch.max() + self.map.max())

    @property
    def recovery_time(self) -> float:
        """Fault-recovery makespan: slowest rank's recovery plus re-gathers."""
        return float(self.recovery.max()) + self.regather_comm

    @property
    def total_time(self) -> float:
        return self.compute_time + self.gather_comm + self.recovery_time

    @property
    def comm_fraction(self) -> float:
        total = self.total_time
        return (self.gather_comm + self.regather_comm) / total if total > 0 else 0.0

    def breakdown(self) -> dict[str, float]:
        """Step makespans — the Fig. 7a stacked bars.

        The ``recovery`` entry appears only when faults fired, keeping
        fault-free tables identical to the paper's four-step shape.
        """
        out = {
            "input_load": float(self.load.max()),
            "subject_sketch": float(self.sketch.max()),
            "sketch_gather": float(self.gather_comm),
            "query_map": float(self.map.max()),
        }
        if self.recovery_time > 0:
            out["recovery"] = self.recovery_time
        return out


def modelled_runtime(steps: StepTimes, model: CostModel) -> float:
    """Total modelled parallel runtime for a measured run."""
    return steps.compute_time + model.allgatherv_time(steps.p, steps.comm_bytes)
