"""Distributed-memory JEM-mapper driver — steps S1–S4 of the paper.

Two execution modes:

* :func:`run_parallel_jem` — **instrumented SPMD simulation**: every rank's
  program is executed (sequentially, so per-rank compute times are clean
  single-thread measurements) and the gather step's cost comes from the
  measured communication volume through the :class:`CostModel`.  This is
  what the strong-scaling experiments (Table II, Figs. 7–8) run, since the
  host has one core.
* :func:`run_parallel_jem_threaded` — the same program on a real
  :class:`ThreadComm` world with genuine ``Allgatherv`` data movement; used
  to verify the SPMD program's collectives are correct (its mapping output
  must equal the sequential mapper's bit for bit).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.config import JEMConfig
from ..core.hitcounter import count_hits_vectorised
from ..core.mapper import MappingResult
from ..core.segments import SegmentInfo, extract_end_segments
from ..core.sketch_table import SketchTable
from ..errors import CommError
from ..seq.records import SequenceSet
from ..sketch.jem import query_sketch_values, subject_sketch_pairs
from .comm import Communicator, spmd_run
from .costmodel import CostModel, StepTimes
from .partition import partition_bounds, partition_set

__all__ = ["ParallelRunResult", "run_parallel_jem", "run_parallel_jem_threaded"]


@dataclass
class ParallelRunResult:
    """Outcome of a p-rank JEM-mapper run."""

    mapping: MappingResult
    steps: StepTimes
    p: int
    n_segments: int

    @property
    def total_time(self) -> float:
        """Modelled parallel runtime (compute makespan + gather)."""
        return self.steps.total_time

    @property
    def query_throughput(self) -> float:
        """Queries (segments) mapped per second of the query step (Fig. 7b)."""
        query_time = float(self.steps.map.max())
        return self.n_segments / query_time if query_time > 0 else 0.0


def _merge_rank_results(
    per_rank: list[MappingResult], read_offsets: list[int]
) -> MappingResult:
    """Concatenate per-rank mapping results, globalising read indices."""
    names: list[str] = []
    infos: list[SegmentInfo] = []
    subjects: list[np.ndarray] = []
    counts: list[np.ndarray] = []
    for result, base in zip(per_rank, read_offsets):
        names.extend(result.segment_names)
        infos.extend(
            SegmentInfo(read_index=si.read_index + base, kind=si.kind)
            for si in result.infos
        )
        subjects.append(result.subject)
        counts.append(result.hit_count)
    return MappingResult(
        segment_names=names,
        subject=np.concatenate(subjects) if subjects else np.empty(0, dtype=np.int64),
        hit_count=np.concatenate(counts) if counts else np.empty(0, dtype=np.int64),
        infos=infos,
    )


def run_parallel_jem(
    contigs: SequenceSet,
    reads: SequenceSet,
    config: JEMConfig | None = None,
    *,
    p: int = 4,
    cost_model: CostModel | None = None,
) -> ParallelRunResult:
    """Instrumented S1–S4 run on p simulated ranks.

    S1: block-partition subjects and queries by base count (load time from
    the I/O model).  S2: each rank sketches its subject block (measured).
    S3: Allgatherv union of the per-rank tables (volume measured, time from
    the cost model).  S4: each rank maps its query block against the global
    table (measured).  The merged mapping is identical to a sequential
    :class:`~repro.core.mapper.JEMMapper` run — a property the test suite
    asserts.
    """
    config = config if config is not None else JEMConfig()
    cost_model = cost_model if cost_model is not None else CostModel()
    if p < 1:
        raise CommError(f"p must be >= 1, got {p}")
    family = config.hash_family()

    # -- S1: load/partition --------------------------------------------------
    subject_parts = partition_set(contigs, p)
    read_parts = partition_set(reads, p)
    read_bounds = partition_bounds(reads.offsets, p)
    load = np.array(
        [
            (subject_parts[r].total_bases + read_parts[r].total_bases)
            / cost_model.io_bandwidth
            for r in range(p)
        ]
    )

    # -- S2: sketch local subjects (measured per rank) ------------------------
    sketch_times = np.zeros(p)
    local_keys: list[list[np.ndarray]] = []
    offset = 0
    for r in range(p):
        t0 = time.perf_counter()
        keys = subject_sketch_pairs(
            subject_parts[r], config.k, config.w, config.ell, family,
            subject_id_offset=offset,
        )
        sketch_times[r] = time.perf_counter() - t0
        offset += len(subject_parts[r])
        local_keys.append(keys)

    # -- S3: Allgatherv the sketch tables -------------------------------------
    comm_bytes = int(sum(k.nbytes for keys in local_keys for k in keys))
    merged = [
        np.unique(np.concatenate([local_keys[r][t] for r in range(p)]))
        for t in range(config.trials)
    ]
    table = SketchTable(merged, n_subjects=len(contigs))
    gather_comm = cost_model.allgatherv_time(p, comm_bytes)

    # -- S4: map local queries (measured per rank) -----------------------------
    map_times = np.zeros(p)
    rank_results: list[MappingResult] = []
    n_segments = 0
    for r in range(p):
        t0 = time.perf_counter()
        if len(read_parts[r]) == 0:
            result = MappingResult([], np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), [])
        else:
            segments, infos = extract_end_segments(read_parts[r], config.ell)
            sketches = query_sketch_values(segments, config.k, config.w, family)
            hits = count_hits_vectorised(
                table, sketches.values, min_hits=config.min_hits, query_mask=sketches.has
            )
            result = MappingResult.from_best_hits(segments.names, hits, infos)
        map_times[r] = time.perf_counter() - t0
        n_segments += len(result)
        rank_results.append(result)

    mapping = _merge_rank_results(rank_results, [int(b) for b in read_bounds[:-1]])
    steps = StepTimes(
        load=load, sketch=sketch_times, map=map_times,
        gather_comm=gather_comm, comm_bytes=comm_bytes,
    )
    return ParallelRunResult(mapping=mapping, steps=steps, p=p, n_segments=n_segments)


def run_parallel_jem_threaded(
    contigs: SequenceSet,
    reads: SequenceSet,
    config: JEMConfig | None = None,
    *,
    p: int = 4,
) -> MappingResult:
    """The same SPMD program on a real ThreadComm world (correctness mode).

    Every rank executes S1–S4 concurrently with genuine Allgatherv data
    movement; only the merged mapping is returned (timings under a shared
    GIL are not meaningful).
    """
    config = config if config is not None else JEMConfig()
    family = config.hash_family()
    subject_bounds = partition_bounds(contigs.offsets, p)
    read_bounds = partition_bounds(reads.offsets, p)

    def rank_program(comm: Communicator) -> MappingResult:
        r = comm.rank
        # S1: every rank takes its block of the (shared) input
        my_subjects = contigs.slice(int(subject_bounds[r]), int(subject_bounds[r + 1]))
        my_reads = reads.slice(int(read_bounds[r]), int(read_bounds[r + 1]))
        # S2: sketch local subjects with global subject ids
        keys = subject_sketch_pairs(
            my_subjects, config.k, config.w, config.ell, family,
            subject_id_offset=int(subject_bounds[r]),
        )
        # S3: per-trial Allgatherv into the global table
        merged = [np.unique(comm.Allgatherv(keys[t])) for t in range(config.trials)]
        table = SketchTable(merged, n_subjects=len(contigs))
        # S4: map local queries
        if len(my_reads) == 0:
            return MappingResult([], np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), [])
        segments, infos = extract_end_segments(my_reads, config.ell)
        sketches = query_sketch_values(segments, config.k, config.w, family)
        hits = count_hits_vectorised(
            table, sketches.values, min_hits=config.min_hits, query_mask=sketches.has
        )
        return MappingResult.from_best_hits(segments.names, hits, infos)

    per_rank = spmd_run(rank_program, p)
    return _merge_rank_results(per_rank, [int(b) for b in read_bounds[:-1]])
