"""Distributed-memory JEM-mapper driver — steps S1–S4 of the paper.

Two execution modes:

* :func:`run_parallel_jem` — **instrumented SPMD simulation**: every rank's
  program is executed (sequentially, so per-rank compute times are clean
  single-thread measurements) and the gather step's cost comes from the
  measured communication volume through the :class:`CostModel`.  This is
  what the strong-scaling experiments (Table II, Figs. 7–8) run, since the
  host has one core.
* :func:`run_parallel_jem_threaded` — the same program on a real
  :class:`ThreadComm` world with genuine ``Allgatherv`` data movement; used
  to verify the SPMD program's collectives are correct (its mapping output
  must equal the sequential mapper's bit for bit).

Both modes accept a :class:`~repro.parallel.faults.FaultPlan`.  Failure
handling follows one playbook:

1. a faulted S2/S4 work unit is retried on its own rank under the
   :class:`~repro.parallel.retry.RetryPolicy` (backoff accounted in the
   simulation, really slept in threaded mode);
2. a unit whose rank is beyond saving is **re-dispatched** to a surviving
   rank (simulation only — threaded ranks cannot swap blocks without
   desynchronising the collectives);
3. corrupted/dropped gather payloads are detected by checksum and
   re-requested, their cost charged to the cost model;
4. an S4 unit that fails everywhere is fatal under ``strict=True``
   (:class:`~repro.errors.PartialResultError`), or degrades gracefully
   under ``strict=False`` into a :class:`~repro.parallel.faults.PartialResult`
   naming exactly the affected reads.  A lost S2 unit is always fatal:
   mapping against a silently incomplete index would corrupt *every*
   rank's results, not just one block's.

All recovery time lands in ``StepTimes`` so fault overhead shows up in the
Fig. 7/8-style breakdowns.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..core.config import JEMConfig
from ..core.mapper import MappingResult, map_segment_batch
from ..core.segments import SegmentInfo, extract_end_segments
from ..core.store import DEFAULT_STORE_KIND, SketchStore, build_store
from ..errors import CommError, FaultError, PartialResultError
from ..seq.records import SequenceSet
from ..sketch.jem import subject_sketch_pairs
from .comm import MAX_GATHER_ATTEMPTS, Communicator, spmd_run
from .costmodel import CostModel, StepTimes
from .faults import FaultPlan, PartialResult, inject_compute_faults
from .partition import partition_bounds, partition_set
from .retry import RetryPolicy, retry_call

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.checkpoint import CheckpointContext

__all__ = [
    "ParallelRunResult",
    "QueryMapOutcome",
    "map_partitioned_queries",
    "resolve_partial",
    "run_parallel_jem",
    "run_parallel_jem_threaded",
]


@dataclass
class ParallelRunResult:
    """Outcome of a p-rank JEM-mapper run."""

    mapping: MappingResult
    steps: StepTimes
    p: int
    n_segments: int
    partial: PartialResult | None = field(default=None)

    @property
    def total_time(self) -> float:
        """Modelled parallel runtime (compute makespan + gather + recovery)."""
        return self.steps.total_time

    @property
    def recovery_time(self) -> float:
        """Modelled seconds lost to fault recovery (0 on a clean run)."""
        return self.steps.recovery_time

    @property
    def complete(self) -> bool:
        """True when every query block survived (no graceful degradation)."""
        return self.partial is None

    @property
    def query_throughput(self) -> float:
        """Queries (segments) mapped per second of the query step (Fig. 7b)."""
        query_time = float(self.steps.map.max())
        return self.n_segments / query_time if query_time > 0 else 0.0


def _merge_rank_results(
    per_rank: list[MappingResult], read_offsets: list[int]
) -> MappingResult:
    """Concatenate per-rank mapping results, globalising read indices."""
    names: list[str] = []
    infos: list[SegmentInfo] = []
    subjects: list[np.ndarray] = []
    counts: list[np.ndarray] = []
    for result, base in zip(per_rank, read_offsets):
        names.extend(result.segment_names)
        infos.extend(
            SegmentInfo(read_index=si.read_index + base, kind=si.kind)
            for si in result.infos
        )
        subjects.append(result.subject)
        counts.append(result.hit_count)
    return MappingResult(
        segment_names=names,
        subject=np.concatenate(subjects) if subjects else np.empty(0, dtype=np.int64),
        hit_count=np.concatenate(counts) if counts else np.empty(0, dtype=np.int64),
        infos=infos,
    )


def _simulate_unit(
    plan: FaultPlan | None,
    policy: RetryPolicy,
    phase: str,
    *,
    block: int,
    exec_rank: int,
    stream: int,
    fn,
):
    """One S2/S4 work unit under the fault plan, recovery *accounted*.

    Returns ``(result_or_None, measured_seconds, recovery_seconds, cause)``.
    Injected straggler delays and retry backoff are added to the recovery
    account rather than slept — this is the simulation mode, so fault cost
    is modelled exactly like communication cost.
    """
    if plan is None:
        t0 = time.perf_counter()
        result = fn()
        return result, time.perf_counter() - t0, 0.0, None
    recovery = 0.0
    retries = 0
    cause: str | None = None
    measured = 0.0
    for attempt in range(policy.max_attempts):
        actions = plan.consume(phase, block=block, exec_rank=exec_rank)
        crash = None
        for spec in actions:
            if spec.kind == "straggler":
                recovery += spec.delay
            elif spec.kind in ("crash", "worker_death"):
                crash = spec
        if crash is None:
            t0 = time.perf_counter()
            result = fn()
            measured = time.perf_counter() - t0
            recovery += policy.total_backoff(retries, stream=stream)
            return result, measured, recovery, None
        cause = f"injected {crash.kind} ({phase} block {block} on rank {exec_rank})"
        if attempt < policy.max_attempts - 1:
            retries += 1
    recovery += policy.total_backoff(retries, stream=stream)
    return None, measured, recovery, cause


@dataclass
class QueryMapOutcome:
    """Result of the fault-tolerant S4 stage over partitioned queries.

    ``rank_results[b]`` is block b's mapping (``None`` when the block was
    lost on every rank); recovery seconds and re-dispatch counts are
    accounted per executing rank exactly as :func:`run_parallel_jem` does.
    """

    rank_results: list[MappingResult | None]
    map_times: np.ndarray
    recovery: np.ndarray
    redispatches: int
    failed_blocks: dict[int, str]


def map_partitioned_queries(
    table: SketchStore,
    read_parts: list[SequenceSet],
    config: JEMConfig,
    family=None,
    *,
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
    first_stream_base: int | None = None,
    redispatch_stream_base: int | None = None,
    checkpoint: "CheckpointContext | None" = None,
) -> QueryMapOutcome:
    """Map per-rank query blocks against a resident sketch table (step S4).

    This is the query half of :func:`run_parallel_jem`, factored out so a
    long-lived service with a resident index reuses the exact same
    fault-tolerant dispatch: every block runs under the
    :class:`~repro.parallel.faults.FaultPlan` / retry policy, and a block
    whose own rank is beyond saving is re-dispatched to the surviving
    ranks.  Blocks that fail everywhere land in ``failed_blocks``;
    :func:`resolve_partial` turns them into the strict/no-strict contract.

    With a :class:`~repro.resilience.checkpoint.CheckpointContext`, a
    block whose mapping is already on disk is loaded instead of computed
    (its fault budget is not consumed — the unit never runs), and every
    freshly computed block is committed before the next one starts, so a
    crash between blocks resumes without losing finished work.
    """
    p = len(read_parts)
    policy = retry if retry is not None else RetryPolicy()
    if family is None:
        family = config.hash_family()
    if first_stream_base is None:
        first_stream_base = 2 * p
    if redispatch_stream_base is None:
        redispatch_stream_base = 3 * p

    def map_block(b: int):
        def _run() -> MappingResult:
            if len(read_parts[b]) == 0:
                return MappingResult(
                    [], np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), []
                )
            segments, infos = extract_end_segments(read_parts[b], config.ell)
            # fused native when the table is columnar, numpy otherwise
            return map_segment_batch(table, segments, config, family, infos)

        return _run

    map_times = np.zeros(p)
    recovery = np.zeros(p)
    redispatches = 0
    rank_results: list[MappingResult | None] = [None] * p
    map_failures: list[tuple[int, str]] = []
    for r in range(p):
        if checkpoint is not None:
            saved = checkpoint.mapping_result(r)
            if saved is not None:
                rank_results[r] = saved
                continue
        result, dt, rec, cause = _simulate_unit(
            faults, policy, "map", block=r, exec_rank=r,
            stream=first_stream_base + r, fn=map_block(r),
        )
        map_times[r] = dt
        recovery[r] += rec
        if result is None:
            map_failures.append((r, cause or "unknown fault"))
        else:
            rank_results[r] = result
            if checkpoint is not None:
                checkpoint.save_mapping(r, result)
    failed_blocks: dict[int, str] = {}
    for b, cause in map_failures:
        recovered = False
        for donor in range(p):
            if donor == b:
                continue
            result, dt, rec, cause2 = _simulate_unit(
                faults, policy, "map",
                block=b, exec_rank=donor,
                stream=redispatch_stream_base + b, fn=map_block(b),
            )
            map_times[donor] += dt
            recovery[donor] += rec
            redispatches += 1
            if result is not None:
                rank_results[b] = result
                if checkpoint is not None:
                    checkpoint.save_mapping(b, result)
                recovered = True
                break
            cause = cause2 or cause
        if not recovered:
            failed_blocks[b] = cause
    return QueryMapOutcome(
        rank_results=rank_results, map_times=map_times, recovery=recovery,
        redispatches=redispatches, failed_blocks=failed_blocks,
    )


def resolve_partial(
    failed_blocks: dict[int, str],
    read_parts: list[SequenceSet],
    *,
    strict: bool,
) -> PartialResult | None:
    """Apply the strict/no-strict contract to unmappable query blocks.

    Strict mode raises :class:`~repro.errors.PartialResultError` naming
    every lost read; otherwise the same information is returned as a
    :class:`~repro.parallel.faults.PartialResult` (``None`` on a clean run).
    """
    if not failed_blocks:
        return None
    failed_reads = tuple(
        name for b in sorted(failed_blocks) for name in read_parts[b].names
    )
    if strict:
        raise PartialResultError(
            f"query block(s) {sorted(failed_blocks)} unmappable on every "
            f"rank ({len(failed_reads)} reads); rerun with strict=False "
            "to accept a partial mapping",
            failed_reads=failed_reads,
        )
    return PartialResult(
        failed_reads=failed_reads,
        failed_blocks=tuple(sorted(failed_blocks)),
        causes=dict(failed_blocks),
    )


def run_parallel_jem(
    contigs: SequenceSet,
    reads: SequenceSet,
    config: JEMConfig | None = None,
    *,
    p: int = 4,
    cost_model: CostModel | None = None,
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
    strict: bool = True,
    store_kind: str = DEFAULT_STORE_KIND,
    checkpoint: "CheckpointContext | None" = None,
) -> ParallelRunResult:
    """Instrumented S1–S4 run on p simulated ranks.

    S1: block-partition subjects and queries by base count (load time from
    the I/O model).  S2: each rank sketches its subject block (measured).
    S3: Allgatherv union of the per-rank tables (volume measured, time from
    the cost model).  S4: each rank maps its query block against the global
    table (measured).  The merged mapping is identical to a sequential
    :class:`~repro.core.mapper.JEMMapper` run — a property the test suite
    asserts, *including under any recoverable fault plan*.

    With a :class:`~repro.resilience.checkpoint.CheckpointContext`, every
    completed S2 shard and S4 query block is committed to the run
    directory as it finishes, and units already on disk are loaded rather
    than recomputed — a run killed at any boundary and resumed yields the
    same bits as an uninterrupted one (the kill-resume parity tests).
    """
    config = config if config is not None else JEMConfig()
    cost_model = cost_model if cost_model is not None else CostModel()
    policy = retry if retry is not None else RetryPolicy()
    if p < 1:
        raise CommError(f"p must be >= 1, got {p}")
    family = config.hash_family()

    # -- S1: load/partition --------------------------------------------------
    subject_parts = partition_set(contigs, p)
    read_parts = partition_set(reads, p)
    read_bounds = partition_bounds(reads.offsets, p)
    subject_offsets = [0] * p
    acc = 0
    for r in range(p):
        subject_offsets[r] = acc
        acc += len(subject_parts[r])
    load = np.array(
        [
            (subject_parts[r].total_bases + read_parts[r].total_bases)
            / cost_model.io_bandwidth
            for r in range(p)
        ]
    )
    recovery = np.zeros(p)
    redispatches = 0

    # -- S2: sketch local subjects (measured per rank, retried on fault) ------
    def sketch_block(b: int):
        return lambda: subject_sketch_pairs(
            subject_parts[b], config.k, config.w, config.ell, family,
            subject_id_offset=subject_offsets[b],
        )

    sketch_times = np.zeros(p)
    local_keys: list[list[np.ndarray] | None] = [None] * p
    sketch_failures: list[tuple[int, str]] = []
    for r in range(p):
        if checkpoint is not None:
            saved = checkpoint.sketch_result(r)
            if saved is not None:
                local_keys[r] = saved
                continue
        keys, dt, rec, cause = _simulate_unit(
            faults, policy, "sketch", block=r, exec_rank=r, stream=r, fn=sketch_block(r)
        )
        sketch_times[r] = dt
        recovery[r] += rec
        if keys is None:
            sketch_failures.append((r, cause or "unknown fault"))
        else:
            local_keys[r] = keys
            if checkpoint is not None:
                checkpoint.save_sketch(r, keys)
    # Re-dispatch lost sketch blocks to surviving ranks.  A block no
    # survivor can sketch is fatal in every mode: an incomplete index
    # would silently corrupt all mappings, not one block's.
    for b, cause in sketch_failures:
        survivors = [r for r in range(p) if local_keys[r] is not None and r != b]
        for donor in survivors:
            keys, dt, rec, cause2 = _simulate_unit(
                faults, policy, "sketch",
                block=b, exec_rank=donor, stream=p + b, fn=sketch_block(b),
            )
            sketch_times[donor] += dt
            recovery[donor] += rec
            redispatches += 1
            if keys is not None:
                local_keys[b] = keys
                if checkpoint is not None:
                    checkpoint.save_sketch(b, keys)
                break
            cause = cause2 or cause
        if local_keys[b] is None:
            raise FaultError(
                f"subject block {b} unsketchable on every rank: {cause}"
            )

    # -- S3: Allgatherv the sketch tables -------------------------------------
    key_arrays: list[list[np.ndarray]] = [k for k in local_keys if k is not None]
    comm_bytes = int(sum(k.nbytes for keys in key_arrays for k in keys))
    rank_bytes = [int(sum(k.nbytes for k in keys)) for keys in key_arrays]
    merged = [
        np.unique(np.concatenate([key_arrays[r][t] for r in range(p)]))
        for t in range(config.trials)
    ]
    table = build_store(store_kind, merged, n_subjects=len(contigs))
    gather_comm = cost_model.allgatherv_time(p, comm_bytes)
    regather_comm = 0.0
    gather_retries = 0
    if faults is not None:
        for _attempt in range(MAX_GATHER_ATTEMPTS):
            bad = [
                r for r in range(p)
                if faults.consume("gather", block=r, exec_rank=r)
            ]
            if not bad:
                break
            # checksum mismatch detected: re-request exactly the bad payloads
            regather_comm += cost_model.allgatherv_time(
                p, sum(rank_bytes[r] for r in bad)
            )
            gather_retries += len(bad)
        else:
            raise CommError(
                f"gather payload failed integrity check {MAX_GATHER_ATTEMPTS} "
                "times (permanently corrupted link?)"
            )

    # -- S4: map local queries (measured per rank, retried / re-dispatched) ---
    outcome = map_partitioned_queries(
        table, read_parts, config, family, faults=faults, retry=policy,
        first_stream_base=2 * p, redispatch_stream_base=3 * p,
        checkpoint=checkpoint,
    )
    map_times = outcome.map_times
    recovery += outcome.recovery
    redispatches += outcome.redispatches
    rank_results = outcome.rank_results
    partial = resolve_partial(outcome.failed_blocks, read_parts, strict=strict)

    surviving = [r for r in range(p) if rank_results[r] is not None]
    mapping = _merge_rank_results(
        [rank_results[r] for r in surviving],
        [int(read_bounds[r]) for r in surviving],
    )
    n_segments = len(mapping)
    steps = StepTimes(
        load=load, sketch=sketch_times, map=map_times,
        gather_comm=gather_comm, comm_bytes=comm_bytes,
        recovery=recovery, regather_comm=regather_comm,
        gather_retries=gather_retries,
    )
    return ParallelRunResult(
        mapping=mapping, steps=steps, p=p, n_segments=n_segments, partial=partial
    )


def run_parallel_jem_threaded(
    contigs: SequenceSet,
    reads: SequenceSet,
    config: JEMConfig | None = None,
    *,
    p: int = 4,
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
    timeout: float | None = 300.0,
    store_kind: str = DEFAULT_STORE_KIND,
) -> MappingResult:
    """The same SPMD program on a real ThreadComm world (correctness mode).

    Every rank executes S1–S4 concurrently with genuine Allgatherv data
    movement; only the merged mapping is returned (timings under a shared
    GIL are not meaningful).  Transient faults are retried in place (the
    collectives stay aligned because retries complete before the rank
    reaches its next collective); gather corruption is absorbed by the
    checksummed :meth:`~repro.parallel.comm.ThreadComm.Allgatherv`.
    Permanent rank faults abort the world — threaded ranks cannot trade
    blocks without desynchronising the collectives.
    """
    config = config if config is not None else JEMConfig()
    policy = retry if retry is not None else RetryPolicy()
    family = config.hash_family()
    subject_bounds = partition_bounds(contigs.offsets, p)
    read_bounds = partition_bounds(reads.offsets, p)

    def rank_program(comm: Communicator) -> MappingResult:
        r = comm.rank
        # S1: every rank takes its block of the (shared) input
        my_subjects = contigs.slice(int(subject_bounds[r]), int(subject_bounds[r + 1]))
        my_reads = reads.slice(int(read_bounds[r]), int(read_bounds[r + 1]))

        # S2: sketch local subjects with global subject ids (retried on fault)
        def attempt_sketch(_attempt: int):
            inject_compute_faults(faults, "sketch", block=r, exec_rank=r)
            return subject_sketch_pairs(
                my_subjects, config.k, config.w, config.ell, family,
                subject_id_offset=int(subject_bounds[r]),
            )

        keys, _, _ = retry_call(attempt_sketch, policy=policy, stream=r)
        # S3: per-trial Allgatherv into the global table (checksummed)
        merged = [np.unique(comm.Allgatherv(keys[t])) for t in range(config.trials)]
        table = build_store(store_kind, merged, n_subjects=len(contigs))

        # S4: map local queries (retried on fault)
        def attempt_map(_attempt: int) -> MappingResult:
            inject_compute_faults(faults, "map", block=r, exec_rank=r)
            if len(my_reads) == 0:
                return MappingResult(
                    [], np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), []
                )
            segments, infos = extract_end_segments(my_reads, config.ell)
            return map_segment_batch(table, segments, config, family, infos)

        result, _, _ = retry_call(attempt_map, policy=policy, stream=p + r)
        return result

    per_rank = spmd_run(rank_program, p, timeout=timeout, fault_plan=faults)
    return _merge_rank_results(per_rank, [int(b) for b in read_bounds[:-1]])
