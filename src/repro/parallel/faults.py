"""Deterministic fault injection for the S1-S4 parallel pipeline.

Production mappers must survive partial failure; this module makes failure
a first-class, *testable* code path.  A :class:`FaultPlan` is a seeded,
fully deterministic description of which faults fire where:

* ``crash``        — the work unit raises :class:`~repro.errors.FaultError`;
* ``straggler``    — the work unit is delayed by ``delay`` seconds;
* ``corrupt``      — a rank's Allgatherv payload is flipped in transit
  (caught by the checksum layer and re-requested);
* ``drop``         — a rank's Allgatherv payload is lost in transit;
* ``worker_death`` — the worker *process* dies hard (``os._exit``) in the
  multiprocessing backend; equivalent to ``crash`` elsewhere.

Faults are **rank-scoped** by default: they fire when the work runs *on*
the targeted rank, so re-dispatching the block to a surviving rank
escapes them.  A ``unit_scoped`` fault instead follows the work unit
wherever it executes — a permanent unit-scoped fault is therefore
unrecoverable and exercises the graceful-degradation path.

The plan's firing state is internal and lock-protected (ranks consume
faults from worker threads); ``consume`` is the single mutation point, so
a given (plan seed, policy) pair always yields the same recovery story —
the fault-matrix tests rely on this to assert bit-identical output.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from ..errors import FaultError, ReproError

__all__ = [
    "FAULT_KINDS",
    "FAULT_PHASES",
    "FaultSpec",
    "FaultPlan",
    "PartialResult",
    "RecoveryReport",
    "inject_compute_faults",
]

FAULT_KINDS = ("crash", "straggler", "corrupt", "drop", "worker_death")
FAULT_PHASES = ("sketch", "gather", "map")

#: Kinds that only make sense on the gather path.
_GATHER_KINDS = frozenset({"corrupt", "drop"})


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    phase:
        Pipeline phase the fault strikes (``sketch`` = S2, ``gather`` = S3,
        ``map`` = S4).
    block:
        Targeted work unit / rank index.
    times:
        Firings before the fault clears; ``None`` means it never clears
        (a *permanent* fault).
    delay:
        Straggler sleep in seconds (``straggler`` only).
    unit_scoped:
        Fault follows the work unit across re-dispatch instead of being
        pinned to the executing rank.
    """

    kind: str
    phase: str
    block: int
    times: int | None = 1
    delay: float = 0.05
    unit_scoped: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ReproError(f"unknown fault kind {self.kind!r}")
        if self.phase not in FAULT_PHASES:
            raise ReproError(f"unknown fault phase {self.phase!r}")
        if self.kind in _GATHER_KINDS and self.phase != "gather":
            raise ReproError(f"{self.kind!r} faults only apply to the gather phase")
        if self.times is not None and self.times < 1:
            raise ReproError(f"times must be >= 1 or None, got {self.times}")

    @property
    def permanent(self) -> bool:
        return self.times is None


class FaultPlan:
    """A deterministic set of faults plus their (mutable) firing state."""

    def __init__(self, specs: list[FaultSpec] | tuple[FaultSpec, ...] = ()):
        self.specs = tuple(specs)
        self._remaining: list[int | None] = [s.times for s in self.specs]
        self._fired = [0] * len(self.specs)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({list(self.specs)!r})"

    @classmethod
    def seeded(
        cls,
        seed: int,
        p: int,
        *,
        n_faults: int = 3,
        kinds: tuple[str, ...] = ("crash", "straggler", "corrupt", "worker_death"),
        max_times: int = 2,
        delay: float = 0.01,
        recoverable: bool = True,
    ) -> "FaultPlan":
        """Draw a random fault plan from a seed (the property-test source).

        With ``recoverable=True`` every fault clears within ``max_times``
        firings (keep ``max_times < RetryPolicy.max_attempts``), so
        recovery must reproduce the sequential mapping exactly.  With
        ``recoverable=False`` one extra permanent unit-scoped ``crash`` is
        planted on a random S4 (map) block — the canonical unrecoverable
        fault that triggers graceful degradation.
        """
        rng = np.random.default_rng(seed)
        specs: list[FaultSpec] = []
        for _ in range(n_faults):
            kind = str(rng.choice(list(kinds)))
            if kind in _GATHER_KINDS:
                phase = "gather"
            else:
                phase = str(rng.choice(["sketch", "map"]))
            specs.append(
                FaultSpec(
                    kind=kind,
                    phase=phase,
                    block=int(rng.integers(0, p)),
                    times=int(rng.integers(1, max_times + 1)),
                    delay=delay,
                )
            )
        if not recoverable:
            specs.append(
                FaultSpec(
                    kind="crash",
                    phase="map",
                    block=int(rng.integers(0, p)),
                    times=None,
                    unit_scoped=True,
                )
            )
        return cls(specs)

    @classmethod
    def kill_all_workers(
        cls, p: int, *, phase: str = "map", once: bool = True
    ) -> "FaultPlan":
        """Every worker dies — the chaos scenario behind the circuit breaker.

        ``once=True`` plants one ``worker_death`` per rank (each worker
        dies exactly once; retry and re-dispatch can still recover).
        ``once=False`` makes the deaths permanent on every rank, so no
        donor survives either: the whole dispatch fails until the plan is
        cleared — modelling a pool that stays dead until the watchdog
        rebuilds it.
        """
        if p < 1:
            raise ReproError(f"p must be >= 1, got {p}")
        return cls(
            [
                FaultSpec(
                    kind="worker_death",
                    phase=phase,
                    block=r,
                    times=1 if once else None,
                )
                for r in range(p)
            ]
        )

    @property
    def recoverable(self) -> bool:
        """Whether recovery can still yield the exact sequential mapping.

        Permanent rank-scoped compute faults are recoverable (re-dispatch
        escapes them); permanent unit-scoped or gather faults are not.
        """
        return not any(
            s.permanent and (s.unit_scoped or s.phase == "gather") for s in self.specs
        )

    @property
    def total_fired(self) -> int:
        with self._lock:
            return sum(self._fired)

    def consume(self, phase: str, *, block: int, exec_rank: int) -> list[FaultSpec]:
        """Fire (and use up) every fault matching this execution.

        ``block`` is the work-unit index, ``exec_rank`` the rank actually
        running it (``-1`` = "a fresh worker", which no rank-scoped fault
        matches — how the backends model re-dispatch to a survivor).
        """
        out: list[FaultSpec] = []
        with self._lock:
            for i, spec in enumerate(self.specs):
                if spec.phase != phase:
                    continue
                target = block if spec.unit_scoped else exec_rank
                if spec.block != target:
                    continue
                if self._remaining[i] is None:
                    self._fired[i] += 1
                    out.append(spec)
                elif self._remaining[i] > 0:
                    self._remaining[i] -= 1
                    self._fired[i] += 1
                    out.append(spec)
        return out

    def reset(self) -> None:
        """Restore every fault's firing budget (for repeated runs)."""
        with self._lock:
            self._remaining = [s.times for s in self.specs]
            self._fired = [0] * len(self.specs)


def inject_compute_faults(
    plan: FaultPlan | None,
    phase: str,
    *,
    block: int,
    exec_rank: int,
    sleep: Callable[[float], None] = time.sleep,
) -> None:
    """Fire matching compute faults for real: sleep stragglers, raise crashes.

    Used where execution is genuinely concurrent (the ThreadComm rank
    program and the worker processes); the simulated driver accounts the
    same faults arithmetically instead.
    """
    if plan is None:
        return
    for spec in plan.consume(phase, block=block, exec_rank=exec_rank):
        if spec.kind == "straggler":
            sleep(spec.delay)
        elif spec.kind in ("crash", "worker_death"):
            raise FaultError(
                f"injected {spec.kind}: {phase} block {block} on rank {exec_rank}"
            )


@dataclass(frozen=True)
class PartialResult:
    """What was lost when a run degraded instead of aborting.

    ``failed_reads`` names exactly the reads whose query blocks could not
    be mapped; ``causes`` maps each failed block index to a human-readable
    root cause.
    """

    failed_reads: tuple[str, ...]
    failed_blocks: tuple[int, ...]
    causes: dict[int, str] = field(default_factory=dict)

    @property
    def n_failed(self) -> int:
        return len(self.failed_reads)

    def describe(self) -> str:
        blocks = ", ".join(
            f"block {b}: {self.causes.get(b, 'unknown cause')}"
            for b in self.failed_blocks
        )
        return f"{self.n_failed} reads unmapped after recovery ({blocks})"


@dataclass
class RecoveryReport:
    """Mutable recovery accounting filled in by a resilient run.

    Pass an instance to :func:`~repro.parallel.mp_backend.map_reads_multiprocess`
    to observe what the recovery machinery did; the simulated driver
    surfaces the same numbers through ``ParallelRunResult``.
    """

    attempts: int = 0
    redispatches: int = 0
    gather_retries: int = 0
    recovery_seconds: float = 0.0
    partial: PartialResult | None = None
    #: transport the run used ("shm"/"pickle"); filled in by the backend
    transport: str = ""

    @property
    def faults_encountered(self) -> bool:
        return (
            self.redispatches > 0
            or self.gather_retries > 0
            or self.recovery_seconds > 0
            or self.partial is not None
        )
