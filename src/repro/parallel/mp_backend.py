"""Process-based parallel execution of the JEM-mapper pipeline.

The in-process driver (:func:`~repro.parallel.driver.run_parallel_jem`)
*simulates* p ranks to measure per-rank costs; this module actually runs
the two data-parallel phases — subject sketching (S2) and query mapping
(S4) — across worker processes with ``multiprocessing``, for hosts that do
have spare cores.  The gather (S3) happens in the parent, playing the role
of the Allgatherv root.

Execution is fault-tolerant.  Work units are dispatched in rounds through
a worker pool; a unit whose worker raises, dies hard (``os._exit``) or
exceeds the per-unit ``timeout`` (a dead ``multiprocessing`` worker never
posts its result — the timeout is how the parent notices) is re-dispatched
with exponential backoff under the :class:`~repro.parallel.retry.RetryPolicy`.
Because a timed-out slot may be occupied by a hung worker, the pool is
rebuilt after any timeout; ``multiprocessing`` itself respawns workers
that died.  A unit that fails every attempt is fatal for S2 (an incomplete
index corrupts every result), and for S4 either raises
:class:`~repro.errors.PartialResultError` (``strict=True``) or degrades
into a :class:`~repro.parallel.faults.PartialResult` naming exactly the
lost reads (``strict=False``).

Work units travel over one of two transports.  The default, ``"shm"``,
publishes the contig set, the read set and the merged sketch table once
each in POSIX shared memory (:mod:`~repro.parallel.shm`); payloads shrink
to small descriptors and workers build numpy views directly on the
mapping — no per-rank copy of the table, no base buffers in the pickle
stream, and a rebuilt pool re-attaches to the same segments by name.
``"pickle"`` is the original transport (each payload pickles a zero-copy
slice of the columnar :class:`SequenceSet`, copying exactly the bytes an
MPI scatter would send) and is kept as the fallback and as the parity
reference.  Output equals the sequential mapper's bit for bit on either
transport — the test suite asserts it, including under any recoverable
:class:`~repro.parallel.faults.FaultPlan`.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time

import numpy as np

from ..core.config import JEMConfig
from ..core.hitcounter import count_hits_vectorised
from ..core.mapper import MappingResult
from ..core.segments import extract_end_segments
from ..core.store import DEFAULT_STORE_KIND, build_store
from ..errors import CommError, FaultError, PartialResultError
from ..seq.records import SequenceSet
from ..sketch.jem import query_sketch_values, subject_sketch_pairs
from .driver import _merge_rank_results
from .faults import FaultPlan, PartialResult, RecoveryReport
from .partition import partition_bounds, partition_set
from .retry import RetryPolicy
from .shm import (
    SharedSeqBlock,
    SharedStore,
    SharedTable,
    release,
    share_sequence_set,
    share_store,
    sweep_orphan_segments,
)

__all__ = ["map_reads_multiprocess", "TRANSPORTS"]

#: Accepted values for ``map_reads_multiprocess(transport=...)``.
TRANSPORTS = ("shm", "pickle")

#: Default per-work-unit deadline; how long a dead worker goes unnoticed.
DEFAULT_UNIT_TIMEOUT = 60.0


def _apply_worker_faults(actions: tuple) -> None:
    """Execute parent-armed fault actions inside the worker process."""
    for action in actions:
        if action[0] == "die":
            os._exit(1)  # hard kill: no exception, no result — a real crash
        elif action[0] == "sleep":
            time.sleep(action[1])
        elif action[0] == "raise":
            raise FaultError(action[1])


def _sketch_worker(payload: tuple) -> list[np.ndarray]:
    """S2 on one subject block (executed in a worker process)."""
    subjects, config, offset, actions = payload
    _apply_worker_faults(actions)
    if isinstance(subjects, SharedSeqBlock):
        subjects = subjects.materialise()
    family = config.hash_family()
    return subject_sketch_pairs(
        subjects, config.k, config.w, config.ell, family, subject_id_offset=offset
    )


def _map_worker(payload: tuple) -> MappingResult:
    """S4 on one read block against the gathered store."""
    reads, config, table, n_subjects, store_kind, actions = payload
    _apply_worker_faults(actions)
    if isinstance(reads, SharedSeqBlock):
        reads = reads.materialise()
    if len(reads) == 0:
        return MappingResult(
            [], np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), []
        )
    if isinstance(table, (SharedStore, SharedTable)):
        table = table.materialise()
    else:
        table = build_store(store_kind, table, n_subjects=n_subjects)
    family = config.hash_family()
    segments, infos = extract_end_segments(reads, config.ell)
    sketches = query_sketch_values(segments, config.k, config.w, family)
    hits = count_hits_vectorised(
        table, sketches.values, min_hits=config.min_hits, query_mask=sketches.has
    )
    return MappingResult.from_best_hits(segments.names, hits, infos)


def _arm(plan: FaultPlan | None, phase: str, block: int, *, first: bool) -> tuple:
    """Consume the plan in the parent; ship the verdict to the worker.

    Fault state lives in the parent so retries see an *updated* plan; the
    worker only executes the pre-decided actions.  Re-dispatches use
    ``exec_rank=-1`` ("a fresh worker"), which rank-scoped faults do not
    match — modelling re-dispatch away from a bad worker.
    """
    if plan is None:
        return ()
    specs = plan.consume(phase, block=block, exec_rank=block if first else -1)
    actions = []
    for spec in specs:
        if spec.kind == "worker_death":
            actions.append(("die",))
        elif spec.kind == "straggler":
            actions.append(("sleep", spec.delay))
        elif spec.kind == "crash":
            actions.append(
                ("raise", f"injected crash: {phase} block {block}")
            )
    return tuple(actions)


def _run_phase(
    ctx,
    processes: int,
    worker,
    payloads: list[tuple],
    *,
    plan: FaultPlan | None,
    phase: str,
    policy: RetryPolicy,
    timeout: float | None,
    report: RecoveryReport,
    precomputed: dict[int, object] | None = None,
    on_complete=None,
) -> tuple[list, dict[int, str]]:
    """Dispatch work units in rounds with retry, backoff and re-dispatch.

    Returns ``(results, permanent_failures)`` where the failure dict maps
    unit index to the last cause.  The pool is rebuilt after any timeout
    (the slot may be held by a hung worker); dead workers are respawned by
    ``multiprocessing`` itself.

    ``precomputed`` seeds unit results that need not run at all (resumed
    checkpoint units); ``on_complete(idx, result)`` is invoked in the
    parent as each fresh unit's result is collected — the checkpoint
    layer's single-writer commit hook.
    """
    n = len(payloads)
    results: list = [None] * n
    attempts = [0] * n
    pending = list(range(n))
    if precomputed:
        for idx, value in precomputed.items():
            results[idx] = value
        pending = [i for i in pending if i not in precomputed]
    failures: dict[int, str] = {}
    delays = {i: policy.delays(stream=i) for i in range(n)}
    if not pending:
        return results, failures
    pool = ctx.Pool(processes)
    try:
        while pending:
            batch = []
            for idx in pending:
                actions = _arm(plan, phase, idx, first=attempts[idx] == 0)
                report.attempts += 1
                batch.append(
                    (idx, pool.apply_async(worker, (payloads[idx] + (actions,),)))
                )
            still: list[int] = []
            saw_timeout = False
            round_backoff = 0.0
            for idx, async_result in batch:
                t0 = time.perf_counter()
                try:
                    results[idx] = async_result.get(timeout)
                    if on_complete is not None:
                        on_complete(idx, results[idx])
                    continue
                except mp.TimeoutError:
                    cause = (
                        f"no result within {timeout}s (worker died or hung)"
                    )
                    saw_timeout = True
                except FaultError as exc:
                    cause = str(exc)
                except Exception as exc:  # noqa: BLE001 - worker-side failure
                    cause = repr(exc)
                report.recovery_seconds += time.perf_counter() - t0
                attempts[idx] += 1
                if attempts[idx] < policy.max_attempts:
                    still.append(idx)
                    report.redispatches += 1
                    round_backoff = max(round_backoff, next(delays[idx], 0.0))
                else:
                    failures[idx] = cause
            if saw_timeout:
                # the timed-out slot may still be occupied; start clean
                pool.terminate()
                pool.join()
                pool = ctx.Pool(processes)
            if still and round_backoff > 0:
                time.sleep(round_backoff)
                report.recovery_seconds += round_backoff
            pending = still
    finally:
        pool.terminate()
        pool.join()
    return results, failures


def map_reads_multiprocess(
    contigs: SequenceSet,
    reads: SequenceSet,
    config: JEMConfig | None = None,
    *,
    processes: int = 2,
    mp_context: str = "spawn",
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
    strict: bool = True,
    timeout: float | None = DEFAULT_UNIT_TIMEOUT,
    report: RecoveryReport | None = None,
    transport: str = "shm",
    store_kind: str = DEFAULT_STORE_KIND,
    checkpoint=None,
) -> MappingResult:
    """Full pipeline with worker-process parallelism; returns the mapping.

    ``processes`` is the worker count for both phases; the input is
    block-partitioned by base count exactly like the distributed driver.
    ``transport`` selects how read-only blocks reach the workers:
    ``"shm"`` (default) publishes them once in shared memory,
    ``"pickle"`` ships a copy inside each work unit.  Pass a
    :class:`~repro.parallel.faults.RecoveryReport` to observe what the
    recovery machinery did (attempts, re-dispatches, recovery seconds,
    and — with ``strict=False`` — any :class:`PartialResult`).

    ``checkpoint`` (a :class:`~repro.resilience.checkpoint.CheckpointContext`)
    makes the run crash-safe: completed S2/S4 units are committed in the
    parent as their results arrive (single writer — workers never touch
    the log) and resumed units are fed back in as precomputed results.
    """
    config = config if config is not None else JEMConfig()
    policy = retry if retry is not None else RetryPolicy()
    report = report if report is not None else RecoveryReport()
    report.transport = transport
    if processes < 1:
        raise CommError(f"processes must be >= 1, got {processes}")
    if transport not in TRANSPORTS:
        raise CommError(f"transport must be one of {TRANSPORTS}, got {transport!r}")
    subject_parts = partition_set(contigs, processes)
    subject_index_bounds = partition_bounds(contigs.offsets, processes)
    subject_offsets = subject_index_bounds[:-1]
    read_parts = partition_set(reads, processes)
    read_index_bounds = partition_bounds(reads.offsets, processes)
    read_offsets = read_index_bounds[:-1]

    if processes == 1 and faults is None and checkpoint is None:
        local = _sketch_worker((subject_parts[0], config, 0, ()))
        merged = [np.unique(k) for k in local]
        result = _map_worker(
            (read_parts[0], config, merged, len(contigs), store_kind, ())
        )
        return _merge_rank_results([result], [0])

    ctx = mp.get_context(mp_context)
    shared_refs: list[str] = []
    if transport == "shm":
        # reclaim segments leaked by an earlier hard-killed run before
        # publishing new ones (startup half of the orphan-sweep contract)
        sweep_orphan_segments()
    try:
        # S2: sketch subject blocks in parallel (with retry / re-dispatch)
        if transport == "shm":
            subject_blocks = share_sequence_set(
                contigs, "subjects",
                [
                    (int(subject_index_bounds[r]), int(subject_index_bounds[r + 1]))
                    for r in range(processes)
                ],
            )
            shared_refs.append(subject_blocks[0].ref.name)
            sketch_jobs = [
                (subject_blocks[r], config, int(subject_offsets[r]))
                for r in range(processes)
            ]
        else:
            sketch_jobs = [
                (subject_parts[r], config, int(subject_offsets[r]))
                for r in range(processes)
            ]
        sketch_done: dict[int, object] = {}
        sketch_commit = None
        if checkpoint is not None:
            for r in range(processes):
                saved = checkpoint.sketch_result(r)
                if saved is not None:
                    sketch_done[r] = saved
            sketch_commit = checkpoint.save_sketch
        per_rank_keys, sketch_failures = _run_phase(
            ctx, processes, _sketch_worker, sketch_jobs,
            plan=faults, phase="sketch", policy=policy, timeout=timeout,
            report=report, precomputed=sketch_done, on_complete=sketch_commit,
        )
        if sketch_failures:
            blocks = sorted(sketch_failures)
            raise FaultError(
                f"subject block(s) {blocks} unsketchable after "
                f"{policy.max_attempts} attempts: {sketch_failures[blocks[0]]}"
            )
        # S3: union in the parent (the Allgatherv root role)
        merged = [
            np.unique(np.concatenate([per_rank_keys[r][t] for r in range(processes)]))
            for t in range(config.trials)
        ]
        # S4: map read blocks in parallel against the gathered store
        if transport == "shm":
            store = build_store(store_kind, merged, n_subjects=len(contigs))
            table = share_store(store, store_kind)
            shared_refs.append(table.ref.name)
            read_blocks = share_sequence_set(
                reads, "reads",
                [
                    (int(read_index_bounds[r]), int(read_index_bounds[r + 1]))
                    for r in range(processes)
                ],
            )
            shared_refs.append(read_blocks[0].ref.name)
            map_jobs = [
                (read_blocks[r], config, table, len(contigs), store_kind)
                for r in range(processes)
            ]
        else:
            map_jobs = [
                (read_parts[r], config, merged, len(contigs), store_kind)
                for r in range(processes)
            ]
        map_done: dict[int, object] = {}
        map_commit = None
        if checkpoint is not None:
            for r in range(processes):
                saved = checkpoint.mapping_result(r)
                if saved is not None:
                    map_done[r] = saved
            map_commit = checkpoint.save_mapping
        rank_results, map_failures = _run_phase(
            ctx, processes, _map_worker, map_jobs,
            plan=faults, phase="map", policy=policy, timeout=timeout, report=report,
            precomputed=map_done, on_complete=map_commit,
        )
    finally:
        for name in shared_refs:
            release(name)
    if map_failures:
        failed_reads = tuple(
            name for b in sorted(map_failures) for name in read_parts[b].names
        )
        if strict:
            raise PartialResultError(
                f"query block(s) {sorted(map_failures)} unmappable after "
                f"{policy.max_attempts} attempts ({len(failed_reads)} reads); "
                "rerun with strict=False to accept a partial mapping",
                failed_reads=failed_reads,
            )
        report.partial = PartialResult(
            failed_reads=failed_reads,
            failed_blocks=tuple(sorted(map_failures)),
            causes=dict(map_failures),
        )
    surviving = [r for r in range(processes) if rank_results[r] is not None]
    return _merge_rank_results(
        [rank_results[r] for r in surviving],
        [int(read_offsets[r]) for r in surviving],
    )
