"""Process-based parallel execution of the JEM-mapper pipeline.

The in-process driver (:func:`~repro.parallel.driver.run_parallel_jem`)
*simulates* p ranks to measure per-rank costs; this module actually runs
the two data-parallel phases — subject sketching (S2) and query mapping
(S4) — across worker processes with ``multiprocessing``, for hosts that do
have spare cores.  The gather (S3) happens in the parent, playing the role
of the Allgatherv root.

Workers receive their sequence block by pickling a zero-copy slice of the
columnar :class:`SequenceSet` (the buffer slice is contiguous, so pickling
copies exactly the bytes that an MPI scatter would send).  Output equals
the sequential mapper's bit for bit — the test suite asserts it.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Any

import numpy as np

from ..core.config import JEMConfig
from ..core.hitcounter import count_hits_vectorised
from ..core.mapper import MappingResult
from ..core.segments import extract_end_segments
from ..core.sketch_table import SketchTable
from ..errors import CommError
from ..seq.records import SequenceSet
from ..sketch.jem import query_sketch_values, subject_sketch_pairs
from .driver import _merge_rank_results
from .partition import partition_bounds, partition_set

__all__ = ["map_reads_multiprocess"]


def _sketch_worker(payload: tuple) -> list[np.ndarray]:
    """S2 on one subject block (executed in a worker process)."""
    subjects, config, offset = payload
    family = config.hash_family()
    return subject_sketch_pairs(
        subjects, config.k, config.w, config.ell, family, subject_id_offset=offset
    )


def _map_worker(payload: tuple) -> MappingResult:
    """S4 on one read block against the gathered table."""
    reads, config, table_keys, n_subjects = payload
    if len(reads) == 0:
        return MappingResult(
            [], np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), []
        )
    table = SketchTable(table_keys, n_subjects=n_subjects)
    family = config.hash_family()
    segments, infos = extract_end_segments(reads, config.ell)
    sketches = query_sketch_values(segments, config.k, config.w, family)
    hits = count_hits_vectorised(
        table, sketches.values, min_hits=config.min_hits, query_mask=sketches.has
    )
    return MappingResult.from_best_hits(segments.names, hits, infos)


def map_reads_multiprocess(
    contigs: SequenceSet,
    reads: SequenceSet,
    config: JEMConfig | None = None,
    *,
    processes: int = 2,
    mp_context: str = "spawn",
) -> MappingResult:
    """Full pipeline with worker-process parallelism; returns the mapping.

    ``processes`` is the worker count for both phases; the input is
    block-partitioned by base count exactly like the distributed driver.
    """
    config = config if config is not None else JEMConfig()
    if processes < 1:
        raise CommError(f"processes must be >= 1, got {processes}")
    subject_parts = partition_set(contigs, processes)
    subject_offsets = partition_bounds(contigs.offsets, processes)[:-1]
    read_parts = partition_set(reads, processes)
    read_offsets = partition_bounds(reads.offsets, processes)[:-1]

    if processes == 1:
        local = _sketch_worker((subject_parts[0], config, 0))
        merged = [np.unique(k) for k in local]
        result = _map_worker((read_parts[0], config, merged, len(contigs)))
        return _merge_rank_results([result], [0])

    ctx = mp.get_context(mp_context)
    with ctx.Pool(processes) as pool:
        # S2: sketch subject blocks in parallel
        sketch_jobs = [
            (subject_parts[r], config, int(subject_offsets[r]))
            for r in range(processes)
        ]
        per_rank_keys = pool.map(_sketch_worker, sketch_jobs)
        # S3: union in the parent (the Allgatherv root role)
        merged = [
            np.unique(np.concatenate([per_rank_keys[r][t] for r in range(processes)]))
            for t in range(config.trials)
        ]
        # S4: map read blocks in parallel against the gathered table
        map_jobs = [
            (read_parts[r], config, merged, len(contigs)) for r in range(processes)
        ]
        rank_results = pool.map(_map_worker, map_jobs)
    return _merge_rank_results(rank_results, [int(b) for b in read_offsets])
