"""Block partitioning of sequence sets by base count (step S1).

The paper loads inputs so every process holds O(M/p) query bases and O(N/p)
subject bases.  Sequences are kept whole (a sequence lives on exactly one
rank), so the partitioner picks contiguous sequence ranges whose cumulative
base counts best approximate the ideal equal split — one ``searchsorted``
over the offsets array.
"""

from __future__ import annotations

import numpy as np

from ..errors import CommError
from ..seq.records import SequenceSet

__all__ = ["partition_bounds", "partition_set", "partition_imbalance"]


def partition_bounds(offsets: np.ndarray, p: int) -> np.ndarray:
    """Sequence-index boundaries of a p-way base-balanced block partition.

    Returns ``bounds`` of length p+1 with rank r owning sequences
    ``[bounds[r], bounds[r+1])``.  Boundaries are monotone and cover all
    sequences; empty ranks are possible when p exceeds the sequence count.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    if p < 1:
        raise CommError(f"p must be >= 1, got {p}")
    n = offsets.size - 1
    total = int(offsets[-1])
    targets = (np.arange(1, p, dtype=np.int64) * total) // p
    # cut at the sequence boundary closest to each ideal byte target
    cuts = np.searchsorted(offsets, targets, side="left")
    # searchsorted may land one past the closer boundary; snap to nearer
    cuts = np.clip(cuts, 0, n)
    prev = np.clip(cuts - 1, 0, n)
    pick_prev = np.abs(offsets[prev] - targets) <= np.abs(offsets[cuts] - targets)
    cuts = np.where(pick_prev, prev, cuts)
    bounds = np.concatenate([[0], np.maximum.accumulate(cuts), [n]])
    return bounds.astype(np.int64)


def partition_set(sequences: SequenceSet, p: int) -> list[SequenceSet]:
    """Split a set into p contiguous, base-balanced blocks (zero-copy views)."""
    bounds = partition_bounds(sequences.offsets, p)
    return [sequences.slice(int(bounds[r]), int(bounds[r + 1])) for r in range(p)]


def partition_imbalance(parts: list[SequenceSet]) -> float:
    """max/mean base-count ratio across ranks (1.0 = perfectly balanced)."""
    sizes = np.array([part.total_bases for part in parts], dtype=np.float64)
    if sizes.sum() == 0:
        return 1.0
    return float(sizes.max() / sizes.mean())
