"""Bounded retry with exponential backoff + deterministic jitter.

The recovery machinery retries failed S2/S4 work units a bounded number of
times.  Delays follow the usual ``base * backoff**attempt`` curve, capped
at ``max_delay``, with jitter drawn from a *seeded* generator so a given
``(policy, seed)`` pair always produces the same schedule — a requirement
for the fault-matrix tests, whose invariant is that recovery is
deterministic end to end.

Two execution styles share the schedule:

* :func:`retry_call` — really sleep between attempts (the multiprocessing
  backend, where recovery cost is wall time);
* :meth:`RetryPolicy.delays` — just enumerate the delays (the simulated
  SPMD driver, which *accounts* recovery time in the cost model instead of
  burning it).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from typing import TypeVar

import numpy as np

from ..errors import FaultError, ReproError

__all__ = ["RetryPolicy", "retry_call"]

T = TypeVar("T")


class RetryPolicy:
    """How often and how patiently a failed work unit is re-attempted.

    Attributes
    ----------
    max_attempts:
        Total attempts per work unit (first try included); must be >= 1.
    base_delay:
        Delay before the first retry, in seconds.
    backoff:
        Multiplier applied to the delay after every failed attempt.
    max_delay:
        Upper bound on any single delay.
    jitter:
        Fraction of the delay added as seeded uniform noise in
        ``[0, jitter * delay)`` — decorrelates retry storms without
        sacrificing determinism.
    seed:
        Seed for the jitter stream.
    rng:
        Alternative to ``seed``: an explicit ``numpy`` Generator the
        policy draws its jitter seed from at construction time.  Two
        policies built from same-seed generators produce identical
        schedules; there is no module-level RNG anywhere in the retry
        path.  Mutually exclusive with a non-default ``seed``.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.01,
        backoff: float = 2.0,
        max_delay: float = 1.0,
        jitter: float = 0.1,
        seed: int = 0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ReproError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay < 0 or max_delay < 0 or jitter < 0 or backoff < 1.0:
            raise ReproError("retry delays must be >= 0 and backoff >= 1")
        if rng is not None:
            if seed != 0:
                raise ReproError("pass either seed= or rng=, not both")
            # one draw fixes every stream: per-stream generators spawn from
            # (base seed, stream), so streams stay decorrelated
            seed = int(rng.integers(np.iinfo(np.int64).max))
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.backoff = float(backoff)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self.seed = int(seed)

    def delays(self, *, stream: int = 0) -> Iterator[float]:
        """The (deterministic) backoff delay before each retry.

        Yields ``max_attempts - 1`` values; ``stream`` decorrelates the
        jitter of independent work units under the same policy.
        """
        rng = np.random.default_rng((self.seed, stream))
        for attempt in range(self.max_attempts - 1):
            delay = min(self.base_delay * self.backoff**attempt, self.max_delay)
            if self.jitter > 0:
                delay += float(rng.uniform(0.0, self.jitter * delay))
            yield delay

    def total_backoff(self, failures: int, *, stream: int = 0) -> float:
        """Sum of the first ``failures`` backoff delays (modelled recovery)."""
        total = 0.0
        for i, delay in enumerate(self.delays(stream=stream)):
            if i >= failures:
                break
            total += delay
        return total


def retry_call(
    fn: Callable[[int], T],
    *,
    policy: RetryPolicy,
    retryable: tuple[type[BaseException], ...] = (FaultError,),
    stream: int = 0,
    sleep: Callable[[float], None] = time.sleep,
) -> tuple[T, int, float]:
    """Call ``fn(attempt)`` under the retry policy; really sleeps on backoff.

    Returns ``(result, attempts_used, recovery_seconds)`` where recovery
    counts the time lost to failed attempts plus backoff sleeps.  When the
    budget is exhausted the last exception is re-raised wrapped in a
    :class:`FaultError` (``raise ... from``), so the root cause survives.
    """
    delays = policy.delays(stream=stream)
    recovery = 0.0
    last: BaseException | None = None
    for attempt in range(policy.max_attempts):
        t0 = time.perf_counter()
        try:
            return fn(attempt), attempt + 1, recovery
        except retryable as exc:  # noqa: PERF203 - retry loop by design
            recovery += time.perf_counter() - t0
            last = exc
            delay = next(delays, None)
            if delay is not None:
                sleep(delay)
                recovery += delay
    raise FaultError(
        f"work unit failed after {policy.max_attempts} attempts: {last!r}"
    ) from last
