"""Zero-copy shared-memory transport for the process backend.

The process backend used to ship every work unit by pickling it: each S2
payload copied a rank's contig bases into the pickle stream, and each S4
payload copied the *entire* merged sketch table once per rank — p copies
of data that every worker reads but never writes.  This module moves those
read-only blocks through POSIX shared memory instead
(:mod:`multiprocessing.shared_memory`): the parent publishes one segment
per role, workers attach and build numpy views directly on the mapping,
and payloads shrink to a small descriptor naming the segment.

Lifecycle rules (all enforced here):

* **Parent owns every segment.**  Workers only ever attach; creation and
  ``unlink`` happen in the parent process, in a ``try/finally`` around the
  phase dispatch, so segments disappear even when a phase raises
  (:class:`~repro.errors.FaultError`,
  :class:`~repro.errors.PartialResultError`).  An ``atexit`` hook backstops
  interpreter exit, and it refuses to unlink from a process that is not
  the creator (fork children inherit the registry dict).
* **Deterministic names** — ``jem-{pid}-{role}-{counter}`` — so a rebuilt
  pool (the recovery path after a unit timeout) re-attaches to the same
  segments by name; nothing about recovery needs re-publication.
* **Worker attaches bypass the resource tracker.**  Python 3.11 registers
  *attached* segments with ``multiprocessing``'s resource tracker, which
  would unlink parent-owned segments when a worker exits — exactly wrong
  for our ownership model (and the source of the well-known
  ``resource_tracker`` warnings).  Unregistering after the fact races
  when several workers share one tracker (its name cache is a set), so
  attaches simply suppress registration.  Worker attachments are cached
  per process and dropped when the worker dies: the OS releases the
  mapping, the segment itself survives until the parent unlinks it.
"""

from __future__ import annotations

import atexit
import itertools
import os
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..core.sketch_table import SketchTable
from ..core.store import ColumnarSketchStore, SketchStore, store_from_table
from ..errors import CommError
from ..seq.records import SequenceSet

__all__ = [
    "ShmArrayRef",
    "SharedSeqBlock",
    "SharedTable",
    "SharedStore",
    "share_arrays",
    "attach_arrays",
    "share_sequence_set",
    "share_table_keys",
    "share_store",
    "release",
    "release_all",
    "created_segment_names",
    "segment_exists",
    "SEGMENT_PREFIX",
    "orphan_segment_names",
    "sweep_orphan_segments",
]

#: Every segment this package creates is named ``jem-{pid}-{role}-{n}`` —
#: the prefix the orphan sweep scans for.
SEGMENT_PREFIX = "jem-"

#: Where POSIX shared memory surfaces as files (Linux; absent elsewhere).
_SHM_DIR = "/dev/shm"

#: Segments created by *this* process: name -> (SharedMemory, creator pid).
_created: dict[str, tuple[shared_memory.SharedMemory, int]] = {}
#: Segments this process attached to (worker-side cache, dropped on exit).
_attached: dict[str, shared_memory.SharedMemory] = {}
_counter = itertools.count()


def _next_name(role: str) -> str:
    """Deterministic segment name: creator pid + role + running counter."""
    return f"jem-{os.getpid()}-{role}-{next(_counter)}"


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment without registering it with the resource tracker.

    The tracker would otherwise unlink the parent-owned segment when this
    process exits.  Suppressing registration (rather than unregistering
    afterwards) avoids a race in the tracker's shared name cache when
    several workers attach the same segment.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


@dataclass(frozen=True)
class ShmArrayRef:
    """Descriptor of one shared segment holding several packed arrays.

    ``specs`` is a tuple of ``(offset, dtype_str, shape)`` triples; the
    descriptor is tiny and picklable — it is what travels in the work-unit
    payload instead of the arrays themselves.
    """

    name: str
    specs: tuple[tuple[int, str, tuple[int, ...]], ...]

    def __len__(self) -> int:
        return len(self.specs)


def share_arrays(arrays: list[np.ndarray], role: str) -> ShmArrayRef:
    """Publish arrays into one parent-owned segment; returns the descriptor.

    Arrays are packed back to back at 8-byte alignment.  The segment is
    registered for :func:`release` / :func:`release_all`; the caller is
    responsible for eventually releasing it (the backend does so in a
    ``try/finally``).
    """
    specs: list[tuple[int, str, tuple[int, ...]]] = []
    offset = 0
    for arr in arrays:
        arr = np.ascontiguousarray(arr)
        offset = (offset + 7) & ~7
        specs.append((offset, arr.dtype.str, arr.shape))
        offset += arr.nbytes
    shm = shared_memory.SharedMemory(
        create=True, size=max(offset, 1), name=_next_name(role)
    )
    for (off, _, _), arr in zip(specs, arrays):
        arr = np.ascontiguousarray(arr)
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=off)
        view[...] = arr
    _created[shm.name] = (shm, os.getpid())
    return ShmArrayRef(name=shm.name, specs=tuple(specs))


def attach_arrays(ref: ShmArrayRef) -> list[np.ndarray]:
    """Zero-copy views of a descriptor's arrays (attaching if needed).

    In the creating process (and its fork children, which inherit the
    mapping) the existing segment object is reused; otherwise the segment
    is attached once, unregistered from the resource tracker (the parent
    owns the unlink) and cached for the life of this process.
    """
    if ref.name in _created:
        shm = _created[ref.name][0]
    elif ref.name in _attached:
        shm = _attached[ref.name]
    else:
        try:
            shm = _attach_untracked(ref.name)
        except FileNotFoundError as exc:
            raise CommError(f"shared segment {ref.name!r} has vanished") from exc
        _attached[ref.name] = shm
    return [
        np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=off)
        for off, dtype, shape in ref.specs
    ]


@dataclass(frozen=True)
class SharedSeqBlock:
    """One rank's slice of a :class:`SequenceSet` published in shared memory.

    The whole set's ``buffer``/``offsets`` live in a single segment shared
    by every rank; each payload carries only ``[start, stop)`` plus the
    slice's names and metas (small Python objects — metas hold the
    simulators' ground-truth coordinates, which
    :func:`~repro.core.segments.extract_end_segments` reads, so they must
    ride along).
    """

    ref: ShmArrayRef
    start: int
    stop: int
    names: tuple[str, ...]
    metas: tuple[dict, ...]

    def materialise(self) -> SequenceSet:
        """Rebuild the slice as a SequenceSet over zero-copy shm views."""
        buffer, offsets = attach_arrays(self.ref)
        base = int(offsets[self.start])
        return SequenceSet(
            buffer[base : int(offsets[self.stop])],
            offsets[self.start : self.stop + 1] - base,
            list(self.names),
            list(self.metas),
        )


@dataclass(frozen=True)
class SharedTable:
    """The merged per-trial sketch table, published once for all ranks."""

    ref: ShmArrayRef
    n_subjects: int

    def materialise(self) -> SketchTable:
        """Rebuild the table over zero-copy shm views (keys stay sorted)."""
        return SketchTable(attach_arrays(self.ref), n_subjects=self.n_subjects)


def share_sequence_set(
    sequences: SequenceSet, role: str, bounds: list[tuple[int, int]]
) -> list[SharedSeqBlock]:
    """Publish a set once; return per-rank block descriptors.

    ``bounds`` is the rank partition as ``(start, stop)`` sequence-index
    pairs — the shm analogue of the driver's block scatter, except every
    rank reads its slice from the same segment.
    """
    ref = share_arrays([sequences.buffer, sequences.offsets], role)
    return [
        SharedSeqBlock(
            ref=ref,
            start=start,
            stop=stop,
            names=tuple(sequences.names[start:stop]),
            metas=tuple(sequences.metas[start:stop]),
        )
        for start, stop in bounds
    ]


def share_table_keys(keys: list[np.ndarray], n_subjects: int) -> SharedTable:
    """Publish the merged trial-key arrays once; all ranks attach."""
    return SharedTable(ref=share_arrays(keys, "table"), n_subjects=n_subjects)


@dataclass(frozen=True)
class SharedStore:
    """Any resident sketch store, published once for all ranks.

    The columnar store's value/subject columns are shared natively
    (workers rebuild a :class:`~repro.core.store.ColumnarSketchStore`
    over zero-copy views of the interleaved columns); other kinds travel
    as packed keys and are adapted on attach.  ``kind`` decides which.
    """

    ref: ShmArrayRef
    n_subjects: int
    kind: str

    def materialise(self) -> SketchStore:
        """Rebuild the store over zero-copy shm views."""
        arrays = attach_arrays(self.ref)
        if self.kind == "columnar":
            return ColumnarSketchStore.from_columns(arrays, self.n_subjects)
        table = SketchTable(arrays, n_subjects=self.n_subjects)
        return store_from_table(self.kind, table)


def share_store(store: SketchStore, kind: str) -> SharedStore:
    """Publish a store once; returns the descriptor workers attach to.

    Columnar stores ship their flat column arrays (half the key-compare
    bytes of the packed layout, and already in resident form); every other
    kind ships the packed trial keys, exactly like :func:`share_table_keys`.
    """
    if kind == "columnar" and isinstance(store, ColumnarSketchStore):
        arrays = store.export_columns()
    else:
        arrays = [store.trial_keys(t) for t in range(store.trials)]
    return SharedStore(
        ref=share_arrays(arrays, "table"), n_subjects=store.n_subjects, kind=kind
    )


def release(name: str) -> None:
    """Close and unlink one parent-owned segment (idempotent)."""
    entry = _created.pop(name, None)
    if entry is None:
        return
    shm, creator = entry
    try:
        shm.close()
    except BufferError:  # pragma: no cover - live views keep the mmap open
        pass
    if creator == os.getpid():
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def release_all() -> None:
    """Release every segment this process created (atexit backstop)."""
    for name in list(_created):
        release(name)


def created_segment_names() -> list[str]:
    """Names of segments currently owned by this process (for tests)."""
    return sorted(_created)


def segment_exists(name: str) -> bool:
    """True if a segment of that name can still be attached (for tests)."""
    try:
        shm = _attach_untracked(name)
    except FileNotFoundError:
        return False
    shm.close()
    return True


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid exists, other user
        return True
    return True


def orphan_segment_names() -> list[str]:
    """``jem-*`` segments whose creating process is dead.

    The deterministic name scheme embeds the creator pid, so orphans are
    decidable without any registry: a segment named ``jem-{pid}-...``
    whose pid no longer exists was leaked by a hard crash (SIGKILL never
    runs the ``atexit`` unlink).  Segments of live processes — including
    this one — are never reported.
    """
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:  # pragma: no cover - non-Linux shm backing
        return []
    orphans: list[str] = []
    for name in entries:
        if not name.startswith(SEGMENT_PREFIX):
            continue
        parts = name.split("-")
        try:
            pid = int(parts[1])
        except (IndexError, ValueError):
            continue
        if not _pid_alive(pid):
            orphans.append(name)
    return sorted(orphans)


def sweep_orphan_segments() -> list[str]:
    """Unlink every orphaned ``jem-*`` segment; returns the names removed.

    Run at process-backend startup and by the service watchdog, so shared
    memory leaked by a SIGKILLed run is reclaimed by the next one instead
    of accumulating until reboot.  Safe to call concurrently: a segment
    already gone is skipped.
    """
    removed: list[str] = []
    for name in orphan_segment_names():
        try:
            shm = _attach_untracked(name)
        except FileNotFoundError:
            continue
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - lost a race
            continue
        removed.append(name)
    return removed


atexit.register(release_all)
