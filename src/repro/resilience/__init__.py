"""Crash safety and chaos engineering for the mapping pipeline.

Three cooperating pieces (see ``docs/robustness.md``):

* :mod:`~repro.resilience.checkpoint` — a durable, CRC32-framed
  :class:`CheckpointLog` plus :class:`RunManifest` identity records, so a
  run SIGKILLed mid-flight resumes from its last completed S2 shard or S4
  query block and still produces bit-identical output;
* :mod:`~repro.resilience.chaos` — a seeded, deterministic
  :class:`ChaosPlan` that kills live processes mid-unit, tears and
  corrupts checkpoint/index files, and drops shared-memory segments, with
  a kill→resume→verify cycle runner behind ``jem chaos``; its serve
  flavour (:class:`ServeChaosPlan` + :func:`run_serve_chaos`, ``jem
  chaos serve``) kills and wedges supervised replicas mid-load and gates
  on byte-identical serving output, full recovery, and zero shm leaks;
* :mod:`~repro.resilience.pool` — a :class:`ResilientWorkerPool` of real
  worker processes over a shared-memory resident store that rebuilds
  itself (and re-publishes the store) when workers die.
"""

from .chaos import (
    ChaosCycleResult,
    ChaosPlan,
    ChaosSpec,
    ServeChaosEvent,
    ServeChaosPlan,
    ServeChaosReport,
    run_kill_resume_cycle,
    run_serve_chaos,
)
from .checkpoint import (
    CheckpointContext,
    CheckpointLog,
    RunManifest,
    fingerprint_file,
    fingerprint_sequences,
)
from .pool import ResilientWorkerPool
from .runner import build_index_checkpointed, load_invocation, save_invocation

__all__ = [
    "CheckpointContext",
    "CheckpointLog",
    "RunManifest",
    "fingerprint_file",
    "fingerprint_sequences",
    "ChaosPlan",
    "ChaosSpec",
    "ChaosCycleResult",
    "run_kill_resume_cycle",
    "ServeChaosEvent",
    "ServeChaosPlan",
    "ServeChaosReport",
    "run_serve_chaos",
    "ResilientWorkerPool",
    "build_index_checkpointed",
    "save_invocation",
    "load_invocation",
]
