"""Process-kill chaos harness: real SIGKILLs, deterministic schedules.

:mod:`repro.parallel.faults` injects *in-band* compute faults — a work
unit raises, sleeps, or its worker exits.  This module injects the faults
that kill whole *runs*: the process is SIGKILLed mid-unit, checkpoint and
index files are torn or bit-flipped mid-write, shared-memory segments are
dropped.  Everything is driven by one seed, so a failing chaos cycle is
replayable exactly.

Determinism without races: instead of an external monitor trying to time
a kill, the victim kills **itself**.  The :class:`~.checkpoint.CheckpointLog`
honours two environment hooks — ``REPRO_CHAOS_KILL_AFTER=N`` (SIGKILL the
process right after its N-th durable log append) and ``REPRO_CHAOS_TORN=1``
(leave a half-written frame behind first).  A :class:`ChaosPlan` draws the
kill point and the post-mortem file damage from its seed;
:func:`run_kill_resume_cycle` executes one full cycle: run the victim
under the plan, confirm the SIGKILL, vandalise the run directory, resume,
and report what happened.  ``jem chaos`` wraps this in a parity check
against an uninterrupted run.

The *serve* flavour (:class:`ServeChaosPlan` + :func:`run_serve_chaos`,
``jem chaos serve``) tortures the network tier instead: replicas of a
supervised scatter fleet are killed and wedged mid-load while a client
streams reads, and the cycle passes only if every accepted read answers
byte-identically to an undisturbed reference, the supervisor restores
full scatter throughput, and no shm segment leaks.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from dataclasses import dataclass, field

import numpy as np

from ..errors import ChaosError
from ..parallel.shm import sweep_orphan_segments
from .checkpoint import (
    CHAOS_KILL_AFTER_ENV,
    CHAOS_TORN_ENV,
    LOG_NAME,
    CheckpointLog,
)

__all__ = [
    "DAMAGE_KINDS",
    "ChaosSpec",
    "ChaosPlan",
    "ChaosCycleResult",
    "apply_damage",
    "run_kill_resume_cycle",
    "read_tsv_body",
    "SERVE_CHAOS_KINDS",
    "ServeChaosEvent",
    "ServeChaosPlan",
    "ServeChaosReport",
    "run_serve_chaos",
]

#: Post-kill vandalism a plan may order on the run directory.
DAMAGE_KINDS = ("truncate_log", "corrupt_unit", "drop_tmp", "drop_shm")


@dataclass(frozen=True)
class ChaosSpec:
    """One chaos action.

    ``kill`` / ``torn_kill`` specs SIGKILL the victim after its
    ``after_records``-th checkpoint append (``torn_kill`` additionally
    leaves a half-written log frame).  Damage specs (:data:`DAMAGE_KINDS`)
    run *after* the kill, against the run directory the victim left
    behind.
    """

    kind: str
    after_records: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("kill", "torn_kill", *DAMAGE_KINDS):
            raise ChaosError(f"unknown chaos kind {self.kind!r}")
        if self.after_records < 1:
            raise ChaosError(f"after_records must be >= 1, got {self.after_records}")


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded, replayable chaos schedule for one kill-resume cycle."""

    seed: int
    specs: tuple[ChaosSpec, ...]

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        total_units: int,
        max_damage: int = 2,
        torn_probability: float = 0.5,
    ) -> "ChaosPlan":
        """Draw a plan: one kill somewhere in the unit range, 0..n damage.

        ``total_units`` bounds the kill point (a checkpointed run appends
        one record per completed unit), so the SIGKILL lands at a real
        checkpoint boundary somewhere strictly inside the run.
        """
        if total_units < 1:
            raise ChaosError(f"total_units must be >= 1, got {total_units}")
        rng = np.random.default_rng(seed)
        kill_kind = "torn_kill" if rng.random() < torn_probability else "kill"
        specs = [
            ChaosSpec(kind=kill_kind, after_records=int(rng.integers(1, total_units + 1)))
        ]
        for _ in range(int(rng.integers(0, max_damage + 1))):
            specs.append(ChaosSpec(kind=str(rng.choice(DAMAGE_KINDS))))
        return cls(seed=seed, specs=tuple(specs))

    @property
    def kill(self) -> ChaosSpec | None:
        for spec in self.specs:
            if spec.kind in ("kill", "torn_kill"):
                return spec
        return None

    @property
    def damage(self) -> tuple[ChaosSpec, ...]:
        return tuple(s for s in self.specs if s.kind in DAMAGE_KINDS)

    def env(self) -> dict[str, str]:
        """Environment overlay arming the victim's self-kill hook."""
        kill = self.kill
        if kill is None:
            return {}
        overlay = {CHAOS_KILL_AFTER_ENV: str(kill.after_records)}
        if kill.kind == "torn_kill":
            overlay[CHAOS_TORN_ENV] = "1"
        return overlay


def apply_damage(run_dir: str, plan: ChaosPlan) -> list[str]:
    """Vandalise a (dead) run directory per the plan; returns what was done.

    Each action is deterministic in the plan seed: the same plan always
    truncates the same byte count and flips the same byte of the same
    unit payload.  Missing targets (no units yet, no tmp files) are
    recorded as skipped rather than failing the cycle — a kill at record
    1 simply leaves less to vandalise.
    """
    rng = np.random.default_rng((plan.seed, 0xDA_A6E))
    done: list[str] = []
    for spec in plan.damage:
        if spec.kind == "truncate_log":
            path = os.path.join(run_dir, LOG_NAME)
            try:
                size = os.path.getsize(path)
            except OSError:
                done.append("truncate_log: skipped (no log)")
                continue
            cut = int(rng.integers(1, 13))
            with open(path, "r+b") as fh:
                fh.truncate(max(size - cut, 0))
            done.append(f"truncate_log: -{cut} bytes")
        elif spec.kind == "corrupt_unit":
            units_dir = os.path.join(run_dir, "units")
            try:
                files = sorted(
                    f for f in os.listdir(units_dir) if f.endswith(".npz")
                )
            except OSError:
                files = []
            if not files:
                done.append("corrupt_unit: skipped (no units)")
                continue
            victim = os.path.join(units_dir, files[int(rng.integers(len(files)))])
            offset = int(rng.integers(os.path.getsize(victim)))
            with open(victim, "r+b") as fh:
                fh.seek(offset)
                byte = fh.read(1)
                fh.seek(offset)
                fh.write(bytes([byte[0] ^ 0xFF]))
            done.append(f"corrupt_unit: {os.path.basename(victim)} @ {offset}")
        elif spec.kind == "drop_tmp":
            dropped = 0
            for root, _dirs, files in os.walk(run_dir):
                for name in files:
                    if ".tmp." in name:
                        os.unlink(os.path.join(root, name))
                        dropped += 1
            done.append(f"drop_tmp: {dropped} file(s)")
        elif spec.kind == "drop_shm":
            removed = sweep_orphan_segments()
            done.append(f"drop_shm: {len(removed)} orphan segment(s)")
    return done


@dataclass
class ChaosCycleResult:
    """What one kill → vandalise → resume cycle did."""

    plan: ChaosPlan
    killed: bool
    kill_returncode: int
    damage_applied: list[str] = field(default_factory=list)
    records_surviving: int = 0
    resume_returncode: int | None = None
    resume_stdout: str = ""
    resume_stderr: str = ""

    @property
    def resumed_ok(self) -> bool:
        return self.resume_returncode == 0


def run_kill_resume_cycle(
    argv: list[str],
    *,
    run_dir: str,
    plan: ChaosPlan,
    resume_argv: list[str] | None = None,
    timeout: float = 300.0,
) -> ChaosCycleResult:
    """Execute one chaos cycle against the ``jem`` CLI.

    ``argv`` is the CLI argument vector (without the interpreter) of a
    checkpointed run whose directory is ``run_dir``; it is launched with
    the plan's kill hook armed and must die by SIGKILL (a run that
    finishes first is reported with ``killed=False`` — the plan's kill
    point exceeded the run's unit count).  The run directory is then
    vandalised per the plan and ``resume_argv`` (default: ``argv`` again)
    is run to completion without chaos hooks.
    """
    base = [sys.executable, "-m", "repro.cli"]
    env = {**os.environ, **plan.env()}
    env.pop("PYTEST_CURRENT_TEST", None)
    victim = subprocess.run(
        base + argv, env=env, capture_output=True, text=True, timeout=timeout,
    )
    killed = victim.returncode == -signal.SIGKILL
    result = ChaosCycleResult(
        plan=plan, killed=killed, kill_returncode=victim.returncode
    )
    if not killed:
        if victim.returncode != 0:
            raise ChaosError(
                f"victim run failed for a non-chaos reason "
                f"(rc={victim.returncode}): {victim.stderr[-2000:]}"
            )
        # finished before the kill point: nothing to resume
        result.resume_returncode = 0
        result.resume_stdout = victim.stdout
        result.resume_stderr = victim.stderr
        return result
    result.damage_applied = apply_damage(run_dir, plan)
    result.records_surviving = len(
        CheckpointLog(os.path.join(run_dir, LOG_NAME)).replay()
    )
    clean_env = {
        k: v
        for k, v in os.environ.items()
        if k not in (CHAOS_KILL_AFTER_ENV, CHAOS_TORN_ENV)
    }
    resumed = subprocess.run(
        base + (resume_argv if resume_argv is not None else argv),
        env=clean_env, capture_output=True, text=True, timeout=timeout,
    )
    result.resume_returncode = resumed.returncode
    result.resume_stdout = resumed.stdout
    result.resume_stderr = resumed.stderr
    return result


def read_tsv_body(path: str) -> list[str]:
    """A mapping TSV's data lines (``#`` timing comments stripped).

    Two runs are *parity-equal* when these lists match exactly — the
    comment line carries wall-clock timings that legitimately differ.
    """
    with open(path, "r", encoding="utf-8") as fh:
        return [line.rstrip("\n") for line in fh if not line.startswith("#")]


# -- serve chaos: replica fleet torture under live load ----------------------

#: Mid-load faults a serve plan may order against the replica fleet.
SERVE_CHAOS_KINDS = ("kill", "wedge")


@dataclass(frozen=True)
class ServeChaosEvent:
    """One fleet fault, fired once ``after_mapped`` reads have answered.

    ``kill`` is the SIGKILL analogue for an in-process replica: the
    lookup lane dies with its queued futures unresolved and the member's
    shm segment is orphaned.  ``wedge`` stalls the lane for ``wedge_s``
    seconds — alive but silent, the failure mode heartbeats exist for.
    """

    kind: str
    replica: int
    after_mapped: int
    wedge_s: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in SERVE_CHAOS_KINDS:
            raise ChaosError(f"unknown serve chaos kind {self.kind!r}")
        if self.replica < 0:
            raise ChaosError(f"replica must be >= 0, got {self.replica}")
        if self.after_mapped < 1:
            raise ChaosError(f"after_mapped must be >= 1, got {self.after_mapped}")


@dataclass(frozen=True)
class ServeChaosPlan:
    """A seeded, replayable fault schedule for one serve-chaos cycle."""

    seed: int
    events: tuple[ServeChaosEvent, ...]

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        n_replicas: int,
        total_reads: int,
        max_events: int = 2,
    ) -> "ServeChaosPlan":
        """Draw 1..max_events kills/wedges strictly inside the stream."""
        if n_replicas < 1:
            raise ChaosError(f"n_replicas must be >= 1, got {n_replicas}")
        if total_reads < 2:
            raise ChaosError(f"total_reads must be >= 2, got {total_reads}")
        rng = np.random.default_rng((seed, 0x5E12FE))
        events = [
            ServeChaosEvent(
                kind="kill" if rng.random() < 0.5 else "wedge",
                replica=int(rng.integers(n_replicas)),
                after_mapped=int(rng.integers(1, total_reads)),
            )
            for _ in range(int(rng.integers(1, max_events + 1)))
        ]
        events.sort(key=lambda e: e.after_mapped)
        return cls(seed=seed, events=tuple(events))


@dataclass
class ServeChaosReport:
    """What one serve-chaos cycle observed; ``ok`` is the gate CI trusts."""

    plan: ServeChaosPlan
    n_replicas: int
    reads_streamed: int
    responses: int
    dropped: int
    parity: bool
    events_fired: list[str] = field(default_factory=list)
    respawns: int = 0
    hedged: int = 0
    recovered: bool = False
    rescatter_ok: bool = False
    leaked_segments: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.parity
            and self.dropped == 0
            and self.recovered
            and self.rescatter_ok
            and not self.leaked_segments
        )

    def story(self) -> str:
        verdict = "ok" if self.ok else "FAIL"
        fired = "; ".join(self.events_fired) or "no events fired"
        return (
            f"{verdict} [{fired}] {self.responses}/{self.reads_streamed} "
            f"answered, dropped={self.dropped}, "
            f"parity={'exact' if self.parity else 'DRIFTED'}, "
            f"hedged={self.hedged}, respawns={self.respawns}, "
            f"recovered={self.recovered}, rescatter={self.rescatter_ok}, "
            f"leaks={len(self.leaked_segments)}"
        )


def _jem_shm_segments() -> set[str]:
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("jem-")}
    except FileNotFoundError:  # pragma: no cover - non-Linux fallback
        from ..parallel.shm import created_segment_names

        return set(created_segment_names())


def _stream_wire_lines(backend, reads, *, window: int = 4, timeout: float = 120.0):
    """Stream reads with a small pipeline window; return (wire lines, dropped).

    Responses are rendered through the protocol's single formatting path,
    so two backends agree exactly when their serving bytes agree.
    """
    import json
    from collections import deque

    from ..errors import ReproError
    from ..service.protocol import response_for_mapping

    lines: list[str] = []
    dropped = 0
    futures: deque = deque()

    def settle(entry) -> None:
        nonlocal dropped
        i, future = entry
        header = {"id": i, "name": reads.names[i]}
        try:
            mapping = future.result(timeout)
        except ReproError:
            dropped += 1
            return
        lines.append(json.dumps(response_for_mapping(header, mapping)))

    for i in range(len(reads)):
        futures.append((i, backend.submit(reads.names[i], reads.codes_of(i))))
        while len(futures) > window:
            settle(futures.popleft())
    while futures:
        settle(futures.popleft())
    return lines, dropped


def run_serve_chaos(
    contigs,
    reads,
    config,
    *,
    plan: ServeChaosPlan,
    n_replicas: int = 3,
    hedge_timeout_s: float = 0.25,
    service_config=None,
    supervision=None,
) -> ServeChaosReport:
    """One serve-chaos cycle: torture a supervised scatter fleet mid-load.

    Phases, all against one live :class:`~repro.netserve.ReplicaSet`:

    A. *Reference* — the same reads through an undisturbed single
       :class:`~repro.service.MappingService`, rendered to wire lines.
    B. *Storm* — stream the reads through the fleet while an injector
       thread fires the plan's kills/wedges once the answered-read count
       crosses each event's trigger; the running
       :class:`~repro.netserve.FleetSupervisor` detects, respawns, and
       re-admits behind the traffic.  Every accepted read must answer,
       byte-identical to the reference (hedged fallback is exact by
       construction).
    C. *Recovery* — wait until every member probes healthy, then
       re-stream: the scattered count must grow while inline fallbacks
       stay flat, proving full scatter throughput returned (no permanent
       inline serving), and draining must leave zero shm segments.
    """
    import threading
    import time as _time

    from ..core.mapper import JEMMapper
    from ..netserve import (
        FleetSupervisor,
        ReplicaSet,
        SupervisorConfig,
        make_placement,
    )
    from ..service import MappingService, ServiceConfig

    if service_config is None:
        # result cache off: every read must exercise the scatter path the
        # chaos is aimed at, not the front door's content-key cache
        service_config = ServiceConfig(
            max_batch_size=8, max_wait_ms=1.0, cache_capacity=0
        )
    if supervision is None:
        supervision = SupervisorConfig(
            probe_interval_s=0.05, probe_deadline_s=0.1, suspect_strikes=2
        )

    # phase A: undisturbed reference bytes
    with MappingService.from_contigs(contigs, config, service_config) as ref_svc:
        reference, ref_dropped = _stream_wire_lines(ref_svc, reads)
    if ref_dropped:
        raise ChaosError(f"reference run dropped {ref_dropped} read(s)")

    mapper = JEMMapper(config, store_kind="columnar")
    mapper.index(contigs)

    shm_before = _jem_shm_segments()
    replica_set = ReplicaSet(
        mapper.table, mapper.subject_names, config,
        placement=make_placement("scatter", n_replicas),
        service_config=service_config,
        hedge_timeout_s=hedge_timeout_s,
    )
    report = ServeChaosReport(
        plan=plan, n_replicas=n_replicas, reads_streamed=len(reads),
        responses=0, dropped=0, parity=False,
    )
    supervisor = FleetSupervisor(replica_set, supervision)
    stop_injector = threading.Event()

    def injector() -> None:
        pending = list(plan.events)
        front = replica_set._frontdoor.metrics
        while pending and not stop_injector.is_set():
            answered = front.responses_total.value
            while pending and answered >= pending[0].after_mapped:
                event = pending.pop(0)
                if event.kind == "kill":
                    replica_set.kill_replica(event.replica)
                else:
                    replica_set.wedge_replica(
                        event.replica, seconds=event.wedge_s
                    )
                report.events_fired.append(
                    f"{event.kind} replica {event.replica} "
                    f"after {event.after_mapped} mapped"
                )
            _time.sleep(0.002)

    try:
        supervisor.start()
        thread = threading.Thread(
            target=injector, name="jem-serve-chaos", daemon=True
        )
        thread.start()
        # phase B: the storm — stream through the fleet under fire
        lines, dropped = _stream_wire_lines(replica_set, reads)
        stop_injector.set()
        thread.join(10.0)
        report.responses = len(lines)
        report.dropped = dropped
        report.parity = lines == reference
        report.hedged = replica_set.scatter_stats.as_dict()["hedged"]
        # phase C: recovery — fleet healthy, scatter throughput restored
        report.recovered = supervisor.wait_healthy(timeout=60.0)
        before = replica_set.scatter_stats.as_dict()
        relines, redropped = _stream_wire_lines(replica_set, reads)
        after = replica_set.scatter_stats.as_dict()
        report.rescatter_ok = (
            relines == reference
            and redropped == 0
            and after["scattered"] > before["scattered"]
            and after["fallbacks"] == before["fallbacks"]
        )
        report.respawns = replica_set.respawns
    finally:
        stop_injector.set()
        replica_set.drain()
    report.leaked_segments = sorted(_jem_shm_segments() - shm_before)
    return report
