"""Process-kill chaos harness: real SIGKILLs, deterministic schedules.

:mod:`repro.parallel.faults` injects *in-band* compute faults — a work
unit raises, sleeps, or its worker exits.  This module injects the faults
that kill whole *runs*: the process is SIGKILLed mid-unit, checkpoint and
index files are torn or bit-flipped mid-write, shared-memory segments are
dropped.  Everything is driven by one seed, so a failing chaos cycle is
replayable exactly.

Determinism without races: instead of an external monitor trying to time
a kill, the victim kills **itself**.  The :class:`~.checkpoint.CheckpointLog`
honours two environment hooks — ``REPRO_CHAOS_KILL_AFTER=N`` (SIGKILL the
process right after its N-th durable log append) and ``REPRO_CHAOS_TORN=1``
(leave a half-written frame behind first).  A :class:`ChaosPlan` draws the
kill point and the post-mortem file damage from its seed;
:func:`run_kill_resume_cycle` executes one full cycle: run the victim
under the plan, confirm the SIGKILL, vandalise the run directory, resume,
and report what happened.  ``jem chaos`` wraps this in a parity check
against an uninterrupted run.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from dataclasses import dataclass, field

import numpy as np

from ..errors import ChaosError
from ..parallel.shm import sweep_orphan_segments
from .checkpoint import (
    CHAOS_KILL_AFTER_ENV,
    CHAOS_TORN_ENV,
    LOG_NAME,
    CheckpointLog,
)

__all__ = [
    "DAMAGE_KINDS",
    "ChaosSpec",
    "ChaosPlan",
    "ChaosCycleResult",
    "apply_damage",
    "run_kill_resume_cycle",
    "read_tsv_body",
]

#: Post-kill vandalism a plan may order on the run directory.
DAMAGE_KINDS = ("truncate_log", "corrupt_unit", "drop_tmp", "drop_shm")


@dataclass(frozen=True)
class ChaosSpec:
    """One chaos action.

    ``kill`` / ``torn_kill`` specs SIGKILL the victim after its
    ``after_records``-th checkpoint append (``torn_kill`` additionally
    leaves a half-written log frame).  Damage specs (:data:`DAMAGE_KINDS`)
    run *after* the kill, against the run directory the victim left
    behind.
    """

    kind: str
    after_records: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("kill", "torn_kill", *DAMAGE_KINDS):
            raise ChaosError(f"unknown chaos kind {self.kind!r}")
        if self.after_records < 1:
            raise ChaosError(f"after_records must be >= 1, got {self.after_records}")


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded, replayable chaos schedule for one kill-resume cycle."""

    seed: int
    specs: tuple[ChaosSpec, ...]

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        total_units: int,
        max_damage: int = 2,
        torn_probability: float = 0.5,
    ) -> "ChaosPlan":
        """Draw a plan: one kill somewhere in the unit range, 0..n damage.

        ``total_units`` bounds the kill point (a checkpointed run appends
        one record per completed unit), so the SIGKILL lands at a real
        checkpoint boundary somewhere strictly inside the run.
        """
        if total_units < 1:
            raise ChaosError(f"total_units must be >= 1, got {total_units}")
        rng = np.random.default_rng(seed)
        kill_kind = "torn_kill" if rng.random() < torn_probability else "kill"
        specs = [
            ChaosSpec(kind=kill_kind, after_records=int(rng.integers(1, total_units + 1)))
        ]
        for _ in range(int(rng.integers(0, max_damage + 1))):
            specs.append(ChaosSpec(kind=str(rng.choice(DAMAGE_KINDS))))
        return cls(seed=seed, specs=tuple(specs))

    @property
    def kill(self) -> ChaosSpec | None:
        for spec in self.specs:
            if spec.kind in ("kill", "torn_kill"):
                return spec
        return None

    @property
    def damage(self) -> tuple[ChaosSpec, ...]:
        return tuple(s for s in self.specs if s.kind in DAMAGE_KINDS)

    def env(self) -> dict[str, str]:
        """Environment overlay arming the victim's self-kill hook."""
        kill = self.kill
        if kill is None:
            return {}
        overlay = {CHAOS_KILL_AFTER_ENV: str(kill.after_records)}
        if kill.kind == "torn_kill":
            overlay[CHAOS_TORN_ENV] = "1"
        return overlay


def apply_damage(run_dir: str, plan: ChaosPlan) -> list[str]:
    """Vandalise a (dead) run directory per the plan; returns what was done.

    Each action is deterministic in the plan seed: the same plan always
    truncates the same byte count and flips the same byte of the same
    unit payload.  Missing targets (no units yet, no tmp files) are
    recorded as skipped rather than failing the cycle — a kill at record
    1 simply leaves less to vandalise.
    """
    rng = np.random.default_rng((plan.seed, 0xDA_A6E))
    done: list[str] = []
    for spec in plan.damage:
        if spec.kind == "truncate_log":
            path = os.path.join(run_dir, LOG_NAME)
            try:
                size = os.path.getsize(path)
            except OSError:
                done.append("truncate_log: skipped (no log)")
                continue
            cut = int(rng.integers(1, 13))
            with open(path, "r+b") as fh:
                fh.truncate(max(size - cut, 0))
            done.append(f"truncate_log: -{cut} bytes")
        elif spec.kind == "corrupt_unit":
            units_dir = os.path.join(run_dir, "units")
            try:
                files = sorted(
                    f for f in os.listdir(units_dir) if f.endswith(".npz")
                )
            except OSError:
                files = []
            if not files:
                done.append("corrupt_unit: skipped (no units)")
                continue
            victim = os.path.join(units_dir, files[int(rng.integers(len(files)))])
            offset = int(rng.integers(os.path.getsize(victim)))
            with open(victim, "r+b") as fh:
                fh.seek(offset)
                byte = fh.read(1)
                fh.seek(offset)
                fh.write(bytes([byte[0] ^ 0xFF]))
            done.append(f"corrupt_unit: {os.path.basename(victim)} @ {offset}")
        elif spec.kind == "drop_tmp":
            dropped = 0
            for root, _dirs, files in os.walk(run_dir):
                for name in files:
                    if ".tmp." in name:
                        os.unlink(os.path.join(root, name))
                        dropped += 1
            done.append(f"drop_tmp: {dropped} file(s)")
        elif spec.kind == "drop_shm":
            removed = sweep_orphan_segments()
            done.append(f"drop_shm: {len(removed)} orphan segment(s)")
    return done


@dataclass
class ChaosCycleResult:
    """What one kill → vandalise → resume cycle did."""

    plan: ChaosPlan
    killed: bool
    kill_returncode: int
    damage_applied: list[str] = field(default_factory=list)
    records_surviving: int = 0
    resume_returncode: int | None = None
    resume_stdout: str = ""
    resume_stderr: str = ""

    @property
    def resumed_ok(self) -> bool:
        return self.resume_returncode == 0


def run_kill_resume_cycle(
    argv: list[str],
    *,
    run_dir: str,
    plan: ChaosPlan,
    resume_argv: list[str] | None = None,
    timeout: float = 300.0,
) -> ChaosCycleResult:
    """Execute one chaos cycle against the ``jem`` CLI.

    ``argv`` is the CLI argument vector (without the interpreter) of a
    checkpointed run whose directory is ``run_dir``; it is launched with
    the plan's kill hook armed and must die by SIGKILL (a run that
    finishes first is reported with ``killed=False`` — the plan's kill
    point exceeded the run's unit count).  The run directory is then
    vandalised per the plan and ``resume_argv`` (default: ``argv`` again)
    is run to completion without chaos hooks.
    """
    base = [sys.executable, "-m", "repro.cli"]
    env = {**os.environ, **plan.env()}
    env.pop("PYTEST_CURRENT_TEST", None)
    victim = subprocess.run(
        base + argv, env=env, capture_output=True, text=True, timeout=timeout,
    )
    killed = victim.returncode == -signal.SIGKILL
    result = ChaosCycleResult(
        plan=plan, killed=killed, kill_returncode=victim.returncode
    )
    if not killed:
        if victim.returncode != 0:
            raise ChaosError(
                f"victim run failed for a non-chaos reason "
                f"(rc={victim.returncode}): {victim.stderr[-2000:]}"
            )
        # finished before the kill point: nothing to resume
        result.resume_returncode = 0
        result.resume_stdout = victim.stdout
        result.resume_stderr = victim.stderr
        return result
    result.damage_applied = apply_damage(run_dir, plan)
    result.records_surviving = len(
        CheckpointLog(os.path.join(run_dir, LOG_NAME)).replay()
    )
    clean_env = {
        k: v
        for k, v in os.environ.items()
        if k not in (CHAOS_KILL_AFTER_ENV, CHAOS_TORN_ENV)
    }
    resumed = subprocess.run(
        base + (resume_argv if resume_argv is not None else argv),
        env=clean_env, capture_output=True, text=True, timeout=timeout,
    )
    result.resume_returncode = resumed.returncode
    result.resume_stdout = resumed.stdout
    result.resume_stderr = resumed.stderr
    return result


def read_tsv_body(path: str) -> list[str]:
    """A mapping TSV's data lines (``#`` timing comments stripped).

    Two runs are *parity-equal* when these lists match exactly — the
    comment line carries wall-clock timings that legitimately differ.
    """
    with open(path, "r", encoding="utf-8") as fh:
        return [line.rstrip("\n") for line in fh if not line.startswith("#")]
