"""Durable checkpoint/resume for the S1–S4 pipeline.

The pipeline is naturally checkpointable at block granularity: S2 sketches
subject shards independently, S4 maps query blocks independently, and S3
is a pure, cheap reduction over the S2 outputs.  This module makes those
unit boundaries *durable*, so a run killed hard (SIGKILL, OOM, power)
resumes from its last completed unit instead of starting over — and
produces bit-identical output to an uninterrupted run, because each unit's
result is saved losslessly and the merge order is fixed by block index.

Three on-disk artifacts live in a *run directory*:

``manifest.json``
    A :class:`RunManifest`: the full pipeline configuration (algorithm
    constants, mapper, store kind, backend, unit partition) plus content
    fingerprints of every input.  Written once via atomic rename; any
    later open of the same directory must present an *identical* manifest
    or resume is refused with :class:`~repro.errors.CheckpointError` —
    mixing units computed under different configs would silently corrupt
    the output.

``checkpoint.log``
    A :class:`CheckpointLog`: append-only, CRC32-framed records, flushed
    and ``fsync``'d per append.  A crash can only tear the final frame;
    replay stops at the first bad frame and discards the tail, so the log
    never needs repair.

``units/``
    One ``.npz`` payload per completed work unit (S2 shard keys, S4 block
    mappings), written to a temp name and committed with ``os.replace``.
    Each log record carries the payload's CRC32; a payload that fails its
    CRC on resume (chaos, partial write) is treated as *not done* and the
    unit is recomputed.

The module also hosts the deterministic crash-injection hook the chaos
harness uses: with ``REPRO_CHAOS_KILL_AFTER=N`` in the environment, the
process SIGKILLs *itself* immediately after committing its N-th log
record (``REPRO_CHAOS_TORN=1`` additionally leaves a torn half-frame
behind).  Self-kill makes "SIGKILL at checkpoint boundary k" exactly
reproducible — no racy external monitor required.
"""

from __future__ import annotations

import io
import json
import os
import signal
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.mapper import MappingResult
from ..core.segments import SegmentInfo
from ..errors import CheckpointError

__all__ = [
    "CheckpointLog",
    "CheckpointContext",
    "RunManifest",
    "MANIFEST_NAME",
    "LOG_NAME",
    "fingerprint_file",
    "fingerprint_sequences",
    "atomic_write_bytes",
    "CHAOS_KILL_AFTER_ENV",
    "CHAOS_TORN_ENV",
]

#: One frame: magic + payload length + CRC32(payload), then the payload.
_FRAME_MAGIC = b"JMCK"
_FRAME_HEAD = struct.Struct("<4sII")

MANIFEST_NAME = "manifest.json"
LOG_NAME = "checkpoint.log"
_UNITS_DIR = "units"

#: Environment hooks for the deterministic self-SIGKILL chaos injection.
CHAOS_KILL_AFTER_ENV = "REPRO_CHAOS_KILL_AFTER"
CHAOS_TORN_ENV = "REPRO_CHAOS_TORN"


def atomic_write_bytes(path: str, payload: bytes) -> None:
    """Write ``payload`` to ``path`` crash-atomically (tmp + fsync + rename)."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(os.path.dirname(path) or ".")


def _fsync_dir(path: str) -> None:
    """Flush a directory entry (rename durability); best effort."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - not all fs support dir fsync
        pass
    finally:
        os.close(fd)


def fingerprint_file(path: str) -> dict:
    """Content identity of an input file: size + CRC32 over its bytes."""
    crc = 0
    size = 0
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(1 << 20)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
            size += len(chunk)
    return {"size": size, "crc32": crc & 0xFFFFFFFF}


def fingerprint_sequences(sequences) -> dict:
    """Content identity of an in-memory :class:`SequenceSet`."""
    crc = zlib.crc32(np.ascontiguousarray(sequences.buffer).tobytes())
    crc = zlib.crc32(np.ascontiguousarray(sequences.offsets).tobytes(), crc)
    crc = zlib.crc32("\x00".join(sequences.names).encode(), crc)
    return {"n": len(sequences), "crc32": crc & 0xFFFFFFFF}


class CheckpointLog:
    """Append-only CRC32-framed record log with torn-tail-tolerant replay.

    Records are small JSON dicts.  ``append`` frames, writes, flushes and
    ``fsync``'s — after it returns, the record survives any crash.
    ``replay`` yields every intact record in order and stops at the first
    torn or corrupt frame (the crash tail), which is discarded rather
    than treated as an error.
    """

    def __init__(self, path: str, *, fsync: bool = True) -> None:
        self.path = os.fspath(path)
        self._fsync = fsync
        self._fh: io.BufferedWriter | None = None
        self._appended = 0
        self._kill_after = int(os.environ.get(CHAOS_KILL_AFTER_ENV, 0) or 0)
        self._torn = os.environ.get(CHAOS_TORN_ENV, "") == "1"

    # -- writing -------------------------------------------------------------

    def _writer(self) -> io.BufferedWriter:
        if self._fh is None:
            self._fh = open(self.path, "ab")
        return self._fh

    def append(self, record: dict) -> None:
        """Durably append one record (flush + fsync before returning)."""
        payload = json.dumps(record, sort_keys=True).encode()
        frame = _FRAME_HEAD.pack(_FRAME_MAGIC, len(payload), zlib.crc32(payload)) + payload
        fh = self._writer()
        fh.write(frame)
        fh.flush()
        if self._fsync:
            os.fsync(fh.fileno())
        self._appended += 1
        if self._kill_after and self._appended >= self._kill_after:
            self._chaos_self_kill(fh)

    def _chaos_self_kill(self, fh: io.BufferedWriter) -> None:
        """Deterministic crash injection: die by SIGKILL, mid-write if torn."""
        if self._torn:
            # a half-written frame: plausible length, missing payload bytes
            fh.write(_FRAME_HEAD.pack(_FRAME_MAGIC, 64, 0) + b"\x00" * 7)
            fh.flush()
            os.fsync(fh.fileno())
        os.kill(os.getpid(), signal.SIGKILL)

    def reset(self) -> None:
        """Truncate the log to empty — a durable checkpoint now owns the state.

        The mutable-index layer calls this after rewriting its manifest:
        every record in the log is incorporated in the manifest snapshot,
        so replaying them again would be wrong.  The chaos append counter
        deliberately keeps counting across resets (kill-after-N refers to
        process-lifetime appends, which keeps crash points reproducible
        across an entire mutation schedule).
        """
        self.close()
        with open(self.path, "wb") as fh:
            fh.flush()
            os.fsync(fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading -------------------------------------------------------------

    def replay(self) -> list[dict]:
        """Every intact record, in append order; the torn tail is dropped."""
        records: list[dict] = []
        if not os.path.exists(self.path):
            return records
        with open(self.path, "rb") as fh:
            data = fh.read()
        pos = 0
        while pos + _FRAME_HEAD.size <= len(data):
            magic, length, crc = _FRAME_HEAD.unpack_from(data, pos)
            start = pos + _FRAME_HEAD.size
            end = start + length
            if magic != _FRAME_MAGIC or end > len(data):
                break  # torn or garbage tail: everything before it is good
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                break
            try:
                records.append(json.loads(payload))
            except json.JSONDecodeError:  # pragma: no cover - crc collision
                break
            pos = end
        return records


@dataclass(frozen=True)
class RunManifest:
    """Identity of one checkpointed run: what is computed, over what.

    Two manifests are *compatible* iff they are equal (``command``,
    ``pipeline`` dict, ``units`` partition, and every input fingerprint).
    Resume against an incompatible manifest raises
    :class:`~repro.errors.CheckpointError` — the completed units in the
    directory were produced under different rules.
    """

    command: str
    pipeline: dict
    units: dict
    inputs: dict = field(default_factory=dict)
    version: int = 1

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "command": self.command,
            "pipeline": self.pipeline,
            "units": self.units,
            "inputs": self.inputs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        return cls(
            command=str(data["command"]),
            pipeline=dict(data["pipeline"]),
            units=dict(data["units"]),
            inputs=dict(data.get("inputs", {})),
            version=int(data.get("version", 1)),
        )

    def mismatches(self, other: "RunManifest") -> list[str]:
        """Human-readable field paths where the two manifests disagree."""
        out: list[str] = []
        if self.command != other.command:
            out.append(f"command: {self.command!r} != {other.command!r}")
        for label, mine, theirs in (
            ("pipeline", self.pipeline, other.pipeline),
            ("units", self.units, other.units),
            ("inputs", self.inputs, other.inputs),
        ):
            keys = sorted(set(mine) | set(theirs))
            for key in keys:
                if mine.get(key) != theirs.get(key):
                    out.append(
                        f"{label}.{key}: {mine.get(key)!r} != {theirs.get(key)!r}"
                    )
        return out


def _mapping_to_arrays(result: MappingResult) -> dict[str, np.ndarray]:
    return {
        "segment_names": np.array(result.segment_names, dtype=np.str_),
        "subject": np.asarray(result.subject, dtype=np.int64),
        "hit_count": np.asarray(result.hit_count, dtype=np.int64),
        "info_read_index": np.array(
            [si.read_index for si in result.infos], dtype=np.int64
        ),
        "info_kind": np.array([si.kind for si in result.infos], dtype=np.str_),
    }


def _mapping_from_arrays(data) -> MappingResult:
    return MappingResult(
        segment_names=[str(n) for n in data["segment_names"]],
        subject=np.asarray(data["subject"], dtype=np.int64),
        hit_count=np.asarray(data["hit_count"], dtype=np.int64),
        infos=[
            SegmentInfo(read_index=int(ri), kind=str(kind))
            for ri, kind in zip(data["info_read_index"], data["info_kind"])
        ],
    )


class CheckpointContext:
    """One run directory: manifest + log + unit payloads, ready for resume.

    The context is what the execution backends talk to: they ask whether a
    unit is already done (``sketch_result`` / ``mapping_result`` return the
    saved payload or ``None``) and report completions (``save_sketch`` /
    ``save_mapping`` persist the payload atomically, then commit a log
    record).  A payload whose CRC no longer matches its log record — chaos
    corruption, a torn rename — reads as "not done" and is recomputed.
    """

    def __init__(self, run_dir: str, *, fsync: bool = True) -> None:
        self.run_dir = os.fspath(run_dir)
        os.makedirs(os.path.join(self.run_dir, _UNITS_DIR), exist_ok=True)
        self.log = CheckpointLog(os.path.join(self.run_dir, LOG_NAME), fsync=fsync)
        self._done: dict[tuple[str, int], dict] = {}
        for record in self.log.replay():
            phase, block = record.get("phase"), record.get("block")
            if phase is not None and block is not None:
                self._done[(str(phase), int(block))] = record

    # -- manifest ------------------------------------------------------------

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.run_dir, MANIFEST_NAME)

    def load_manifest(self) -> RunManifest | None:
        if not os.path.exists(self.manifest_path):
            return None
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as fh:
                return RunManifest.from_dict(json.load(fh))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"unreadable run manifest {self.manifest_path!r}: {exc}"
            ) from exc

    def ensure_manifest(self, manifest: RunManifest) -> RunManifest:
        """Install ``manifest``, or verify the directory already agrees.

        First open writes the manifest atomically; any later open compares
        field by field and refuses to resume on any difference.
        """
        existing = self.load_manifest()
        if existing is None:
            atomic_write_bytes(
                self.manifest_path,
                json.dumps(manifest.to_dict(), indent=2, sort_keys=True).encode(),
            )
            return manifest
        problems = existing.mismatches(manifest)
        if problems:
            raise CheckpointError(
                f"run directory {self.run_dir!r} was started with a different "
                f"configuration; refusing to resume ({'; '.join(problems)})"
            )
        return existing

    # -- completion queries --------------------------------------------------

    def completed_units(self, phase: str) -> list[int]:
        return sorted(b for (ph, b) in self._done if ph == phase)

    def _payload_arrays(self, phase: str, block: int) -> Any | None:
        record = self._done.get((phase, block))
        if record is None:
            return None
        path = os.path.join(self.run_dir, record["file"])
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except OSError:
            return None
        if (zlib.crc32(raw) & 0xFFFFFFFF) != record["crc32"]:
            return None  # corrupt payload: treat the unit as not done
        try:
            return np.load(io.BytesIO(raw), allow_pickle=False)
        except (ValueError, OSError, EOFError):  # pragma: no cover - crc guards
            return None

    def _commit(self, phase: str, block: int, arrays: dict[str, np.ndarray]) -> None:
        rel = os.path.join(_UNITS_DIR, f"{phase}_{block:04d}.npz")
        buf = io.BytesIO()
        np.savez(buf, **arrays)
        payload = buf.getvalue()
        atomic_write_bytes(os.path.join(self.run_dir, rel), payload)
        record = {
            "phase": phase,
            "block": int(block),
            "file": rel,
            "crc32": zlib.crc32(payload) & 0xFFFFFFFF,
        }
        self.log.append(record)
        self._done[(phase, int(block))] = record

    # -- S2 shard payloads ---------------------------------------------------

    def sketch_result(self, block: int) -> list[np.ndarray] | None:
        """The saved per-trial key arrays of S2 shard ``block`` (or None)."""
        data = self._payload_arrays("sketch", block)
        if data is None:
            return None
        with data:
            return [data[f"trial_{t:03d}"] for t in range(len(data.files))]

    def save_sketch(self, block: int, keys: list[np.ndarray]) -> None:
        self._commit(
            "sketch",
            block,
            {f"trial_{t:03d}": np.asarray(k) for t, k in enumerate(keys)},
        )

    # -- S4 block payloads ---------------------------------------------------

    def mapping_result(self, block: int) -> MappingResult | None:
        """The saved mapping of S4 query block ``block`` (or None)."""
        data = self._payload_arrays("map", block)
        if data is None:
            return None
        with data:
            return _mapping_from_arrays(data)

    def save_mapping(self, block: int, result: MappingResult) -> None:
        self._commit("map", block, _mapping_to_arrays(result))

    def close(self) -> None:
        self.log.close()

    def __enter__(self) -> "CheckpointContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
