"""A worker pool that survives the loss of every worker.

:class:`ResilientWorkerPool` owns the two fragile resources of the
process backend as one unit: the OS worker processes and the
shared-memory segment holding the resident sketch store.  Either can
vanish under it — workers die to SIGKILL, segments get unlinked by an
over-eager cleanup or an operator — and the pool's contract is that
:meth:`ensure` puts both back, re-publishing the store's columns from
the resident copy the parent still holds.  The service watchdog calls
:meth:`ensure` on a timer; tests call it right after vandalising the
pool.

The pool is deliberately generic: :meth:`run` maps any picklable
``fn(shared_store, item)`` over the workers, so the same machinery backs
liveness probes (:func:`probe_worker`) and real mapping work.

The workers are plain ``fork`` processes, one private pipe each —
*deliberately not* :class:`multiprocessing.Pool`.  A ``Pool`` worker
idles inside ``inqueue.get()`` holding the queue's reader lock; SIGKILL
it there and the lock dies held, after which ``Pool.terminate`` (via
``_help_stuff_finish``) deadlocks trying to take it.  A pool whose whole
contract is surviving SIGKILL cannot share locks with its workers, so
here the parent owns all coordination state and tearing a worker down is
always just ``kill`` + ``join``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time

from ..core.store import SketchStore
from ..errors import ReproError
from ..parallel.shm import (
    SharedStore,
    release,
    segment_exists,
    share_store,
    sweep_orphan_segments,
)

__all__ = ["ResilientWorkerPool", "probe_worker"]

#: Worker-side cache of the attached store (one per worker process).
_worker_store: dict[str, SketchStore] = {}


def _attached_store(shared: SharedStore) -> SketchStore:
    store = _worker_store.get(shared.ref.name)
    if store is None:
        store = shared.materialise()
        _worker_store.clear()  # at most one resident store per worker
        _worker_store[shared.ref.name] = store
    return store


def _call(args: tuple) -> object:
    fn, shared, item = args
    return fn(_attached_store(shared), item)


def probe_worker(store: SketchStore, _item: object) -> tuple[int, int]:
    """Liveness probe: proves the worker can see the shared store."""
    return os.getpid(), store.n_subjects


def _worker_main(conn) -> None:
    """Worker loop: recv ``(fn, shared, item)``, send ``(ok, value)``."""
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:  # orderly shutdown
            return
        fn, shared, item = message
        try:
            result = (True, fn(_attached_store(shared), item))
        except BaseException as exc:  # ship the failure, keep serving
            result = (False, exc)
        try:
            conn.send(result)
        except (BrokenPipeError, OSError):
            return


class _Worker:
    """One process, one private duplex pipe — no locks shared with siblings."""

    def __init__(self, ctx) -> None:
        self.conn, child_conn = ctx.Pipe()
        self.proc = ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        self.proc.start()
        child_conn.close()

    def stop(self, timeout: float = 5.0) -> None:
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout)
        if self.proc.is_alive():  # pragma: no cover - stuck worker
            self.proc.kill()
            self.proc.join(timeout)
        self.conn.close()


class ResilientWorkerPool:
    """Process pool + shared resident store, rebuildable after total loss."""

    def __init__(
        self, store: SketchStore, kind: str, processes: int = 2
    ) -> None:
        if processes < 1:
            raise ReproError(f"processes must be >= 1, got {processes}")
        self._store = store
        self._kind = kind
        self._processes = int(processes)
        self._shared: SharedStore | None = None
        self._workers: list[_Worker] | None = None
        self._pids: list[int] = []
        self.rebuilds = 0
        self.segments_republished = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ResilientWorkerPool":
        """Publish the store and spawn workers (idempotent)."""
        if self._shared is None:
            self._shared = share_store(self._store, self._kind)
        if self._workers is None:
            ctx = mp.get_context("fork")
            self._workers = [_Worker(ctx) for _ in range(self._processes)]
            self._pids = sorted(w.proc.pid for w in self._workers)
        return self

    def close(self) -> None:
        """Stop the workers and release the shared segment."""
        if self._workers is not None:
            for worker in self._workers:
                worker.stop()
            self._workers = None
            self._pids = []
        if self._shared is not None:
            release(self._shared.ref.name)
            self._shared = None

    def __enter__(self) -> "ResilientWorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- health --------------------------------------------------------------

    @property
    def worker_pids(self) -> list[int]:
        return list(self._pids)

    @property
    def segment_name(self) -> str | None:
        return self._shared.ref.name if self._shared is not None else None

    def _pids_alive(self) -> bool:
        # Process.is_alive reaps a SIGKILLed child; a bare os.kill(pid, 0)
        # would keep reporting the unreaped zombie as alive.
        if not self._workers:
            return False
        return all(worker.proc.is_alive() for worker in self._workers)

    def healthy(self) -> bool:
        """True when every worker is alive and the segment is attachable."""
        if self._workers is None or self._shared is None:
            return False
        return self._pids_alive() and segment_exists(self._shared.ref.name)

    def kill_workers(self, sig: int = signal.SIGKILL) -> list[int]:
        """Chaos hook: signal every live worker; returns the pids hit."""
        hit: list[int] = []
        for pid in self._pids:
            try:
                os.kill(pid, sig)
            except ProcessLookupError:
                continue
            hit.append(pid)
        return hit

    def ensure(self) -> bool:
        """Make the pool healthy; returns True when a rebuild was needed.

        Dead workers are replaced wholesale (the surviving half of a
        half-dead pool is cheap to recycle and a full restart is the only
        state we have to reason about).  A vanished segment is
        re-published from the resident store the parent still owns —
        workers re-attach by the *new* name carried in each payload, so
        nothing downstream needs to know.  Orphaned segments from the
        previous incarnation are swept as part of the rebuild.
        """
        if self.healthy():
            return False
        if self._workers is not None:
            for worker in self._workers:
                if worker.proc.is_alive():
                    worker.proc.kill()
                worker.proc.join(5.0)
                worker.conn.close()
            self._workers = None
            self._pids = []
        if self._shared is not None and not segment_exists(self._shared.ref.name):
            release(self._shared.ref.name)  # drop the stale registry entry
            self._shared = None
            self._shared = share_store(self._store, self._kind)
            self.segments_republished += 1
        sweep_orphan_segments()
        self.start()
        self.rebuilds += 1
        return True

    # -- work ----------------------------------------------------------------

    def run(self, fn, items: list, *, timeout: float | None = None) -> list:
        """Map ``fn(shared_store, item)`` over the workers, in item order.

        ``fn`` must be a picklable module-level function.  Items are dealt
        round-robin; a worker that dies mid-call (or misses the deadline)
        raises :class:`~repro.errors.ReproError` — the caller (watchdog or
        test) is expected to :meth:`ensure` and retry.
        """
        if self._workers is None or self._shared is None:
            raise ReproError("pool is not started")
        workers, shared = self._workers, self._shared
        deadline = None if timeout is None else time.monotonic() + timeout
        lanes: list[list[int]] = [[] for _ in workers]
        for index, item in enumerate(items):
            lane = index % len(workers)
            try:
                workers[lane].conn.send((fn, shared, item))
            except (BrokenPipeError, OSError) as exc:
                raise ReproError(
                    f"pool worker pid {workers[lane].proc.pid} is gone"
                ) from exc
            lanes[lane].append(index)
        results: list = [None] * len(items)
        for lane, indices in enumerate(lanes):
            conn, pid = workers[lane].conn, workers[lane].proc.pid
            for index in indices:
                wait = None if deadline is None else deadline - time.monotonic()
                if wait is not None and wait <= 0:
                    raise ReproError(f"pool worker pid {pid} timed out")
                try:
                    if not conn.poll(wait):
                        raise ReproError(f"pool worker pid {pid} timed out")
                    ok, value = conn.recv()
                except (EOFError, BrokenPipeError, OSError) as exc:
                    raise ReproError(
                        f"pool worker pid {pid} died mid-call"
                    ) from exc
                if not ok:
                    raise value
                results[index] = value
        return results
