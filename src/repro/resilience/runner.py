"""Checkpointed run orchestration: manifests, resume, and the CLI glue.

This module owns everything *above* the :class:`CheckpointContext`
primitive: building the :class:`RunManifest` that pins a run's identity,
routing the engine's execution modes through their checkpoint-aware
backends, the sharded checkpointed index build, and the ``invocation.json``
record that lets ``jem map --resume <dir>`` / ``jem index --resume <dir>``
reconstruct the original command line from nothing but the run directory.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import TYPE_CHECKING

from ..core.mapper import JEMMapper
from ..core.sketch_table import SketchTable
from ..core.store import store_from_table
from ..errors import CheckpointError, MappingError
from ..parallel.partition import partition_bounds, partition_set
from ..seq.records import SequenceSet
from ..sketch.jem import subject_sketch_pairs
from .checkpoint import (
    CheckpointContext,
    RunManifest,
    atomic_write_bytes,
    fingerprint_file,
    fingerprint_sequences,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.config import JEMConfig
    from ..core.engine import EngineRun, MappingEngine, PipelineConfig

__all__ = [
    "pipeline_identity",
    "map_queries_checkpointed",
    "build_index_checkpointed",
    "save_invocation",
    "load_invocation",
    "INVOCATION_NAME",
]

INVOCATION_NAME = "invocation.json"

#: PipelineConfig fields that can change *what* a run computes (or whether
#: its recovery story is reproducible).  Scheduling knobs (timeout,
#: transport, on_error) and the run directory itself are deliberately
#: excluded: two runs differing only in those are the same logical run.
_IDENTITY_FIELDS = (
    "mapper",
    "store",
    "processes",
    "backend",
    "strict",
    "inject_faults",
)


def pipeline_identity(pipeline: "PipelineConfig") -> dict:
    """The manifest's view of a pipeline: every output-affecting field."""
    identity = {f: getattr(pipeline, f) for f in _IDENTITY_FIELDS}
    identity.update({f"jem_{k}": v for k, v in asdict(pipeline.jem).items()})
    return identity


def _merged_run(
    engine: "MappingEngine",
    outcome,
    reads: SequenceSet,
    read_parts: list[SequenceSet],
    bounds,
    *,
    mode: str,
    t0: float,
) -> "EngineRun":
    import time

    from ..core.engine import EngineRun
    from ..parallel.driver import _merge_rank_results, resolve_partial

    partial = resolve_partial(
        outcome.failed_blocks, read_parts, strict=engine.pipeline.strict
    )
    p = len(read_parts)
    surviving = [b for b in range(p) if outcome.rank_results[b] is not None]
    mapping = _merge_rank_results(
        [outcome.rank_results[b] for b in surviving],
        [int(bounds[b]) for b in surviving],
    )
    return EngineRun(
        mapping=mapping,
        subject_names=list(engine.mapper.subject_names),
        mode=mode,
        elapsed=time.perf_counter() - t0,
        mapper_name=engine.pipeline.mapper,
        processes=engine.pipeline.processes,
        partial=partial,
    )


def map_queries_checkpointed(
    engine: "MappingEngine", reads: SequenceSet, *, t0: float
) -> "EngineRun":
    """Run one ``map_queries`` batch with durable unit checkpoints.

    The run directory (``engine.pipeline.checkpoint_dir``) is opened, its
    manifest installed or verified (a mismatched configuration or changed
    input raises :class:`~repro.errors.CheckpointError` rather than mixing
    incompatible units), and the batch is dispatched through the
    checkpoint-aware variant of the configured execution mode.  Completed
    S2/S4 units found in the directory are loaded, not recomputed — so the
    merged mapping is bit-identical to an uninterrupted run.
    """
    import time

    pipe = engine.pipeline
    assert pipe.checkpoint_dir is not None
    p = max(pipe.processes, 1)
    with CheckpointContext(pipe.checkpoint_dir) as ctx:
        if engine._from_saved_index:
            if engine._index_path is None:  # pragma: no cover - defensive
                raise MappingError("saved-index engine lost its bundle path")
            mapper = engine.mapper
            if not isinstance(mapper, JEMMapper):  # pragma: no cover
                raise MappingError("checkpointed mapping requires a JEMMapper")
            ctx.ensure_manifest(
                RunManifest(
                    command="map",
                    pipeline=pipeline_identity(pipe),
                    units={"mode": "saved-index", "map_blocks": p},
                    inputs={
                        "reads": fingerprint_sequences(reads),
                        "index": fingerprint_file(engine._index_path),
                    },
                )
            )
            from ..parallel.driver import map_partitioned_queries

            read_parts = partition_set(reads, p)
            bounds = partition_bounds(reads.offsets, p)
            outcome = map_partitioned_queries(
                mapper.table,
                read_parts,
                mapper.config,
                faults=pipe.fault_plan(),
                checkpoint=ctx,
            )
            return _merged_run(
                engine, outcome, reads, read_parts, bounds,
                mode="saved-index", t0=t0,
            )

        subjects = engine.subjects
        inputs = {
            "subjects": fingerprint_sequences(subjects),
            "reads": fingerprint_sequences(reads),
        }
        if pipe.backend == "process" and pipe.processes > 1:
            from ..core.engine import EngineRun
            from ..parallel.faults import RecoveryReport
            from ..parallel.mp_backend import map_reads_multiprocess

            ctx.ensure_manifest(
                RunManifest(
                    command="map",
                    pipeline=pipeline_identity(pipe),
                    units={
                        "mode": "process",
                        "sketch_blocks": p,
                        "map_blocks": p,
                    },
                    inputs=inputs,
                )
            )
            report = RecoveryReport()
            mapping = map_reads_multiprocess(
                subjects,
                reads,
                pipe.jem,
                processes=p,
                faults=pipe.fault_plan(),
                strict=pipe.strict,
                timeout=pipe.timeout,
                report=report,
                transport=pipe.transport,
                store_kind=pipe.store,
                checkpoint=ctx,
            )
            return EngineRun(
                mapping=mapping,
                subject_names=list(subjects.names),
                mode="process",
                elapsed=time.perf_counter() - t0,
                mapper_name=pipe.mapper,
                processes=p,
                partial=report.partial,
                report=report,
            )

        # simulated driver — also the checkpointed path for processes == 1,
        # where the inline fast path has no unit boundaries to commit at
        from ..core.engine import EngineRun
        from ..parallel.driver import run_parallel_jem

        ctx.ensure_manifest(
            RunManifest(
                command="map",
                pipeline=pipeline_identity(pipe),
                units={
                    "mode": "simulated",
                    "sketch_blocks": p,
                    "map_blocks": p,
                },
                inputs=inputs,
            )
        )
        run = run_parallel_jem(
            subjects,
            reads,
            pipe.jem,
            p=p,
            faults=pipe.fault_plan(),
            strict=pipe.strict,
            store_kind=pipe.store,
            checkpoint=ctx,
        )
        return EngineRun(
            mapping=run.mapping,
            subject_names=list(subjects.names),
            mode="simulated",
            elapsed=time.perf_counter() - t0,
            mapper_name=pipe.mapper,
            processes=p,
            partial=run.partial,
            steps=run.steps,
        )


def build_index_checkpointed(
    subjects: SequenceSet,
    config: "JEMConfig",
    *,
    store_kind: str,
    shards: int,
    run_dir: str,
    subjects_path: str | None = None,
) -> JEMMapper:
    """Sharded index build with one durable checkpoint per completed shard.

    Equivalent to :meth:`JEMMapper.index_partitioned` over a base-count
    partition into ``shards`` blocks — which that method documents as
    bit-identical to a one-shot :meth:`JEMMapper.index` — except each
    shard's sketch keys are committed to ``run_dir`` as they finish, and a
    resumed build loads finished shards instead of recomputing them.
    """
    if len(subjects) == 0:
        raise MappingError("cannot index an empty contig set")
    shards = max(1, min(int(shards), len(subjects)))
    family = config.hash_family()
    parts = partition_set(subjects, shards)
    with CheckpointContext(run_dir) as ctx:
        inputs = {"subjects": fingerprint_sequences(subjects)}
        if subjects_path is not None:
            inputs["subjects_file"] = fingerprint_file(subjects_path)
        ctx.ensure_manifest(
            RunManifest(
                command="index",
                pipeline={
                    "store": store_kind,
                    **{f"jem_{k}": v for k, v in asdict(config).items()},
                },
                units={"mode": "index", "sketch_blocks": shards},
                inputs=inputs,
            )
        )
        tables: list[SketchTable] = []
        offset = 0
        names: list[str] = []
        for s, part in enumerate(parts):
            saved = ctx.sketch_result(s)
            if saved is None:
                keys = subject_sketch_pairs(
                    part, config.k, config.w, config.ell, family,
                    subject_id_offset=offset,
                )
                ctx.save_sketch(s, keys)
            else:
                keys = saved
            offset += len(part)
            names.extend(part.names)
            tables.append(SketchTable.from_pairs(keys, n_subjects=offset))
    mapper = JEMMapper(config, store_kind=store_kind)
    mapper.adopt_store(
        store_from_table(store_kind, SketchTable.union(tables)), names
    )
    return mapper


# -- CLI resume records -------------------------------------------------------


def save_invocation(run_dir: str, payload: dict) -> str:
    """Persist the CLI arguments of a checkpointed run (atomic write).

    ``jem ... --resume <dir>`` reads this back to re-run the identical
    command without the operator re-typing (and possibly mistyping) it.
    """
    path = os.path.join(run_dir, INVOCATION_NAME)
    os.makedirs(run_dir, exist_ok=True)
    atomic_write_bytes(path, json.dumps(payload, indent=2, sort_keys=True).encode())
    return path


def load_invocation(run_dir: str) -> dict:
    """Read a run directory's saved CLI arguments; typed error when absent."""
    path = os.path.join(run_dir, INVOCATION_NAME)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except FileNotFoundError as exc:
        raise CheckpointError(
            f"{run_dir!r} has no {INVOCATION_NAME}; was this directory "
            "created by a --checkpoint-dir run?"
        ) from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"unreadable {path!r}: {exc}") from exc
