"""Hybrid scaffolding on top of JEM-mapper (the paper's target application)."""

from .graph import ScaffoldGraph, ScaffoldPath
from .links import ContigLink, build_links
from .scaffolder import ScaffoldResult, Scaffolder

__all__ = [
    "ScaffoldGraph",
    "ScaffoldPath",
    "ContigLink",
    "build_links",
    "ScaffoldResult",
    "Scaffolder",
]
