"""Scaffold graph: contig *ends* as nodes, links as edges.

Modelling each contig as two nodes (head, tail) joined by an implicit
"contig edge" is the standard scaffolding formulation: a valid scaffold is
a path alternating contig edges and link edges, and the orientation of
every contig falls out of which end the path enters through.

Link selection is greedy by support: a link is kept iff both of its
endpoint *ends* are still free and joining them does not close a cycle —
yielding a maximal set of consistent, linear joins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import MappingError
from .links import ContigLink

__all__ = ["ScaffoldPath", "ScaffoldGraph"]


@dataclass
class ScaffoldPath:
    """An ordered, oriented chain of contigs with per-junction gaps.

    ``orientations[i]`` is +1 when contig ``order[i]`` appears forward
    (head to tail) in the scaffold, -1 when reversed.  ``gaps[i]`` is the
    estimated gap after the i-th contig (length = len(order) - 1).
    """

    order: list[int]
    orientations: list[int]
    gaps: list[int]

    def __len__(self) -> int:
        return len(self.order)


class ScaffoldGraph:
    """End-graph over contigs with union-find cycle prevention."""

    def __init__(self, n_contigs: int) -> None:
        if n_contigs < 1:
            raise MappingError("scaffold graph needs at least one contig")
        self.n = n_contigs
        # joins[(contig, end)] = (other contig, other end, gap)
        self.joins: dict[tuple[int, str], tuple[int, str, int]] = {}
        self._parent = list(range(n_contigs))

    def _find(self, x: int) -> int:
        while self._parent[x] != x:
            self._parent[x] = self._parent[self._parent[x]]
            x = self._parent[x]
        return x

    def add_links(self, links: list[ContigLink]) -> int:
        """Greedily accept links (strongest first); returns accepted count."""
        accepted = 0
        for link in sorted(links, key=lambda l: -l.support):
            if not (0 <= link.a < self.n and 0 <= link.b < self.n):
                raise MappingError(f"link references unknown contig: {link}")
            end_a = (link.a, link.a_end)
            end_b = (link.b, link.b_end)
            if end_a in self.joins or end_b in self.joins:
                continue  # that end is already joined
            ra, rb = self._find(link.a), self._find(link.b)
            if ra == rb:
                continue  # would close a cycle
            self.joins[end_a] = (link.b, link.b_end, link.gap)
            self.joins[end_b] = (link.a, link.a_end, link.gap)
            self._parent[ra] = rb
            accepted += 1
        return accepted

    def _other_end(self, end: str) -> str:
        return "tail" if end == "head" else "head"

    def paths(self, *, include_singletons: bool = False) -> list[ScaffoldPath]:
        """Walk every scaffold chain once, assigning orientations.

        A contig entered through its *head* reads forward (+1); entered
        through its *tail* it reads reverse-complemented (-1).
        """
        visited = [False] * self.n
        out: list[ScaffoldPath] = []
        # chain terminals: a contig with at least one un-joined end
        for start in range(self.n):
            if visited[start]:
                continue
            free_ends = [e for e in ("head", "tail") if (start, e) not in self.joins]
            if not free_ends:
                continue  # interior of a chain (or isolated cycle-free by construction)
            if len(free_ends) == 2:
                visited[start] = True
                if include_singletons:
                    out.append(ScaffoldPath([start], [1], []))
                continue
            # walk from the free end through the chain; entering through the
            # free end reads the terminal contig toward its joined end
            order, orients, gaps = [], [], []
            contig, entered_via = start, free_ends[0]
            while True:
                visited[contig] = True
                order.append(contig)
                orients.append(1 if entered_via == "head" else -1)
                exit_end = self._other_end(entered_via)
                nxt = self.joins.get((contig, exit_end))
                if nxt is None:
                    break
                nxt_contig, nxt_end, gap = nxt
                gaps.append(gap)
                contig, entered_via = nxt_contig, nxt_end
                if visited[contig]:  # safety: malformed input
                    break
            if len(order) >= 2:
                # each chain is found from both terminals; keep one copy
                if order[0] <= order[-1]:
                    out.append(ScaffoldPath(order, orients, gaps))
            elif include_singletons:
                out.append(ScaffoldPath(order, orients, gaps))
        return out
