"""Contig links from long-read end mappings.

A long read whose prefix maps to contig A and whose suffix maps to contig
B ≠ A witnesses that A and B are nearby in the genome — the information the
paper's Section I motivates ("to help link contigs covering different but
nearby parts of the genome").  This module turns a
:class:`~repro.core.mapper.MappingResult` into oriented, gap-annotated
contig links:

* the *orientation* of each endpoint comes from anchor-based placement of
  the segment on its contig (:func:`repro.align.identity.locate_segment`);
* the *gap estimate* is the read length minus the parts of the read covered
  by the two contigs, given where each end landed.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..align.identity import locate_segment
from ..core.mapper import MappingResult
from ..core.segments import PREFIX, extract_end_segments
from ..errors import MappingError
from ..seq.records import SequenceSet

__all__ = ["ContigLink", "build_links"]


@dataclass
class ContigLink:
    """An oriented link between two contigs, aggregated over reads.

    ``a_end``/``b_end`` follow the usual scaffolding convention: which end
    of each contig faces the junction (``'head'`` = the contig's start,
    ``'tail'`` = its end).  ``gap`` is the median estimated gap in bp
    (negative = the contigs likely overlap).
    """

    a: int
    b: int
    a_end: str
    b_end: str
    support: int
    gap: int

    @property
    def key(self) -> tuple[int, str, int, str]:
        return (self.a, self.a_end, self.b, self.b_end)


def _endpoint(placed, contig_len: int, kind: str) -> tuple[str, int] | None:
    """Which contig end faces the junction, plus contig bases the read covers.

    A read *prefix* mapped forward means the read continues past the
    segment in the contig's forward direction — it exits through the
    contig's *tail*; mapped reverse, through its *head*.  A *suffix*
    arrives from the read interior, so the relation flips.  The covered
    base count (junction-facing end to the far edge of the placement) feeds
    the gap estimate.
    """
    if placed is None:
        return None
    _qlo, _qhi, clo, chi, strand = placed
    exits_forward = (kind == PREFIX) == (strand == 1)
    if exits_forward:
        return ("tail", contig_len - clo)
    return ("head", chi)


def build_links(
    contigs: SequenceSet,
    reads: SequenceSet,
    mapping: MappingResult,
    *,
    ell: int = 1000,
    min_support: int = 2,
    k: int = 16,
    w: int = 20,
) -> list[ContigLink]:
    """Aggregate read-end mappings into supported contig links.

    ``mapping`` must come from mapping *the end segments of ``reads``* (two
    consecutive rows per read, prefix first), which is what
    :meth:`JEMMapper.map_reads` produces.
    """
    if len(mapping) != 2 * len(reads):
        raise MappingError(
            f"mapping has {len(mapping)} rows for {len(reads)} reads; "
            "expected 2 segments per read"
        )
    segments, _ = extract_end_segments(reads, ell)
    raw: dict[tuple[int, str, int, str], list[int]] = defaultdict(list)
    for r in range(len(reads)):
        ia, ib = 2 * r, 2 * r + 1
        a, b = int(mapping.subject[ia]), int(mapping.subject[ib])
        if a < 0 or b < 0 or a == b:
            continue
        pa = _endpoint(
            locate_segment(segments.codes_of(ia), contigs.codes_of(a), k, w),
            int(contigs.lengths[a]), "prefix",
        )
        pb = _endpoint(
            locate_segment(segments.codes_of(ib), contigs.codes_of(b), k, w),
            int(contigs.lengths[b]), "suffix",
        )
        if pa is None or pb is None:
            continue
        (a_end, a_cov), (b_end, b_cov) = pa, pb
        read_len = int(reads.lengths[r])
        gap = read_len - a_cov - b_cov
        # canonical key direction: smaller contig id first
        if a <= b:
            raw[(a, a_end, b, b_end)].append(gap)
        else:
            raw[(b, b_end, a, a_end)].append(gap)
    links = []
    for (a, a_end, b, b_end), gaps in raw.items():
        if len(gaps) < min_support:
            continue
        links.append(
            ContigLink(
                a=a, b=b, a_end=a_end, b_end=b_end,
                support=len(gaps), gap=int(np.median(gaps)),
            )
        )
    links.sort(key=lambda l: (-l.support, l.a, l.b))
    return links
