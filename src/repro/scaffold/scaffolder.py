"""End-to-end hybrid scaffolder (the paper's future-work item ii).

Pipeline: map long-read end segments to contigs with JEM-mapper, aggregate
oriented links, build the scaffold graph, and emit scaffold sequences with
``n``-filled gaps — turning the paper's mapping step into the application
it was designed to accelerate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import JEMConfig
from ..core.mapper import JEMMapper, MappingResult
from ..errors import MappingError
from ..seq.encode import reverse_complement
from ..seq.records import SequenceSet, SequenceSetBuilder
from .graph import ScaffoldGraph, ScaffoldPath
from .links import build_links

__all__ = ["ScaffoldResult", "Scaffolder"]

#: Gap placeholder code (decodes to 'n').
_GAP_CODE = np.uint8(4)


@dataclass
class ScaffoldResult:
    """Scaffolds plus bookkeeping from one run."""

    paths: list[ScaffoldPath]
    sequences: SequenceSet
    n_links_used: int
    mapping: MappingResult

    @property
    def n_scaffolds(self) -> int:
        return len(self.paths)

    def span(self, contig_lengths: np.ndarray) -> int:
        """Total genome span covered by multi-contig scaffolds (bp, incl. gaps)."""
        total = 0
        for path in self.paths:
            total += int(sum(contig_lengths[c] for c in path.order))
            total += sum(max(g, 0) for g in path.gaps)
        return total


class Scaffolder:
    """Hybrid scaffolding driver built on :class:`JEMMapper`."""

    def __init__(
        self,
        config: JEMConfig | None = None,
        *,
        min_support: int = 2,
        min_gap: int = 10,
        max_gap: int = 50_000,
    ) -> None:
        self.config = config if config is not None else JEMConfig()
        self.min_support = min_support
        self.min_gap = min_gap
        self.max_gap = max_gap

    def scaffold(
        self,
        contigs: SequenceSet,
        reads: SequenceSet,
        *,
        mapping: MappingResult | None = None,
    ) -> ScaffoldResult:
        """Run the full pipeline; pass ``mapping`` to reuse an existing one."""
        if len(contigs) == 0:
            raise MappingError("cannot scaffold an empty contig set")
        if mapping is None:
            mapper = JEMMapper(self.config)
            mapper.index(contigs)
            mapping = mapper.map_reads(reads)
        links = build_links(
            contigs, reads, mapping,
            ell=self.config.ell, min_support=self.min_support, k=self.config.k,
        )
        graph = ScaffoldGraph(len(contigs))
        used = graph.add_links(links)
        paths = graph.paths()
        sequences = self._emit(contigs, paths)
        return ScaffoldResult(
            paths=paths, sequences=sequences, n_links_used=used, mapping=mapping
        )

    def _emit(self, contigs: SequenceSet, paths: list[ScaffoldPath]) -> SequenceSet:
        """Spell scaffold sequences, joining contigs with n-gaps."""
        builder = SequenceSetBuilder()
        for idx, path in enumerate(paths):
            parts: list[np.ndarray] = []
            for pos, (contig, orient) in enumerate(zip(path.order, path.orientations)):
                codes = contigs.codes_of(contig)
                parts.append(codes if orient == 1 else reverse_complement(codes))
                if pos < len(path.gaps):
                    gap = int(np.clip(path.gaps[pos], self.min_gap, self.max_gap))
                    parts.append(np.full(gap, _GAP_CODE, dtype=np.uint8))
            builder.add(
                f"scaffold_{idx:04d}",
                np.concatenate(parts),
                {"contigs": list(path.order), "orientations": list(path.orientations)},
            )
        return builder.build()
