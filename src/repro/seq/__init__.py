"""Sequence substrate: alphabet, 2-bit encoding, containers, I/O, statistics."""

from .alphabet import ALPHABET, INVALID_CODE, complement_codes
from .encode import (
    count_invalid,
    decode,
    encode,
    random_codes,
    reverse_complement,
    reverse_complement_str,
)
from .io_fasta import ParseReport, iter_fasta, read_fasta, write_fasta
from .io_fastq import iter_fastq, read_fastq, write_fastq
from .packed import pack_codes, packed_nbytes, unpack_codes
from .records import SeqRecord, SequenceSet, SequenceSetBuilder
from .stats import SetStats, n50, set_stats

__all__ = [
    "ALPHABET",
    "INVALID_CODE",
    "complement_codes",
    "encode",
    "decode",
    "reverse_complement",
    "reverse_complement_str",
    "random_codes",
    "count_invalid",
    "SeqRecord",
    "SequenceSet",
    "SequenceSetBuilder",
    "ParseReport",
    "read_fasta",
    "iter_fasta",
    "write_fasta",
    "read_fastq",
    "iter_fastq",
    "write_fastq",
    "pack_codes",
    "unpack_codes",
    "packed_nbytes",
    "SetStats",
    "set_stats",
    "n50",
]
