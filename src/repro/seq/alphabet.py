"""DNA alphabet: 2-bit codes, complement tables and lookup arrays.

The whole library works on numpy ``uint8`` *code arrays* rather than Python
strings.  The canonical (lexicographic) code assignment is::

    a -> 0, c -> 1, g -> 2, t -> 3

which makes the packed integer value of a k-mer equal to its rank in the
paper's canonical ordering |Sigma|^k (Section III-A).  Any byte that is not
``acgtACGT`` is mapped to :data:`INVALID_CODE` (4); downstream k-mer
extraction masks windows containing such codes, mirroring how production
mappers skip ambiguous ``N`` bases.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ALPHABET",
    "CODE_A",
    "CODE_C",
    "CODE_G",
    "CODE_T",
    "INVALID_CODE",
    "BYTE_TO_CODE",
    "CODE_TO_BYTE",
    "COMPLEMENT_CODE",
    "complement_codes",
]

#: The DNA alphabet in canonical (lexicographic) order.
ALPHABET = "acgt"

CODE_A = np.uint8(0)
CODE_C = np.uint8(1)
CODE_G = np.uint8(2)
CODE_T = np.uint8(3)

#: Code used for any byte outside ``acgtACGT`` (e.g. ``N``).
INVALID_CODE = np.uint8(4)


def _build_byte_to_code() -> np.ndarray:
    table = np.full(256, INVALID_CODE, dtype=np.uint8)
    for i, base in enumerate(ALPHABET):
        table[ord(base)] = i
        table[ord(base.upper())] = i
    return table


def _build_code_to_byte() -> np.ndarray:
    # Decode INVALID_CODE as 'n' so decode(encode(s)) is total.
    table = np.frombuffer(b"acgtn", dtype=np.uint8).copy()
    return table


#: 256-entry lookup: ASCII byte value -> 2-bit code (or INVALID_CODE).
BYTE_TO_CODE = _build_byte_to_code()

#: 5-entry lookup: code -> ASCII byte (lowercase; INVALID_CODE -> 'n').
CODE_TO_BYTE = _build_code_to_byte()

#: Complement per code: a<->t, c<->g; INVALID_CODE maps to itself.
COMPLEMENT_CODE = np.array([3, 2, 1, 0, 4], dtype=np.uint8)


def complement_codes(codes: np.ndarray) -> np.ndarray:
    """Return the element-wise complement of a code array.

    Valid codes are complemented with ``3 - code``; the invalid code is
    preserved.  The input is not modified.
    """
    return COMPLEMENT_CODE[codes]
