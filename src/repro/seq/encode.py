"""Vectorised conversion between DNA strings and 2-bit code arrays.

All hot paths are numpy table lookups over the raw bytes of the input, so
encoding/decoding costs O(n) with a small constant and no Python-level loop.
"""

from __future__ import annotations

import numpy as np

from ..errors import SequenceError
from .alphabet import BYTE_TO_CODE, CODE_TO_BYTE, INVALID_CODE, complement_codes

__all__ = [
    "encode",
    "decode",
    "reverse_complement",
    "reverse_complement_str",
    "random_codes",
    "count_invalid",
]


def encode(seq: str | bytes, *, validate: bool = False) -> np.ndarray:
    """Encode a DNA string into a ``uint8`` code array.

    Parameters
    ----------
    seq:
        The sequence; case-insensitive.  Characters outside ``acgtACGT``
        become :data:`~repro.seq.alphabet.INVALID_CODE`.
    validate:
        If true, raise :class:`~repro.errors.SequenceError` when the input
        contains any invalid character instead of silently coding it.
    """
    if isinstance(seq, str):
        raw = seq.encode("ascii", errors="replace")
    else:
        raw = bytes(seq)
    codes = BYTE_TO_CODE[np.frombuffer(raw, dtype=np.uint8)]
    if validate and (codes == INVALID_CODE).any():
        bad = int(np.argmax(codes == INVALID_CODE))
        raise SequenceError(
            f"invalid base {raw[bad:bad + 1]!r} at position {bad} (length {len(raw)})"
        )
    return codes


def decode(codes: np.ndarray) -> str:
    """Decode a code array back into a lowercase DNA string."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and int(codes.max()) > INVALID_CODE:
        raise SequenceError(f"code array contains value > {int(INVALID_CODE)}")
    return CODE_TO_BYTE[codes].tobytes().decode("ascii")


def reverse_complement(codes: np.ndarray) -> np.ndarray:
    """Return the reverse complement of a code array (new array)."""
    return complement_codes(np.asarray(codes, dtype=np.uint8))[::-1].copy()


def reverse_complement_str(seq: str) -> str:
    """Reverse-complement a DNA string (convenience wrapper)."""
    return decode(reverse_complement(encode(seq)))


def random_codes(length: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform random code array of the given length (no invalid codes)."""
    if length < 0:
        raise SequenceError(f"negative sequence length {length}")
    return rng.integers(0, 4, size=length, dtype=np.uint8)


def count_invalid(codes: np.ndarray) -> int:
    """Number of positions holding the invalid code."""
    return int(np.count_nonzero(np.asarray(codes) == INVALID_CODE))
