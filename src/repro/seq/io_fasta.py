"""Streaming FASTA reader/writer.

Supports plain and gzip-compressed files (by suffix), multi-line records,
comments in headers, and strict error reporting with file/line positions.
"""

from __future__ import annotations

import gzip
import io
import os
from collections.abc import Iterable, Iterator
from typing import IO

from ..errors import ParseError
from .encode import encode
from .records import SeqRecord, SequenceSet, SequenceSetBuilder

__all__ = ["read_fasta", "iter_fasta", "write_fasta"]


def _open_text(path: str | os.PathLike, mode: str) -> IO[str]:
    path = os.fspath(path)
    if path.endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, mode + "b"), encoding="ascii")
    return open(path, mode + "t", encoding="ascii")


def iter_fasta(path: str | os.PathLike) -> Iterator[SeqRecord]:
    """Yield :class:`SeqRecord` objects from a FASTA file, streaming.

    The record name is the header token up to the first whitespace; the rest
    of the header line is stored in ``meta['description']`` when present.
    """
    path = os.fspath(path)
    name: str | None = None
    description = ""
    parts: list[str] = []
    lineno = 0
    with _open_text(path, "r") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.rstrip("\n\r")
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    yield _make_record(name, description, parts)
                header = line[1:].strip()
                if not header:
                    raise ParseError("empty FASTA header", path=path, line=lineno)
                name, _, description = header.partition(" ")
                parts = []
            else:
                if name is None:
                    raise ParseError(
                        f"sequence data before any '>' header: {line[:30]!r}",
                        path=path,
                        line=lineno,
                    )
                parts.append(line)
        if name is not None:
            yield _make_record(name, description, parts)


def _make_record(name: str, description: str, parts: list[str]) -> SeqRecord:
    meta = {"description": description} if description else {}
    return SeqRecord(name=name, codes=encode("".join(parts)), meta=meta)


def read_fasta(path: str | os.PathLike) -> SequenceSet:
    """Read a whole FASTA file into a :class:`SequenceSet`."""
    builder = SequenceSetBuilder()
    for rec in iter_fasta(path):
        builder.add(rec.name, rec.codes, rec.meta)
    return builder.build()


def write_fasta(
    path: str | os.PathLike,
    records: SequenceSet | Iterable[SeqRecord],
    *,
    width: int = 80,
) -> int:
    """Write records to a FASTA file; returns the number of records written.

    ``width`` controls line wrapping of the sequence body (0 disables it).
    """
    count = 0
    with _open_text(path, "w") as handle:
        for rec in records:
            description = rec.meta.get("description", "")
            header = f">{rec.name}" + (f" {description}" if description else "")
            handle.write(header + "\n")
            seq = rec.sequence
            if width and width > 0:
                for start in range(0, len(seq), width):
                    handle.write(seq[start : start + width] + "\n")
            else:
                handle.write(seq + "\n")
            count += 1
    return count
