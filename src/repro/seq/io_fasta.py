"""Streaming FASTA reader/writer.

Supports plain and gzip-compressed files (by suffix), multi-line records,
comments in headers, and strict error reporting with file/line positions.

Real-world inputs are partially damaged more often than they are clean;
``on_error="skip"`` turns malformed records into counted warnings (see
:class:`ParseReport`) instead of aborting the whole file, so one truncated
record does not discard an hour of mapping input.
"""

from __future__ import annotations

import gzip
import io
import os
import warnings
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from typing import IO

from ..errors import ParseError
from .encode import encode
from .records import SeqRecord, SequenceSet, SequenceSetBuilder

__all__ = ["read_fasta", "iter_fasta", "write_fasta", "ParseReport"]


@dataclass
class ParseReport:
    """Tally of records skipped under the ``on_error="skip"`` policy."""

    skipped: int = 0
    errors: list[ParseError] = field(default_factory=list)

    def record(self, err: ParseError) -> None:
        self.skipped += 1
        self.errors.append(err)
        warnings.warn(f"skipping malformed record: {err}", stacklevel=4)


def _check_on_error(on_error: str) -> None:
    if on_error not in ("raise", "skip"):
        raise ValueError(f'on_error must be "raise" or "skip", got {on_error!r}')


def _open_text(path: str | os.PathLike, mode: str) -> IO[str]:
    path = os.fspath(path)
    if path.endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, mode + "b"), encoding="ascii")
    return open(path, mode + "t", encoding="ascii")


def iter_fasta(
    path: str | os.PathLike,
    *,
    on_error: str = "raise",
    report: ParseReport | None = None,
) -> Iterator[SeqRecord]:
    """Yield :class:`SeqRecord` objects from a FASTA file, streaming.

    The record name is the header token up to the first whitespace; the rest
    of the header line is stored in ``meta['description']`` when present.

    ``on_error="skip"`` drops malformed records (empty headers, orphan
    sequence data) with a counted warning instead of raising; pass a
    :class:`ParseReport` to collect the tally.
    """
    _check_on_error(on_error)
    report = report if report is not None else ParseReport()
    path = os.fspath(path)
    name: str | None = None
    description = ""
    parts: list[str] = []
    skipping = False  # inside a malformed record whose lines we drop
    lineno = 0
    with _open_text(path, "r") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.rstrip("\n\r")
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    yield _make_record(name, description, parts)
                    name = None
                header = line[1:].strip()
                if not header:
                    err = ParseError("empty FASTA header", path=path, line=lineno)
                    if on_error == "raise":
                        raise err
                    report.record(err)
                    skipping = True
                    parts = []
                    continue
                name, _, description = header.partition(" ")
                parts = []
                skipping = False
            else:
                if name is None:
                    if skipping:
                        continue
                    err = ParseError(
                        f"sequence data before any '>' header: {line[:30]!r}",
                        path=path,
                        line=lineno,
                    )
                    if on_error == "raise":
                        raise err
                    report.record(err)
                    skipping = True
                    continue
                parts.append(line)
        if name is not None:
            yield _make_record(name, description, parts)


def _make_record(name: str, description: str, parts: list[str]) -> SeqRecord:
    meta = {"description": description} if description else {}
    return SeqRecord(name=name, codes=encode("".join(parts)), meta=meta)


def read_fasta(
    path: str | os.PathLike,
    *,
    on_error: str = "raise",
    report: ParseReport | None = None,
) -> SequenceSet:
    """Read a whole FASTA file into a :class:`SequenceSet`."""
    builder = SequenceSetBuilder()
    for rec in iter_fasta(path, on_error=on_error, report=report):
        builder.add(rec.name, rec.codes, rec.meta)
    return builder.build()


def write_fasta(
    path: str | os.PathLike,
    records: SequenceSet | Iterable[SeqRecord],
    *,
    width: int = 80,
) -> int:
    """Write records to a FASTA file; returns the number of records written.

    ``width`` controls line wrapping of the sequence body (0 disables it).
    """
    count = 0
    with _open_text(path, "w") as handle:
        for rec in records:
            description = rec.meta.get("description", "")
            header = f">{rec.name}" + (f" {description}" if description else "")
            handle.write(header + "\n")
            seq = rec.sequence
            if width and width > 0:
                for start in range(0, len(seq), width):
                    handle.write(seq[start : start + width] + "\n")
            else:
                handle.write(seq + "\n")
            count += 1
    return count
