"""Streaming FASTQ reader/writer (4-line records, Phred+33 qualities)."""

from __future__ import annotations

import os
from collections.abc import Iterable, Iterator

import numpy as np

from ..errors import ParseError
from .encode import encode
from .io_fasta import ParseReport, _check_on_error, _open_text
from .records import SeqRecord, SequenceSet, SequenceSetBuilder

__all__ = ["read_fastq", "iter_fastq", "write_fastq", "PHRED_OFFSET"]

#: Sanger/Illumina 1.8+ quality encoding offset.
PHRED_OFFSET = 33


def iter_fastq(
    path: str | os.PathLike,
    *,
    on_error: str = "raise",
    report: ParseReport | None = None,
) -> Iterator[SeqRecord]:
    """Yield records from a FASTQ file, streaming, with quality arrays.

    ``on_error="skip"`` drops malformed records (bad ``@`` header, missing
    ``+`` separator, quality/sequence length mismatch, truncated final
    record) with a counted warning and resynchronises on the next header
    line instead of aborting the file; pass a :class:`ParseReport` to
    collect the tally.
    """
    _check_on_error(on_error)
    report = report if report is not None else ParseReport()
    path = os.fspath(path)
    with _open_text(path, "r") as handle:
        lineno = 0
        while True:
            header = handle.readline()
            if not header:
                return
            lineno += 1
            header = header.rstrip("\n\r")
            if not header:
                continue
            if not header.startswith("@"):
                err = ParseError(
                    f"expected '@' header, got {header[:30]!r}", path=path, line=lineno
                )
                if on_error == "raise":
                    raise err
                # resynchronise by scanning line-by-line to the next header
                report.record(err)
                continue
            seq_line = handle.readline().rstrip("\n\r")
            plus_line = handle.readline().rstrip("\n\r")
            qual_line = handle.readline().rstrip("\n\r")
            lineno += 3
            if not plus_line.startswith("+"):
                err = ParseError(
                    f"expected '+' separator, got {plus_line[:30]!r}",
                    path=path,
                    line=lineno - 1,
                )
                if on_error == "raise":
                    raise err
                report.record(err)
                continue
            if len(qual_line) != len(seq_line):
                err = ParseError(
                    f"quality length {len(qual_line)} != sequence length {len(seq_line)}",
                    path=path,
                    line=lineno,
                )
                if on_error == "raise":
                    raise err
                report.record(err)
                continue
            name, _, description = header[1:].partition(" ")
            quality = (
                np.frombuffer(qual_line.encode("ascii"), dtype=np.uint8) - PHRED_OFFSET
            )
            meta = {"description": description} if description else {}
            yield SeqRecord(name=name, codes=encode(seq_line), quality=quality, meta=meta)


def read_fastq(
    path: str | os.PathLike,
    *,
    on_error: str = "raise",
    report: ParseReport | None = None,
) -> SequenceSet:
    """Read a whole FASTQ file into a :class:`SequenceSet` (qualities dropped)."""
    builder = SequenceSetBuilder()
    for rec in iter_fastq(path, on_error=on_error, report=report):
        builder.add(rec.name, rec.codes, rec.meta)
    return builder.build()


def write_fastq(
    path: str | os.PathLike,
    records: SequenceSet | Iterable[SeqRecord],
    *,
    default_quality: int = 40,
) -> int:
    """Write records to FASTQ; records without qualities get a constant score."""
    count = 0
    with _open_text(path, "w") as handle:
        for rec in records:
            seq = rec.sequence
            quality = rec.quality
            if quality is None:
                qual_line = chr(default_quality + PHRED_OFFSET) * len(seq)
            else:
                qual_line = (
                    (np.asarray(quality, dtype=np.uint8) + PHRED_OFFSET)
                    .tobytes()
                    .decode("ascii")
                )
            handle.write(f"@{rec.name}\n{seq}\n+\n{qual_line}\n")
            count += 1
    return count
