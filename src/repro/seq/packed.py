"""2-bit packed sequence storage (4 bases per byte).

At the paper's full scale the query set alone is ~10 Gbp; one byte per
base is 4× more memory and disk than the alphabet needs.  These utilities
pack code arrays four-to-a-byte and back, vectorised, and the dataset
cache uses them so on-disk bundles shrink ~4× before compression.

Packing is lossy for non-acgt codes: the invalid code (4) cannot be
represented in 2 bits, so :func:`pack_codes` records invalid positions in
a companion index array and :func:`unpack_codes` restores them.
"""

from __future__ import annotations

import numpy as np

from ..errors import SequenceError
from .alphabet import INVALID_CODE

__all__ = ["pack_codes", "unpack_codes", "packed_nbytes"]


def packed_nbytes(n_bases: int) -> int:
    """Bytes needed to pack ``n_bases`` codes."""
    return (n_bases + 3) // 4


def pack_codes(codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Pack a code array into 2 bits per base.

    Returns ``(packed, invalid_positions)``: the packed ``uint8`` array
    (little-endian within each byte: base i occupies bits 2*(i%4)) and the
    sorted positions that held the invalid code (stored as 0 in the packed
    stream).
    """
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and int(codes.max()) > INVALID_CODE:
        raise SequenceError("code array contains values > 4")
    invalid = np.flatnonzero(codes == INVALID_CODE).astype(np.int64)
    clean = (codes & np.uint8(3)).copy()
    clean[invalid] = 0
    n = clean.size
    padded = np.zeros(packed_nbytes(n) * 4, dtype=np.uint8)
    padded[:n] = clean
    quads = padded.reshape(-1, 4)
    packed = (
        quads[:, 0]
        | (quads[:, 1] << np.uint8(2))
        | (quads[:, 2] << np.uint8(4))
        | (quads[:, 3] << np.uint8(6))
    )
    return packed, invalid


def unpack_codes(
    packed: np.ndarray, n_bases: int, invalid_positions: np.ndarray | None = None
) -> np.ndarray:
    """Inverse of :func:`pack_codes`."""
    packed = np.asarray(packed, dtype=np.uint8)
    if packed.size != packed_nbytes(n_bases):
        raise SequenceError(
            f"packed array has {packed.size} bytes; {n_bases} bases need "
            f"{packed_nbytes(n_bases)}"
        )
    out = np.empty(packed.size * 4, dtype=np.uint8)
    out[0::4] = packed & np.uint8(3)
    out[1::4] = (packed >> np.uint8(2)) & np.uint8(3)
    out[2::4] = (packed >> np.uint8(4)) & np.uint8(3)
    out[3::4] = (packed >> np.uint8(6)) & np.uint8(3)
    out = out[:n_bases]
    if invalid_positions is not None and len(invalid_positions):
        out[np.asarray(invalid_positions, dtype=np.int64)] = INVALID_CODE
    return out
