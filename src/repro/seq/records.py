"""Sequence containers.

:class:`SeqRecord` is a single named sequence; :class:`SequenceSet` is a
*columnar* collection — one contiguous ``uint8`` buffer holding every
sequence back to back, plus an offsets array and a name list.  The columnar
layout keeps memory contiguous (cache-friendly, trivially partitionable by
base count for the parallel loader, step S1 of the paper) and lets sketching
run over views instead of copies.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

from ..errors import SequenceError
from .encode import decode, encode

__all__ = ["SeqRecord", "SequenceSet", "SequenceSetBuilder"]


@dataclass
class SeqRecord:
    """A single named DNA sequence.

    Attributes
    ----------
    name:
        Record identifier (FASTA header up to the first whitespace).
    codes:
        2-bit code array (``uint8``); may be a view into a shared buffer.
    quality:
        Optional per-base Phred scores (``uint8``), as read from FASTQ.
    meta:
        Free-form annotations.  The simulators use this to attach ground
        truth (e.g. ``ref_start``/``ref_end`` coordinates).
    """

    name: str
    codes: np.ndarray
    quality: np.ndarray | None = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.codes = np.asarray(self.codes, dtype=np.uint8)
        if self.quality is not None:
            self.quality = np.asarray(self.quality, dtype=np.uint8)
            if self.quality.shape != self.codes.shape:
                raise SequenceError(
                    f"record {self.name!r}: quality length {self.quality.size} "
                    f"!= sequence length {self.codes.size}"
                )

    def __len__(self) -> int:
        return int(self.codes.size)

    @property
    def sequence(self) -> str:
        """The sequence as a lowercase string (decoded on demand)."""
        return decode(self.codes)

    @classmethod
    def from_string(cls, name: str, seq: str, **meta) -> "SeqRecord":
        return cls(name=name, codes=encode(seq), meta=dict(meta))


class SequenceSet:
    """Immutable columnar set of sequences.

    Construction goes through :meth:`from_records`, :meth:`from_strings` or
    :class:`SequenceSetBuilder`; the resulting object exposes numpy-level
    access (:attr:`buffer`, :attr:`offsets`) for vectorised consumers and
    record-level access (``__getitem__``) for convenience.
    """

    __slots__ = ("buffer", "offsets", "names", "metas")

    def __init__(
        self,
        buffer: np.ndarray,
        offsets: np.ndarray,
        names: Sequence[str],
        metas: Sequence[dict] | None = None,
    ) -> None:
        self.buffer = np.ascontiguousarray(buffer, dtype=np.uint8)
        self.offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        if self.offsets.ndim != 1 or self.offsets.size == 0:
            raise SequenceError("offsets must be a 1-d array with at least one entry")
        if self.offsets[0] != 0 or self.offsets[-1] != self.buffer.size:
            raise SequenceError("offsets must start at 0 and end at buffer size")
        if (np.diff(self.offsets) < 0).any():
            raise SequenceError("offsets must be non-decreasing")
        self.names = list(names)
        if len(self.names) != self.offsets.size - 1:
            raise SequenceError(
                f"{len(self.names)} names for {self.offsets.size - 1} sequences"
            )
        self.metas = list(metas) if metas is not None else [{} for _ in self.names]
        if len(self.metas) != len(self.names):
            raise SequenceError("metas length mismatch")

    # -- construction ------------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable[SeqRecord]) -> "SequenceSet":
        records = list(records)
        lengths = np.fromiter((len(r) for r in records), dtype=np.int64, count=len(records))
        offsets = np.zeros(len(records) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        buffer = np.empty(int(offsets[-1]), dtype=np.uint8)
        for rec, start, end in zip(records, offsets[:-1], offsets[1:]):
            buffer[start:end] = rec.codes
        return cls(buffer, offsets, [r.name for r in records], [r.meta for r in records])

    @classmethod
    def from_strings(cls, pairs: Iterable[tuple[str, str]]) -> "SequenceSet":
        return cls.from_records(SeqRecord.from_string(n, s) for n, s in pairs)

    @classmethod
    def empty(cls) -> "SequenceSet":
        return cls(np.empty(0, dtype=np.uint8), np.zeros(1, dtype=np.int64), [])

    # -- container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self.names)

    def __iter__(self) -> Iterator[SeqRecord]:
        for i in range(len(self)):
            yield self[i]

    def __getitem__(self, index: int) -> SeqRecord:
        i = int(index)
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(f"sequence index {index} out of range [0, {len(self)})")
        return SeqRecord(
            name=self.names[i],
            codes=self.codes_of(i),
            meta=self.metas[i],
        )

    def codes_of(self, i: int) -> np.ndarray:
        """Zero-copy view of sequence ``i``'s code array."""
        return self.buffer[self.offsets[i] : self.offsets[i + 1]]

    # -- bulk properties -----------------------------------------------------

    @property
    def lengths(self) -> np.ndarray:
        """Per-sequence lengths (``int64``)."""
        return np.diff(self.offsets)

    @property
    def total_bases(self) -> int:
        return int(self.buffer.size)

    def subset(self, indices: Sequence[int] | np.ndarray) -> "SequenceSet":
        """New set containing the selected sequences (copies the bases)."""
        indices = np.asarray(indices, dtype=np.int64)
        return SequenceSet.from_records(self[int(i)] for i in indices)

    def slice(self, start: int, stop: int) -> "SequenceSet":
        """Contiguous sub-range ``[start, stop)`` of sequences, zero-copy buffer view."""
        if not (0 <= start <= stop <= len(self)):
            raise SequenceError(f"bad slice [{start}, {stop}) of {len(self)} sequences")
        base = self.offsets[start]
        return SequenceSet(
            self.buffer[base : self.offsets[stop]],
            self.offsets[start : stop + 1] - base,
            self.names[start:stop],
            self.metas[start:stop],
        )

    def concat(self, other: "SequenceSet") -> "SequenceSet":
        """Concatenate two sets (copies)."""
        buffer = np.concatenate([self.buffer, other.buffer])
        offsets = np.concatenate([self.offsets, other.offsets[1:] + self.buffer.size])
        return SequenceSet(buffer, offsets, self.names + other.names, self.metas + other.metas)

    def __repr__(self) -> str:
        return f"SequenceSet(n={len(self)}, total_bases={self.total_bases})"


class SequenceSetBuilder:
    """Incremental builder that avoids repeated reallocation.

    Appends are O(1) amortised; :meth:`build` concatenates once.
    """

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []
        self._names: list[str] = []
        self._metas: list[dict] = []
        self._lengths: list[int] = []

    def add(self, name: str, codes: np.ndarray, meta: dict | None = None) -> None:
        codes = np.asarray(codes, dtype=np.uint8)
        self._chunks.append(codes)
        self._names.append(name)
        self._metas.append(meta if meta is not None else {})
        self._lengths.append(int(codes.size))

    def add_string(self, name: str, seq: str, meta: dict | None = None) -> None:
        self.add(name, encode(seq), meta)

    def __len__(self) -> int:
        return len(self._names)

    def build(self) -> SequenceSet:
        if not self._chunks:
            return SequenceSet.empty()
        buffer = np.concatenate(self._chunks)
        offsets = np.zeros(len(self._chunks) + 1, dtype=np.int64)
        np.cumsum(np.asarray(self._lengths, dtype=np.int64), out=offsets[1:])
        return SequenceSet(buffer, offsets, self._names, self._metas)
