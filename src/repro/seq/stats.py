"""Summary statistics over sequence sets — the quantities reported in Table I."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .records import SequenceSet

__all__ = ["SetStats", "set_stats", "n50"]


@dataclass(frozen=True)
class SetStats:
    """Aggregate statistics of a sequence set (one Table I row half)."""

    count: int
    total_bases: int
    mean_length: float
    std_length: float
    min_length: int
    max_length: int
    n50: int

    def format_row(self) -> str:
        return (
            f"n={self.count:>8,}  total={self.total_bases:>13,} bp  "
            f"len={self.mean_length:,.0f} ± {self.std_length:,.0f}  "
            f"N50={self.n50:,}"
        )


def n50(lengths: np.ndarray) -> int:
    """N50: the length L such that sequences of length >= L cover half the total."""
    lengths = np.sort(np.asarray(lengths, dtype=np.int64))[::-1]
    if lengths.size == 0:
        return 0
    half = lengths.sum() / 2.0
    covered = np.cumsum(lengths)
    return int(lengths[np.searchsorted(covered, half)])


def set_stats(sequences: SequenceSet, *, min_length: int = 0) -> SetStats:
    """Compute :class:`SetStats`, optionally counting only sequences >= ``min_length``.

    Table I reports contigs of length >= 500 bp; pass ``min_length=500`` to
    reproduce that filtering without materialising a filtered set.
    """
    lengths = sequences.lengths
    if min_length > 0:
        lengths = lengths[lengths >= min_length]
    if lengths.size == 0:
        return SetStats(0, 0, 0.0, 0.0, 0, 0, 0)
    return SetStats(
        count=int(lengths.size),
        total_bases=int(lengths.sum()),
        mean_length=float(lengths.mean()),
        std_length=float(lengths.std()),
        min_length=int(lengths.min()),
        max_length=int(lengths.max()),
        n50=n50(lengths),
    )
