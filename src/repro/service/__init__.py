"""repro.service — batched, cached, long-lived mapping service.

Turns the one-shot JEM-mapper pipeline into a resident server: index
loaded once, bounded admission queue with backpressure, dynamic
micro-batching through the fault-tolerant parallel dispatch, an LRU
result cache keyed by query-sketch content, and live metrics.  See
``docs/service.md`` for the architecture and contracts.
"""

from .cache import SketchCacheEntry, SketchLRUCache, read_content_key
from .config import ServiceConfig
from .metrics import (
    Counter,
    Gauge,
    LatencyHistogram,
    ServiceMetrics,
    aggregate_metrics,
)
from .protocol import (
    ClientStats,
    PipeTransport,
    ServeStats,
    SocketTransport,
    run_session,
    serve_loop,
    stream_reads,
)
from .queue import AdmissionQueue, MapFuture
from .scheduler import MicroBatchScheduler
from .service import MappingService, ReadMapping

__all__ = [
    "MappingService",
    "ReadMapping",
    "ServiceConfig",
    "ServiceMetrics",
    "aggregate_metrics",
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "SketchLRUCache",
    "SketchCacheEntry",
    "read_content_key",
    "AdmissionQueue",
    "MapFuture",
    "MicroBatchScheduler",
    "serve_loop",
    "stream_reads",
    "run_session",
    "PipeTransport",
    "SocketTransport",
    "ServeStats",
    "ClientStats",
]
