"""LRU result cache keyed by canonical query-sketch content.

The JEM mapping of a read depends only on (a) the resident index and (b)
the bytes of the read's two end segments — the exact input of the query
sketching stage.  Inside one service (one index, one config) a read is
therefore fully determined by the content hash of its end segments, so
repeated or duplicate reads — resubmissions, PCR/optical duplicates,
overlapping client retries — skip sketching *and* table lookup entirely.
Read names are deliberately not part of the key: two differently named
reads with identical sequence share one entry (the cached value stores
per-segment subject/hit pairs; names are re-attached on the way out).

Results are identical with or without the cache by construction: the
cached value *is* the mapping the compute path produced for the same
segment bytes, and segments are mapped independently of their batch.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from hashlib import blake2b

import numpy as np

__all__ = ["SketchCacheEntry", "SketchLRUCache", "read_content_key"]


def read_content_key(prefix_codes: np.ndarray, suffix_codes: np.ndarray) -> bytes:
    """Canonical content hash of a read's two end segments.

    The digest covers exactly the bytes the sketching stage would consume
    (prefix, separator, suffix — the separator keeps ``("ab", "c")`` and
    ``("a", "bc")`` distinct).
    """
    h = blake2b(digest_size=16)
    h.update(np.ascontiguousarray(prefix_codes, dtype=np.uint8).tobytes())
    h.update(b"\x00|\x00")
    h.update(np.ascontiguousarray(suffix_codes, dtype=np.uint8).tobytes())
    return h.digest()


class SketchCacheEntry:
    """Cached mapping of one read's (prefix, suffix) segment pair."""

    __slots__ = ("prefix_subject", "prefix_hits", "suffix_subject", "suffix_hits")

    def __init__(
        self,
        prefix_subject: int,
        prefix_hits: int,
        suffix_subject: int,
        suffix_hits: int,
    ) -> None:
        self.prefix_subject = int(prefix_subject)
        self.prefix_hits = int(prefix_hits)
        self.suffix_subject = int(suffix_subject)
        self.suffix_hits = int(suffix_hits)

    def __eq__(self, other) -> bool:
        return isinstance(other, SketchCacheEntry) and (
            self.prefix_subject, self.prefix_hits,
            self.suffix_subject, self.suffix_hits,
        ) == (
            other.prefix_subject, other.prefix_hits,
            other.suffix_subject, other.suffix_hits,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SketchCacheEntry(prefix=({self.prefix_subject}, {self.prefix_hits}), "
            f"suffix=({self.suffix_subject}, {self.suffix_hits}))"
        )


class SketchLRUCache:
    """Bounded least-recently-used map from content key to cached mapping.

    ``capacity=0`` disables the cache (every ``get`` misses, ``put`` is a
    no-op) so the service code path stays branch-free.  Thread-safe; hit
    and miss counts are kept here and mirrored into the service metrics.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._entries: OrderedDict[bytes, SketchCacheEntry] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: bytes) -> SketchCacheEntry | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: bytes, entry: SketchCacheEntry) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
