"""Tunables of the long-lived mapping service.

:class:`ServiceConfig` controls *scheduling* — how requests queue, batch,
and cache.  It is deliberately separate from
:class:`~repro.core.config.JEMConfig`, which controls *what* is computed:
no ServiceConfig setting may change mapping output, only when and how
fast it is produced (the determinism tests pin this down).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Scheduling, admission, and caching knobs.

    Attributes
    ----------
    max_batch_size:
        Most reads coalesced into one dispatched batch.
    max_wait_ms:
        Longest the scheduler holds a non-full batch open waiting for more
        arrivals before dispatching it (the latency half of the
        batching trade-off).
    queue_capacity:
        Bound on queued-but-unscheduled requests; a submit beyond it is
        rejected with :class:`~repro.errors.ServiceOverloadError` and a
        ``retry_after`` hint (admission control / backpressure).
    cache_capacity:
        Entries in the query-sketch LRU result cache; 0 disables caching.
    processes:
        Simulated ranks for the fault-tolerant parallel dispatch path.
        1 = map batches inline (fastest on one core); > 1 partitions each
        batch across ranks through the S4 driver, which is also the path
        that supports fault injection and re-dispatch recovery.
    strict:
        Strict-mode contract for unrecoverable faults: ``True`` fails the
        whole batch, ``False`` degrades gracefully — only the lost reads'
        requests error, naming the cause.
    metrics_window:
        Reservoir size of each latency histogram.
    breaker_failures:
        Failed batches within ``breaker_window`` recorded batches that
        trip the circuit breaker into degraded single-trial mapping.
        ``0`` (the default) disables the breaker entirely — a clean or
        default-configured service can never change routing.
    breaker_window:
        Rolling window (in batches) the breaker counts failures over.
    breaker_cooldown_batches:
        Degraded batches served while open before a half-open probe of
        the primary path.
    watchdog_interval_ms:
        Period of the self-healing watchdog (orphaned-shm sweep, worker
        pool ensure, readiness refresh, scheduled index compaction).
        ``0`` (the default) disables the watchdog thread.
    memtable_flush_entries:
        Auto-flush threshold for the mutable index: once an
        ``add_contigs`` leaves at least this many entries in the
        memtable, the service flushes it into a sealed segment in the
        same mutation.  ``0`` (the default) disables auto-flush.
    compact_segments:
        Auto-compaction threshold: when the watchdog observes at least
        this many live segments it folds the index into one compacted
        segment (restoring the fused read path).  ``0`` (the default)
        disables scheduled compaction.
    """

    max_batch_size: int = 64
    max_wait_ms: float = 2.0
    queue_capacity: int = 1024
    cache_capacity: int = 4096
    processes: int = 1
    strict: bool = True
    metrics_window: int = 4096
    breaker_failures: int = 0
    breaker_window: int = 16
    breaker_cooldown_batches: int = 2
    watchdog_interval_ms: float = 0.0
    memtable_flush_entries: int = 0
    compact_segments: int = 0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ConfigError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait_ms < 0:
            raise ConfigError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.queue_capacity < 1:
            raise ConfigError(f"queue_capacity must be >= 1, got {self.queue_capacity}")
        if self.cache_capacity < 0:
            raise ConfigError(f"cache_capacity must be >= 0, got {self.cache_capacity}")
        if self.processes < 1:
            raise ConfigError(f"processes must be >= 1, got {self.processes}")
        if self.metrics_window < 1:
            raise ConfigError(f"metrics_window must be >= 1, got {self.metrics_window}")
        if self.breaker_failures < 0:
            raise ConfigError(
                f"breaker_failures must be >= 0, got {self.breaker_failures}"
            )
        if self.breaker_window < 1:
            raise ConfigError(
                f"breaker_window must be >= 1, got {self.breaker_window}"
            )
        if self.breaker_cooldown_batches < 1:
            raise ConfigError(
                "breaker_cooldown_batches must be >= 1, got "
                f"{self.breaker_cooldown_batches}"
            )
        if self.watchdog_interval_ms < 0:
            raise ConfigError(
                f"watchdog_interval_ms must be >= 0, got {self.watchdog_interval_ms}"
            )
        if self.memtable_flush_entries < 0:
            raise ConfigError(
                "memtable_flush_entries must be >= 0, got "
                f"{self.memtable_flush_entries}"
            )
        if self.compact_segments < 0:
            raise ConfigError(
                f"compact_segments must be >= 0, got {self.compact_segments}"
            )

    @property
    def max_wait_seconds(self) -> float:
        return self.max_wait_ms / 1000.0

    @property
    def watchdog_interval_seconds(self) -> float:
        return self.watchdog_interval_ms / 1000.0
