"""Self-healing machinery for the mapping service.

Two pieces, both deliberately free of mapping knowledge:

* :class:`CircuitBreaker` — a rolling-window breaker over per-batch
  outcomes.  A spike of post-recovery batch failures (workers dying
  faster than retry/re-dispatch can absorb) trips it **open**; while
  open the service re-routes batches to the degraded single-trial
  mapping path, which needs no parallel dispatch at all.  After a
  cooldown of degraded batches the breaker goes **half-open** and lets
  exactly one batch probe the primary path: success closes it
  (recovered), failure re-opens it.  All transitions are returned as
  events so the service can count them in its metrics.
* :class:`Watchdog` — a daemon thread that periodically sweeps orphaned
  shared-memory segments, keeps an attached
  :class:`~repro.resilience.pool.ResilientWorkerPool` healthy (rebuilding
  it and re-publishing the resident store when workers or segments
  vanish), and refreshes the service's readiness gauge.

Neither piece ever changes mapping output on a healthy service: the
breaker only routes *after* failures, and a breaker with
``failure_threshold`` 0 is permanently closed.
"""

from __future__ import annotations

import threading
from collections import deque

__all__ = ["CircuitBreaker", "Watchdog", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Rolling-window circuit breaker over batch outcomes.

    ``failure_threshold`` failures within the last ``window`` recorded
    batches trip the breaker; ``0`` disables it entirely (it reports
    :data:`CLOSED` forever — the default service configuration, so clean
    runs cannot change behaviour).  ``cooldown_batches`` is how many
    batches are served degraded before a half-open probe of the primary
    path.

    Sustained failure also ratchets :attr:`shed_level`: every ``opened``
    transition sheds the degraded path's trial budget by another factor
    of two, every ``recovered`` transition restores one step — so a
    service that keeps flapping converges towards the cheapest possible
    (single-trial) degraded answer instead of oscillating at full cost.
    """

    def __init__(
        self,
        *,
        window: int = 16,
        failure_threshold: int = 0,
        cooldown_batches: int = 2,
        max_shed_level: int = 8,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if failure_threshold < 0:
            raise ValueError(
                f"failure_threshold must be >= 0, got {failure_threshold}"
            )
        if cooldown_batches < 1:
            raise ValueError(
                f"cooldown_batches must be >= 1, got {cooldown_batches}"
            )
        if max_shed_level < 1:
            raise ValueError(
                f"max_shed_level must be >= 1, got {max_shed_level}"
            )
        self.failure_threshold = int(failure_threshold)
        self.cooldown_batches = int(cooldown_batches)
        self.max_shed_level = int(max_shed_level)
        self._outcomes: deque[bool] = deque(maxlen=int(window))
        self._state = CLOSED
        self._degraded_since_open = 0
        self._shed_level = 0
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.failure_threshold > 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def shed_level(self) -> int:
        """How aggressively the degraded path should shed work.

        0 while healthy; each ``"opened"`` transition steps it up (to at
        most ``max_shed_level``) and each ``"recovered"`` transition steps
        it back down — the stepwise T → T/2 → … → 1 ladder from ROADMAP
        item 5.  The mapping side interprets level *s* as "serve the
        first ``max(1, trials >> s)`` sketch trials".
        """
        with self._lock:
            return self._shed_level

    def decide(self) -> str:
        """Routing decision for the next batch: ``"primary"`` or ``"degraded"``.

        While open, each call counts one degraded batch; once the
        cooldown is spent the breaker moves to half-open and the *next*
        batch probes the primary path.
        """
        if not self.enabled:
            return "primary"
        with self._lock:
            if self._state == OPEN:
                if self._degraded_since_open >= self.cooldown_batches:
                    self._state = HALF_OPEN
                    return "primary"
                self._degraded_since_open += 1
                return "degraded"
            return "primary"

    def record_success(self) -> str | None:
        """Record a clean primary batch; returns ``"recovered"`` on close."""
        if not self.enabled:
            return None
        with self._lock:
            self._outcomes.append(True)
            if self._state == HALF_OPEN:
                self._state = CLOSED
                self._degraded_since_open = 0
                self._outcomes.clear()
                if self._shed_level > 0:
                    self._shed_level -= 1
                return "recovered"
            return None

    def record_failure(self) -> str | None:
        """Record a failed primary batch; returns ``"opened"`` on trip."""
        if not self.enabled:
            return None
        with self._lock:
            if self._state == HALF_OPEN:
                self._state = OPEN
                self._degraded_since_open = 0
                if self._shed_level < self.max_shed_level:
                    self._shed_level += 1
                return "opened"
            self._outcomes.append(False)
            failures = sum(1 for ok in self._outcomes if not ok)
            if self._state == CLOSED and failures >= self.failure_threshold:
                self._state = OPEN
                self._degraded_since_open = 0
                if self._shed_level < self.max_shed_level:
                    self._shed_level += 1
                return "opened"
            return None


class Watchdog:
    """Periodic keeper of the service's crash-prone resources.

    Every ``interval_s`` the tick callback runs on a daemon thread; the
    service's tick sweeps orphaned shm segments, ensures the attached
    worker pool, and refreshes the readiness gauge.  :meth:`stop` is
    idempotent and joins the thread.
    """

    def __init__(self, tick, interval_s: float) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self._tick = tick
        self._interval = float(interval_s)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.ticks = 0

    @property
    def alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.alive:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="jem-service-watchdog", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._tick()
            except Exception:  # pragma: no cover - the watchdog must not die
                pass
            self.ticks += 1

    def stop(self, timeout: float | None = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
