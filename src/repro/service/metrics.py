"""Live metrics for the mapping service.

A tiny, dependency-free instrumentation layer in the Prometheus idiom:
monotonically increasing :class:`Counter`\\ s, point-in-time
:class:`Gauge`\\ s, and reservoir-backed :class:`LatencyHistogram`\\ s that
report p50/p95/p99 quantiles.  Everything is thread-safe (the service's
submitters, the scheduler thread, and metrics readers run concurrently)
and :meth:`ServiceMetrics.snapshot` renders the whole registry as one
plain-``dict`` tree that ``json.dumps`` accepts verbatim — the service's
observability contract (see ``docs/service.md``).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from collections.abc import Sequence

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "ServiceMetrics",
    "aggregate_metrics",
]

#: Quantiles every histogram reports, in snapshot key order.
QUANTILES = ((50, "p50"), (95, "p95"), (99, "p99"))

#: How each gauge combines across replicas in :func:`aggregate_metrics`.
#: Levels add up (total queued work is the sum of per-replica queues) except
#: readiness, where the set is only as ready as its least-ready member;
#: breaker state, where any open breaker is worth surfacing; and the index
#: generation, where the fleet-wide number is the *oldest* generation any
#: replica still serves (a lagging replica is the operationally relevant one).
GAUGE_AGGREGATION = {
    "ready": min,
    "breaker_open": max,
    "index_generation": min,
    # the fleet's effective shed level is its worst member's: one replica
    # answering at 1/2^s trials is what an operator needs to see.
    "shed_level": max,
}


class Counter:
    """A monotonically increasing count (requests served, cache hits, ...)."""

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up, got inc({n})")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time level (queue depth, in-flight requests, ...)."""

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class LatencyHistogram:
    """Quantile summary over a bounded reservoir of observations.

    Keeps the most recent ``window`` observations (count/sum/min/max are
    exact over the full stream) and computes p50/p95/p99 from the
    reservoir at snapshot time — accurate for the service's steady-state
    distributions without unbounded memory.
    """

    def __init__(self, window: int = 4096) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._recent: deque[float] = deque(maxlen=window)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._recent.append(value)
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def _state(self) -> tuple[int, float, float, float, list[float]]:
        """Consistent (count, sum, min, max, reservoir) under the lock."""
        with self._lock:
            return (self._count, self._sum, self._min, self._max,
                    list(self._recent))

    @staticmethod
    def merged_snapshot(histograms: Sequence["LatencyHistogram"]) -> dict:
        """One snapshot over the pooled observations of many histograms.

        count/sum/min/max stay exact (they are exact per histogram);
        quantiles come from the concatenated reservoirs, which is the
        true pooled distribution as long as each reservoir still holds
        its full stream — and the usual recent-window approximation
        otherwise.  Aggregating live histograms instead of their
        pre-computed snapshots is what makes the pooled p99 honest: a
        mean of per-replica p99s is not a p99.
        """
        states = [h._state() for h in histograms]
        count = sum(s[0] for s in states)
        if count == 0:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    **{key: 0.0 for _, key in QUANTILES}}
        total = sum(s[1] for s in states)
        lo = min(s[2] for s in states if s[0])
        hi = max(s[3] for s in states if s[0])
        pooled = np.sort(np.concatenate(
            [np.asarray(s[4], dtype=np.float64) for s in states if s[4]]
        ))
        quantiles = {key: float(np.percentile(pooled, q)) for q, key in QUANTILES}
        return {
            "count": count,
            "sum": total,
            "mean": total / count,
            "min": lo,
            "max": hi,
            **quantiles,
        }

    def snapshot(self) -> dict:
        with self._lock:
            count = self._count
            total = self._sum
            lo, hi = self._min, self._max
            recent = list(self._recent)
        if count == 0:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    **{key: 0.0 for _, key in QUANTILES}}
        values = np.sort(np.asarray(recent, dtype=np.float64))
        quantiles = {
            key: float(np.percentile(values, q)) for q, key in QUANTILES
        }
        return {
            "count": count,
            "sum": total,
            "mean": total / count,
            "min": lo,
            "max": hi,
            **quantiles,
        }


class ServiceMetrics:
    """The mapping service's metric registry.

    Counters
        ``requests_total``, ``responses_total``, ``rejected_total``
        (admission-control rejections), ``errors_total`` (requests failed
        by faults), ``cache_hits_total``, ``cache_misses_total``,
        ``batches_total``, ``reads_mapped_total``; self-healing:
        ``shed_total`` (requests dropped because their deadline expired
        before dispatch), ``degraded_total`` (reads served by the
        degraded single-trial path while the breaker was open),
        ``breaker_open_total`` (breaker trips), ``recovered_total``
        (half-open probes that closed the breaker),
        ``pool_rebuilds_total`` (watchdog worker-pool rebuilds),
        ``replica_respawns_total`` (fleet supervisor respawns),
        ``hedged_requests_total`` (scatter shares answered inline because
        the owning replica missed the hedge deadline).
    Gauges
        ``queue_depth``, ``inflight``, ``cache_size``, ``ready``
        (1 while the service passes its readiness check, 0 otherwise),
        ``breaker_open`` (1 while the breaker is open), ``shed_level``
        (the breaker's current degraded-path trial-shedding step).
    Histograms (seconds unless noted)
        ``queue_wait`` (submit → batch pickup), ``map_latency`` (batch
        compute), ``request_latency`` (submit → response), ``batch_size``
        (reads per dispatched batch).

    ``labels`` identify *whose* numbers these are once several registries
    coexist (one per replica in a :class:`~repro.netserve.ReplicaSet`);
    they ride along in every snapshot and :func:`aggregate_metrics` folds
    labelled registries into one fleet-wide view.
    """

    COUNTERS = (
        "requests_total", "responses_total", "rejected_total", "errors_total",
        "cache_hits_total", "cache_misses_total", "batches_total",
        "reads_mapped_total", "shed_total", "degraded_total",
        "breaker_open_total", "recovered_total", "pool_rebuilds_total",
        "mutations_total", "flushes_total", "compactions_total",
        "replica_respawns_total", "hedged_requests_total",
    )
    GAUGES = (
        "queue_depth", "inflight", "cache_size", "ready", "breaker_open",
        "index_generation", "memtable_entries", "index_tombstones",
        "index_segments", "shed_level",
    )
    #: attribute name -> snapshot key (histograms carry their unit suffix).
    HISTOGRAMS = (
        ("queue_wait", "queue_wait_seconds"),
        ("map_latency", "map_latency_seconds"),
        ("request_latency", "request_latency_seconds"),
        ("batch_size", "batch_size_reads"),
    )

    def __init__(
        self, *, window: int = 4096, labels: dict[str, str] | None = None
    ) -> None:
        self.labels = dict(labels or {})
        self.requests_total = Counter()
        self.responses_total = Counter()
        self.rejected_total = Counter()
        self.errors_total = Counter()
        self.cache_hits_total = Counter()
        self.cache_misses_total = Counter()
        self.batches_total = Counter()
        self.reads_mapped_total = Counter()
        self.shed_total = Counter()
        self.degraded_total = Counter()
        self.breaker_open_total = Counter()
        self.recovered_total = Counter()
        self.pool_rebuilds_total = Counter()
        self.mutations_total = Counter()
        self.flushes_total = Counter()
        self.compactions_total = Counter()
        self.replica_respawns_total = Counter()
        self.hedged_requests_total = Counter()
        self.queue_depth = Gauge()
        self.inflight = Gauge()
        self.cache_size = Gauge()
        self.ready = Gauge()
        self.breaker_open = Gauge()
        self.index_generation = Gauge()
        self.memtable_entries = Gauge()
        self.index_tombstones = Gauge()
        self.index_segments = Gauge()
        self.shed_level = Gauge()
        self.queue_wait = LatencyHistogram(window)
        self.map_latency = LatencyHistogram(window)
        self.request_latency = LatencyHistogram(window)
        self.batch_size = LatencyHistogram(window)

    @property
    def cache_hit_ratio(self) -> float:
        hits = self.cache_hits_total.value
        misses = self.cache_misses_total.value
        total = hits + misses
        return hits / total if total else 0.0

    def snapshot(self) -> dict:
        """The whole registry as one JSON-serialisable dict."""
        snap = {
            "counters": {
                name: getattr(self, name).value for name in self.COUNTERS
            },
            "gauges": {name: getattr(self, name).value for name in self.GAUGES},
            "cache_hit_ratio": self.cache_hit_ratio,
            "histograms": {
                key: getattr(self, attr).snapshot()
                for attr, key in self.HISTOGRAMS
            },
        }
        if self.labels:
            snap["labels"] = dict(self.labels)
        return snap

    def to_json(self, **dumps_kwargs) -> str:
        return json.dumps(self.snapshot(), **dumps_kwargs)


def aggregate_metrics(registries: Sequence[ServiceMetrics]) -> dict:
    """Fold many (labelled) registries into one snapshot-shaped dict.

    Counters sum; gauges sum except where :data:`GAUGE_AGGREGATION` says
    otherwise (``ready`` = min, ``breaker_open`` = max); histograms pool
    their live reservoirs via :meth:`LatencyHistogram.merged_snapshot` so
    the fleet-wide quantiles are computed over actual observations, not
    averaged per-replica quantiles.  The result carries a ``replicas``
    list with each member's labels so readers can tell who contributed.
    """
    if not registries:
        raise ValueError("aggregate_metrics needs at least one registry")
    counters = {
        name: sum(getattr(m, name).value for m in registries)
        for name in ServiceMetrics.COUNTERS
    }
    gauges = {
        name: GAUGE_AGGREGATION.get(name, sum)(
            [getattr(m, name).value for m in registries]
        )
        for name in ServiceMetrics.GAUGES
    }
    hits = counters["cache_hits_total"]
    lookups = hits + counters["cache_misses_total"]
    return {
        "counters": counters,
        "gauges": gauges,
        "cache_hit_ratio": hits / lookups if lookups else 0.0,
        "histograms": {
            key: LatencyHistogram.merged_snapshot(
                [getattr(m, attr) for m in registries]
            )
            for attr, key in ServiceMetrics.HISTOGRAMS
        },
        "replicas": [dict(m.labels) for m in registries],
    }
