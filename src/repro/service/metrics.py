"""Live metrics for the mapping service.

A tiny, dependency-free instrumentation layer in the Prometheus idiom:
monotonically increasing :class:`Counter`\\ s, point-in-time
:class:`Gauge`\\ s, and reservoir-backed :class:`LatencyHistogram`\\ s that
report p50/p95/p99 quantiles.  Everything is thread-safe (the service's
submitters, the scheduler thread, and metrics readers run concurrently)
and :meth:`ServiceMetrics.snapshot` renders the whole registry as one
plain-``dict`` tree that ``json.dumps`` accepts verbatim — the service's
observability contract (see ``docs/service.md``).
"""

from __future__ import annotations

import json
import threading
from collections import deque

import numpy as np

__all__ = ["Counter", "Gauge", "LatencyHistogram", "ServiceMetrics"]

#: Quantiles every histogram reports, in snapshot key order.
QUANTILES = ((50, "p50"), (95, "p95"), (99, "p99"))


class Counter:
    """A monotonically increasing count (requests served, cache hits, ...)."""

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up, got inc({n})")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time level (queue depth, in-flight requests, ...)."""

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class LatencyHistogram:
    """Quantile summary over a bounded reservoir of observations.

    Keeps the most recent ``window`` observations (count/sum/min/max are
    exact over the full stream) and computes p50/p95/p99 from the
    reservoir at snapshot time — accurate for the service's steady-state
    distributions without unbounded memory.
    """

    def __init__(self, window: int = 4096) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._recent: deque[float] = deque(maxlen=window)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._recent.append(value)
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> dict:
        with self._lock:
            count = self._count
            total = self._sum
            lo, hi = self._min, self._max
            recent = list(self._recent)
        if count == 0:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    **{key: 0.0 for _, key in QUANTILES}}
        values = np.sort(np.asarray(recent, dtype=np.float64))
        quantiles = {
            key: float(np.percentile(values, q)) for q, key in QUANTILES
        }
        return {
            "count": count,
            "sum": total,
            "mean": total / count,
            "min": lo,
            "max": hi,
            **quantiles,
        }


class ServiceMetrics:
    """The mapping service's metric registry.

    Counters
        ``requests_total``, ``responses_total``, ``rejected_total``
        (admission-control rejections), ``errors_total`` (requests failed
        by faults), ``cache_hits_total``, ``cache_misses_total``,
        ``batches_total``, ``reads_mapped_total``; self-healing:
        ``shed_total`` (requests dropped because their deadline expired
        before dispatch), ``degraded_total`` (reads served by the
        degraded single-trial path while the breaker was open),
        ``breaker_open_total`` (breaker trips), ``recovered_total``
        (half-open probes that closed the breaker),
        ``pool_rebuilds_total`` (watchdog worker-pool rebuilds).
    Gauges
        ``queue_depth``, ``inflight``, ``cache_size``, ``ready``
        (1 while the service passes its readiness check, 0 otherwise),
        ``breaker_open`` (1 while the breaker is open).
    Histograms (seconds unless noted)
        ``queue_wait`` (submit → batch pickup), ``map_latency`` (batch
        compute), ``request_latency`` (submit → response), ``batch_size``
        (reads per dispatched batch).
    """

    def __init__(self, *, window: int = 4096) -> None:
        self.requests_total = Counter()
        self.responses_total = Counter()
        self.rejected_total = Counter()
        self.errors_total = Counter()
        self.cache_hits_total = Counter()
        self.cache_misses_total = Counter()
        self.batches_total = Counter()
        self.reads_mapped_total = Counter()
        self.shed_total = Counter()
        self.degraded_total = Counter()
        self.breaker_open_total = Counter()
        self.recovered_total = Counter()
        self.pool_rebuilds_total = Counter()
        self.queue_depth = Gauge()
        self.inflight = Gauge()
        self.cache_size = Gauge()
        self.ready = Gauge()
        self.breaker_open = Gauge()
        self.queue_wait = LatencyHistogram(window)
        self.map_latency = LatencyHistogram(window)
        self.request_latency = LatencyHistogram(window)
        self.batch_size = LatencyHistogram(window)

    @property
    def cache_hit_ratio(self) -> float:
        hits = self.cache_hits_total.value
        misses = self.cache_misses_total.value
        total = hits + misses
        return hits / total if total else 0.0

    def snapshot(self) -> dict:
        """The whole registry as one JSON-serialisable dict."""
        return {
            "counters": {
                "requests_total": self.requests_total.value,
                "responses_total": self.responses_total.value,
                "rejected_total": self.rejected_total.value,
                "errors_total": self.errors_total.value,
                "cache_hits_total": self.cache_hits_total.value,
                "cache_misses_total": self.cache_misses_total.value,
                "batches_total": self.batches_total.value,
                "reads_mapped_total": self.reads_mapped_total.value,
                "shed_total": self.shed_total.value,
                "degraded_total": self.degraded_total.value,
                "breaker_open_total": self.breaker_open_total.value,
                "recovered_total": self.recovered_total.value,
                "pool_rebuilds_total": self.pool_rebuilds_total.value,
            },
            "gauges": {
                "queue_depth": self.queue_depth.value,
                "inflight": self.inflight.value,
                "cache_size": self.cache_size.value,
                "ready": self.ready.value,
                "breaker_open": self.breaker_open.value,
            },
            "cache_hit_ratio": self.cache_hit_ratio,
            "histograms": {
                "queue_wait_seconds": self.queue_wait.snapshot(),
                "map_latency_seconds": self.map_latency.snapshot(),
                "request_latency_seconds": self.request_latency.snapshot(),
                "batch_size_reads": self.batch_size.snapshot(),
            },
        }

    def to_json(self, **dumps_kwargs) -> str:
        return json.dumps(self.snapshot(), **dumps_kwargs)
