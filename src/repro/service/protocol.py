"""Newline-delimited JSON protocol for ``jem serve`` / ``jem client``.

One JSON object per line, in both directions.  Requests:

* ``{"op": "map", "id": <any>, "name": "<read>", "seq": "ACGT..."}`` —
  map one read; the response echoes ``id`` and ``name`` and carries one
  result per end segment.  An optional ``"deadline_ms"`` propagates a
  per-request deadline into dispatch: a request still queued when it
  expires is shed and answered with a typed error instead of mapped.
  Responses carry ``"degraded": true`` when the circuit breaker routed
  the read through the single-trial fallback path.
* ``{"op": "ping"}`` → ``{"op": "pong"}`` (liveness).
* ``{"op": "health"}`` → liveness/readiness/breaker state plus worker
  pool health — answered immediately, without flushing pending maps, so
  probes are not blocked behind a slow batch.
* ``{"op": "metrics"}`` → the full metrics snapshot (pending maps are
  flushed first so the snapshot reflects them).
* ``{"op": "add_contigs", "names": [...], "seqs": [...]}`` — add contigs
  to the resident index online; ``{"op": "remove_contigs", "names":
  [...]}`` tombstones contigs.  Both flush pending maps first (so the
  mutation is ordered after every previously submitted read of this
  session) and answer ``{"op": ..., "stats": {...}}`` with the
  post-mutation per-generation store stats.
* ``{"op": "flush"}`` / ``{"op": "compact"}`` — seal the memtable into a
  segment / fold the whole index into one compacted segment.
* ``{"op": "stats"}`` → the current store stats block (generation,
  segments, memtable entries, tombstones, nbytes breakdown).
* ``{"op": "restart"}`` — rolling restart of a replica-set backend: each
  member is drained, respawned over fresh shared memory, parity-probed,
  and re-admitted in turn, so the fleet never drops below N-1 members.
  Answers ``{"op": "restart", "restarted": [...], ...}``.
* ``{"op": "drain"}`` — stop admission, finish everything, answer
  ``{"op": "drained", ...}`` with a final snapshot, and end the session.
  EOF on the input stream is an implicit drain.

Malformed frames (unparseable JSON, oversized lines on the TCP door,
unknown ops, non-string payload fields) are answered with a typed
in-band ``{"type": "error", "error": ...}`` object; the session — and on
the TCP door, every *other* session — keeps serving.

Backpressure surfaces in-band: an admission rejection produces
``{"id": ..., "error": "overloaded", "retry_after": <seconds>}`` and the
client resubmits after the hinted delay.  Responses to ``map`` requests
are written in request order (deterministic transcripts), so a client
may pipeline as many requests as it likes, but must read concurrently.
"""

from __future__ import annotations

import json
import socket
import subprocess
import threading
import time
from dataclasses import dataclass, field

from ..errors import ReproError, ServiceOverloadError
from ..seq.records import SequenceSet
from .service import MappingService

__all__ = [
    "serve_loop",
    "ServeStats",
    "stream_reads",
    "run_session",
    "response_for_mapping",
    "mutation_response",
    "MUTATION_OPS",
    "ADMIN_OPS",
    "PipeTransport",
    "SocketTransport",
    "ClientStats",
]

#: Index-mutation / introspection ops shared by pipe mode and the TCP
#: front-end; both execute them through :func:`mutation_response`.
MUTATION_OPS = ("add_contigs", "remove_contigs", "flush", "compact", "stats")

#: Fleet-administration ops (replica-set backends only); dispatched like
#: mutations — ordered after every read the session already submitted.
ADMIN_OPS = ("restart",)

#: Map requests kept in flight before the serve loop flushes responses.
#: Bounds server memory while still letting batches fill.
MAX_PENDING = 512


@dataclass
class ServeStats:
    """What one serve session did (returned by :func:`serve_loop`)."""

    mapped: int = 0
    errors: int = 0
    rejected: int = 0
    drained: bool = False


def response_for_mapping(header: dict, mapping) -> dict:
    """Render one completed mapping as its wire response object.

    The single formatting path for every session style — the pipe serve
    loop and the network front-end both call it, so a read's response
    bytes are identical whichever door it came through.
    """
    response = {
        **header,
        "results": [
            {"segment": seg, "contig": mapping.subject_names[i],
             "hits": mapping.hit_count[i]}
            for i, seg in enumerate(mapping.segment_names)
        ],
        "cached": mapping.cached,
    }
    if mapping.degraded:
        response["degraded"] = True
    return response


def mutation_response(backend, op: str, message: dict) -> dict:
    """Execute one index-mutation/stats op on ``backend``; render the reply.

    ``backend`` is anything with the service mutation surface
    (``add_contigs`` / ``remove_contigs`` / ``flush_index`` /
    ``compact_index`` / ``store_stats``) — a
    :class:`~repro.service.MappingService` or a
    :class:`~repro.netserve.ReplicaSet`.  The single formatting path for
    every session style, like :func:`response_for_mapping`.
    """
    try:
        if op == "restart":
            if not hasattr(backend, "rolling_restart"):
                raise ReproError(
                    "restart requires a replica-set backend "
                    "(single-service sessions have nothing to roll)"
                )
            return {"op": op, **backend.rolling_restart()}
        if op == "add_contigs":
            names = message.get("names") or []
            seqs = message.get("seqs") or []
            if not names or len(names) != len(seqs):
                raise ReproError(
                    "add_contigs needs parallel non-empty names/seqs lists"
                )
            stats = backend.add_contigs(
                SequenceSet.from_strings(
                    [(str(n), str(s)) for n, s in zip(names, seqs)]
                )
            )
        elif op == "remove_contigs":
            names = message.get("names") or []
            if not names:
                raise ReproError("remove_contigs needs a non-empty names list")
            stats = backend.remove_contigs([str(n) for n in names])
        elif op == "flush":
            stats = backend.flush_index()
        elif op == "compact":
            stats = backend.compact_index()
        elif op == "stats":
            stats = backend.store_stats()
        else:  # pragma: no cover - dispatchers only pass MUTATION_OPS
            raise ReproError(f"unknown mutation op {op!r}")
    except ReproError as exc:
        return {"op": op, "error": str(exc)}
    return {"op": op, "stats": stats, "generation": stats["generation"]}


def _response_for(entry) -> dict:
    """Render one pending (header, future) pair as a response object."""
    header, future = entry
    try:
        mapping = future.result()
    except ReproError as exc:
        return {**header, "error": str(exc)}
    return response_for_mapping(header, mapping)


def serve_loop(service: MappingService, in_stream, out_stream) -> ServeStats:
    """Run one NDJSON session over ``service`` until drain/EOF.

    The service is always drained on the way out, even on a protocol
    error — accepted requests are never abandoned.
    """
    stats = ServeStats()
    pending: list[tuple[dict, object]] = []

    def emit(obj: dict) -> None:
        out_stream.write(json.dumps(obj) + "\n")
        out_stream.flush()

    def flush_pending(*, only_done: bool = False) -> None:
        while pending:
            header, future = pending[0]
            if only_done and not (future is None or future.done()):
                return
            pending.pop(0)
            if future is None:  # pre-resolved (admission rejection)
                emit(header)
                stats.rejected += 1
                continue
            response = _response_for((header, future))
            if "error" in response:
                stats.errors += 1
            else:
                stats.mapped += 1
            emit(response)

    try:
        for line in in_stream:
            line = line.strip()
            if not line:
                continue
            try:
                message = json.loads(line)
                op = message.get("op", "map")
            except (json.JSONDecodeError, AttributeError) as exc:
                emit({"type": "error", "error": f"bad request line: {exc}"})
                continue
            if op == "map":
                header = {"id": message.get("id"), "name": message.get("name", "")}
                seq = message.get("seq", "")
                deadline_ms = message.get("deadline_ms")
                try:
                    future = service.submit(
                        header["name"] or "read", seq,
                        deadline_s=(
                            float(deadline_ms) / 1000.0
                            if deadline_ms is not None else None
                        ),
                    )
                    pending.append((header, future))
                except ServiceOverloadError as exc:
                    pending.append((
                        {**header, "error": "overloaded",
                         "retry_after": exc.retry_after},
                        None,
                    ))
                except ReproError as exc:
                    pending.append(({**header, "error": str(exc)}, None))
                except Exception as exc:  # noqa: BLE001 - a hostile payload
                    # (non-string seq, absurd deadline) must not end the
                    # session; answer typed and keep reading
                    pending.append((
                        {**header, "type": "error",
                         "error": f"bad request: {exc}"},
                        None,
                    ))
                if len(pending) >= MAX_PENDING:
                    flush_pending()
                else:
                    flush_pending(only_done=True)
            elif op == "ping":
                flush_pending()
                emit({"op": "pong"})
            elif op == "health":
                # answered without flushing: probes must not wait on batches
                emit({"op": "health", **service.healthz()})
            elif op == "metrics":
                flush_pending()
                emit({"op": "metrics", "metrics": service.metrics.snapshot()})
            elif op in MUTATION_OPS or op in ADMIN_OPS:
                # order the mutation after every read this session already
                # submitted: those futures resolve on their old generation
                flush_pending()
                emit(mutation_response(service, op, message))
            elif op == "drain":
                break
            else:
                emit({"type": "error", "error": f"unknown op {op!r}"})
        flush_pending()
        service.drain()
        stats.drained = True
        emit({
            "op": "drained",
            "mapped": stats.mapped,
            "errors": stats.errors,
            "rejected": stats.rejected,
            "metrics": service.metrics.snapshot(),
        })
    finally:
        if not service.drained:
            service.drain()
    return stats


class PipeTransport:
    """Client transport over a ``jem serve`` subprocess's stdio pipes.

    The transport layer is the only difference between pipe mode and
    ``jem client --connect``: both run the same :func:`run_session` over
    either this or :class:`SocketTransport`, so protocol behaviour
    (pipelining, backpressure retries, drain) cannot drift between them.
    """

    def __init__(self, proc: subprocess.Popen) -> None:
        self._proc = proc

    def lines(self):
        """Iterable of response lines (the session's reader consumes it)."""
        return self._proc.stdout

    def send_line(self, line: str) -> None:
        self._proc.stdin.write(line + "\n")
        self._proc.stdin.flush()

    def close_send(self) -> None:
        """Signal EOF on the request direction (implicit drain server-side)."""
        self._proc.stdin.close()

    def close(self) -> None:  # the Popen's lifetime belongs to the caller
        pass


class SocketTransport:
    """Client transport over a TCP connection to ``jem serve --listen``."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._rfile = sock.makefile("r", encoding="utf-8", newline="\n")

    @classmethod
    def connect(
        cls, host: str, port: int, *, timeout: float = 10.0
    ) -> "SocketTransport":
        sock = socket.create_connection((host, port), timeout=timeout)
        # connect-timeout only: an established session may legitimately
        # idle while the server coalesces a batch.
        sock.settimeout(None)
        return cls(sock)

    def lines(self):
        return self._rfile

    def send_line(self, line: str) -> None:
        self._sock.sendall((line + "\n").encode("utf-8"))

    def close_send(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass  # already gone; the reader will see EOF regardless

    def close(self) -> None:
        self._rfile.close()
        self._sock.close()


@dataclass
class ClientStats:
    """Outcome of one client run against a serve session."""

    responses: list[dict] = field(default_factory=list)
    retries: int = 0
    drained_reply: dict | None = None

    @property
    def mapped(self) -> int:
        return sum(1 for r in self.responses if "results" in r)

    @property
    def errors(self) -> int:
        return sum(1 for r in self.responses if "error" in r)


def run_session(
    reads: SequenceSet,
    transport,
    *,
    max_retries: int = 64,
    poll_s: float = 0.02,
    timeout: float = 600.0,
) -> ClientStats:
    """Drive one serve session over ``transport``: pipeline, honour backpressure.

    The single session implementation behind both pipe mode
    (:func:`stream_reads` over a subprocess) and ``jem client --connect``
    (a :class:`SocketTransport`).  A reader thread collects responses
    concurrently (the server writes in request order; without it both
    sides could block on full buffers).  ``overloaded`` rejections are
    resubmitted after sleeping out the server's ``retry_after`` hint;
    periodic ``ping``\\ s force the server to flush whatever batches have
    completed.  Ends with a ``drain`` and returns every map response in
    read order plus the drained summary.
    """
    stats = ClientStats()
    results: dict[int, dict] = {}
    lock = threading.Lock()
    session_done = threading.Event()

    def reader() -> None:
        for line in transport.lines():
            try:
                message = json.loads(line)
            except json.JSONDecodeError:
                continue
            if message.get("op") == "drained":
                stats.drained_reply = message
                break
            if message.get("id") is not None:
                with lock:
                    results[message["id"]] = message
        session_done.set()

    threading.Thread(target=reader, daemon=True).start()

    def send(obj: dict) -> None:
        transport.send_line(json.dumps(obj))

    def send_read(i: int) -> None:
        send({"op": "map", "id": i, "name": reads.names[i],
              "seq": reads[i].sequence})

    for i in range(len(reads)):
        send_read(i)
    pending = set(range(len(reads)))
    # the retry budget is per read, not per session: under a tight quota a
    # pipelined burst rejects almost every read at once, and a shared
    # budget would be spent before any read converged on a slot
    retries_left = dict.fromkeys(pending, max_retries)
    deadline = time.monotonic() + timeout
    while pending and time.monotonic() < deadline:
        send({"op": "ping"})  # forces the server to flush completed batches
        time.sleep(poll_s)
        with lock:
            arrived = {i: results[i] for i in pending if i in results}
        for i, message in arrived.items():
            if message.get("error") == "overloaded" and retries_left[i] > 0:
                retries_left[i] -= 1
                stats.retries += 1
                time.sleep(float(message.get("retry_after", poll_s)))
                with lock:
                    results.pop(i, None)
                send_read(i)
            else:
                pending.discard(i)
    send({"op": "drain"})
    transport.close_send()
    session_done.wait(timeout=timeout)
    stats.responses = [results.get(i, {"id": i, "error": "no response"})
                       for i in range(len(reads))]
    transport.close()
    return stats


def stream_reads(
    reads: SequenceSet,
    proc: subprocess.Popen,
    *,
    max_retries: int = 64,
    poll_s: float = 0.02,
    timeout: float = 600.0,
) -> ClientStats:
    """Pipe-mode convenience: :func:`run_session` over a serve subprocess."""
    return run_session(
        reads, PipeTransport(proc),
        max_retries=max_retries, poll_s=poll_s, timeout=timeout,
    )
