"""Bounded admission queue and per-request futures.

The queue is the service's backpressure point: a submit beyond
``capacity`` is rejected *immediately* with
:class:`~repro.errors.ServiceOverloadError` carrying a ``retry_after``
estimate, instead of letting latency grow without bound (the
reject-with-retry-after contract, cf. HTTP 429/503).  Closing the queue
stops admission but lets the scheduler drain what was already accepted —
accepted work is never dropped on shutdown.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable
from typing import Generic, TypeVar

from ..errors import ServiceClosedError, ServiceOverloadError

__all__ = ["MapFuture", "AdmissionQueue"]

T = TypeVar("T")


class MapFuture:
    """Completion handle for one submitted read (threading-based).

    Besides the blocking :meth:`result`, callers may attach done
    callbacks — the bridge the asyncio front-end uses to complete an
    ``asyncio.Future`` (via ``call_soon_threadsafe``) without parking an
    executor thread per in-flight request.  A callback added after
    completion runs immediately on the adding thread; callbacks added
    before run on the completing thread, outside the lock.
    """

    __slots__ = ("_event", "_result", "_exception", "_lock", "_callbacks")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result = None
        self._exception: BaseException | None = None
        self._lock = threading.Lock()
        self._callbacks: list = []

    def done(self) -> bool:
        return self._event.is_set()

    def add_done_callback(self, fn) -> None:
        """Run ``fn(self)`` once the future completes (never under the lock)."""
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
        fn(self)

    def _complete(self) -> None:
        with self._lock:
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def set_result(self, result) -> None:
        self._result = result
        self._complete()

    def set_exception(self, exc: BaseException) -> None:
        self._exception = exc
        self._complete()

    def exception(self, timeout: float | None = None) -> BaseException | None:
        if not self._event.wait(timeout):
            raise TimeoutError("result not ready")
        return self._exception

    def result(self, timeout: float | None = None):
        if not self._event.wait(timeout):
            raise TimeoutError("result not ready")
        if self._exception is not None:
            raise self._exception
        return self._result


class AdmissionQueue(Generic[T]):
    """Thread-safe bounded FIFO with reject-on-full and drain-on-close.

    ``retry_after`` passed to :meth:`put` rides on the rejection error so
    the caller (the service, which knows its recent per-read service
    time) controls the hint without the queue knowing about timing.  It
    may be a plain float or a ``depth -> seconds`` callable; the callable
    form is evaluated *under the queue lock* with the true current depth,
    so concurrent producers (many network connections submitting at once)
    always get a hint derived from the depth at the moment of their own
    rejection — a float computed before ``put`` is stale by the time the
    lock is taken whenever another producer slipped in between.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._items: deque[T] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    def put(
        self, item: T, *, retry_after: float | Callable[[int], float] = 0.0
    ) -> int:
        """Admit ``item`` or reject; returns the queue depth after admission.

        A callable ``retry_after`` receives the current depth (taken under
        the lock, so it is exact even with concurrent producers) and
        returns the hint in seconds.
        """
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is draining; no new requests accepted")
            if len(self._items) >= self.capacity:
                hint = (
                    retry_after(len(self._items))
                    if callable(retry_after)
                    else float(retry_after)
                )
                raise ServiceOverloadError(
                    f"admission queue full ({self.capacity} requests); "
                    f"retry in ~{hint:.3f}s",
                    retry_after=hint,
                )
            self._items.append(item)
            self._not_empty.notify()
            return len(self._items)

    def take_batch(self, max_size: int, max_wait_s: float) -> list[T]:
        """Next micro-batch: up to ``max_size`` items, coalesced for up to
        ``max_wait_s`` after the first item is available.

        Blocks while the queue is empty and open.  Returns an empty list
        only when the queue is closed and fully drained — the scheduler's
        exit signal.
        """
        with self._lock:
            while not self._items and not self._closed:
                self._not_empty.wait()
            if not self._items:
                return []  # closed and drained
            batch: list[T] = [self._items.popleft()]
            deadline = time.perf_counter() + max_wait_s
            while len(batch) < max_size:
                while not self._items:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0 or self._closed:
                        return batch
                    self._not_empty.wait(remaining)
                batch.append(self._items.popleft())
            return batch

    def close(self) -> None:
        """Stop admission; already-queued items remain to be drained."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    def dump(self) -> list[T]:
        """Abort door: close *and* seize everything still queued.

        Unlike :meth:`close`, nothing is left for the scheduler to drain —
        the caller owns failing the seized items.  Used by the chaos kill
        path, where accepted work must die abruptly (but still typed)
        instead of completing.
        """
        with self._lock:
            self._closed = True
            items = list(self._items)
            self._items.clear()
            self._not_empty.notify_all()
            return items
