"""Bounded admission queue and per-request futures.

The queue is the service's backpressure point: a submit beyond
``capacity`` is rejected *immediately* with
:class:`~repro.errors.ServiceOverloadError` carrying a ``retry_after``
estimate, instead of letting latency grow without bound (the
reject-with-retry-after contract, cf. HTTP 429/503).  Closing the queue
stops admission but lets the scheduler drain what was already accepted —
accepted work is never dropped on shutdown.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable
from typing import Generic, TypeVar

from ..errors import ServiceClosedError, ServiceOverloadError

__all__ = ["MapFuture", "AdmissionQueue"]

T = TypeVar("T")


class MapFuture:
    """Completion handle for one submitted read (threading-based)."""

    __slots__ = ("_event", "_result", "_exception")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result = None
        self._exception: BaseException | None = None

    def done(self) -> bool:
        return self._event.is_set()

    def set_result(self, result) -> None:
        self._result = result
        self._event.set()

    def set_exception(self, exc: BaseException) -> None:
        self._exception = exc
        self._event.set()

    def exception(self, timeout: float | None = None) -> BaseException | None:
        if not self._event.wait(timeout):
            raise TimeoutError("result not ready")
        return self._exception

    def result(self, timeout: float | None = None):
        if not self._event.wait(timeout):
            raise TimeoutError("result not ready")
        if self._exception is not None:
            raise self._exception
        return self._result


class AdmissionQueue(Generic[T]):
    """Thread-safe bounded FIFO with reject-on-full and drain-on-close.

    ``retry_after`` passed to :meth:`put` rides on the rejection error so
    the caller (the service, which knows its recent per-read service
    time) controls the hint without the queue knowing about timing.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._items: deque[T] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    def put(self, item: T, *, retry_after: float = 0.0) -> int:
        """Admit ``item`` or reject; returns the queue depth after admission."""
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is draining; no new requests accepted")
            if len(self._items) >= self.capacity:
                raise ServiceOverloadError(
                    f"admission queue full ({self.capacity} requests); "
                    f"retry in ~{retry_after:.3f}s",
                    retry_after=retry_after,
                )
            self._items.append(item)
            self._not_empty.notify()
            return len(self._items)

    def take_batch(self, max_size: int, max_wait_s: float) -> list[T]:
        """Next micro-batch: up to ``max_size`` items, coalesced for up to
        ``max_wait_s`` after the first item is available.

        Blocks while the queue is empty and open.  Returns an empty list
        only when the queue is closed and fully drained — the scheduler's
        exit signal.
        """
        with self._lock:
            while not self._items and not self._closed:
                self._not_empty.wait()
            if not self._items:
                return []  # closed and drained
            batch: list[T] = [self._items.popleft()]
            deadline = time.perf_counter() + max_wait_s
            while len(batch) < max_size:
                while not self._items:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0 or self._closed:
                        return batch
                    self._not_empty.wait(remaining)
                batch.append(self._items.popleft())
            return batch

    def close(self) -> None:
        """Stop admission; already-queued items remain to be drained."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
