"""Dynamic micro-batch scheduler.

One daemon thread pulls requests off the admission queue and coalesces
them into batches (the queue's ``take_batch`` implements the max-size /
max-wait policy), then hands each batch to the dispatch callable the
service provides.  Batching changes *when* work happens, never *what* is
computed: every read's mapping is independent of its batch mates, so any
grouping yields bit-identical results — the property the determinism
tests assert.

A dispatch failure fails that batch's requests (their futures carry the
exception) but never kills the scheduler: the service keeps serving
subsequent batches, mirroring the parallel driver's graceful-degradation
contract.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Sequence

from .queue import AdmissionQueue

__all__ = ["MicroBatchScheduler"]


class MicroBatchScheduler:
    """Drains an :class:`AdmissionQueue` into dispatched micro-batches."""

    def __init__(
        self,
        queue: AdmissionQueue,
        dispatch: Callable[[Sequence], None],
        *,
        max_batch_size: int,
        max_wait_s: float,
        on_batch_error: Callable[[Sequence, BaseException], None] | None = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        self._queue = queue
        self._dispatch = dispatch
        self._max_batch_size = int(max_batch_size)
        self._max_wait_s = float(max_wait_s)
        self._on_batch_error = on_batch_error
        self._thread = threading.Thread(
            target=self._run, name="jem-service-scheduler", daemon=True
        )
        self.batches_dispatched = 0

    def start(self) -> None:
        self._thread.start()

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    def join(self, timeout: float | None = None) -> None:
        """Wait for the scheduler to finish draining (queue must be closed)."""
        self._thread.join(timeout)

    def _run(self) -> None:
        while True:
            batch = self._queue.take_batch(self._max_batch_size, self._max_wait_s)
            if not batch:
                return  # queue closed and drained
            try:
                self._dispatch(batch)
            except BaseException as exc:  # noqa: BLE001 - must not kill the loop
                if self._on_batch_error is not None:
                    self._on_batch_error(batch, exc)
            else:
                self.batches_dispatched += 1
