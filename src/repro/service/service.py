"""The long-lived mapping service.

A :class:`MappingService` turns the one-shot JEM mapping pipeline into a
resident server: the contig index is loaded (or built) **once**, the
per-trial sketch tables stay in memory, and query reads stream through a
bounded admission queue into dynamically coalesced micro-batches that are
dispatched through the same fault-tolerant S4 path as the parallel
driver.  An LRU cache keyed by the content of a read's end segments lets
duplicate reads bypass sketching and table lookup entirely.

Scheduling is invisible in the output: for any submission order, batch
shape, cache state, or recoverable fault plan, the per-read results are
bit-identical to a sequential :meth:`~repro.core.mapper.JEMMapper.map_reads`
over the same reads — the service changes *when* work happens, never
*what* is computed.

Public usage::

    from repro.service import MappingService, ServiceConfig

    with MappingService.from_index("contigs.idx.npz") as svc:
        fut = svc.submit("read_1", "ACGT...")
        print(fut.result().best())          # (contig name, hits)
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..core.config import JEMConfig
from ..core.hitcounter import count_hits_vectorised
from ..core.lsm import MutableSketchStore, store_stats
from ..core.mapper import JEMMapper, MappingResult, map_segment_batch
from ..core.segments import PREFIX, SUFFIX, SegmentInfo, extract_end_segments
from ..core.sketch_table import SketchTable
from ..errors import (
    DeadlineExceededError,
    SequenceError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadError,
)
from ..parallel.driver import map_partitioned_queries, resolve_partial
from ..parallel.faults import FaultPlan
from ..parallel.partition import partition_bounds, partition_set
from ..parallel.retry import RetryPolicy
from ..parallel.shm import sweep_orphan_segments
from ..seq.encode import encode
from ..seq.records import SequenceSet, SequenceSetBuilder
from ..sketch.jem import query_sketch_values
from .cache import SketchCacheEntry, SketchLRUCache, read_content_key
from .config import ServiceConfig
from .health import OPEN, CircuitBreaker, Watchdog
from .metrics import ServiceMetrics
from .queue import AdmissionQueue, MapFuture
from .scheduler import MicroBatchScheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import PipelineConfig
    from ..resilience.pool import ResilientWorkerPool

__all__ = ["MappingService", "ReadMapping"]

#: Seed for the per-read service-time estimate before any batch completes.
_INITIAL_READ_SECONDS = 2e-3


@dataclass(frozen=True)
class ReadMapping:
    """Service response for one read: its two end-segment mappings.

    ``degraded`` marks a best-effort answer produced by the single-trial
    fallback path while the circuit breaker was open — lower sensitivity
    than the full multi-trial mapping, never cached.
    """

    name: str
    subject: tuple[int, int]  # (prefix, suffix) contig ids; -1 = unmapped
    hit_count: tuple[int, int]
    subject_names: tuple[str | None, str | None]
    cached: bool = False
    degraded: bool = False

    @property
    def segment_names(self) -> tuple[str, str]:
        return (f"{self.name}/{PREFIX}", f"{self.name}/{SUFFIX}")

    def best(self) -> tuple[str | None, int]:
        """(contig name, hits) of the stronger end segment (None = unmapped)."""
        side = 0 if self.hit_count[0] >= self.hit_count[1] else 1
        return self.subject_names[side], self.hit_count[side]


class _IndexView:
    """One generation's read view: store snapshot + names + cache key prefix.

    A batch captures the service's current view exactly once, at dispatch,
    and maps/labels/caches entirely through it — so a generation swap that
    lands mid-batch never mixes into that batch's responses.  ``prefix``
    namespaces the result cache by generation: entries written by an older
    generation can never satisfy a newer one (and vice versa), without any
    locking on the swap path.
    """

    __slots__ = ("table", "subject_names", "generation", "prefix")

    def __init__(self, table, subject_names: tuple[str, ...], generation: int) -> None:
        self.table = table
        self.subject_names = subject_names
        self.generation = int(generation)
        self.prefix = self.generation.to_bytes(8, "little")

    def label(self, subject: int) -> str | None:
        return self.subject_names[subject] if subject >= 0 else None


class _MapRequest:
    """One queued read and its completion future.

    ``deadline`` is an absolute ``time.perf_counter()`` instant (or
    ``None``): a request still undispatched past it is shed, not mapped.
    """

    __slots__ = ("name", "codes", "key", "future", "t_submit", "deadline")

    def __init__(
        self,
        name: str,
        codes: np.ndarray,
        key: bytes,
        deadline_s: float | None = None,
    ) -> None:
        self.name = name
        self.codes = codes
        self.key = key
        self.future: MapFuture = MapFuture()
        self.t_submit = time.perf_counter()
        self.deadline = (
            self.t_submit + deadline_s if deadline_s is not None else None
        )


class MappingService:
    """Batched, cached, admission-controlled mapping over a resident index."""

    def __init__(
        self,
        mapper: JEMMapper,
        service_config: ServiceConfig | None = None,
        *,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        auto_start: bool = True,
        metrics_labels: dict[str, str] | None = None,
    ) -> None:
        self._table = mapper.table  # raises MappingError when not indexed
        self._mapper = mapper
        self._mutation_lock = threading.Lock()
        self._view = _IndexView(
            self._read_table(mapper.table),
            tuple(mapper.subject_names),
            getattr(mapper.table, "generation", 0),
        )
        self.jem_config: JEMConfig = mapper.config
        self.config = service_config if service_config is not None else ServiceConfig()
        self._family = mapper.config.hash_family()
        self._faults = faults
        self._retry = retry
        self.metrics = ServiceMetrics(
            window=self.config.metrics_window, labels=metrics_labels
        )
        self.cache = SketchLRUCache(self.config.cache_capacity)
        self._queue: AdmissionQueue[_MapRequest] = AdmissionQueue(
            self.config.queue_capacity
        )
        self._scheduler = MicroBatchScheduler(
            self._queue,
            self._process_batch,
            max_batch_size=self.config.max_batch_size,
            max_wait_s=self.config.max_wait_seconds,
            on_batch_error=self._fail_batch,
        )
        self._ewma_read_seconds = _INITIAL_READ_SECONDS
        self._ewma_lock = threading.Lock()
        self._drained = False
        self._killed = False
        self._breaker = CircuitBreaker(
            window=self.config.breaker_window,
            failure_threshold=self.config.breaker_failures,
            cooldown_batches=self.config.breaker_cooldown_batches,
        )
        self._watchdog: Watchdog | None = (
            Watchdog(self._watchdog_tick, self.config.watchdog_interval_seconds)
            if self.config.watchdog_interval_ms > 0
            else None
        )
        self._pool: "ResilientWorkerPool | None" = None
        #: ((generation, trials kept), table, family slice) — rebuilt on swap
        #: and whenever the breaker's shed level moves the trial budget
        self._degraded_view: tuple[tuple[int, int], SketchTable, object] | None = None
        self._refresh_index_gauges()
        if auto_start:
            self.start()

    @staticmethod
    def _read_table(table):
        """The immutable object batches read: a generation for mutable stores.

        Capturing ``MutableSketchStore.current`` (instead of the handle)
        is what pins a batch to the generation it started on — the handle
        itself would follow mutations mid-batch.
        """
        return table.current if isinstance(table, MutableSketchStore) else table

    # -- construction --------------------------------------------------------

    @classmethod
    def from_pipeline(
        cls,
        pipeline: "PipelineConfig",
        *,
        subjects: SequenceSet | None = None,
        index: str | None = None,
        service_config: ServiceConfig | None = None,
        **kwargs,
    ) -> "MappingService":
        """Service from one typed :class:`~repro.core.engine.PipelineConfig`.

        Exactly one of ``subjects`` (contig sequences, indexed at startup)
        or ``index`` (a saved bundle path) selects the index source; the
        pipeline decides mapper constants and store kind.  This is the
        single construction path — :meth:`from_index` and
        :meth:`from_contigs` are convenience wrappers over it.
        """
        from ..core.engine import MappingEngine

        if (subjects is None) == (index is None):
            raise ServiceError("provide exactly one of subjects= or index=")
        engine = MappingEngine(pipeline)
        if index is not None:
            engine.use_index(index)
        else:
            engine.use_subjects(subjects)
        return engine.service(service_config, **kwargs)

    @classmethod
    def from_index(
        cls, path, service_config: ServiceConfig | None = None, **kwargs
    ) -> "MappingService":
        """Service over a saved (checksummed) index bundle — loaded once."""
        from ..core.engine import PipelineConfig

        return cls.from_pipeline(
            PipelineConfig(), index=os.fspath(path),
            service_config=service_config, **kwargs,
        )

    @classmethod
    def from_contigs(
        cls,
        contigs: SequenceSet,
        jem_config: JEMConfig | None = None,
        service_config: ServiceConfig | None = None,
        **kwargs,
    ) -> "MappingService":
        """Service that indexes ``contigs`` at startup and keeps it resident."""
        from ..core.engine import PipelineConfig

        pipeline = (
            PipelineConfig(jem=jem_config) if jem_config is not None else PipelineConfig()
        )
        return cls.from_pipeline(
            pipeline, subjects=contigs, service_config=service_config, **kwargs
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self._scheduler.start()
        if self._watchdog is not None:
            self._watchdog.start()
        self.metrics.ready.set(1.0)

    @property
    def draining(self) -> bool:
        return self._queue.closed

    @property
    def drained(self) -> bool:
        return self._drained

    @property
    def subject_names(self) -> list[str]:
        return self._mapper.subject_names

    def drain(self, timeout: float | None = None) -> None:
        """Stop admission, finish every accepted request, stop the scheduler.

        Idempotent.  Raises :class:`~repro.errors.ServiceError` if the
        scheduler fails to drain within ``timeout`` seconds.
        """
        self._queue.close()
        self._scheduler.join(timeout)
        if self._scheduler.alive:
            raise ServiceError(
                f"service failed to drain within {timeout}s "
                f"({self._queue.depth} requests still queued)"
            )
        if self._watchdog is not None:
            self._watchdog.stop()
        if self._pool is not None:
            self._pool.close()
        self._drained = True
        self.metrics.queue_depth.set(0)
        self.metrics.ready.set(0.0)

    close = drain

    def __enter__(self) -> "MappingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.drain()

    # -- health and self-healing ---------------------------------------------

    @property
    def breaker(self) -> CircuitBreaker:
        return self._breaker

    def attach_pool(self, pool: "ResilientWorkerPool") -> None:
        """Give the watchdog a worker pool to keep alive.

        The service takes ownership: the pool is started now, ensured on
        every watchdog tick (rebuilt, with the resident store's shm
        columns re-published, whenever workers or segments vanish), and
        closed on :meth:`drain`.
        """
        pool.start()
        self._pool = pool
        if self._watchdog is not None:
            self._watchdog.start()

    def set_fault_plan(self, faults: FaultPlan | None) -> None:
        """Chaos hook: swap the injected fault plan of future batches."""
        self._faults = faults

    @property
    def killed(self) -> bool:
        return self._killed

    def kill(self) -> None:
        """Chaos door: die abruptly, the in-process stand-in for SIGKILL.

        Admission closes, everything still queued fails *typed*
        (:class:`~repro.errors.ServiceClosedError` — a real kill would
        simply never answer, but in-process futures must not hang), the
        scheduler thread exits on the emptied queue, and the service
        reports ``live`` False.  Unlike :meth:`drain`, no accepted work is
        completed and nothing is cleaned up — dangling shm attachments and
        all.  That mess is exactly what the fleet supervisor exists to
        detect and repair.
        """
        for request in self._queue.dump():
            if not request.future.done():
                self._fail(request, ServiceClosedError("replica killed"))
        if self._watchdog is not None:  # a killed process takes its threads
            self._watchdog.stop()
        self._killed = True
        self._drained = True
        self.metrics.ready.set(0.0)

    # -- online index mutation -----------------------------------------------

    @property
    def index_generation(self) -> int:
        return self._view.generation

    def store_stats(self) -> dict:
        """Per-generation stats of the resident index (see ``jem store-stats``)."""
        stats = store_stats(self._mapper.table)
        stats["generation"] = self._view.generation
        return stats

    def _ensure_mutable(self) -> MutableSketchStore:
        """The resident index as a mutable handle, wrapping it on first use.

        A static store (plain columnar/dict/packed) becomes the single
        generation-0 segment of an in-memory :class:`MutableSketchStore`;
        a handle loaded from a v4 directory is used as-is (durable).
        Called under the mutation lock.
        """
        table = self._mapper.table
        if isinstance(table, MutableSketchStore):
            return table
        handle = MutableSketchStore.in_memory(
            self.jem_config,
            base_store=table,
            subject_names=self._mapper.subject_names,
        )
        self._mapper.adopt_store(handle, handle.subject_names)
        return handle

    def _install_view(self, handle: MutableSketchStore) -> dict:
        """Atomically publish the handle's latest generation to new batches.

        In-flight batches keep the view they captured; the result cache is
        generation-namespaced (and cleared here, purely to release
        memory), and the degraded single-trial view is invalidated so the
        breaker fallback also reads the new generation.  Called under the
        mutation lock.
        """
        generation = handle.current
        self._mapper.adopt_store(handle, handle.subject_names)
        self._table = handle
        self._view = _IndexView(
            generation, tuple(handle.subject_names), generation.generation
        )
        self._degraded_view = None
        self.cache.clear()
        self.metrics.cache_size.set(0)
        self._refresh_index_gauges()
        return self.store_stats()

    def _refresh_index_gauges(self) -> None:
        stats = store_stats(self._mapper.table)
        self.metrics.index_generation.set(self._view.generation)
        self.metrics.memtable_entries.set(stats["memtable_entries"])
        self.metrics.index_tombstones.set(stats["tombstones"])
        self.metrics.index_segments.set(stats["segments"])

    def add_contigs(self, contigs: SequenceSet) -> dict:
        """Add contigs online; new batches map against them immediately.

        Returns the post-mutation :meth:`store_stats` block.  When
        ``memtable_flush_entries`` is configured and the memtable has
        grown past it, the same mutation also flushes.
        """
        with self._mutation_lock:
            handle = self._ensure_mutable()
            handle.add_contigs(contigs)
            self.metrics.mutations_total.inc()
            limit = self.config.memtable_flush_entries
            if limit and handle.current.memtable_entries >= limit:
                handle.flush()
                self.metrics.flushes_total.inc()
            return self._install_view(handle)

    def remove_contigs(self, names: list[str]) -> dict:
        """Tombstone contigs online; they stop matching from the next batch."""
        with self._mutation_lock:
            handle = self._ensure_mutable()
            handle.remove_contigs(names)
            self.metrics.mutations_total.inc()
            return self._install_view(handle)

    def flush_index(self) -> dict:
        """Seal the memtable into an immutable segment (durable when backed)."""
        with self._mutation_lock:
            handle = self._ensure_mutable()
            before = handle.generation
            handle.flush()
            if handle.generation != before:
                self.metrics.flushes_total.inc()
                return self._install_view(handle)
            return self.store_stats()

    def compact_index(self) -> dict:
        """Fold the index into one clean segment (restores the fused path)."""
        with self._mutation_lock:
            handle = self._ensure_mutable()
            handle.compact()
            self.metrics.compactions_total.inc()
            return self._install_view(handle)

    def install_index(
        self, store, subject_names, *, generation: int | None = None
    ) -> dict:
        """Swap in an externally managed store as the resident index.

        The generation-swap door used by :class:`~repro.netserve.ReplicaSet`,
        whose mutable handle lives at the set level: each replica's service
        gets the already-built generation (or shard) installed rather than
        mutating its own.  ``generation`` overrides the number stamped on
        the view when the store itself does not carry one (scatter shards).
        In-flight batches finish on the view they captured.
        """
        with self._mutation_lock:
            names = list(subject_names)
            self._mapper.adopt_store(store, names)
            self._table = store
            view_table = self._read_table(store)
            if generation is None:
                generation = getattr(view_table, "generation", 0)
            self._view = _IndexView(view_table, tuple(names), generation)
            self._degraded_view = None
            self.cache.clear()
            self.metrics.cache_size.set(0)
            self._refresh_index_gauges()
            return self.store_stats()

    def healthz(self) -> dict:
        """Liveness/readiness snapshot (also refreshes the ``ready`` gauge).

        ``live`` is True until the service has drained — the process can
        still answer.  ``ready`` is True only while new work is being
        accepted *and* served at full quality: scheduler running, not
        draining, circuit breaker not open, attached worker pool healthy.
        """
        breaker_state = self._breaker.state
        pool_healthy = self._pool is None or self._pool.healthy()
        ready = (
            self._scheduler.alive
            and not self.draining
            and breaker_state != OPEN
            and pool_healthy
        )
        shed = self._breaker.shed_level
        self.metrics.ready.set(1.0 if ready else 0.0)
        self.metrics.breaker_open.set(1.0 if breaker_state == OPEN else 0.0)
        self.metrics.shed_level.set(shed)
        from ..sketch import _native

        health: dict = {
            "live": not self._drained,
            "ready": ready,
            "draining": self.draining,
            "breaker": breaker_state,
            "shed_level": shed,
            "queue_depth": self._queue.depth,
            "index_generation": self._view.generation,
            # whether the fused/native map path is actually in effect, its
            # thread count, and the load failure when it is not
            "native": _native.availability(),
        }
        if self._pool is not None:
            health["pool"] = {
                "healthy": pool_healthy,
                "workers": self._pool.worker_pids,
                "rebuilds": self._pool.rebuilds,
            }
        return health

    def _watchdog_tick(self) -> None:
        sweep_orphan_segments()
        if self._pool is not None and self._pool.ensure():
            self.metrics.pool_rebuilds_total.inc()
        limit = self.config.compact_segments
        if limit:
            table = self._mapper.table
            if (
                isinstance(table, MutableSketchStore)
                and not table.current.is_clean
                and len(table.current.segments) >= limit
            ):
                self.compact_index()
        self.healthz()  # refresh the readiness gauge

    def _note_breaker(self, event: str | None) -> None:
        if event == "opened":
            self.metrics.breaker_open_total.inc()
            self.metrics.breaker_open.set(1.0)
            self.metrics.ready.set(0.0)
        elif event == "recovered":
            self.metrics.recovered_total.inc()
            self.metrics.breaker_open.set(0.0)
            self.metrics.ready.set(1.0)

    # -- request path --------------------------------------------------------

    def _retry_after(self, depth: int) -> float:
        """Retry hint for a rejection observed at queue ``depth``.

        Called by the admission queue *under its lock* with the exact
        depth at the moment of rejection, and reads the EWMA under its
        own lock — safe for any number of concurrent producers (the
        network front-end submits from many connections at once).
        """
        with self._ewma_lock:
            ewma = self._ewma_read_seconds
        return max((depth + 1) * ewma, 1e-3)

    def submit(
        self,
        name: str,
        sequence: str | np.ndarray,
        *,
        deadline_s: float | None = None,
    ) -> MapFuture:
        """Admit one read; returns a future resolving to a :class:`ReadMapping`.

        ``deadline_s`` (seconds from now) propagates into S4 dispatch: a
        request whose deadline expires while still queued is *shed* — its
        future fails with :class:`~repro.errors.DeadlineExceededError`
        before any mapping work is spent on it.

        Raises :class:`~repro.errors.ServiceOverloadError` (with a
        ``retry_after`` hint) when the admission queue is full and
        :class:`~repro.errors.ServiceClosedError` once draining started.
        """
        if isinstance(sequence, str):
            codes = encode(sequence)
        elif isinstance(sequence, np.ndarray):
            codes = np.ascontiguousarray(sequence, dtype=np.uint8)
        else:
            # protocol hygiene: a JSON number/list/object in "seq" must be
            # a typed refusal, not a silently coerced one-byte read
            raise SequenceError(
                f"read {name!r} payload must be a string of bases or a "
                f"code array, got {type(sequence).__name__}"
            )
        if codes.ndim != 1:
            raise SequenceError(
                f"read {name!r} payload must be one flat sequence, "
                f"got a {codes.ndim}-d array"
            )
        if codes.size == 0:
            raise SequenceError(f"read {name!r} is empty")
        if deadline_s is not None and deadline_s <= 0:
            raise ServiceError(f"deadline_s must be > 0, got {deadline_s}")
        ell = self.jem_config.ell
        n = codes.size
        key = read_content_key(codes[: min(ell, n)], codes[max(0, n - ell):])
        request = _MapRequest(name, codes, key, deadline_s)
        try:
            depth = self._queue.put(request, retry_after=self._retry_after)
        except ServiceOverloadError:
            self.metrics.rejected_total.inc()
            raise
        self.metrics.requests_total.inc()
        self.metrics.inflight.add(1)
        self.metrics.queue_depth.set(depth)
        return request.future

    def map_reads(
        self, reads: SequenceSet, *, timeout: float | None = None
    ) -> MappingResult:
        """Blocking convenience: stream a whole set through the service.

        Backpressure is honoured by sleeping out ``retry_after`` and
        resubmitting.  The returned :class:`MappingResult` has exactly the
        layout of :meth:`JEMMapper.map_reads` (prefix then suffix per
        read, reads in order) so callers can compare bit for bit.
        """
        futures: list[MapFuture] = []
        for i in range(len(reads)):
            while True:
                try:
                    futures.append(self.submit(reads.names[i], reads.codes_of(i)))
                    break
                except ServiceOverloadError as exc:
                    time.sleep(exc.retry_after)
        names: list[str] = []
        infos: list[SegmentInfo] = []
        subjects = np.empty(2 * len(reads), dtype=np.int64)
        hit_counts = np.empty(2 * len(reads), dtype=np.int64)
        for i, future in enumerate(futures):
            mapping = future.result(timeout)
            names.extend(mapping.segment_names)
            infos.append(SegmentInfo(read_index=i, kind=PREFIX))
            infos.append(SegmentInfo(read_index=i, kind=SUFFIX))
            subjects[2 * i], subjects[2 * i + 1] = mapping.subject
            hit_counts[2 * i], hit_counts[2 * i + 1] = mapping.hit_count
        return MappingResult(
            segment_names=names, subject=subjects, hit_count=hit_counts, infos=infos
        )

    # -- batch execution (scheduler thread) ----------------------------------

    def _resolve(
        self,
        request: _MapRequest,
        entry: SketchCacheEntry,
        view: _IndexView,
        *,
        cached: bool,
        degraded: bool = False,
    ) -> None:
        mapping = ReadMapping(
            name=request.name,
            subject=(entry.prefix_subject, entry.suffix_subject),
            hit_count=(entry.prefix_hits, entry.suffix_hits),
            subject_names=(
                view.label(entry.prefix_subject),
                view.label(entry.suffix_subject),
            ),
            cached=cached,
            degraded=degraded,
        )
        request.future.set_result(mapping)
        now = time.perf_counter()
        self.metrics.responses_total.inc()
        self.metrics.reads_mapped_total.inc()
        self.metrics.request_latency.observe(now - request.t_submit)
        self.metrics.inflight.add(-1)

    def _fail(self, request: _MapRequest, exc: BaseException) -> None:
        request.future.set_exception(exc)
        self.metrics.errors_total.inc()
        self.metrics.inflight.add(-1)

    def _fail_batch(self, batch, exc: BaseException) -> None:
        """Scheduler error hook: fail whatever the batch left unresolved."""
        self._note_breaker(self._breaker.record_failure())
        for request in batch:
            if not request.future.done():
                self._fail(request, exc)

    def _shed(self, request: _MapRequest, now: float) -> None:
        """Fail an expired request before spending mapping work on it."""
        elapsed = now - request.t_submit
        request.future.set_exception(
            DeadlineExceededError(
                f"read {request.name!r} shed: deadline expired after "
                f"{elapsed:.3f}s in queue",
                elapsed=elapsed,
            )
        )
        self.metrics.shed_total.inc()
        self.metrics.inflight.add(-1)

    def _entries_from_result(
        self, result: MappingResult, count: int, base: int = 0
    ) -> list[SketchCacheEntry]:
        """Per-read cache entries from a 2-segments-per-read mapping block."""
        return [
            SketchCacheEntry(
                prefix_subject=int(result.subject[2 * j]),
                prefix_hits=int(result.hit_count[2 * j]),
                suffix_subject=int(result.subject[2 * j + 1]),
                suffix_hits=int(result.hit_count[2 * j + 1]),
            )
            for j in range(base, base + count)
        ]

    def _reads_of(self, requests: list[_MapRequest]) -> SequenceSet:
        builder = SequenceSetBuilder()
        for request in requests:
            builder.add(request.name, request.codes)
        return builder.build()

    @property
    def shed_level(self) -> int:
        """Current degraded-path shedding step (0 = full trial budget)."""
        return self._breaker.shed_level

    def degraded_trials(self) -> int:
        """How many sketch trials the degraded path would use right now.

        The stepwise ladder from ROADMAP item 5: shed level *s* keeps the
        first ``max(1, trials >> s)`` trials, so sustained failure walks
        T → T/2 → … → 1 and each recovery walks one step back up.
        """
        return max(1, self.jem_config.trials >> self._breaker.shed_level)

    def _map_degraded(
        self, requests: list[_MapRequest], view: _IndexView
    ) -> list[tuple[SketchCacheEntry | None, str | None]]:
        """Best-effort reduced-trial mapping — the open-breaker fallback.

        Uses the first :meth:`degraded_trials` trials of the batch's index
        view with the matching slice of the hash family (slicing, never
        regenerating, so the trials are the same ones the full mapping
        uses).  ``min_hits`` scales with the kept fraction (floored at 1:
        with few trials a subject collects few hits, so the configured
        multi-trial threshold would unmap everything).  Needs no parallel
        dispatch and no retry machinery, which is the point: it cannot be
        taken down by the worker failures that opened the breaker.
        Results are never cached — they are lower-sensitivity answers.
        """
        reads = self._reads_of(requests)
        cfg = self.jem_config
        t_eff = self.degraded_trials()
        degraded = self._degraded_view
        if degraded is None or degraded[0] != (view.generation, t_eff):
            degraded = (
                (view.generation, t_eff),
                SketchTable(
                    [np.asarray(view.table.trial_keys(t)) for t in range(t_eff)],
                    view.table.n_subjects,
                ),
                self._family.trial_slice(0, t_eff),
            )
            self._degraded_view = degraded
        _, table, family = degraded
        min_hits = max(1, (cfg.min_hits * t_eff) // cfg.trials)
        segments, _ = extract_end_segments(reads, cfg.ell)
        sketches = query_sketch_values(segments, cfg.k, cfg.w, family)
        hits = count_hits_vectorised(
            table, sketches.values, min_hits=min_hits, query_mask=sketches.has
        )
        result = MappingResult.from_best_hits(segments.names, hits)
        return [(e, None) for e in self._entries_from_result(result, len(requests))]

    def _map_misses(
        self, requests: list[_MapRequest], view: _IndexView
    ) -> list[tuple[SketchCacheEntry | None, str | None]]:
        """Map uncached reads; one (entry, failure-cause) pair per request.

        With ``processes == 1`` and no fault plan the batch is mapped
        inline (exactly :meth:`JEMMapper.map_segments`); otherwise it is
        partitioned and dispatched through the parallel driver's
        fault-tolerant S4 stage, inheriting retry, re-dispatch, and the
        strict/no-strict degradation contract.
        """
        reads = self._reads_of(requests)
        cfg = self.jem_config
        if self.config.processes == 1 and self._faults is None:
            segments, _ = extract_end_segments(reads, cfg.ell)
            # fused native when the view's store is columnar (or a clean
            # single-segment generation, which delegates to its segment)
            result = map_segment_batch(view.table, segments, cfg, self._family)
            return [(e, None) for e in self._entries_from_result(result, len(requests))]
        p = max(1, min(self.config.processes, len(reads)))
        read_parts = partition_set(reads, p)
        bounds = partition_bounds(reads.offsets, p)
        outcome = map_partitioned_queries(
            view.table, read_parts, cfg, self._family,
            faults=self._faults, retry=self._retry,
        )
        # strict mode raises here -> the scheduler's error hook fails the batch
        resolve_partial(outcome.failed_blocks, read_parts, strict=self.config.strict)
        out: list[tuple[SketchCacheEntry | None, str | None]] = []
        for b in range(p):
            start, stop = int(bounds[b]), int(bounds[b + 1])
            block = outcome.rank_results[b]
            if block is None:
                cause = outcome.failed_blocks.get(b, "unknown fault")
                out.extend((None, cause) for _ in range(stop - start))
            else:
                out.extend(
                    (e, None)
                    for e in self._entries_from_result(block, stop - start)
                )
        return out

    def _process_batch(self, batch: list[_MapRequest]) -> None:
        t0 = time.perf_counter()
        # deadline propagation: shed expired work before dispatching any of it
        live: list[_MapRequest] = []
        for request in batch:
            if request.deadline is not None and t0 > request.deadline:
                self._shed(request, t0)
            else:
                live.append(request)
        batch = live
        self.metrics.queue_depth.set(self._queue.depth)
        if not batch:
            return
        self.metrics.batch_size.observe(len(batch))
        for request in batch:
            self.metrics.queue_wait.observe(t0 - request.t_submit)
        # the whole batch runs against one index generation, captured here:
        # lookups, labels, and cache traffic all go through this view, so a
        # concurrent mutation never mixes generations within a response
        view = self._view
        hits: list[tuple[_MapRequest, SketchCacheEntry]] = []
        misses: list[_MapRequest] = []
        for request in batch:
            entry = self.cache.get(view.prefix + request.key)
            if entry is not None:
                self.metrics.cache_hits_total.inc()
                hits.append((request, entry))
            else:
                self.metrics.cache_misses_total.inc()
                misses.append(request)
        mapped: list[tuple[SketchCacheEntry | None, str | None]] = []
        degraded = False
        if misses:
            if self._breaker.decide() == "degraded":
                degraded = True
                mapped = self._map_degraded(misses, view)
                self.metrics.degraded_total.inc(len(misses))
            else:
                # a strict-mode failure propagates to _fail_batch, which
                # records the breaker failure for this batch
                mapped = self._map_misses(misses, view)
                if any(entry is None for entry, _ in mapped):
                    self._note_breaker(self._breaker.record_failure())
                else:
                    self._note_breaker(self._breaker.record_success())
                for request, (entry, _cause) in zip(misses, mapped):
                    if entry is not None:
                        self.cache.put(view.prefix + request.key, entry)
        self.metrics.map_latency.observe(time.perf_counter() - t0)
        for request, entry in hits:
            self._resolve(request, entry, view, cached=True)
        for request, (entry, cause) in zip(misses, mapped):
            if entry is None:
                self._fail(
                    request,
                    ServiceError(f"read {request.name!r} lost to faults: {cause}"),
                )
            else:
                self._resolve(request, entry, view, cached=False, degraded=degraded)
        self.metrics.batches_total.inc()
        self.metrics.cache_size.set(len(self.cache))
        elapsed = time.perf_counter() - t0
        alpha = 0.3
        per_read = elapsed / len(batch)
        with self._ewma_lock:
            self._ewma_read_seconds += alpha * (per_read - self._ewma_read_seconds)
