"""Data simulation substrate: genomes, HiFi long reads, Illumina short reads."""

from .errors_model import HIFI_ERRORS, ErrorModel, apply_errors
from .genome import GenomeProfile, simulate_genome
from .hifi import HiFiProfile, simulate_hifi_reads
from .illumina import IlluminaProfile, simulate_short_reads

__all__ = [
    "ErrorModel",
    "HIFI_ERRORS",
    "apply_errors",
    "GenomeProfile",
    "simulate_genome",
    "HiFiProfile",
    "simulate_hifi_reads",
    "IlluminaProfile",
    "simulate_short_reads",
]
