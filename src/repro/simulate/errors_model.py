"""Sequencing error models, vectorised.

Two regimes matter for the paper:

* HiFi long reads — 99.9 % accuracy, i.e. ~0.1 % errors, mixed
  substitutions and small indels;
* Illumina short reads — ~1 % errors, almost entirely substitutions.

:func:`apply_errors` draws one event per base (match / substitution /
insertion / deletion) in a single pass and rebuilds the read without a
Python per-base loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError

__all__ = ["ErrorModel", "HIFI_ERRORS", "apply_errors"]


@dataclass(frozen=True)
class ErrorModel:
    """Per-base event probabilities."""

    substitution: float = 0.0
    insertion: float = 0.0
    deletion: float = 0.0

    def __post_init__(self) -> None:
        total = self.substitution + self.insertion + self.deletion
        if min(self.substitution, self.insertion, self.deletion) < 0 or total >= 1.0:
            raise DatasetError(f"invalid error rates (sum {total})")

    @property
    def total(self) -> float:
        return self.substitution + self.insertion + self.deletion

    @property
    def accuracy(self) -> float:
        return 1.0 - self.total


#: PacBio HiFi: 99.9 % accuracy (Section I of the paper).
HIFI_ERRORS = ErrorModel(substitution=0.0006, insertion=0.0002, deletion=0.0002)


def apply_errors(
    codes: np.ndarray, model: ErrorModel, rng: np.random.Generator
) -> np.ndarray:
    """Return a mutated copy of ``codes`` under the error model.

    Substitutions replace a base with one of the three others (uniform);
    insertions add one random base after the position; deletions drop the
    base.  Event draws are independent per base.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    n = codes.size
    if n == 0 or model.total == 0.0:
        return codes.copy()
    u = rng.random(n)
    sub_mask = u < model.substitution
    ins_mask = (u >= model.substitution) & (u < model.substitution + model.insertion)
    del_mask = (u >= model.substitution + model.insertion) & (u < model.total)

    out = codes.copy()
    n_sub = int(sub_mask.sum())
    if n_sub:
        # add 1..3 mod 4: always a *different* base
        out[sub_mask] = (out[sub_mask] + rng.integers(1, 4, size=n_sub, dtype=np.uint8)) % 4

    if not ins_mask.any() and not del_mask.any():
        return out

    # Rebuild with indels: each kept base contributes 1 output position,
    # each insertion contributes 1 extra.
    keep = ~del_mask
    contrib = keep.astype(np.int64) + ins_mask.astype(np.int64)
    total = int(contrib.sum())
    result = np.empty(total, dtype=np.uint8)
    ends = np.cumsum(contrib)
    starts = ends - contrib
    # kept original bases land at their start offsets
    result[starts[keep]] = out[keep]
    # inserted random bases land right after the (kept or not) source base
    ins_positions = ends[ins_mask] - 1
    result[ins_positions] = rng.integers(0, 4, size=int(ins_mask.sum()), dtype=np.uint8)
    return result
