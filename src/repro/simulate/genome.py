"""Synthetic genome generator (substitute for the paper's NCBI genomes).

The mapper's quality behaviour is driven by two genome properties the paper
calls out: size and **repeat content** ("eukaryotic inputs have more
repetitive content that may lead to reduced precision", Section IV-C).  The
generator therefore exposes both: a base random genome plus a controllable
fraction of duplicated segments re-inserted elsewhere (with light mutation,
as real repeats diverge).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError
from ..seq.encode import random_codes

__all__ = ["GenomeProfile", "simulate_genome"]


@dataclass(frozen=True)
class GenomeProfile:
    """Parameters controlling genome synthesis.

    Attributes
    ----------
    length:
        Genome length in bp.
    gc_content:
        Fraction of g/c bases in the random background.
    repeat_fraction:
        Fraction of the genome covered by copied (repeated) segments.
    repeat_length:
        Mean length of one repeated segment.
    repeat_divergence:
        Per-base substitution probability applied to each repeat copy —
        0 gives exact repeats (hardest case), ~0.05 gives diverged families.
    """

    length: int
    gc_content: float = 0.5
    repeat_fraction: float = 0.0
    repeat_length: int = 2_000
    repeat_divergence: float = 0.02

    def __post_init__(self) -> None:
        if self.length < 1:
            raise DatasetError(f"genome length must be >= 1, got {self.length}")
        if not 0.0 < self.gc_content < 1.0:
            raise DatasetError(f"gc_content must be in (0, 1), got {self.gc_content}")
        if not 0.0 <= self.repeat_fraction < 1.0:
            raise DatasetError("repeat_fraction must be in [0, 1)")
        if self.repeat_length < 1:
            raise DatasetError("repeat_length must be >= 1")
        if not 0.0 <= self.repeat_divergence < 1.0:
            raise DatasetError("repeat_divergence must be in [0, 1)")


def _random_background(profile: GenomeProfile, rng: np.random.Generator) -> np.ndarray:
    gc = profile.gc_content
    probs = np.array([(1 - gc) / 2, gc / 2, gc / 2, (1 - gc) / 2])
    return rng.choice(4, size=profile.length, p=probs).astype(np.uint8)


def simulate_genome(
    profile: GenomeProfile, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Generate a genome code array from a profile.

    Repeats are created by copying source segments to random destinations,
    optionally reverse-complemented (half the time) and lightly mutated, so
    repeat families look like real transposon insertions rather than exact
    tandem copies.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    genome = _random_background(profile, rng)
    if profile.repeat_fraction <= 0.0 or profile.length < 2 * profile.repeat_length:
        return genome
    target_bases = int(profile.repeat_fraction * profile.length)
    copied = 0
    while copied < target_bases:
        seg_len = max(
            200, int(rng.normal(profile.repeat_length, profile.repeat_length / 4))
        )
        seg_len = min(seg_len, profile.length // 2)
        src = int(rng.integers(0, profile.length - seg_len))
        dst = int(rng.integers(0, profile.length - seg_len))
        segment = genome[src : src + seg_len].copy()
        if rng.random() < 0.5:
            segment = (3 - segment)[::-1]  # reverse complement copy
        if profile.repeat_divergence > 0:
            flip = rng.random(seg_len) < profile.repeat_divergence
            segment[flip] = (segment[flip] + rng.integers(1, 4, size=int(flip.sum()))) % 4
        genome[dst : dst + seg_len] = segment
        copied += seg_len
    return genome
