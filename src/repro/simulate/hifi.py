"""PacBio HiFi long-read simulator (substitute for Sim-it, ref [26]).

Matches the paper's read regime: median length ~10 kbp with a spread
(Table I shows 10,205 ± 3,418 bp), 99.9 % accuracy, reads drawn uniformly
from the genome on both strands at a configurable coverage (the paper uses
a low 10x).  Every read carries its ground-truth reference interval and
strand in the record meta — the information the evaluation benchmark needs
(Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError
from ..seq.records import SequenceSet, SequenceSetBuilder
from .errors_model import HIFI_ERRORS, ErrorModel, apply_errors

__all__ = ["HiFiProfile", "simulate_hifi_reads"]


@dataclass(frozen=True)
class HiFiProfile:
    """Long-read simulation parameters.

    ``median_length``/``length_sigma`` parameterise a log-normal length
    distribution (median exp(mu)); lengths are clipped to
    ``[min_length, genome length]``.
    """

    coverage: float = 10.0
    median_length: int = 10_000
    length_sigma: float = 0.33
    min_length: int = 1_000
    errors: ErrorModel = HIFI_ERRORS
    both_strands: bool = True

    def __post_init__(self) -> None:
        if self.coverage <= 0:
            raise DatasetError(f"coverage must be > 0, got {self.coverage}")
        if self.median_length < self.min_length:
            raise DatasetError("median_length must be >= min_length")
        if self.length_sigma < 0:
            raise DatasetError("length_sigma must be >= 0")


def simulate_hifi_reads(
    genome: np.ndarray,
    profile: HiFiProfile | None = None,
    rng: np.random.Generator | int | None = None,
    *,
    name_prefix: str = "hifi",
) -> SequenceSet:
    """Sample HiFi reads from a genome until the target coverage is reached.

    Each record's meta holds ``ref_start``, ``ref_end`` (the error-free
    source interval, half-open) and ``ref_strand`` (+1 forward, -1 reverse);
    the stored sequence is the (possibly reverse-complemented) source with
    sequencing errors applied.
    """
    profile = profile if profile is not None else HiFiProfile()
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    genome = np.asarray(genome, dtype=np.uint8)
    glen = genome.size
    if glen < profile.min_length:
        raise DatasetError(
            f"genome ({glen} bp) shorter than min read length {profile.min_length}"
        )
    target_bases = profile.coverage * glen
    builder = SequenceSetBuilder()
    sampled = 0
    idx = 0
    mu = np.log(profile.median_length)
    while sampled < target_bases:
        length = int(np.exp(rng.normal(mu, profile.length_sigma)))
        length = max(profile.min_length, min(length, glen))
        start = int(rng.integers(0, glen - length + 1))
        source = genome[start : start + length]
        strand = 1
        if profile.both_strands and rng.random() < 0.5:
            strand = -1
            source = (3 - source)[::-1]
        read = apply_errors(source, profile.errors, rng)
        builder.add(
            f"{name_prefix}_{idx:07d}",
            read,
            {"ref_start": start, "ref_end": start + length, "ref_strand": strand},
        )
        sampled += length
        idx += 1
    return builder.build()
