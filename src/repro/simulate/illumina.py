"""Illumina short-read simulator (substitute for ART, ref [29]).

The paper generates 100 bp Illumina reads with ART and assembles them with
Minia; only the contigs matter downstream, so single-end reads with a ~1 %
substitution error profile are sufficient to exercise the same assembler
code path.  Illumina errors are overwhelmingly substitutions, which keeps
every read exactly ``read_length`` bp and lets the whole batch be simulated
as one (n_reads, read_length) matrix — start sampling, strand flips,
reverse-complementing and substitutions are all single numpy expressions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError
from ..seq.records import SequenceSet

__all__ = ["IlluminaProfile", "simulate_short_reads"]


@dataclass(frozen=True)
class IlluminaProfile:
    """Short-read simulation parameters (paper: 100 bp reads, ~1 % error)."""

    coverage: float = 30.0
    read_length: int = 100
    substitution_rate: float = 0.01
    both_strands: bool = True

    def __post_init__(self) -> None:
        if self.coverage <= 0:
            raise DatasetError(f"coverage must be > 0, got {self.coverage}")
        if self.read_length < 1:
            raise DatasetError(f"read_length must be >= 1, got {self.read_length}")
        if not 0.0 <= self.substitution_rate < 1.0:
            raise DatasetError("substitution_rate must be in [0, 1)")


def simulate_short_reads(
    genome: np.ndarray,
    profile: IlluminaProfile | None = None,
    rng: np.random.Generator | int | None = None,
    *,
    name_prefix: str = "sr",
) -> SequenceSet:
    """Sample short reads uniformly at the requested coverage (vectorised)."""
    profile = profile if profile is not None else IlluminaProfile()
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    genome = np.asarray(genome, dtype=np.uint8)
    glen = genome.size
    length = profile.read_length
    if glen < length:
        raise DatasetError(f"genome ({glen} bp) shorter than read length {length}")
    n_reads = int(np.ceil(profile.coverage * glen / length))
    starts = rng.integers(0, glen - length + 1, size=n_reads)
    reads = genome[starts[:, None] + np.arange(length)]
    if profile.both_strands:
        flip = rng.random(n_reads) < 0.5
        reads[flip] = (3 - reads[flip])[:, ::-1]
    if profile.substitution_rate > 0.0:
        err = rng.random(reads.shape) < profile.substitution_rate
        n_err = int(err.sum())
        reads[err] = (reads[err] + rng.integers(1, 4, size=n_err, dtype=np.uint8)) % 4
    offsets = np.arange(n_reads + 1, dtype=np.int64) * length
    names = [f"{name_prefix}_{i:08d}" for i in range(n_reads)]
    return SequenceSet(reads.reshape(-1), offsets, names)
