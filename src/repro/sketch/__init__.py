"""Sketching substrate: k-mers, hash families, minimizers, MinHash, JEM."""

from .diagnostics import SketchStats, observed_minimizer_density, table_stats
from .hashing import HashFamily, is_prime_u64
from .jem import (
    QuerySketches,
    jem_sketch_single,
    pack_key,
    query_kernel,
    query_kernel_reference,
    query_sketch_values,
    query_sketch_values_reference,
    subject_kernel,
    subject_kernel_reference,
    subject_sketch_pairs,
    subject_sketch_pairs_reference,
    unpack_keys,
)
from .kernels import (
    MAX_BATCH_ELEMS,
    key_scratch,
    pack_keys_batched,
    sorted_unique_rows,
    trial_chunks,
)
from .kmers import (
    MAX_K,
    canonical_kmer_ranks,
    kmer_ranks,
    rank_to_string,
    revcomp_rank,
    string_to_rank,
    valid_kmer_mask,
)
from .minhash import jaccard, minhash_jaccard_estimate, minhash_sketch, minhash_sketch_set
from .minimizers import MinimizerList, minimizer_density, minimizers, minimizers_set
from .rmq import SparseTableRMQ, SparseTableRMQ2D, range_argmin, range_min
from .windowmin import sliding_window_argmin, sliding_window_min

__all__ = [
    "SketchStats",
    "observed_minimizer_density",
    "table_stats",
    "HashFamily",
    "is_prime_u64",
    "QuerySketches",
    "jem_sketch_single",
    "pack_key",
    "unpack_keys",
    "query_kernel",
    "query_kernel_reference",
    "query_sketch_values",
    "query_sketch_values_reference",
    "subject_kernel",
    "subject_kernel_reference",
    "subject_sketch_pairs",
    "subject_sketch_pairs_reference",
    "MAX_BATCH_ELEMS",
    "key_scratch",
    "pack_keys_batched",
    "sorted_unique_rows",
    "trial_chunks",
    "MAX_K",
    "kmer_ranks",
    "canonical_kmer_ranks",
    "valid_kmer_mask",
    "rank_to_string",
    "string_to_rank",
    "revcomp_rank",
    "minhash_sketch",
    "minhash_sketch_set",
    "jaccard",
    "minhash_jaccard_estimate",
    "MinimizerList",
    "minimizers",
    "minimizers_set",
    "minimizer_density",
    "SparseTableRMQ",
    "SparseTableRMQ2D",
    "range_min",
    "range_argmin",
    "sliding_window_min",
    "sliding_window_argmin",
]
