"""Optional compiled fast path for the batched sketch kernels.

The numpy kernels in :mod:`repro.sketch.jem` are dispatch-efficient but
bound by 64-bit hardware division: every trial pays two ``uint64`` modulos
per minimizer, and numpy cannot fuse the hash, the packed-key min and the
interval reduction into one pass.  This module compiles (with the system C
compiler, once per machine, cached by source hash) two tiny kernels that
do exactly that:

* ``jem_query_kernel`` — per trial, one sequential sweep hashing each
  minimizer with a Barrett-reduced LCG and tracking the packed
  ``(hash << 32) | index`` minimum per segment;
* ``jem_subject_kernel`` — per trial, the same Barrett hash plus an O(n)
  monotone-deque sliding-window minimum over the ℓ-interval ends
  (replacing the O(n log n) sparse table), emitting the packed
  ``(value << 32) | subject`` key row ready for the batched dedupe.

Both are **bit-identical** to the numpy kernels and the per-trial
reference paths: Barrett reduction computes the exact ``x mod p`` (one
conditional subtract corrects the floor estimate), and tie-breaking uses
the same packed keys.  The test suite asserts the equivalence.

Availability is strictly optional: if no compiler is present, compilation
fails, or ``REPRO_NO_NATIVE`` is set in the environment, :func:`load`
returns ``None`` and callers stay on the numpy path.  The compiled library
is cached under ``<repo>/.native_cache`` (override with
``REPRO_NATIVE_CACHE``; falls back to a temp dir when unwritable).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
from pathlib import Path

import numpy as np

__all__ = ["load", "NativeKernels"]

_SOURCE = r"""
#include <stdint.h>

typedef unsigned __int128 u128;

/* Exact x mod p for p in [2, 2^63) via Barrett reduction: with
   m = floor(2^64 / p) the estimate q = (x * m) >> 64 is either the true
   quotient or one less, so a single conditional subtract corrects r. */
static inline uint64_t barrett_mod(uint64_t x, uint64_t p, uint64_t m) {
    uint64_t q = (uint64_t)(((u128)x * m) >> 64);
    uint64_t r = x - q * p;
    if (r >= p) r -= p;
    return r;
}

/* h_t(x) = (a * (x mod p) + b) mod p — the product stays below 2^62
   because a < p < 2^31 and (x mod p) < p < 2^31. */
static inline uint64_t lcg_hash(uint64_t x, uint64_t a, uint64_t b,
                                uint64_t p, uint64_t m) {
    return barrett_mod(a * barrett_mod(x, p, m) + b, p, m);
}

/* S4: per trial and per segment [starts[j], starts[j+1]), the minimizer
   value minimising (hash << 32) | index.  out is (trials, nseg). */
void jem_query_kernel(const uint64_t *values, int64_t n,
                      const int64_t *starts, int64_t nseg,
                      const uint64_t *a, const uint64_t *b,
                      const uint64_t *p, int64_t trials,
                      uint64_t *out) {
    for (int64_t t = 0; t < trials; t++) {
        const uint64_t at = a[t], bt = b[t], pt = p[t];
        const uint64_t mt = (uint64_t)((((u128)1) << 64) / pt);
        uint64_t *row = out + t * nseg;
        for (int64_t j = 0; j < nseg; j++) {
            const int64_t lo = starts[j];
            const int64_t hi = (j + 1 < nseg) ? starts[j + 1] : n;
            uint64_t best = UINT64_MAX;
            for (int64_t i = lo; i < hi; i++) {
                uint64_t key = (lcg_hash(values[i], at, bt, pt, mt) << 32)
                               | (uint64_t)i;
                if (key < best) best = key;
            }
            row[j] = values[best & 0xffffffffu];
        }
    }
}

/* S2: per trial, a monotone-deque sliding minimum of the packed keys
   (hash << 32) | index over the half-open index intervals [i, ends[i])
   (ends is non-decreasing and ends[i] > i).  Hashing is fused into the
   deque push — every element is pushed exactly once — and the deque
   stores the packed keys themselves, so the hot compare loop has no
   indirection.  Emits the packed sketch key
   (values[argmin] << 32) | subject_ids[i] into out (trials, n) — one row
   per trial, ready for the batched row dedupe.  deque_scratch must hold
   n entries. */
void jem_subject_kernel(const uint64_t *values, const int64_t *ends,
                        int64_t n, const uint64_t *subject_ids,
                        const uint64_t *a, const uint64_t *b,
                        const uint64_t *p, int64_t trials,
                        uint64_t *deque_scratch, uint64_t *out) {
    for (int64_t t = 0; t < trials; t++) {
        const uint64_t at = a[t], bt = b[t], pt = p[t];
        const uint64_t mt = (uint64_t)((((u128)1) << 64) / pt);
        uint64_t *row = out + t * n;
        int64_t head = 0, tail = 0, r = 0;
        for (int64_t i = 0; i < n; i++) {
            while (r < ends[i]) {
                const uint64_t k = (lcg_hash(values[r], at, bt, pt, mt) << 32)
                                   | (uint64_t)r;
                while (tail > head && deque_scratch[tail - 1] > k)
                    tail--;
                deque_scratch[tail++] = k;
                r++;
            }
            while ((int64_t)(deque_scratch[head] & 0xffffffffu) < i)
                head++;
            const uint64_t win = deque_scratch[head];
            row[i] = (values[win & 0xffffffffu] << 32) | subject_ids[i];
        }
    }
}
"""

_lock = threading.Lock()
_lib: "NativeKernels | None" = None
_tried = False


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        path = Path(override)
        path.mkdir(parents=True, exist_ok=True)
        return path
    repo_root = Path(__file__).resolve().parents[3]
    candidate = repo_root / ".native_cache"
    try:
        candidate.mkdir(exist_ok=True)
        probe = candidate / f".probe-{os.getpid()}"
        probe.touch()
        probe.unlink()
        return candidate
    except OSError:
        fallback = Path(tempfile.gettempdir()) / "repro-native-cache"
        fallback.mkdir(parents=True, exist_ok=True)
        return fallback


def _compile() -> Path:
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = cache / f"jem_kernels_{digest}.so"
    if so_path.exists():
        return so_path
    c_path = cache / f"jem_kernels_{digest}.c"
    c_path.write_text(_SOURCE)
    tmp = cache / f".jem_kernels_{digest}.{os.getpid()}.so"
    compiler = os.environ.get("CC", "cc")
    subprocess.run(
        [compiler, "-O3", "-shared", "-fPIC", "-o", os.fspath(tmp), os.fspath(c_path)],
        check=True,
        capture_output=True,
        timeout=120,
    )
    os.replace(tmp, so_path)  # atomic: concurrent builders race benignly
    return so_path


class NativeKernels:
    """ctypes bindings over the compiled kernels (GIL released during calls)."""

    def __init__(self, dll: ctypes.CDLL) -> None:
        self._dll = dll
        u64p = ctypes.POINTER(ctypes.c_uint64)
        i64p = ctypes.POINTER(ctypes.c_int64)
        i64 = ctypes.c_int64
        dll.jem_query_kernel.argtypes = [u64p, i64, i64p, i64, u64p, u64p, u64p, i64, u64p]
        dll.jem_query_kernel.restype = None
        dll.jem_subject_kernel.argtypes = [
            u64p, i64p, i64, u64p, u64p, u64p, u64p, i64, u64p, u64p,
        ]
        dll.jem_subject_kernel.restype = None

    @staticmethod
    def _ptr(arr: np.ndarray, dtype, ctype):
        if arr.dtype != dtype or not arr.flags.c_contiguous:
            raise ValueError("native kernel inputs must be contiguous and typed")
        return arr.ctypes.data_as(ctypes.POINTER(ctype))

    def query_values(
        self, values: np.ndarray, starts: np.ndarray, family, out: np.ndarray
    ) -> np.ndarray:
        """Fill ``out[(T, nseg)]`` with per-segment sketch values (S4)."""
        u64, i64 = np.uint64, np.int64
        self._dll.jem_query_kernel(
            self._ptr(values, u64, ctypes.c_uint64),
            ctypes.c_int64(values.size),
            self._ptr(starts, i64, ctypes.c_int64),
            ctypes.c_int64(starts.size),
            self._ptr(family.a, u64, ctypes.c_uint64),
            self._ptr(family.b, u64, ctypes.c_uint64),
            self._ptr(family.p, u64, ctypes.c_uint64),
            ctypes.c_int64(family.size),
            self._ptr(out, u64, ctypes.c_uint64),
        )
        return out

    def subject_keys(
        self,
        values: np.ndarray,
        ends: np.ndarray,
        subject_ids: np.ndarray,
        family,
        out: np.ndarray,
    ) -> np.ndarray:
        """Fill ``out[(T, n)]`` with packed subject sketch key rows (S2)."""
        u64, i64 = np.uint64, np.int64
        deque_scratch = np.empty(values.size, dtype=u64)
        self._dll.jem_subject_kernel(
            self._ptr(values, u64, ctypes.c_uint64),
            self._ptr(ends, i64, ctypes.c_int64),
            ctypes.c_int64(values.size),
            self._ptr(subject_ids, u64, ctypes.c_uint64),
            self._ptr(family.a, u64, ctypes.c_uint64),
            self._ptr(family.b, u64, ctypes.c_uint64),
            self._ptr(family.p, u64, ctypes.c_uint64),
            ctypes.c_int64(family.size),
            self._ptr(deque_scratch, u64, ctypes.c_uint64),
            self._ptr(out, u64, ctypes.c_uint64),
        )
        return out


def load() -> NativeKernels | None:
    """The compiled kernels, or ``None`` when unavailable or disabled.

    ``REPRO_NO_NATIVE`` (any non-empty value) is honoured per call so tests
    can force the numpy path without reloading modules.  Compilation is
    attempted once per process; failures are remembered as "unavailable".
    """
    global _lib, _tried
    if os.environ.get("REPRO_NO_NATIVE"):
        return None
    if _tried:
        return _lib
    with _lock:
        if not _tried:
            try:
                _lib = NativeKernels(ctypes.CDLL(os.fspath(_compile())))
            except Exception:
                _lib = None
            _tried = True
    return _lib
