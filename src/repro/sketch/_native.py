"""Optional compiled fast path for the batched sketch kernels.

The numpy kernels in :mod:`repro.sketch.jem` are dispatch-efficient but
bound by 64-bit hardware division: every trial pays two ``uint64`` modulos
per minimizer, and numpy cannot fuse the hash, the packed-key min and the
interval reduction into one pass.  This module compiles (with the system C
compiler, once per machine, cached by source hash) two tiny kernels that
do exactly that:

* ``jem_query_kernel`` — per trial, one sequential sweep hashing each
  minimizer with a Barrett-reduced LCG and tracking the packed
  ``(hash << 32) | index`` minimum per segment;
* ``jem_subject_kernel`` — per trial, the same Barrett hash plus an O(n)
  monotone-deque sliding-window minimum over the ℓ-interval ends
  (replacing the O(n log n) sparse table), emitting the packed
  ``(value << 32) | subject`` key row ready for the batched dedupe;
* ``jem_map_kernel`` — the whole S4 query pipeline fused: per segment and
  per trial, sketch (Barrett hash + packed-key minimum), branchless binary
  search over the columnar store's sorted per-trial value columns, and the
  paper's lazy-update vote counter A[1..n] — one C pass from minimizer
  ranks to per-segment best hits, with an optional pthread loop over
  contiguous segment blocks (``REPRO_NATIVE_THREADS``).  Segments are
  independent, so the output is bit-identical for any thread count.

Both are **bit-identical** to the numpy kernels and the per-trial
reference paths: Barrett reduction computes the exact ``x mod p`` (one
conditional subtract corrects the floor estimate), and tie-breaking uses
the same packed keys.  The test suite asserts the equivalence.

Availability is strictly optional: if no compiler is present, compilation
fails, or ``REPRO_NO_NATIVE`` is set in the environment, :func:`load`
returns ``None`` and callers stay on the numpy path.  The compiled library
is cached under ``<repo>/.native_cache`` (override with
``REPRO_NATIVE_CACHE``; falls back to a temp dir when unwritable).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
import warnings
from pathlib import Path

import numpy as np

__all__ = ["load", "load_error", "thread_count", "availability", "NativeKernels"]

_SOURCE = r"""
#include <stdint.h>

typedef unsigned __int128 u128;

/* Exact x mod p for p in [2, 2^63) via Barrett reduction: with
   m = floor(2^64 / p) the estimate q = (x * m) >> 64 is either the true
   quotient or one less, so a single conditional subtract corrects r. */
static inline uint64_t barrett_mod(uint64_t x, uint64_t p, uint64_t m) {
    uint64_t q = (uint64_t)(((u128)x * m) >> 64);
    uint64_t r = x - q * p;
    if (r >= p) r -= p;
    return r;
}

/* h_t(x) = (a * (x mod p) + b) mod p — the product stays below 2^62
   because a < p < 2^31 and (x mod p) < p < 2^31. */
static inline uint64_t lcg_hash(uint64_t x, uint64_t a, uint64_t b,
                                uint64_t p, uint64_t m) {
    return barrett_mod(a * barrett_mod(x, p, m) + b, p, m);
}

/* S4: per trial and per segment [starts[j], starts[j+1]), the minimizer
   value minimising (hash << 32) | index.  out is (trials, nseg). */
void jem_query_kernel(const uint64_t *values, int64_t n,
                      const int64_t *starts, int64_t nseg,
                      const uint64_t *a, const uint64_t *b,
                      const uint64_t *p, int64_t trials,
                      uint64_t *out) {
    for (int64_t t = 0; t < trials; t++) {
        const uint64_t at = a[t], bt = b[t], pt = p[t];
        const uint64_t mt = (uint64_t)((((u128)1) << 64) / pt);
        uint64_t *row = out + t * nseg;
        for (int64_t j = 0; j < nseg; j++) {
            const int64_t lo = starts[j];
            const int64_t hi = (j + 1 < nseg) ? starts[j + 1] : n;
            uint64_t best = UINT64_MAX;
            for (int64_t i = lo; i < hi; i++) {
                uint64_t key = (lcg_hash(values[i], at, bt, pt, mt) << 32)
                               | (uint64_t)i;
                if (key < best) best = key;
            }
            row[j] = values[best & 0xffffffffu];
        }
    }
}

/* S2: per trial, a monotone-deque sliding minimum of the packed keys
   (hash << 32) | index over the half-open index intervals [i, ends[i])
   (ends is non-decreasing and ends[i] > i).  Hashing is fused into the
   deque push — every element is pushed exactly once — and the deque
   stores the packed keys themselves, so the hot compare loop has no
   indirection.  Emits the packed sketch key
   (values[argmin] << 32) | subject_ids[i] into out (trials, n) — one row
   per trial, ready for the batched row dedupe.  deque_scratch must hold
   n entries. */
void jem_subject_kernel(const uint64_t *values, const int64_t *ends,
                        int64_t n, const uint64_t *subject_ids,
                        const uint64_t *a, const uint64_t *b,
                        const uint64_t *p, int64_t trials,
                        uint64_t *deque_scratch, uint64_t *out) {
    for (int64_t t = 0; t < trials; t++) {
        const uint64_t at = a[t], bt = b[t], pt = p[t];
        const uint64_t mt = (uint64_t)((((u128)1) << 64) / pt);
        uint64_t *row = out + t * n;
        int64_t head = 0, tail = 0, r = 0;
        for (int64_t i = 0; i < n; i++) {
            while (r < ends[i]) {
                const uint64_t k = (lcg_hash(values[r], at, bt, pt, mt) << 32)
                                   | (uint64_t)r;
                while (tail > head && deque_scratch[tail - 1] > k)
                    tail--;
                deque_scratch[tail++] = k;
                r++;
            }
            while ((int64_t)(deque_scratch[head] & 0xffffffffu) < i)
                head++;
            const uint64_t win = deque_scratch[head];
            row[i] = (values[win & 0xffffffffu] << 32) | subject_ids[i];
        }
    }
}

/* ---- fused S4 map kernel: sketch -> lookup -> vote ---------------------- */

#include <pthread.h>
#include <stdlib.h>
#include <string.h>

/* Branchless lower bound over a sorted uint32 column: first index whose
   value is >= key.  The classic half-interval form — the conditional add
   compiles to a cmov, so the loop has no unpredictable branch. */
static inline int64_t lower_bound_u32(const uint32_t *arr, int64_t n,
                                      uint32_t key) {
    int64_t lo = 0;
    while (n > 1) {
        const int64_t half = n >> 1;
        if (arr[lo + half - 1] < key) lo += half;
        n -= half;
    }
    if (n == 1 && arr[lo] < key) lo++;
    return lo;
}

/* First index whose value is > key (upper bound). */
static inline int64_t upper_bound_u32(const uint32_t *arr, int64_t n,
                                      uint32_t key) {
    int64_t lo = 0;
    while (n > 1) {
        const int64_t half = n >> 1;
        if (arr[lo + half - 1] <= key) lo += half;
        n -= half;
    }
    if (n == 1 && arr[lo] <= key) lo++;
    return lo;
}

/* Segments per phase block: the (trials x MAP_BLOCK) sketch matrix stays
   L1/L2-resident, and the trial-outer sketch phase touches one hashed row
   at a time for a whole block of segments. */
#define MAP_BLOCK 128

/* One-Barrett LCG for 32-bit inputs: a * (x mod p) + b ≡ a * x + b
   (mod p), and with a < p < 2^31 and x < 2^32 the product a * x + b
   stays below 2^64, where the single-correction Barrett estimate is
   still exact — so this equals lcg_hash bit for bit at half the cost. */
static inline uint64_t lcg_hash32(uint64_t x, uint64_t a, uint64_t b,
                                  uint64_t p, uint64_t m) {
    return barrett_mod(a * x + b, p, m);
}

/* LSD radix sort of packed (value << 32) | index keys by the four value
   bytes; stable, so ties keep ascending-index order.  Returns whichever
   scratch holds the sorted data.  Passes where every key shares the same
   byte (common for narrow key spaces) are skipped. */
static uint64_t *radix_sort_packed(uint64_t *src, uint64_t *dst, int64_t n) {
    for (int pass = 0; pass < 4; pass++) {
        const int sh = 32 + pass * 8;
        int64_t count[256];
        memset(count, 0, sizeof(count));
        for (int64_t i = 0; i < n; i++) count[(src[i] >> sh) & 0xff]++;
        int uniform = 0;
        for (int b = 0; b < 256; b++)
            if (count[b] == n) { uniform = 1; break; }
        if (uniform) continue;
        int64_t offs[256];
        int64_t acc = 0;
        for (int b = 0; b < 256; b++) { offs[b] = acc; acc += count[b]; }
        for (int64_t i = 0; i < n; i++)
            dst[offs[(src[i] >> sh) & 0xff]++] = src[i];
        uint64_t *tmp = src; src = dst; dst = tmp;
    }
    return src;
}

/* Dedupe the query block: fill uniq with the sorted distinct values and
   inverse with each occurrence's slot in it.  Returns n_uniq, or -1 when
   any value overflows 32 bits (caller hashes inline instead). */
static int64_t dedupe_values(const uint64_t *qvalues, int64_t n,
                             uint64_t *uniq, int32_t *inverse,
                             uint64_t *scratch_a, uint64_t *scratch_b) {
    uint64_t seen = 0;
    for (int64_t i = 0; i < n; i++) {
        seen |= qvalues[i];
        scratch_a[i] = (qvalues[i] << 32) | (uint64_t)i;
    }
    if (seen >> 32) return -1;
    const uint64_t *sorted = radix_sort_packed(scratch_a, scratch_b, n);
    int64_t uid = -1;
    uint64_t prev = 0;
    for (int64_t k = 0; k < n; k++) {
        const uint64_t v = sorted[k] >> 32;
        if (uid < 0 || v != prev) { prev = v; uniq[++uid] = v; }
        inverse[sorted[k] & 0xffffffffu] = (int32_t)uid;
    }
    return uid + 1;
}

/* Per-trial 256-bucket index over the sorted value column: bucket
   b = value >> bucket_shift[t] of trial t covers rows [bk[b], bk[b+1])
   with bk = bucket_lo + t * 257.  The shift is sized to the column's max
   value so narrow key spaces (small k) still spread across buckets; a
   binary search then probes ~clen/256 entries instead of clen. */
static void build_bucket_index(const uint32_t *col_values,
                               const int64_t *col_offsets, int64_t trials,
                               int64_t *bucket_lo, int64_t *bucket_shift) {
    for (int64_t t = 0; t < trials; t++) {
        const int64_t base = col_offsets[t];
        const int64_t clen = col_offsets[t + 1] - base;
        const uint32_t *cv = col_values + base;
        int64_t *bk = bucket_lo + t * 257;
        int64_t shift = 0;
        if (clen > 0) {
            const uint32_t maxv = cv[clen - 1];
            while ((maxv >> shift) > 255) shift++;
        }
        bucket_shift[t] = shift;
        int64_t count[257];
        memset(count, 0, sizeof(count));
        for (int64_t i = 0; i < clen; i++) count[(cv[i] >> shift) + 1]++;
        bk[0] = 0;
        for (int b = 1; b <= 256; b++) bk[b] = bk[b - 1] + count[b];
    }
}

typedef struct {
    const uint64_t *qvalues;     /* concatenated minimizer ranks          */
    int64_t n;                   /* total minimizers                      */
    const int64_t *starts;       /* per-segment offsets into qvalues      */
    int64_t nseg;
    const uint64_t *a, *b, *p;   /* hash family rows                      */
    const uint64_t *m;           /* precomputed Barrett constants         */
    int64_t trials;
    const uint32_t *col_values;  /* flattened sorted value columns        */
    const uint32_t *col_subjects;/* flattened parallel contig-id columns  */
    const int64_t *col_offsets;  /* trials + 1 offsets into the flats     */
    int64_t n_subjects;
    int64_t min_hits;
    const uint32_t *hashed_uniq; /* (trials, n_uniq) precomputed hashes,  */
    const int32_t *inverse;      /* rank -> uniq row index; NULL = direct */
    int64_t n_uniq;
    const int64_t *bucket_lo;    /* (trials, 257) bucket run starts       */
    const int64_t *bucket_shift; /* per-trial bucket shift                */
    int64_t seg_lo, seg_hi;      /* this worker's block of segments       */
    int64_t *best_subject;       /* out: (nseg,)                          */
    int64_t *best_count;         /* out: (nseg,)                          */
    int rc;                      /* 0 ok, 1 allocation failure            */
} map_task;

/* Sketch phase over one block of segments, trial-outer: per trial, per
   segment, the minimizer minimising (hash << 32) | index — the same
   packed tie-break as jem_query_kernel.  With a dedupe table the hash is
   a gather from the trial's precomputed row (overlapping read segments
   repeat minimizer values heavily, so each distinct value is hashed once
   per trial instead of once per occurrence); without, it is computed
   inline.  An empty segment leaves UINT64_MAX (sketch values fit 32
   bits, so that can never collide with a real one). */
static void sketch_block(const map_task *task, int64_t blk_lo, int64_t blk_hi,
                         uint64_t *sketch) {
    for (int64_t t = 0; t < task->trials; t++) {
        uint64_t *row = sketch + t * MAP_BLOCK;
        if (task->inverse != NULL) {
            const uint32_t *hu = task->hashed_uniq + t * task->n_uniq;
            for (int64_t j = blk_lo; j < blk_hi; j++) {
                const int64_t lo = task->starts[j];
                const int64_t hi =
                    (j + 1 < task->nseg) ? task->starts[j + 1] : task->n;
                uint64_t best = UINT64_MAX;
                for (int64_t i = lo; i < hi; i++) {
                    const uint64_t key =
                        ((uint64_t)hu[task->inverse[i]] << 32) | (uint64_t)i;
                    if (key < best) best = key;
                }
                row[j - blk_lo] =
                    (hi > lo) ? task->qvalues[best & 0xffffffffu] : UINT64_MAX;
            }
        } else {
            const uint64_t at = task->a[t], bt = task->b[t];
            const uint64_t pt = task->p[t], mt = task->m[t];
            for (int64_t j = blk_lo; j < blk_hi; j++) {
                const int64_t lo = task->starts[j];
                const int64_t hi =
                    (j + 1 < task->nseg) ? task->starts[j + 1] : task->n;
                uint64_t best = UINT64_MAX;
                for (int64_t i = lo; i < hi; i++) {
                    const uint64_t key =
                        (lcg_hash(task->qvalues[i], at, bt, pt, mt) << 32)
                        | (uint64_t)i;
                    if (key < best) best = key;
                }
                row[j - blk_lo] =
                    (hi > lo) ? task->qvalues[best & 0xffffffffu] : UINT64_MAX;
            }
        }
    }
}

/* The paper's Algorithm 2 with the lazy-update counter array A[1..n]
   (Section III-C): counters are never cleared between queries — a stale
   entry is detected by its stored query id and re-seeded to (1, j).  Ties
   on the maximum count break toward the smallest subject id, matching
   count_hits_lazy / count_hits_vectorised bit for bit. */
static void map_segment_range(map_task *task) {
    const int64_t n_subjects = task->n_subjects;
    int64_t *counter_u = (int64_t *)malloc((size_t)n_subjects * sizeof(int64_t));
    int64_t *counter_v = (int64_t *)malloc((size_t)n_subjects * sizeof(int64_t));
    uint64_t *sketch =
        (uint64_t *)malloc((size_t)task->trials * MAP_BLOCK * sizeof(uint64_t));
    if (((counter_u == NULL || counter_v == NULL) && n_subjects > 0) ||
        sketch == NULL) {
        free(counter_u);
        free(counter_v);
        free(sketch);
        task->rc = 1;
        return;
    }
    /* all-ones bytes == -1 in two's complement: no query id matches */
    if (n_subjects > 0)
        memset(counter_v, 0xff, (size_t)n_subjects * sizeof(int64_t));
    for (int64_t blk_lo = task->seg_lo; blk_lo < task->seg_hi;
         blk_lo += MAP_BLOCK) {
        const int64_t blk_hi = (blk_lo + MAP_BLOCK < task->seg_hi)
                                   ? blk_lo + MAP_BLOCK
                                   : task->seg_hi;
        sketch_block(task, blk_lo, blk_hi, sketch);
        for (int64_t j = blk_lo; j < blk_hi; j++) {
            int64_t top_count = 0, top_subject = -1;
            for (int64_t t = 0; t < task->trials; t++) {
                const uint64_t sk = sketch[t * MAP_BLOCK + (j - blk_lo)];
                if (sk == UINT64_MAX) continue; /* empty segment */
                const uint32_t key = (uint32_t)sk;
                /* lookup: narrow to the key's bucket, then binary search
                   the run of matching entries in trial t's column */
                const int64_t base = task->col_offsets[t];
                if (task->col_offsets[t + 1] == base) continue;
                const uint32_t *cv = task->col_values + base;
                const uint64_t bidx = (uint64_t)key >> task->bucket_shift[t];
                if (bidx > 255) continue; /* above every stored value */
                const int64_t *bk = task->bucket_lo + t * 257;
                const int64_t blo = bk[bidx], bhi = bk[bidx + 1];
                if (blo == bhi) continue;
                const int64_t run_lo =
                    blo + lower_bound_u32(cv + blo, bhi - blo, key);
                if (run_lo >= bhi || cv[run_lo] != key) continue;
                const int64_t run_hi =
                    run_lo + upper_bound_u32(cv + run_lo, bhi - run_lo, key);
                const uint32_t *cs = task->col_subjects + base;
                /* vote: lazy-update counters over the colliding subjects */
                for (int64_t r = run_lo; r < run_hi; r++) {
                    const int64_t s = (int64_t)cs[r];
                    if (counter_v[s] != j) {
                        counter_v[s] = j;
                        counter_u[s] = 0;
                    }
                    const int64_t u = ++counter_u[s];
                    if (u > top_count || (u == top_count && s < top_subject)) {
                        top_count = u;
                        top_subject = s;
                    }
                }
            }
            if (top_count >= task->min_hits && top_count > 0) {
                task->best_subject[j] = top_subject;
                task->best_count[j] = top_count;
            } else {
                task->best_subject[j] = -1;
                task->best_count[j] = 0;
            }
        }
    }
    free(counter_u);
    free(counter_v);
    free(sketch);
    task->rc = 0;
}

static void *map_thread_main(void *arg) {
    map_segment_range((map_task *)arg);
    return NULL;
}

/* Entry point: fused sketch -> lookup -> vote over all segments, split
   into contiguous blocks across nthreads POSIX threads (inline when
   nthreads <= 1).  Before the segment loop runs, two shared read-only
   accelerations are built once: a 256-bucket index per trial column, and
   a hash-once dedupe table — the query block's distinct values (radix
   sorted) hashed once per trial, turning the sketch phase into gathers.
   Dedupe is skipped for tiny blocks, 33-bit values, low duplication
   (< 1/4 of occurrences) or allocation failure; inline hashing is always
   correct, just slower.  Returns 0 on success, 1 on allocation failure. */
int64_t jem_map_kernel(const uint64_t *qvalues, int64_t n,
                       const int64_t *starts, int64_t nseg,
                       const uint64_t *a, const uint64_t *b,
                       const uint64_t *p, int64_t trials,
                       const uint32_t *col_values,
                       const uint32_t *col_subjects,
                       const int64_t *col_offsets,
                       int64_t n_subjects, int64_t min_hits,
                       int64_t nthreads,
                       int64_t *best_subject, int64_t *best_count) {
    uint64_t *m = (uint64_t *)malloc((size_t)trials * sizeof(uint64_t));
    int64_t *bucket_lo =
        (int64_t *)malloc((size_t)trials * 257 * sizeof(int64_t));
    int64_t *bucket_shift =
        (int64_t *)malloc((size_t)trials * sizeof(int64_t));
    if ((m == NULL || bucket_lo == NULL || bucket_shift == NULL)
        && trials > 0) {
        free(m);
        free(bucket_lo);
        free(bucket_shift);
        return 1;
    }
    for (int64_t t = 0; t < trials; t++)
        m[t] = (uint64_t)((((u128)1) << 64) / p[t]);
    build_bucket_index(col_values, col_offsets, trials, bucket_lo,
                       bucket_shift);
    uint32_t *hu = NULL;
    int32_t *inverse = NULL;
    int64_t n_uniq = 0;
    if (n >= 64 && n < ((int64_t)1 << 31)) {
        uint64_t *sa = (uint64_t *)malloc((size_t)n * sizeof(uint64_t));
        uint64_t *sb = (uint64_t *)malloc((size_t)n * sizeof(uint64_t));
        uint64_t *uniq = (uint64_t *)malloc((size_t)n * sizeof(uint64_t));
        inverse = (int32_t *)malloc((size_t)n * sizeof(int32_t));
        if (sa != NULL && sb != NULL && uniq != NULL && inverse != NULL) {
            const int64_t nu = dedupe_values(qvalues, n, uniq, inverse, sa, sb);
            if (nu > 0 && nu <= n - (n >> 2)) {
                hu = (uint32_t *)malloc((size_t)trials * (size_t)nu
                                        * sizeof(uint32_t));
                if (hu != NULL) {
                    for (int64_t t = 0; t < trials; t++) {
                        const uint64_t at = a[t], bt = b[t];
                        const uint64_t pt = p[t], mt = m[t];
                        uint32_t *row = hu + t * nu;
                        for (int64_t u = 0; u < nu; u++)
                            row[u] =
                                (uint32_t)lcg_hash32(uniq[u], at, bt, pt, mt);
                    }
                    n_uniq = nu;
                }
            }
        }
        free(sa);
        free(sb);
        free(uniq);
        if (n_uniq == 0) {
            free(inverse);
            inverse = NULL;
            free(hu);
            hu = NULL;
        }
    }
    if (nthreads > nseg) nthreads = nseg;
    if (nthreads < 1) nthreads = 1;
    map_task proto = {qvalues, n, starts, nseg, a, b, p, m, trials,
                      col_values, col_subjects, col_offsets, n_subjects,
                      min_hits, hu, inverse, n_uniq, bucket_lo, bucket_shift,
                      0, nseg, best_subject, best_count, 0};
    int64_t rc = 0;
    if (nthreads == 1) {
        map_segment_range(&proto);
        rc = proto.rc;
    } else {
        map_task *tasks = (map_task *)malloc((size_t)nthreads * sizeof(map_task));
        pthread_t *threads =
            (pthread_t *)malloc((size_t)nthreads * sizeof(pthread_t));
        if (tasks == NULL || threads == NULL) {
            free(tasks);
            free(threads);
            free(hu);
            free(inverse);
            free(bucket_lo);
            free(bucket_shift);
            free(m);
            return 1;
        }
        const int64_t block = (nseg + nthreads - 1) / nthreads;
        int64_t spawned = 0;
        for (int64_t k = 0; k < nthreads; k++) {
            tasks[k] = proto;
            tasks[k].seg_lo = k * block;
            tasks[k].seg_hi = (k + 1) * block < nseg ? (k + 1) * block : nseg;
            if (tasks[k].seg_lo >= tasks[k].seg_hi) break;
            if (pthread_create(&threads[k], NULL, map_thread_main, &tasks[k])) {
                /* fall back to running the remainder inline */
                tasks[k].seg_hi = nseg;
                map_segment_range(&tasks[k]);
                if (tasks[k].rc) rc = tasks[k].rc;
                spawned = k;
                break;
            }
            spawned = k + 1;
        }
        for (int64_t k = 0; k < spawned; k++) {
            pthread_join(threads[k], NULL);
            if (tasks[k].rc) rc = tasks[k].rc;
        }
        free(tasks);
        free(threads);
    }
    free(hu);
    free(inverse);
    free(bucket_lo);
    free(bucket_shift);
    free(m);
    return rc;
}
"""

_lock = threading.Lock()
_lib: "NativeKernels | None" = None
_tried = False
_load_error: str | None = None


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        path = Path(override)
        path.mkdir(parents=True, exist_ok=True)
        return path
    repo_root = Path(__file__).resolve().parents[3]
    candidate = repo_root / ".native_cache"
    try:
        candidate.mkdir(exist_ok=True)
        probe = candidate / f".probe-{os.getpid()}"
        probe.touch()
        probe.unlink()
        return candidate
    except OSError:
        fallback = Path(tempfile.gettempdir()) / "repro-native-cache"
        fallback.mkdir(parents=True, exist_ok=True)
        return fallback


def _compile() -> Path:
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = cache / f"jem_kernels_{digest}.so"
    if so_path.exists():
        return so_path
    c_path = cache / f"jem_kernels_{digest}.c"
    c_path.write_text(_SOURCE)
    tmp = cache / f".jem_kernels_{digest}.{os.getpid()}.so"
    compiler = os.environ.get("CC", "cc")
    subprocess.run(
        [
            compiler, "-O3", "-shared", "-fPIC", "-pthread",
            "-o", os.fspath(tmp), os.fspath(c_path),
        ],
        check=True,
        capture_output=True,
        timeout=120,
    )
    os.replace(tmp, so_path)  # atomic: concurrent builders race benignly
    return so_path


class NativeKernels:
    """ctypes bindings over the compiled kernels (GIL released during calls)."""

    def __init__(self, dll: ctypes.CDLL) -> None:
        self._dll = dll
        u64p = ctypes.POINTER(ctypes.c_uint64)
        u32p = ctypes.POINTER(ctypes.c_uint32)
        i64p = ctypes.POINTER(ctypes.c_int64)
        i64 = ctypes.c_int64
        dll.jem_query_kernel.argtypes = [u64p, i64, i64p, i64, u64p, u64p, u64p, i64, u64p]
        dll.jem_query_kernel.restype = None
        dll.jem_subject_kernel.argtypes = [
            u64p, i64p, i64, u64p, u64p, u64p, u64p, i64, u64p, u64p,
        ]
        dll.jem_subject_kernel.restype = None
        dll.jem_map_kernel.argtypes = [
            u64p, i64, i64p, i64,          # qvalues, n, starts, nseg
            u64p, u64p, u64p, i64,         # a, b, p, trials
            u32p, u32p, i64p,              # col_values, col_subjects, col_offsets
            i64, i64, i64,                 # n_subjects, min_hits, nthreads
            i64p, i64p,                    # best_subject, best_count
        ]
        dll.jem_map_kernel.restype = ctypes.c_int64

    @staticmethod
    def _ptr(arr: np.ndarray, dtype, ctype):
        if arr.dtype != dtype or not arr.flags.c_contiguous:
            raise ValueError("native kernel inputs must be contiguous and typed")
        return arr.ctypes.data_as(ctypes.POINTER(ctype))

    def query_values(
        self, values: np.ndarray, starts: np.ndarray, family, out: np.ndarray
    ) -> np.ndarray:
        """Fill ``out[(T, nseg)]`` with per-segment sketch values (S4)."""
        u64, i64 = np.uint64, np.int64
        self._dll.jem_query_kernel(
            self._ptr(values, u64, ctypes.c_uint64),
            ctypes.c_int64(values.size),
            self._ptr(starts, i64, ctypes.c_int64),
            ctypes.c_int64(starts.size),
            self._ptr(family.a, u64, ctypes.c_uint64),
            self._ptr(family.b, u64, ctypes.c_uint64),
            self._ptr(family.p, u64, ctypes.c_uint64),
            ctypes.c_int64(family.size),
            self._ptr(out, u64, ctypes.c_uint64),
        )
        return out

    def subject_keys(
        self,
        values: np.ndarray,
        ends: np.ndarray,
        subject_ids: np.ndarray,
        family,
        out: np.ndarray,
    ) -> np.ndarray:
        """Fill ``out[(T, n)]`` with packed subject sketch key rows (S2)."""
        u64, i64 = np.uint64, np.int64
        deque_scratch = np.empty(values.size, dtype=u64)
        self._dll.jem_subject_kernel(
            self._ptr(values, u64, ctypes.c_uint64),
            self._ptr(ends, i64, ctypes.c_int64),
            ctypes.c_int64(values.size),
            self._ptr(subject_ids, u64, ctypes.c_uint64),
            self._ptr(family.a, u64, ctypes.c_uint64),
            self._ptr(family.b, u64, ctypes.c_uint64),
            self._ptr(family.p, u64, ctypes.c_uint64),
            ctypes.c_int64(family.size),
            self._ptr(deque_scratch, u64, ctypes.c_uint64),
            self._ptr(out, u64, ctypes.c_uint64),
        )
        return out

    def map_block(
        self,
        values: np.ndarray,
        starts: np.ndarray,
        family,
        col_values: np.ndarray,
        col_subjects: np.ndarray,
        col_offsets: np.ndarray,
        n_subjects: int,
        *,
        min_hits: int = 1,
        threads: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fused S4 over one query block: sketch → lookup → vote in C.

        ``values``/``starts`` are the concatenated minimizer ranks and
        per-segment offsets (the :func:`query_kernel` layout); the three
        column arrays are the columnar store's flattened per-trial sorted
        value/subject columns with ``col_offsets`` (trials + 1) marking the
        trial boundaries.  Returns per-segment ``(best_subject, best_count)``
        int64 arrays (-1/0 for unmapped).  ``threads`` defaults to
        :func:`thread_count`; ctypes releases the GIL for the call, and the
        pthread block loop inside the extension is real parallelism.

        Overlapping read segments repeat minimizer values heavily, so the
        kernel radix-sorts the block's values and hashes each distinct one
        once per trial (a gather table) instead of once per occurrence,
        and probes each trial column through a 256-bucket index rather
        than a full-width binary search.
        """
        u64, u32, i64 = np.uint64, np.uint32, np.int64
        nseg = starts.size
        best_subject = np.empty(nseg, dtype=i64)
        best_count = np.empty(nseg, dtype=i64)
        nthreads = thread_count() if threads is None else max(int(threads), 1)
        rc = self._dll.jem_map_kernel(
            self._ptr(values, u64, ctypes.c_uint64),
            ctypes.c_int64(values.size),
            self._ptr(starts, i64, ctypes.c_int64),
            ctypes.c_int64(nseg),
            self._ptr(family.a, u64, ctypes.c_uint64),
            self._ptr(family.b, u64, ctypes.c_uint64),
            self._ptr(family.p, u64, ctypes.c_uint64),
            ctypes.c_int64(family.size),
            self._ptr(col_values, u32, ctypes.c_uint32),
            self._ptr(col_subjects, u32, ctypes.c_uint32),
            self._ptr(col_offsets, i64, ctypes.c_int64),
            ctypes.c_int64(n_subjects),
            ctypes.c_int64(min_hits),
            ctypes.c_int64(nthreads),
            self._ptr(best_subject, i64, ctypes.c_int64),
            self._ptr(best_count, i64, ctypes.c_int64),
        )
        if rc != 0:  # pragma: no cover - only on malloc failure
            raise MemoryError("jem_map_kernel: allocation failure")
        return best_subject, best_count


def load() -> NativeKernels | None:
    """The compiled kernels, or ``None`` when unavailable or disabled.

    ``REPRO_NO_NATIVE`` (any non-empty value) is honoured per call so tests
    can force the numpy path without reloading modules.  Compilation is
    attempted once per process; failures are remembered as "unavailable",
    the cause is kept (see :func:`load_error`) and surfaced once as a
    :class:`RuntimeWarning` — a silent fallback to numpy used to hide
    broken toolchains until someone wondered where the speedup went.
    """
    global _lib, _tried, _load_error
    if os.environ.get("REPRO_NO_NATIVE"):
        return None
    if _tried:
        return _lib
    with _lock:
        if not _tried:
            try:
                _lib = NativeKernels(ctypes.CDLL(os.fspath(_compile())))
            except subprocess.CalledProcessError as exc:
                stderr = (exc.stderr or b"").decode(errors="replace").strip()
                _load_error = f"compile failed ({exc.cmd[0]}): {stderr or exc}"
                _lib = None
            except Exception as exc:
                _load_error = f"{type(exc).__name__}: {exc}"
                _lib = None
            if _lib is None:
                warnings.warn(
                    f"repro native kernels unavailable, using the numpy "
                    f"fallback — {_load_error}",
                    RuntimeWarning,
                    stacklevel=2,
                )
            _tried = True
    return _lib


def load_error() -> str | None:
    """Why the native library failed to load (None before/without failure)."""
    return _load_error


def thread_count() -> int:
    """Threads for the fused map kernel's pthread loop.

    ``REPRO_NATIVE_THREADS`` overrides (clamped to >= 1, junk ignored);
    the default is the machine's CPU count.  Read per call so tests and
    operators can change it without reloading modules.
    """
    raw = os.environ.get("REPRO_NATIVE_THREADS")
    if raw:
        try:
            return max(int(raw), 1)
        except ValueError:
            pass
    return os.cpu_count() or 1


def availability() -> dict:
    """Operational snapshot for telemetry (timing lines, healthz).

    ``available`` says whether the fused/native path will actually be
    taken right now (kill switch included); ``threads`` is the fused
    kernel's thread count and ``error`` the recorded load failure, or the
    kill switch, when unavailable.
    """
    if os.environ.get("REPRO_NO_NATIVE"):
        return {
            "available": False,
            "threads": thread_count(),
            "error": "disabled via REPRO_NO_NATIVE",
        }
    lib = load()
    return {
        "available": lib is not None,
        "threads": thread_count(),
        "error": None if lib is not None else _load_error,
    }
