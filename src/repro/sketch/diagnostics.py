"""Sketch diagnostics: densities, table load, collision statistics.

Production sketch indexes need observability: how many minimizers per base
did winnowing keep, how large is each trial's table, how discriminative are
the sketch values (a value shared by hundreds of subjects stops being
informative).  These numbers also back the paper's space-complexity
discussion (Section III-C.1: |S_global| is far below the O(n·ℓ_s·T) worst
case because sketches come from minimizers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.sketch_table import SketchTable
from ..seq.records import SequenceSet
from .minimizers import minimizers

__all__ = ["SketchStats", "table_stats", "observed_minimizer_density"]


@dataclass(frozen=True)
class SketchStats:
    """Aggregate statistics of a built sketch table."""

    trials: int
    n_subjects: int
    total_entries: int
    nbytes: int
    entries_per_trial_mean: float
    distinct_values_per_trial_mean: float
    max_subjects_per_value: int
    mean_subjects_per_value: float

    def format_report(self) -> str:
        return (
            f"sketch table: T={self.trials}, {self.n_subjects:,} subjects, "
            f"{self.total_entries:,} entries ({self.nbytes / 1e6:.2f} MB)\n"
            f"  per trial: {self.entries_per_trial_mean:,.0f} entries over "
            f"{self.distinct_values_per_trial_mean:,.0f} distinct sketch values\n"
            f"  subjects per value: mean {self.mean_subjects_per_value:.2f}, "
            f"max {self.max_subjects_per_value}"
        )


def table_stats(table: SketchTable) -> SketchStats:
    """Compute :class:`SketchStats` for a built table."""
    entries = [int(k.size) for k in table.keys]
    distinct = []
    max_bucket = 0
    bucket_sizes: list[int] = []
    for keys in table.keys:
        values = keys >> np.uint64(32)
        if values.size == 0:
            distinct.append(0)
            continue
        _uniq, counts = np.unique(values, return_counts=True)
        distinct.append(int(_uniq.size))
        max_bucket = max(max_bucket, int(counts.max()))
        bucket_sizes.extend(counts.tolist())
    return SketchStats(
        trials=table.trials,
        n_subjects=table.n_subjects,
        total_entries=table.total_entries,
        nbytes=table.nbytes,
        entries_per_trial_mean=float(np.mean(entries)) if entries else 0.0,
        distinct_values_per_trial_mean=float(np.mean(distinct)) if distinct else 0.0,
        max_subjects_per_value=max_bucket,
        mean_subjects_per_value=float(np.mean(bucket_sizes)) if bucket_sizes else 0.0,
    )


def observed_minimizer_density(sequences: SequenceSet, k: int, w: int) -> float:
    """Measured minimizers per base over a sequence set (~2/(w+1) expected)."""
    total_minis = 0
    total_bases = 0
    for i in range(len(sequences)):
        codes = sequences.codes_of(i)
        if codes.size < k:
            continue
        total_minis += len(minimizers(codes, k, w))
        total_bases += int(codes.size)
    return total_minis / total_bases if total_bases else 0.0
