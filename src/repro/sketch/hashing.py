"""Linear-congruential hash family for the MinHash trials.

The paper draws ``T`` hash functions of the form

    h_t(x) = (A_t * x + B_t) mod P_t

with per-trial random constants generated a priori (Section III-B,
implementation notes).  ``P_t`` are random primes below 2^31, found with a
deterministic Miller–Rabin test, so that ``A_t * (x mod P_t)`` never
overflows ``uint64``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SketchError

__all__ = ["HashFamily", "is_prime_u64", "random_prime_below_2_31"]

# Deterministic Miller-Rabin witness set: correct for all n < 3.3e24,
# comfortably covering the 64-bit range we use.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime_u64(n: int) -> bool:
    """Deterministic Miller–Rabin primality test for 64-bit integers."""
    n = int(n)
    if n < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % small == 0:
            return n == small
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def random_prime_below_2_31(rng: np.random.Generator, *, low: int = 1 << 30) -> int:
    """A uniform-ish random prime in ``[low, 2^31)`` via rejection sampling."""
    high = (1 << 31) - 1
    for _ in range(100_000):
        candidate = int(rng.integers(low, high, dtype=np.int64)) | 1
        if is_prime_u64(candidate):
            return candidate
    raise SketchError("failed to find a prime (rng exhausted)")  # pragma: no cover


@dataclass(frozen=True)
class HashFamily:
    """A family of ``T`` LCG hash functions with fixed random constants.

    Attributes are ``uint64`` arrays of length ``T``; every constant satisfies
    ``0 < a < p``, ``0 <= b < p`` and ``2^30 <= p < 2^31``.
    """

    a: np.ndarray
    b: np.ndarray
    p: np.ndarray

    def __post_init__(self) -> None:
        for name in ("a", "b", "p"):
            arr = getattr(self, name)
            object.__setattr__(self, name, np.ascontiguousarray(arr, dtype=np.uint64))
        if not (self.a.shape == self.b.shape == self.p.shape) or self.a.ndim != 1:
            raise SketchError("hash constant arrays must be 1-d and equal-shaped")
        if self.size == 0:
            raise SketchError("hash family must contain at least one function")
        if (self.a == 0).any() or (self.a >= self.p).any() or (self.b >= self.p).any():
            raise SketchError("hash constants must satisfy 0 < a < p, 0 <= b < p")

    @property
    def size(self) -> int:
        """Number of trials T."""
        return int(self.a.size)

    @classmethod
    def generate(cls, trials: int, seed: int) -> "HashFamily":
        """Draw ``trials`` hash functions from a seeded generator (reproducible)."""
        if trials < 1:
            raise SketchError(f"trials must be >= 1, got {trials}")
        rng = np.random.default_rng(seed)
        p = np.array([random_prime_below_2_31(rng) for _ in range(trials)], dtype=np.uint64)
        a = (rng.integers(1, (1 << 31) - 1, size=trials, dtype=np.int64).astype(np.uint64)) % p
        a = np.where(a == 0, np.uint64(1), a)
        b = rng.integers(0, (1 << 31) - 1, size=trials, dtype=np.int64).astype(np.uint64) % p
        return cls(a=a, b=b, p=p)

    def apply(self, t: int, x: np.ndarray) -> np.ndarray:
        """Apply hash ``t`` to packed k-mer values ``x`` (vectorised).

        ``x`` is reduced modulo ``p_t`` first so the multiply stays within
        uint64 for any packed k-mer up to k = 31.
        """
        if not 0 <= t < self.size:
            raise SketchError(f"trial index {t} out of range [0, {self.size})")
        x = np.asarray(x, dtype=np.uint64)
        return (self.a[t] * (x % self.p[t]) + self.b[t]) % self.p[t]

    def apply_all(self, x: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
        """Apply every hash function to ``x`` in one broadcasted pass.

        Returns a ``(T, n)`` ``uint64`` matrix whose row ``t`` equals
        ``apply(t, x)`` bit for bit: the same reduce-multiply-add-mod
        sequence runs over a 2-d broadcast, so one numpy dispatch per
        operation covers all T trials.  Every output value is ``< p_t
        < 2^31``, which downstream packed-key kernels rely on.

        The whole pipeline runs in place on one ``(T, n)`` buffer — pass
        ``out`` (typically a scratch view) to make the hot path entirely
        allocation-free; at batch sizes the four intermediate ``(T, n)``
        temporaries of the naive expression cost as much as the modulos.
        """
        x = np.asarray(x, dtype=np.uint64)
        shape = (self.size, x.size)
        if out is None:
            out = np.empty(shape, dtype=np.uint64)
        elif out.shape != shape or out.dtype != np.uint64:
            raise SketchError("apply_all out buffer must be (T, n) uint64")
        p = self.p[:, None]
        np.remainder(x[None, :], p, out=out)
        np.multiply(out, self.a[:, None], out=out)
        np.add(out, self.b[:, None], out=out)
        np.remainder(out, p, out=out)
        return out

    def apply_all_transposed(self, x: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
        """:meth:`apply_all` in ``(n, T)`` layout: row i holds all hashes of x[i].

        Values are identical to ``apply_all(x).T`` bit for bit — the modular
        arithmetic is elementwise, so only the memory layout differs.  The
        query kernel prefers this orientation: gathering whole rows of a
        contiguous ``(n_unique, T)`` table is a memcpy per minimizer
        occurrence, and the segmented minimum reduces along axis 0 in one
        sequential SIMD-friendly sweep.
        """
        x = np.asarray(x, dtype=np.uint64)
        shape = (x.size, self.size)
        if out is None:
            out = np.empty(shape, dtype=np.uint64)
        elif out.shape != shape or out.dtype != np.uint64:
            raise SketchError("apply_all_transposed out buffer must be (n, T) uint64")
        p = self.p[None, :]
        np.remainder(x[:, None], p, out=out)
        np.multiply(out, self.a[None, :], out=out)
        np.add(out, self.b[None, :], out=out)
        np.remainder(out, p, out=out)
        return out

    def apply_scalar(self, t: int, x: int) -> int:
        """Scalar version of :meth:`apply` (reference/tests)."""
        return int((int(self.a[t]) * (int(x) % int(self.p[t])) + int(self.b[t])) % int(self.p[t]))

    def truncated(self, trials: int) -> "HashFamily":
        """First ``trials`` functions as a new family.

        Lets a T-sweep (Fig. 6) reuse one family so that trial ``t`` is the
        same hash function at every sweep point.
        """
        if not 1 <= trials <= self.size:
            raise SketchError(f"cannot truncate family of {self.size} to {trials}")
        return HashFamily(a=self.a[:trials], b=self.b[:trials], p=self.p[:trials])

    def trial_slice(self, start: int, stop: int) -> "HashFamily":
        """Functions ``[start, stop)`` as a new family.

        Used by the batched kernels to process trials in memory-bounded
        chunks; trial ``start + t`` of this family is trial ``t`` of the
        slice, so chunked and unchunked runs are bit-identical.
        """
        if not 0 <= start < stop <= self.size:
            raise SketchError(f"bad trial slice [{start}, {stop}) of {self.size}")
        return HashFamily(a=self.a[start:stop], b=self.b[start:stop], p=self.p[start:stop])
