"""The minimizer-based Jaccard estimator (JEM) sketch — Algorithm 1.

Subjects (contigs): the minimizer list M_o(s, w) is computed, an interval of
length ℓ (the read end-segment length) slides over the minimizers *by
position*, and for every interval and every trial t the minimizer with the
smallest hash h_t becomes a sketch entry ``(k-mer, subject)`` in the trial-t
table.

Queries (read end segments): the segment is exactly ℓ long, so its whole
minimizer list is a single interval and each trial contributes one sketch
k-mer ("we then pick T JEM sketches in a similar fashion", Fig. 3).

Everything is batched across sequences: minimizer lists are concatenated
with per-sequence base offsets spaced far enough apart that a positional
interval can never cross a sequence boundary, which lets one global
``searchsorted`` find every interval and one sparse-table RMQ per trial
answer every interval minimum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SketchError
from ..seq.records import SequenceSet
from .hashing import HashFamily
from .minimizers import MinimizerList, minimizers_set
from .rmq import SparseTableRMQ

__all__ = [
    "pack_key",
    "unpack_keys",
    "jem_sketch_single",
    "subject_sketch_pairs",
    "query_sketch_values",
    "QuerySketches",
]

_LOW32 = np.uint64(0xFFFFFFFF)


def pack_key(values: np.ndarray, subjects: np.ndarray) -> np.ndarray:
    """Pack (sketch k-mer value, subject id) into one ``uint64`` key.

    Keys sort by value first, subject second, which is exactly the layout
    the per-trial sketch table needs for ``searchsorted`` lookups.
    """
    values = np.asarray(values, dtype=np.uint64)
    subjects = np.asarray(subjects, dtype=np.uint64)
    if values.size and int(values.max()) >> 32:
        raise SketchError("sketch values must fit in 32 bits (k <= 16)")
    if subjects.size and int(subjects.max()) >> 32:
        raise SketchError("subject ids must fit in 32 bits")
    return (values << np.uint64(32)) | subjects


def unpack_keys(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_key`: returns (values, subject ids)."""
    keys = np.asarray(keys, dtype=np.uint64)
    return keys >> np.uint64(32), (keys & _LOW32).astype(np.int64)


def jem_sketch_single(minis: MinimizerList, family: HashFamily) -> np.ndarray:
    """T sketch k-mers of one sequence treated as a single interval.

    Reference implementation used for queries of length ℓ and in tests; the
    batched :func:`query_sketch_values` must agree with it exactly.
    """
    if len(minis) == 0:
        raise SketchError("no minimizers to sketch")
    out = np.empty(family.size, dtype=np.uint64)
    for t in range(family.size):
        hashed = family.apply(t, minis.ranks)
        out[t] = minis.ranks[int(np.argmin(hashed))]
    return out


def _concat_minimizer_lists(
    lists: list[MinimizerList], ell: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate per-sequence minimizer lists with non-overlapping offsets.

    Returns ``(values, shifted_positions, owner, starts)`` where ``owner[i]``
    is the index of the sequence that minimizer i came from and ``starts``
    has one entry per list (offset of its first minimizer in the
    concatenation).  Position offsets are spaced by ``max_pos + ell + 2`` so
    an interval ``[p, p + ell]`` never reaches the next sequence.
    """
    sizes = np.fromiter((len(ml) for ml in lists), dtype=np.int64, count=len(lists))
    starts = np.zeros(len(lists) + 1, dtype=np.int64)
    np.cumsum(sizes, out=starts[1:])
    total = int(starts[-1])
    values = np.empty(total, dtype=np.uint64)
    positions = np.empty(total, dtype=np.int64)
    owner = np.empty(total, dtype=np.int64)
    base = 0
    for i, ml in enumerate(lists):
        lo, hi = starts[i], starts[i + 1]
        values[lo:hi] = ml.ranks
        positions[lo:hi] = ml.positions + base
        owner[lo:hi] = i
        if len(ml):
            base += int(ml.positions[-1]) + ell + 2
    return values, positions, owner, starts


def subject_sketch_pairs(
    subjects: SequenceSet,
    k: int,
    w: int,
    ell: int,
    family: HashFamily,
    *,
    subject_id_offset: int = 0,
) -> list[np.ndarray]:
    """Algorithm 1 over a whole contig set, batched.

    For every contig, every sliding interval of length ℓ over its minimizer
    list and every trial t, the minimizer minimising h_t contributes a
    ``(k-mer value, global subject id)`` pair.  Duplicated pairs from
    overlapping intervals are removed.

    Returns one **sorted unique** packed-key array per trial — exactly the
    per-trial lists S[t] of Fig. 2, ready for the sketch table (and for the
    Allgatherv union in the parallel version, step S3).

    ``subject_id_offset`` maps local contig indices to global ids when each
    parallel rank sketches only its block of contigs (step S2).
    """
    lists = minimizers_set(subjects, k, w)
    values, positions, owner, _ = _concat_minimizer_lists(lists, ell)
    total = values.size
    if total == 0:
        return [np.empty(0, dtype=np.uint64) for _ in range(family.size)]
    if total >> 32:
        raise SketchError("minimizer count exceeds packed-key capacity")  # pragma: no cover
    # Interval i spans minimizers with position in [p_i, p_i + ell]; offsets
    # guarantee the range stays inside sequence i's owner.
    ends = np.searchsorted(positions, positions + ell, side="right")
    starts_idx = np.arange(total, dtype=np.int64)
    subject_ids = (owner + subject_id_offset).astype(np.uint64)
    out: list[np.ndarray] = []
    for t in range(family.size):
        hashed = family.apply(t, values)
        rmq = SparseTableRMQ(hashed, track_argmin=True)
        idx, _ = rmq.query_argmin(starts_idx, ends)
        keys = pack_key(values[idx], subject_ids)
        out.append(np.unique(keys))
    return out


@dataclass(frozen=True)
class QuerySketches:
    """Batched query sketches: per trial, one sketch k-mer per segment.

    ``values[t, i]`` is only meaningful where ``has[i]`` is true (segments
    with no valid minimizer — e.g. all-N — cannot be sketched and are
    reported unmapped).
    """

    values: np.ndarray  # (T, n_segments) uint64
    has: np.ndarray  # (n_segments,) bool

    @property
    def trials(self) -> int:
        return int(self.values.shape[0])

    def __len__(self) -> int:
        return int(self.values.shape[1])


def query_sketch_values(
    segments: SequenceSet, k: int, w: int, family: HashFamily
) -> QuerySketches:
    """T sketch k-mers for every query segment (single-interval mode).

    The ℓ-long end segment is one interval, so per trial the sketch is the
    minimizer of the whole segment under h_t.  Batched across segments with
    one segmented-minimum (``reduceat``) per trial.
    """
    n = len(segments)
    per_seg = [ml.ranks for ml in minimizers_set(segments, k, w)]
    has = np.fromiter((r.size > 0 for r in per_seg), dtype=bool, count=n)
    values_out = np.zeros((family.size, n), dtype=np.uint64)
    nonempty = np.flatnonzero(has)
    if nonempty.size == 0:
        return QuerySketches(values_out, has)
    values = np.concatenate([per_seg[i] for i in nonempty])
    lengths = np.fromiter((per_seg[i].size for i in nonempty), dtype=np.int64)
    starts = np.zeros(nonempty.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=starts[1:])
    if values.size >> 32:
        raise SketchError("too many minimizers for packed-key argmin")  # pragma: no cover
    index = np.arange(values.size, dtype=np.uint64)
    for t in range(family.size):
        packed = (family.apply(t, values) << np.uint64(32)) | index
        mins = np.minimum.reduceat(packed, starts)
        values_out[t, nonempty] = values[(mins & _LOW32).astype(np.int64)]
    return QuerySketches(values_out, has)
