"""The minimizer-based Jaccard estimator (JEM) sketch — Algorithm 1.

Subjects (contigs): the minimizer list M_o(s, w) is computed, an interval of
length ℓ (the read end-segment length) slides over the minimizers *by
position*, and for every interval and every trial t the minimizer with the
smallest hash h_t becomes a sketch entry ``(k-mer, subject)`` in the trial-t
table.

Queries (read end segments): the segment is exactly ℓ long, so its whole
minimizer list is a single interval and each trial contributes one sketch
k-mer ("we then pick T JEM sketches in a similar fashion", Fig. 3).

Everything is batched across sequences *and across trials*: minimizer lists
are concatenated with per-sequence base offsets spaced far enough apart
that a positional interval can never cross a sequence boundary, one global
``searchsorted`` finds every interval, and the multi-trial kernels
(:mod:`repro.sketch.kernels`) answer all T trials per numpy dispatch — one
broadcasted hash pass, one 2-d sparse table whose interval bucketing is
shared by every trial, one row-wise dedupe.  The per-trial implementations
are retained as ``*_reference`` functions: they are the equivalence oracle
for the test suite and the baseline for ``bench kernels``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SketchError
from ..seq.records import SequenceSet
from . import _native
from .hashing import HashFamily
from .kernels import LOW32 as _LOW32
from .kernels import key_scratch, sorted_unique_rows, trial_chunks
from .minimizers import MinimizerList, minimizers_set
from .rmq import SparseTableRMQ, SparseTableRMQ2D

__all__ = [
    "pack_key",
    "unpack_keys",
    "jem_sketch_single",
    "subject_sketch_pairs",
    "subject_sketch_pairs_reference",
    "subject_kernel",
    "subject_kernel_reference",
    "query_sketch_values",
    "query_sketch_values_reference",
    "query_kernel",
    "query_kernel_reference",
    "query_minimizer_concat",
    "QuerySketches",
]


def pack_key(values: np.ndarray, subjects: np.ndarray) -> np.ndarray:
    """Pack (sketch k-mer value, subject id) into one ``uint64`` key.

    Keys sort by value first, subject second, which is exactly the layout
    the per-trial sketch table needs for ``searchsorted`` lookups.
    """
    values = np.asarray(values, dtype=np.uint64)
    subjects = np.asarray(subjects, dtype=np.uint64)
    if values.size and int(values.max()) >> 32:
        raise SketchError("sketch values must fit in 32 bits (k <= 16)")
    if subjects.size and int(subjects.max()) >> 32:
        raise SketchError("subject ids must fit in 32 bits")
    return (values << np.uint64(32)) | subjects


def unpack_keys(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_key`: returns (values, subject ids)."""
    keys = np.asarray(keys, dtype=np.uint64)
    return keys >> np.uint64(32), (keys & _LOW32).astype(np.int64)


def jem_sketch_single(minis: MinimizerList, family: HashFamily) -> np.ndarray:
    """T sketch k-mers of one sequence treated as a single interval.

    Reference implementation used for queries of length ℓ and in tests; the
    batched :func:`query_sketch_values` must agree with it exactly.
    """
    if len(minis) == 0:
        raise SketchError("no minimizers to sketch")
    out = np.empty(family.size, dtype=np.uint64)
    for t in range(family.size):
        hashed = family.apply(t, minis.ranks)
        out[t] = minis.ranks[int(np.argmin(hashed))]
    return out


def _concat_minimizer_lists(
    lists: list[MinimizerList], ell: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate per-sequence minimizer lists with non-overlapping offsets.

    Returns ``(values, shifted_positions, owner, starts)`` where ``owner[i]``
    is the index of the sequence that minimizer i came from and ``starts``
    has one entry per list (offset of its first minimizer in the
    concatenation).  Position offsets are spaced by ``max_pos + ell + 2`` so
    an interval ``[p, p + ell]`` never reaches the next sequence.
    """
    sizes = np.fromiter((len(ml) for ml in lists), dtype=np.int64, count=len(lists))
    starts = np.zeros(len(lists) + 1, dtype=np.int64)
    np.cumsum(sizes, out=starts[1:])
    total = int(starts[-1])
    values = np.empty(total, dtype=np.uint64)
    positions = np.empty(total, dtype=np.int64)
    owner = np.empty(total, dtype=np.int64)
    base = 0
    for i, ml in enumerate(lists):
        lo, hi = starts[i], starts[i + 1]
        values[lo:hi] = ml.ranks
        positions[lo:hi] = ml.positions + base
        owner[lo:hi] = i
        if len(ml):
            base += int(ml.positions[-1]) + ell + 2
    return values, positions, owner, starts


def subject_sketch_pairs(
    subjects: SequenceSet,
    k: int,
    w: int,
    ell: int,
    family: HashFamily,
    *,
    subject_id_offset: int = 0,
) -> list[np.ndarray]:
    """Algorithm 1 over a whole contig set, batched across trials (S2 kernel).

    For every contig, every sliding interval of length ℓ over its minimizer
    list and every trial t, the minimizer minimising h_t contributes a
    ``(k-mer value, global subject id)`` pair.  Duplicated pairs from
    overlapping intervals are removed.

    All trials run per numpy dispatch: one broadcasted
    :meth:`~repro.sketch.hashing.HashFamily.apply_all` pass, one
    :class:`~repro.sketch.rmq.SparseTableRMQ2D` whose ``np.minimum`` levels
    and interval-level bucketing are shared across trials, and one row-wise
    dedupe over the packed-key matrix.  The 32-bit range checks formerly
    paid per trial (``pack_key``, the 1-d RMQ's packability scan) are
    hoisted to a single validation, and the key matrix lives in reusable
    thread-local scratch.  Output is bit-identical to
    :func:`subject_sketch_pairs_reference` — asserted by the test suite.

    Returns one **sorted unique** packed-key array per trial — exactly the
    per-trial lists S[t] of Fig. 2, ready for the sketch table (and for the
    Allgatherv union in the parallel version, step S3).

    ``subject_id_offset`` maps local contig indices to global ids when each
    parallel rank sketches only its block of contigs (step S2).
    """
    lists = minimizers_set(subjects, k, w)
    values, positions, owner, _ = _concat_minimizer_lists(lists, ell)
    total = values.size
    if total == 0:
        return [np.empty(0, dtype=np.uint64) for _ in range(family.size)]
    if total >> 32:
        raise SketchError("minimizer count exceeds packed-key capacity")  # pragma: no cover
    # Hoisted validation: one pass over the minimizer values and subject ids
    # instead of one per trial inside pack_key / the argmin RMQ.
    if int(values.max()) >> 32:
        raise SketchError("sketch values must fit in 32 bits (k <= 16)")
    subject_ids = (owner + subject_id_offset).astype(np.uint64)
    if int(subject_ids[-1]) >> 32:
        raise SketchError("subject ids must fit in 32 bits")
    # Interval i spans minimizers with position in [p_i, p_i + ell]; offsets
    # guarantee the range stays inside sequence i's owner.
    ends = np.searchsorted(positions, positions + ell, side="right")
    return subject_kernel(values, ends, subject_ids, family)


def subject_kernel(
    values: np.ndarray,
    ends: np.ndarray,
    subject_ids: np.ndarray,
    family: HashFamily,
) -> list[np.ndarray]:
    """The batched S2 kernel given pre-extracted minimizer intervals.

    Interval i is ``values[i : ends[i]]``; inputs must already satisfy the
    32-bit packing constraints (validated once by the caller).  Exposed
    separately so the ``bench kernels`` experiment can time the kernel
    stage against :func:`subject_kernel_reference` without the shared
    minimizer-extraction cost drowning the comparison.

    When the compiled fast path (:mod:`repro.sketch._native`) is
    available, the hash + interval-minimum stage runs as one fused C
    sweep per trial (Barrett-reduced LCG feeding a monotone-deque sliding
    minimum) directly into the scratch key matrix; otherwise the numpy
    path below runs.  Both produce bit-identical rows — the dedupe and
    all downstream consumers cannot tell them apart.
    """
    total = values.size
    native = _native.load()
    out: list[np.ndarray] = [np.empty(0, dtype=np.uint64)] * family.size
    if native is not None:
        values = np.ascontiguousarray(values, dtype=np.uint64)
        ends = np.ascontiguousarray(ends, dtype=np.int64)
        subject_ids = np.ascontiguousarray(subject_ids, dtype=np.uint64)
        for chunk in trial_chunks(family.size, total, with_levels=False):
            sub = (
                family
                if len(chunk) == family.size
                else family.trial_slice(chunk.start, chunk.stop)
            )
            keys = key_scratch(len(chunk), total)
            native.subject_keys(values, ends, subject_ids, sub, out=keys)
            for j, uniq in enumerate(sorted_unique_rows(keys)):
                out[chunk.start + j] = uniq
        return out
    starts_idx = np.arange(total, dtype=np.int64)
    max_len = int((ends - starts_idx).max()) if total else 1
    uniq_vals, inverse = np.unique(values, return_inverse=True)
    # Hashing is division-bound, so when minimizers repeat (overlapping
    # contigs, genomic repeats) it is cheaper to hash the distinct values
    # and gather — identical values hash identically, so this is bit-exact.
    dedupe = uniq_vals.size <= total - (total >> 2)
    for chunk in trial_chunks(family.size, total):
        sub = family if len(chunk) == family.size else family.trial_slice(chunk.start, chunk.stop)
        # LCG outputs < 2^31, packable by construction.
        hashed = key_scratch(len(chunk), total, slot="hash")
        if dedupe:
            uniq_hashed = sub.apply_all(
                uniq_vals, out=key_scratch(len(chunk), uniq_vals.size, slot="uhash")
            )
            np.take(uniq_hashed, inverse, axis=1, out=hashed)
        else:
            sub.apply_all(values, out=hashed)
        rmq = SparseTableRMQ2D(
            hashed,
            track_argmin=True,
            values_packable=True,
            max_interval=max_len,
            workspace=True,
        )
        # The workspace build copied level 0 into its own scratch, so both
        # the hashed matrix and the keys slot are free to recycle here.
        packed = rmq.query_packed(starts_idx, ends, out=key_scratch(len(chunk), total))
        np.bitwise_and(packed, _LOW32, out=packed)  # keep the argmin columns
        keys = key_scratch(len(chunk), total, slot="hash")
        np.take(values, packed, out=keys)
        np.left_shift(keys, np.uint64(32), out=keys)
        np.bitwise_or(keys, subject_ids[None, :], out=keys)
        for j, uniq in enumerate(sorted_unique_rows(keys)):
            out[chunk.start + j] = uniq
    return out


def subject_kernel_reference(
    values: np.ndarray,
    ends: np.ndarray,
    subject_ids: np.ndarray,
    family: HashFamily,
) -> list[np.ndarray]:
    """Per-trial (pre-PR) S2 kernel: T rounds of hash, 1-d RMQ, np.unique."""
    total = values.size
    starts_idx = np.arange(total, dtype=np.int64)
    out: list[np.ndarray] = []
    for t in range(family.size):
        hashed = family.apply(t, values)
        rmq = SparseTableRMQ(hashed, track_argmin=True)
        idx, _ = rmq.query_argmin(starts_idx, ends)
        keys = pack_key(values[idx], subject_ids)
        out.append(np.unique(keys))
    return out


def subject_sketch_pairs_reference(
    subjects: SequenceSet,
    k: int,
    w: int,
    ell: int,
    family: HashFamily,
    *,
    subject_id_offset: int = 0,
) -> list[np.ndarray]:
    """Per-trial reference for :func:`subject_sketch_pairs`.

    The pre-kernel implementation: T rounds of hash-apply, a fresh 1-d
    :class:`~repro.sketch.rmq.SparseTableRMQ` build and an ``np.unique``
    sort.  Retained as the equivalence oracle for the property tests and
    the baseline the ``bench kernels`` experiment measures speedup against.
    """
    lists = minimizers_set(subjects, k, w)
    values, positions, owner, _ = _concat_minimizer_lists(lists, ell)
    total = values.size
    if total == 0:
        return [np.empty(0, dtype=np.uint64) for _ in range(family.size)]
    if total >> 32:
        raise SketchError("minimizer count exceeds packed-key capacity")  # pragma: no cover
    ends = np.searchsorted(positions, positions + ell, side="right")
    subject_ids = (owner + subject_id_offset).astype(np.uint64)
    return subject_kernel_reference(values, ends, subject_ids, family)


@dataclass(frozen=True)
class QuerySketches:
    """Batched query sketches: per trial, one sketch k-mer per segment.

    ``values[t, i]`` is only meaningful where ``has[i]`` is true (segments
    with no valid minimizer — e.g. all-N — cannot be sketched and are
    reported unmapped).
    """

    values: np.ndarray  # (T, n_segments) uint64
    has: np.ndarray  # (n_segments,) bool

    @property
    def trials(self) -> int:
        return int(self.values.shape[0])

    def __len__(self) -> int:
        return int(self.values.shape[1])


def _query_minimizer_concat(
    segments: SequenceSet, k: int, w: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shared query-side setup: concatenated ranks + segment bookkeeping.

    Returns ``(has, nonempty, values, starts)`` where ``values`` is the
    concatenation of every non-empty segment's minimizer ranks and
    ``starts`` the segment boundaries for ``minimum.reduceat``.
    """
    n = len(segments)
    per_seg = [ml.ranks for ml in minimizers_set(segments, k, w)]
    has = np.fromiter((r.size > 0 for r in per_seg), dtype=bool, count=n)
    nonempty = np.flatnonzero(has)
    if nonempty.size == 0:
        return has, nonempty, np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64)
    values = np.concatenate([per_seg[i] for i in nonempty])
    lengths = np.fromiter((per_seg[i].size for i in nonempty), dtype=np.int64)
    starts = np.zeros(nonempty.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=starts[1:])
    if values.size >> 32:
        raise SketchError("too many minimizers for packed-key argmin")  # pragma: no cover
    return has, nonempty, values, starts


#: Public name for the query-side setup: the fused map path needs the
#: *pre-sketch* minimizer block (values + segment starts) so the native
#: kernel can hash, search and vote in one pass without a (T, n) matrix.
query_minimizer_concat = _query_minimizer_concat


def query_sketch_values(
    segments: SequenceSet, k: int, w: int, family: HashFamily
) -> QuerySketches:
    """T sketch k-mers for every query segment, batched (S4 kernel).

    The ℓ-long end segment is one interval, so per trial the sketch is the
    minimizer of the whole segment under h_t.  One broadcasted ``(T, n)``
    hash pass and one segmented-minimum (``minimum.reduceat`` along axis 1)
    answer every trial at once; output is bit-identical to
    :func:`query_sketch_values_reference`.
    """
    has, nonempty, values, starts = _query_minimizer_concat(segments, k, w)
    values_out = np.zeros((family.size, len(segments)), dtype=np.uint64)
    if nonempty.size == 0:
        return QuerySketches(values_out, has)
    values_out[:, nonempty] = query_kernel(values, starts, family)
    return QuerySketches(values_out, has)


def query_kernel(
    values: np.ndarray, starts: np.ndarray, family: HashFamily
) -> np.ndarray:
    """The batched S4 kernel: per-segment hash minima for every trial.

    ``values`` is the concatenation of the segments' minimizer ranks with
    segment boundaries at ``starts``; returns the ``(T, n_segments)``
    sketch value matrix.  Exposed separately for the same reason as
    :func:`subject_kernel`.

    When the compiled fast path (:mod:`repro.sketch._native`) is
    available, each trial is one fused C sweep — Barrett-reduced LCG hash
    and packed-key segment minimum in the same pass, no ``(T, n)``
    intermediate at all; otherwise the numpy path below runs.  Outputs
    are bit-identical either way.
    """
    total = values.size
    native = _native.load()
    out = np.empty((family.size, starts.size), dtype=np.uint64)
    if native is not None:
        values = np.ascontiguousarray(values, dtype=np.uint64)
        starts = np.ascontiguousarray(starts, dtype=np.int64)
        native.query_values(values, starts, family, out=out)
        return out
    index_col = np.arange(total, dtype=np.uint64)[:, None]
    uniq_vals, inverse = np.unique(values, return_inverse=True)
    # Read end-segments overlap on the genome, so query minimizers repeat
    # heavily; hash each distinct value once and gather (bit-exact — equal
    # values hash equally, and ties still break on the original index).
    dedupe = uniq_vals.size <= total - (total >> 2)
    for chunk in trial_chunks(family.size, total, with_levels=False):
        sub = family if len(chunk) == family.size else family.trial_slice(chunk.start, chunk.stop)
        # (n, T) layout: the row gather below is a contiguous memcpy per
        # occurrence and the segmented min sweeps memory sequentially.
        packed = key_scratch(total, len(chunk))
        if dedupe:
            hashed = sub.apply_all_transposed(
                uniq_vals, out=key_scratch(uniq_vals.size, len(chunk), slot="uhash")
            )
            np.left_shift(hashed, np.uint64(32), out=hashed)
            np.take(hashed, inverse, axis=0, out=packed)
        else:
            sub.apply_all_transposed(values, out=packed)
            np.left_shift(packed, np.uint64(32), out=packed)
        np.bitwise_or(packed, index_col, out=packed)
        mins = np.minimum.reduceat(packed, starts, axis=0)  # (n_segments, c)
        out[chunk.start : chunk.stop] = values[(mins & _LOW32).astype(np.int64)].T
    return out


def query_kernel_reference(
    values: np.ndarray, starts: np.ndarray, family: HashFamily
) -> np.ndarray:
    """Per-trial (pre-PR) S4 kernel: T loop bodies of hash + pack + reduceat."""
    index = np.arange(values.size, dtype=np.uint64)
    out = np.empty((family.size, starts.size), dtype=np.uint64)
    for t in range(family.size):
        packed = (family.apply(t, values) << np.uint64(32)) | index
        mins = np.minimum.reduceat(packed, starts)
        out[t] = values[(mins & _LOW32).astype(np.int64)]
    return out


def query_sketch_values_reference(
    segments: SequenceSet, k: int, w: int, family: HashFamily
) -> QuerySketches:
    """Per-trial reference for :func:`query_sketch_values`.

    T loop bodies of hash + pack + ``reduceat``; retained as the test
    oracle and the ``bench kernels`` baseline.
    """
    has, nonempty, values, starts = _query_minimizer_concat(segments, k, w)
    values_out = np.zeros((family.size, len(segments)), dtype=np.uint64)
    if nonempty.size == 0:
        return QuerySketches(values_out, has)
    values_out[:, nonempty] = query_kernel_reference(values, starts, family)
    return QuerySketches(values_out, has)
