"""Batched multi-trial kernels shared by the JEM and MinHash sketchers.

Every hot sketching path used to run one Python-level iteration per trial:
hash-apply, a fresh sparse-table build, a ``np.unique`` sort — T = 30 times
per call.  The kernels here collapse those loops into single multi-trial
array operations over ``(T, n)`` matrices:

* :func:`pack_keys_batched` — one validation pass then one shift-or over
  the whole trial matrix (replaces T ``pack_key`` calls, each of which
  re-scanned ``values.max()``);
* :func:`sorted_unique_rows` — one row-wise in-place sort plus a
  vectorised run-collapse (replaces T ``np.unique`` sorts);
* :func:`key_scratch` — a thread-local, geometrically grown ``uint64``
  buffer so repeated sketch calls (the service's S4 micro-batches, the
  per-rank driver loops) stop reallocating ``(T, n)`` scratch every call;
* :func:`trial_chunks` — bounds the working set of the fully batched
  subject kernel: a ``(T, n)`` sparse table holds ``T·n·log n`` entries,
  so trials are processed in the largest chunks that keep the table under
  a fixed byte budget (per-chunk results are per-trial results, so
  chunking never changes output).

The batching invariant throughout: trials share the *same* positional
intervals and the same minimizer columns, only the hash row differs.  That
is why one 2-d sparse table (:class:`~repro.sketch.rmq.SparseTableRMQ2D`)
and one interval-level bucketing serve all T trials at once.
"""

from __future__ import annotations

import threading

import numpy as np

from ..errors import SketchError

__all__ = [
    "LOW32",
    "key_scratch",
    "pack_keys_batched",
    "sorted_unique_rows",
    "trial_chunks",
]

LOW32 = np.uint64(0xFFFFFFFF)

#: Working-set budget (uint64 entries) for one fully batched trial chunk.
#: 1 << 24 entries = 128 MB of sparse-table levels — large enough that the
#: usual bench/service scales run every trial in a single chunk, small
#: enough that a whole-genome minimizer list cannot blow up memory T-fold.
MAX_BATCH_ELEMS = 1 << 24

_scratch = threading.local()


def key_scratch(rows: int, cols: int, slot: str = "keys") -> np.ndarray:
    """A reusable ``(rows, cols)`` ``uint64`` matrix view (thread-local).

    Each ``slot`` names an independent backing buffer, so a kernel can hold
    several scratch matrices alive at once (the subject kernel keeps the
    hashed matrix, the sparse-table levels and the packed keys in three
    slots).  Buffers grow geometrically and are shared by every kernel call
    on the same thread, so steady-state sketching performs zero scratch
    allocations.  Callers must not let a view escape: anything returned to
    the caller of a kernel has to be a copy (the row-collapse in
    :func:`sorted_unique_rows` makes one naturally), and requesting the
    same slot again invalidates earlier views of it.
    """
    if rows < 0 or cols < 0:
        raise SketchError("scratch dimensions must be non-negative")
    need = rows * cols
    slots = getattr(_scratch, "slots", None)
    if slots is None:
        slots = _scratch.slots = {}
    buf = slots.get(slot)
    if buf is None or buf.size < need:
        capacity = 1 << 12
        while capacity < need:
            capacity *= 2
        buf = slots[slot] = np.empty(capacity, dtype=np.uint64)
    return buf[:need].reshape(rows, cols)


def pack_keys_batched(
    values: np.ndarray, subjects: np.ndarray, *, out: np.ndarray | None = None
) -> np.ndarray:
    """Pack a ``(T, n)`` value matrix with a shared subject row into keys.

    Equivalent to calling :func:`~repro.sketch.jem.pack_key` on every row,
    but the 32-bit range checks run once over the whole batch instead of
    once per trial, and the shift-or lands in ``out`` (typically a
    :func:`key_scratch` view) without intermediates.
    """
    values = np.asarray(values, dtype=np.uint64)
    if values.ndim != 2:
        raise SketchError("pack_keys_batched needs a (T, n) value matrix")
    subjects = np.asarray(subjects, dtype=np.uint64)
    if values.size and int(values.max()) >> 32:
        raise SketchError("sketch values must fit in 32 bits (k <= 16)")
    if subjects.size and int(subjects.max()) >> 32:
        raise SketchError("subject ids must fit in 32 bits")
    if out is None:
        out = np.empty(values.shape, dtype=np.uint64)
    np.left_shift(values, np.uint64(32), out=out)
    np.bitwise_or(out, subjects[None, :], out=out)
    return out


def sorted_unique_rows(keys: np.ndarray) -> list[np.ndarray]:
    """Per-row sorted deduplication of a 2-d key matrix.

    Returns ``[np.unique(keys[t]) for t in range(T)]`` computed with one
    row-wise in-place sort and one vectorised neighbour comparison over the
    whole matrix.  ``keys`` is clobbered (sorted in place) — pass a scratch
    view, not data you still need.  The returned arrays are fresh copies.
    """
    if keys.ndim != 2:
        raise SketchError("sorted_unique_rows needs a (T, n) key matrix")
    rows, cols = keys.shape
    if cols == 0:
        return [np.empty(0, dtype=np.uint64) for _ in range(rows)]
    keys.sort(axis=1)
    keep = np.empty(keys.shape, dtype=bool)
    keep[:, 0] = True
    np.not_equal(keys[:, 1:], keys[:, :-1], out=keep[:, 1:])
    return [keys[t, keep[t]] for t in range(rows)]


def trial_chunks(
    trials: int, n: int, *, with_levels: bool = True, budget: int | None = None
) -> list[range]:
    """Split ``range(trials)`` so each chunk's working set fits the budget.

    With ``with_levels=True`` (the subject kernel) a chunk of ``c`` trials
    over ``n`` columns materialises roughly ``c * n * log2(n)`` uint64
    entries of sparse-table levels; without (the reduceat-based query and
    MinHash kernels) the working set is just the ``c * n`` packed matrix.
    The chunk size is the largest ``c`` under ``budget`` (always at least
    1, so arbitrarily large inputs degrade to per-trial batching rather
    than failing).
    """
    if trials < 1:
        raise SketchError("trials must be >= 1")
    if budget is None:
        budget = MAX_BATCH_ELEMS  # looked up at call time so tests can shrink it
    levels = max(int(np.log2(n)) + 1, 1) if (with_levels and n > 1) else 1
    per_trial = max(n * levels, 1)
    chunk = max(int(budget // per_trial), 1)
    return [range(lo, min(lo + chunk, trials)) for lo in range(0, trials, chunk)]
