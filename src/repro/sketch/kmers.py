"""Vectorised k-mer extraction and 2-bit packing.

A k-mer over ``a<c<g<t`` packed big-endian into an integer *is* its rank in
the paper's canonical ordering Pi*_k (Section III-A), so "k-mer rank" and
"packed k-mer" are used interchangeably throughout the library.

Packing is done with k slice-shift-or passes over the code array — O(n*k)
work but every pass is a full-width numpy operation, so no Python-level
per-base loop ever runs.
"""

from __future__ import annotations

import numpy as np

from ..errors import SketchError
from ..seq.alphabet import INVALID_CODE

__all__ = [
    "MAX_K",
    "kmer_ranks",
    "canonical_kmer_ranks",
    "valid_kmer_mask",
    "rank_to_string",
    "string_to_rank",
    "revcomp_rank",
]

#: Largest supported k for uint64 packing (2 bits per base, sign-free).
MAX_K = 31

_BASES = "acgt"


def _check_k(k: int) -> None:
    if not 1 <= k <= MAX_K:
        raise SketchError(f"k must be in [1, {MAX_K}], got {k}")


def kmer_ranks(codes: np.ndarray, k: int) -> np.ndarray:
    """Packed forward k-mer ranks for every position.

    Returns a ``uint64`` array of length ``len(codes) - k + 1`` (empty when
    the sequence is shorter than k).  Positions whose window contains an
    invalid code still get a (meaningless) value; mask them with
    :func:`valid_kmer_mask`.
    """
    _check_k(k)
    codes = np.asarray(codes, dtype=np.uint8)
    n = codes.size
    if n < k:
        return np.empty(0, dtype=np.uint64)
    m = n - k + 1
    # Invalid codes (value 4) would pollute neighbouring bits; clamp to the
    # 2-bit range here and rely on valid_kmer_mask for correctness.
    clean = (codes & np.uint8(3)).astype(np.uint64)
    ranks = np.zeros(m, dtype=np.uint64)
    for j in range(k):
        ranks <<= np.uint64(2)
        ranks |= clean[j : j + m]
    return ranks


def canonical_kmer_ranks(codes: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Canonical (strand-independent) k-mer ranks and their validity mask.

    The canonical rank is ``min(forward, reverse_complement)`` — the
    "canonical minimizer" rule of the paper's implementation notes.

    Returns
    -------
    (canon, valid):
        ``canon`` is ``uint64`` of length ``n - k + 1``; ``valid`` is a bool
        mask, false where the window overlaps an invalid (non-acgt) base.
    """
    _check_k(k)
    codes = np.asarray(codes, dtype=np.uint8)
    n = codes.size
    if n < k:
        empty = np.empty(0, dtype=np.uint64)
        return empty, np.empty(0, dtype=bool)
    m = n - k + 1
    invalid = codes == INVALID_CODE
    clean = (codes & np.uint8(3)).astype(np.uint64)
    comp = clean ^ np.uint64(3)  # complement of a 2-bit code is 3 - code
    fwd = np.zeros(m, dtype=np.uint64)
    rc = np.zeros(m, dtype=np.uint64)
    for j in range(k):
        fwd <<= np.uint64(2)
        fwd |= clean[j : j + m]
        # base j of the window contributes digit j (little-endian) to the RC
        rc |= comp[j : j + m] << np.uint64(2 * j)
    canon = np.minimum(fwd, rc)
    valid = _window_all_valid(invalid, k)
    return canon, valid


def valid_kmer_mask(codes: np.ndarray, k: int) -> np.ndarray:
    """Boolean mask: true where the k-window starting there has no invalid base."""
    _check_k(k)
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size < k:
        return np.empty(0, dtype=bool)
    return _window_all_valid(codes == INVALID_CODE, k)


def _window_all_valid(invalid: np.ndarray, k: int) -> np.ndarray:
    """True where a length-k window contains zero invalid positions."""
    if not invalid.any():
        return np.ones(invalid.size - k + 1, dtype=bool)
    counts = np.zeros(invalid.size + 1, dtype=np.int64)
    np.cumsum(invalid, out=counts[1:])
    return (counts[k:] - counts[:-k]) == 0


def rank_to_string(rank: int, k: int) -> str:
    """Decode a packed rank back into its k-mer string (debug/inspection)."""
    _check_k(k)
    rank = int(rank)
    if rank < 0 or rank >= 4**k:
        raise SketchError(f"rank {rank} out of range for k={k}")
    out = []
    for _ in range(k):
        out.append(_BASES[rank & 3])
        rank >>= 2
    return "".join(reversed(out))


def string_to_rank(kmer: str) -> int:
    """Pack a k-mer string into its rank."""
    rank = 0
    for ch in kmer.lower():
        idx = _BASES.find(ch)
        if idx < 0:
            raise SketchError(f"invalid base {ch!r} in k-mer {kmer!r}")
        rank = (rank << 2) | idx
    return rank


def revcomp_rank(rank: int, k: int) -> int:
    """Reverse-complement of a packed k-mer rank."""
    _check_k(k)
    rank = int(rank)
    out = 0
    for _ in range(k):
        out = (out << 2) | ((rank & 3) ^ 3)
        rank >>= 2
    return out
