"""Classical MinHash sketches (Broder 1997) — the paper's baseline scheme.

For each trial ``t`` the sketch of a sequence is the k-mer minimising
``h_t`` over *all* its (canonical) k-mers — no windowing, no intervals.
This is the scheme Fig. 6 of the paper contrasts against JEM: because the
chosen k-mer can come from anywhere in a long contig, it often falls outside
the true overlap region with a 1000 bp read segment, which is why it needs
many more trials to reach the same recall.
"""

from __future__ import annotations

import numpy as np

from ..errors import SketchError
from ..seq.records import SequenceSet
from .hashing import HashFamily
from .kernels import trial_chunks
from .kmers import canonical_kmer_ranks

__all__ = ["minhash_sketch", "minhash_sketch_set", "jaccard", "minhash_jaccard_estimate"]


def minhash_sketch(codes: np.ndarray, k: int, family: HashFamily) -> np.ndarray:
    """The classical T-trial MinHash sketch of one sequence.

    Returns a ``uint64`` array of length T holding, per trial, the packed
    value of the k-mer with the smallest hash.  Raises when the sequence has
    no valid k-mer.
    """
    canon, valid = canonical_kmer_ranks(codes, k)
    kmers = np.unique(canon[valid])
    if kmers.size == 0:
        raise SketchError("sequence has no valid k-mer to sketch")
    # One broadcasted hash pass; row-wise argmin keeps the per-trial
    # first-minimum tie-break (np.argmin is leftmost along the axis).
    return kmers[np.argmin(family.apply_all(kmers), axis=1)]


def minhash_sketch_set(
    sequences: SequenceSet,
    k: int,
    family: HashFamily,
    *,
    minimizer_w: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """MinHash sketches of every sequence in a set.

    Per-sequence k-mer sets are concatenated and *all* trials are answered
    at once: one broadcasted hash pass over the ``(T, n)`` matrix and one
    segmented-minimum (``np.minimum.reduceat`` along axis 1) — the same
    batched kernels as the JEM query path.

    ``minimizer_w`` switches the base set from *all* canonical k-mers to
    the (w, k)-minimizer set — the "minimizer MinHash" middle ground
    between Broder's scheme and JEM, used by the ingredient ablation.

    Returns
    -------
    (sketches, has):
        ``sketches`` is ``(T, n)`` ``uint64``; ``has`` is a bool mask, false
        for sequences with no valid k-mer (their column is undefined).
    """
    n = len(sequences)
    trials = family.size
    sketches = np.zeros((trials, n), dtype=np.uint64)
    has = np.zeros(n, dtype=bool)
    per_seq: list[np.ndarray] = []
    for i in range(n):
        if minimizer_w is not None:
            from .minimizers import minimizers

            kmers = np.unique(minimizers(sequences.codes_of(i), k, minimizer_w).ranks)
        else:
            canon, valid = canonical_kmer_ranks(sequences.codes_of(i), k)
            kmers = np.unique(canon[valid])
        per_seq.append(kmers)
        has[i] = kmers.size > 0
    nonempty = np.flatnonzero(has)
    if nonempty.size == 0:
        return sketches, has
    values = np.concatenate([per_seq[i] for i in nonempty])
    lengths = np.fromiter((per_seq[i].size for i in nonempty), dtype=np.int64)
    starts = np.zeros(nonempty.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=starts[1:])
    if values.size >> 32:
        raise SketchError("too many k-mers for packed-key argmin")  # pragma: no cover
    index = np.arange(values.size, dtype=np.uint64)
    for chunk in trial_chunks(trials, values.size, with_levels=False):
        sub = family if len(chunk) == trials else family.trial_slice(chunk.start, chunk.stop)
        packed = sub.apply_all(values)
        np.left_shift(packed, np.uint64(32), out=packed)
        np.bitwise_or(packed, index[None, :], out=packed)
        mins = np.minimum.reduceat(packed, starts, axis=1)
        sketches[chunk.start : chunk.stop, nonempty] = values[
            (mins & np.uint64(0xFFFFFFFF)).astype(np.int64)
        ]
    return sketches, has


def jaccard(a: np.ndarray, b: np.ndarray) -> float:
    """Exact Jaccard similarity of two value sets (deduplicated)."""
    a = np.unique(np.asarray(a))
    b = np.unique(np.asarray(b))
    if a.size == 0 and b.size == 0:
        return 1.0
    inter = np.intersect1d(a, b, assume_unique=True).size
    return inter / float(a.size + b.size - inter)


def minhash_jaccard_estimate(sketch_a: np.ndarray, sketch_b: np.ndarray) -> float:
    """Fraction of trials on which two sketches agree — estimates Jaccard.

    Broder's identity: P(min h_t(A) = min h_t(B)) = J(A, B), so the match
    fraction over T trials is an unbiased estimator of the Jaccard
    similarity between the underlying k-mer sets.
    """
    sketch_a = np.asarray(sketch_a)
    sketch_b = np.asarray(sketch_b)
    if sketch_a.shape != sketch_b.shape:
        raise SketchError("sketch length mismatch")
    if sketch_a.size == 0:
        raise SketchError("empty sketches")
    return float(np.count_nonzero(sketch_a == sketch_b)) / sketch_a.size
