"""(w, k)-minimizer extraction (Section III-B.2 of the paper).

Given a sequence, an integer ``k`` and a window size ``w``, the minimizer of
a window of ``w`` consecutive k-mers is the k-mer with the smallest hash; the
paper (consistent with Mashmap and winnowing literature) uses the
lexicographically smallest *canonical* k-mer, i.e. the identity hash over
``min(kmer, revcomp(kmer))``.  A minimizer is recorded only when it changes
or when the previous one falls out of the window — exactly the paper's
"added to M_o(s, w) only if they change or the current minimizer goes out of
bounds".

The whole extraction is vectorised: canonical packing is k shift-or passes
and window minima come from the van Herk–Gil–Werman scan over packed
``(rank << 32) | position`` keys, giving leftmost-tie-break argmins with no
Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SketchError
from .kmers import canonical_kmer_ranks
from .windowmin import sliding_window_min

__all__ = ["MinimizerList", "minimizers", "minimizers_set", "minimizer_density"]

#: Key assigned to k-mers overlapping invalid bases; loses every comparison
#: against a valid canonical k-mer (canonical values are < 2^32 - 1 for
#: k <= 16 because min(x, revcomp(x)) can never be all-t).
_SENTINEL32 = np.uint64((1 << 32) - 1)


@dataclass(frozen=True)
class MinimizerList:
    """Minimizer tuples ⟨k_i, p_i⟩ of one sequence, sorted by position.

    Attributes
    ----------
    ranks:
        Canonical packed k-mer values (``uint64``).
    positions:
        Start positions on the sequence (``int64``), strictly increasing.
    k, w:
        The parameters the list was extracted with.
    """

    ranks: np.ndarray
    positions: np.ndarray
    k: int
    w: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "ranks", np.ascontiguousarray(self.ranks, dtype=np.uint64))
        object.__setattr__(
            self, "positions", np.ascontiguousarray(self.positions, dtype=np.int64)
        )
        if self.ranks.shape != self.positions.shape:
            raise SketchError("ranks/positions length mismatch")

    def __len__(self) -> int:
        return int(self.ranks.size)


def minimizers(codes: np.ndarray, k: int, w: int) -> MinimizerList:
    """Extract the minimizer list M_o(s, w) from a code array.

    Sequences shorter than ``k`` produce an empty list; sequences with fewer
    than ``w`` k-mers are treated as a single window (the minimizer of all
    their k-mers), matching how short contigs are still sketchable.

    Requires ``k <= 16`` (packed 32-bit canonical ranks; the paper uses
    k = 16).
    """
    if k > 16:
        raise SketchError(f"minimizer extraction requires k <= 16, got {k}")
    if w < 1:
        raise SketchError(f"window size must be >= 1, got {w}")
    codes = np.asarray(codes, dtype=np.uint8)
    canon, valid = canonical_kmer_ranks(codes, k)
    return _minimizers_from_canon(canon, valid, k, w)


def _minimizers_from_canon(
    canon: np.ndarray, valid: np.ndarray, k: int, w: int
) -> MinimizerList:
    """Extraction core shared by :func:`minimizers` and :func:`minimizers_set`."""
    nk = canon.size
    if nk == 0:
        return MinimizerList(
            np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64), k, w
        )
    canon = np.where(valid, canon, _SENTINEL32)
    weff = min(w, nk)
    keys = (canon << np.uint64(32)) | np.arange(nk, dtype=np.uint64)
    window_keys = sliding_window_min(keys, weff)
    # Collapse runs of identical keys: a new entry appears exactly when the
    # minimizer changes or the previous occurrence left the window (which
    # changes the position half of the key).
    change = np.empty(window_keys.size, dtype=bool)
    change[0] = True
    np.not_equal(window_keys[1:], window_keys[:-1], out=change[1:])
    uniq = window_keys[change]
    ranks = uniq >> np.uint64(32)
    positions = (uniq & np.uint64(0xFFFFFFFF)).astype(np.int64)
    keep = ranks != _SENTINEL32  # windows made only of invalid k-mers
    return MinimizerList(ranks[keep], positions[keep], k, w)


#: Target bases per shared packing chunk.  Small enough that the k
#: shift-or passes stay cache-resident (per-call numpy overhead would
#: dominate below ~10 kbp; memory bandwidth dominates above ~1 Mbp).
_CHUNK_BASES = 1 << 17


def minimizers_set(sequences, k: int, w: int) -> list[MinimizerList]:
    """Minimizer lists for every sequence of a set, with shared packing.

    Sequences are grouped into ~128 kbp chunks of the concatenated buffer;
    canonical k-mer ranks are packed once per chunk (k vector passes per
    chunk instead of per sequence) and each sequence reads its slice —
    boundary-straddling windows are excluded by the slicing.  Profiling
    showed per-sequence packing dominating query sketching; chunking keeps
    the passes in cache, which whole-buffer packing would not.
    """
    if k > 16:
        raise SketchError(f"minimizer extraction requires k <= 16, got {k}")
    if w < 1:
        raise SketchError(f"window size must be >= 1, got {w}")
    buffer = sequences.buffer
    offsets = sequences.offsets
    n = len(sequences)
    out: list[MinimizerList] = []
    empty = lambda: MinimizerList(  # noqa: E731 - tiny local factory
        np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64), k, w
    )
    group_start = 0
    while group_start < n:
        base_lo = int(offsets[group_start])
        # Largest group_end with offsets[group_end] <= base_lo + chunk, in
        # one searchsorted over the (sorted) offsets — no per-sequence
        # rescan, and a sequence longer than the chunk still forms its own
        # group because the bound below is at least group_start + 1.
        group_end = int(
            np.searchsorted(offsets, base_lo + _CHUNK_BASES, side="right")
        ) - 1
        group_end = min(max(group_end, group_start + 1), n)
        base_hi = int(offsets[group_end])
        chunk = buffer[base_lo:base_hi]
        if chunk.size >= k:
            canon, valid = canonical_kmer_ranks(chunk, k)
        else:
            canon = np.empty(0, dtype=np.uint64)
            valid = np.empty(0, dtype=bool)
        for i in range(group_start, group_end):
            lo = int(offsets[i]) - base_lo
            hi = int(offsets[i + 1]) - base_lo - k + 1  # windows inside seq i
            if hi <= lo:
                out.append(empty())
            else:
                out.append(_minimizers_from_canon(canon[lo:hi], valid[lo:hi], k, w))
        group_start = group_end
    return out


def minimizer_density(length: int, k: int, w: int) -> float:
    """Expected minimizers per base for a random sequence (~2/(w+1)).

    Used by the cost model to predict sketch-table sizes without sketching.
    """
    if length < k:
        return 0.0
    nk = length - k + 1
    expected = 2.0 * nk / (min(w, nk) + 1.0)
    return min(expected, float(nk)) / float(length)
