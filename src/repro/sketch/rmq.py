"""Sparse-table range-minimum queries, vectorised over many intervals.

The JEM sketch needs, for every sliding interval over a minimizer list and
for every trial, the minimizer with the smallest hash value inside the
interval.  Intervals have *variable* length (they are position ranges, not
index ranges), so the fixed-window scan does not apply; a sparse table
answers every ``[start, end)`` query in O(1) after O(n log n) vectorised
preprocessing.
"""

from __future__ import annotations

import numpy as np

from ..errors import SketchError
from .kernels import key_scratch

__all__ = ["SparseTableRMQ", "SparseTableRMQ2D", "range_min", "range_argmin"]


def _level_scratch(total: int) -> np.ndarray:
    """Flat thread-local uint64 buffer backing a workspace table's levels."""
    return key_scratch(1, total, slot="rmq").reshape(total)


def _interval_levels(starts: np.ndarray, ends: np.ndarray, n: int) -> np.ndarray:
    """Sparse-table level ``j = floor(log2(length))`` per half-open interval.

    Shared by the 1-d and 2-d tables so the interval bucketing is computed
    (and validated) exactly once per query batch.
    """
    lengths = ends - starts
    if (lengths < 1).any():
        raise SketchError("empty interval in RMQ query")
    if (starts < 0).any() or (ends > n).any():
        raise SketchError("RMQ interval out of bounds")
    js = np.floor(np.log2(lengths)).astype(np.int64)
    # Guard against float rounding at exact powers of two.
    too_big = (np.int64(1) << js) > lengths
    js[too_big] -= 1
    return js


class SparseTableRMQ:
    """Idempotent range-min structure over a 1-d array.

    ``query(starts, ends)`` answers many half-open interval minima at once;
    ``query_argmin`` additionally returns the leftmost index achieving the
    minimum (via packed ``(value << 32) | index`` keys, requiring values
    < 2^32).
    """

    __slots__ = ("_levels", "_n", "_packed")

    def __init__(self, values: np.ndarray, *, track_argmin: bool = False) -> None:
        values = np.asarray(values, dtype=np.uint64)
        n = values.size
        if n == 0:
            raise SketchError("cannot build RMQ over an empty array")
        self._n = n
        self._packed = bool(track_argmin)
        if track_argmin:
            if int(values.max()) >> 32:
                raise SketchError("argmin tracking requires values < 2^32")
            values = (values << np.uint64(32)) | np.arange(n, dtype=np.uint64)
        levels = [values]
        span = 1
        while 2 * span <= n:
            prev = levels[-1]
            levels.append(np.minimum(prev[: n - 2 * span + 1], prev[span : n - span + 1]))
            span *= 2
        self._levels = levels

    def __len__(self) -> int:
        return self._n

    def _query_keys(self, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
        starts = np.asarray(starts, dtype=np.int64)
        ends = np.asarray(ends, dtype=np.int64)
        if starts.shape != ends.shape:
            raise SketchError("starts/ends shape mismatch")
        js = _interval_levels(starts, ends, self._n)
        out = np.empty(starts.shape, dtype=np.uint64)
        for j in np.unique(js):
            level = self._levels[int(j)]
            mask = js == j
            span = np.int64(1) << j
            left = level[starts[mask]]
            right = level[ends[mask] - span]
            out[mask] = np.minimum(left, right)
        return out

    def query(self, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
        """Minimum value over each half-open interval ``[start, end)``."""
        keys = self._query_keys(starts, ends)
        if self._packed:
            return keys >> np.uint64(32)
        return keys

    def query_argmin(self, starts: np.ndarray, ends: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(indices, minima) per interval; leftmost index on value ties."""
        if not self._packed:
            raise SketchError("build with track_argmin=True to query argmins")
        keys = self._query_keys(starts, ends)
        return (keys & np.uint64(0xFFFFFFFF)).astype(np.int64), keys >> np.uint64(32)


class SparseTableRMQ2D:
    """One sparse table over a ``(T, n)`` matrix, intervals shared by rows.

    The batched JEM kernel asks the *same* position intervals of every
    trial's hash row, so one table build answers all trials: every level is
    a single 2-d ``np.minimum`` pass (``log n`` dispatches total instead of
    ``T log n``), and at query time the interval-level bucketing is computed
    once and each bucket gathers a ``(T, m_j)`` block.  Per row the answers
    are bit-identical to a :class:`SparseTableRMQ` built on that row.

    ``track_argmin`` packs ``(value << 32) | column`` rows; pass
    ``values_packable=True`` when values are known ``< 2^32`` (e.g. LCG
    hashes ``< 2^31``) to skip the O(T·n) range scan.

    ``max_interval`` caps the table at the levels actually reachable by
    queries of at most that length: sliding ℓ-intervals over a minimizer
    list are far shorter than the list itself, so roughly half the
    ``log n`` levels of a full table would never be read.  Queries longer
    than the cap raise.  ``workspace=True`` additionally carves the level
    storage (and the packed level 0) out of a thread-local scratch slot
    instead of fresh allocations; building another ``workspace`` table on
    the same thread reuses the slot, so only the most recent such table
    may be queried.
    """

    __slots__ = ("_levels", "_n", "_rows", "_packed")

    def __init__(
        self,
        values: np.ndarray,
        *,
        track_argmin: bool = False,
        values_packable: bool = False,
        max_interval: int | None = None,
        workspace: bool = False,
    ) -> None:
        values = np.asarray(values, dtype=np.uint64)
        if values.ndim != 2:
            raise SketchError("SparseTableRMQ2D needs a 2-d (T, n) matrix")
        rows, n = values.shape
        if rows == 0 or n == 0:
            raise SketchError("cannot build RMQ over an empty matrix")
        if n >> 32:
            raise SketchError("RMQ2D supports at most 2^32 columns")  # pragma: no cover
        if max_interval is not None and max_interval < 1:
            raise SketchError("max_interval must be >= 1")
        self._rows = rows
        self._n = n
        self._packed = bool(track_argmin)
        if track_argmin and not values_packable and int(values.max()) >> 32:
            raise SketchError("argmin tracking requires values < 2^32")
        # Level j holds minima over spans of 2^j; a query of length L only
        # ever touches level floor(log2(L)), so cap the build there.
        widths = [n]
        span = 1
        while 2 * span <= n and (max_interval is None or 2 * span <= max_interval):
            span *= 2
            widths.append(n - span + 1)
        if workspace:
            flat = _level_scratch(rows * sum(widths))
        pos = 0

        def _carve(m: int) -> np.ndarray:
            nonlocal pos
            if not workspace:
                return np.empty((rows, m), dtype=np.uint64)
            view = flat[pos : pos + rows * m].reshape(rows, m)
            pos += rows * m
            return view

        if track_argmin:
            level0 = _carve(n)
            np.left_shift(values, np.uint64(32), out=level0)
            np.bitwise_or(level0, np.arange(n, dtype=np.uint64)[None, :], out=level0)
        else:
            level0 = values
        levels = [level0]
        span = 1
        for m in widths[1:]:
            prev = levels[-1]
            nxt = _carve(m)
            np.minimum(prev[:, :m], prev[:, span : span + m], out=nxt)
            levels.append(nxt)
            span *= 2
        self._levels = levels

    @property
    def shape(self) -> tuple[int, int]:
        return (self._rows, self._n)

    def _query_keys(
        self, starts: np.ndarray, ends: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        starts = np.asarray(starts, dtype=np.int64)
        ends = np.asarray(ends, dtype=np.int64)
        if starts.shape != ends.shape or starts.ndim != 1:
            raise SketchError("starts/ends must be equal-length 1-d arrays")
        js = _interval_levels(starts, ends, self._n)
        if js.size and int(js.max()) >= len(self._levels):
            raise SketchError("RMQ interval longer than the max_interval cap")
        shape = (self._rows, starts.size)
        if out is None:
            out = np.empty(shape, dtype=np.uint64)
        elif out.shape != shape or out.dtype != np.uint64:
            raise SketchError("RMQ out buffer must be (rows, m) uint64")
        for j in np.unique(js):
            level = self._levels[int(j)]
            mask = js == j
            span = np.int64(1) << j
            out[:, mask] = np.minimum(level[:, starts[mask]], level[:, ends[mask] - span])
        return out

    def query(self, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
        """``(T, m)`` minima — row t answers interval i over row t's values."""
        keys = self._query_keys(starts, ends)
        if self._packed:
            return keys >> np.uint64(32)
        return keys

    def query_argmin(self, starts: np.ndarray, ends: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(T, m)`` (column indices, minima); leftmost column on value ties."""
        if not self._packed:
            raise SketchError("build with track_argmin=True to query argmins")
        keys = self._query_keys(starts, ends)
        return (keys & np.uint64(0xFFFFFFFF)).astype(np.int64), keys >> np.uint64(32)

    def query_packed(
        self, starts: np.ndarray, ends: np.ndarray, *, out: np.ndarray | None = None
    ) -> np.ndarray:
        """``(T, m)`` raw ``(min << 32) | argmin-column`` keys per interval.

        The key matrix underlying :meth:`query_argmin`, exposed so hot
        callers can mask out the column (or minimum) half in place instead
        of paying the two unpacking allocations; ``out`` (typically a
        scratch view) makes the query itself allocation-free.
        """
        if not self._packed:
            raise SketchError("build with track_argmin=True to query packed keys")
        return self._query_keys(starts, ends, out)


def range_min(values: np.ndarray, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """One-shot convenience wrapper around :class:`SparseTableRMQ`."""
    return SparseTableRMQ(values).query(starts, ends)


def range_argmin(
    values: np.ndarray, starts: np.ndarray, ends: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """One-shot argmin wrapper; returns (indices, minima)."""
    return SparseTableRMQ(values, track_argmin=True).query_argmin(starts, ends)
