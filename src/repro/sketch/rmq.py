"""Sparse-table range-minimum queries, vectorised over many intervals.

The JEM sketch needs, for every sliding interval over a minimizer list and
for every trial, the minimizer with the smallest hash value inside the
interval.  Intervals have *variable* length (they are position ranges, not
index ranges), so the fixed-window scan does not apply; a sparse table
answers every ``[start, end)`` query in O(1) after O(n log n) vectorised
preprocessing.
"""

from __future__ import annotations

import numpy as np

from ..errors import SketchError

__all__ = ["SparseTableRMQ", "range_min", "range_argmin"]


class SparseTableRMQ:
    """Idempotent range-min structure over a 1-d array.

    ``query(starts, ends)`` answers many half-open interval minima at once;
    ``query_argmin`` additionally returns the leftmost index achieving the
    minimum (via packed ``(value << 32) | index`` keys, requiring values
    < 2^32).
    """

    __slots__ = ("_levels", "_n", "_packed")

    def __init__(self, values: np.ndarray, *, track_argmin: bool = False) -> None:
        values = np.asarray(values, dtype=np.uint64)
        n = values.size
        if n == 0:
            raise SketchError("cannot build RMQ over an empty array")
        self._n = n
        self._packed = bool(track_argmin)
        if track_argmin:
            if int(values.max()) >> 32:
                raise SketchError("argmin tracking requires values < 2^32")
            values = (values << np.uint64(32)) | np.arange(n, dtype=np.uint64)
        levels = [values]
        span = 1
        while 2 * span <= n:
            prev = levels[-1]
            levels.append(np.minimum(prev[: n - 2 * span + 1], prev[span : n - span + 1]))
            span *= 2
        self._levels = levels

    def __len__(self) -> int:
        return self._n

    def _query_keys(self, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
        starts = np.asarray(starts, dtype=np.int64)
        ends = np.asarray(ends, dtype=np.int64)
        if starts.shape != ends.shape:
            raise SketchError("starts/ends shape mismatch")
        lengths = ends - starts
        if (lengths < 1).any():
            raise SketchError("empty interval in RMQ query")
        if (starts < 0).any() or (ends > self._n).any():
            raise SketchError("RMQ interval out of bounds")
        # level j covers spans of 2^j; pick j = floor(log2(length))
        js = np.floor(np.log2(lengths)).astype(np.int64)
        # Guard against float rounding at exact powers of two.
        too_big = (np.int64(1) << js) > lengths
        js[too_big] -= 1
        out = np.empty(starts.shape, dtype=np.uint64)
        for j in np.unique(js):
            level = self._levels[int(j)]
            mask = js == j
            span = np.int64(1) << j
            left = level[starts[mask]]
            right = level[ends[mask] - span]
            out[mask] = np.minimum(left, right)
        return out

    def query(self, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
        """Minimum value over each half-open interval ``[start, end)``."""
        keys = self._query_keys(starts, ends)
        if self._packed:
            return keys >> np.uint64(32)
        return keys

    def query_argmin(self, starts: np.ndarray, ends: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(indices, minima) per interval; leftmost index on value ties."""
        if not self._packed:
            raise SketchError("build with track_argmin=True to query argmins")
        keys = self._query_keys(starts, ends)
        return (keys & np.uint64(0xFFFFFFFF)).astype(np.int64), keys >> np.uint64(32)


def range_min(values: np.ndarray, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """One-shot convenience wrapper around :class:`SparseTableRMQ`."""
    return SparseTableRMQ(values).query(starts, ends)


def range_argmin(
    values: np.ndarray, starts: np.ndarray, ends: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """One-shot argmin wrapper; returns (indices, minima)."""
    return SparseTableRMQ(values, track_argmin=True).query_argmin(starts, ends)
