"""Exact O(n) sliding-window minimum (van Herk–Gil–Werman block algorithm).

Computes the minimum of every length-``w`` window of a 1-d array using two
block scans (a per-block prefix min and a per-block suffix min) — no Python
loop over windows, dtype-preserving (works on ``uint64`` keys, which
``scipy.ndimage`` would silently cast to float and corrupt above 2^53).
"""

from __future__ import annotations

import numpy as np

from ..errors import SketchError

__all__ = ["sliding_window_min", "sliding_window_argmin"]


def sliding_window_min(values: np.ndarray, w: int) -> np.ndarray:
    """Minimum of every window ``values[i : i + w]``.

    Returns an array of length ``len(values) - w + 1``.  Raises when the
    input is shorter than the window.
    """
    values = np.asarray(values)
    n = values.size
    if w < 1:
        raise SketchError(f"window size must be >= 1, got {w}")
    if n < w:
        raise SketchError(f"input of length {n} shorter than window {w}")
    if w == 1:
        return values.copy()

    if np.issubdtype(values.dtype, np.integer):
        sentinel = np.iinfo(values.dtype).max
    else:
        sentinel = np.inf

    m = n - w + 1
    nblocks = -(-n // w)
    padded = np.full(nblocks * w, sentinel, dtype=values.dtype)
    padded[:n] = values
    blocks = padded.reshape(nblocks, w)

    # prefix[i] = min(block_start .. i), suffix[i] = min(i .. block_end)
    prefix = np.minimum.accumulate(blocks, axis=1).reshape(-1)
    suffix = np.minimum.accumulate(blocks[:, ::-1], axis=1)[:, ::-1].reshape(-1)

    # window [i, i+w-1]: suffix[i] covers i..end-of-i's-block, prefix[i+w-1]
    # covers start-of-that-block..i+w-1; the two spans tile the window.
    return np.minimum(suffix[:m], prefix[w - 1 : w - 1 + m])


def sliding_window_argmin(values: np.ndarray, w: int) -> tuple[np.ndarray, np.ndarray]:
    """Leftmost argmin (and min) of every length-``w`` window.

    Uses the packed-key trick: keys ``(value << 32) | position`` are compared
    as one ``uint64``, so the minimum key is the smallest value with the
    *leftmost* position on ties.  Requires ``value < 2^32`` and
    ``len(values) < 2^32``.

    Returns
    -------
    (positions, minima):
        Both arrays of length ``len(values) - w + 1``.
    """
    values = np.asarray(values, dtype=np.uint64)
    if values.size and int(values.max()) >> 32:
        raise SketchError("sliding_window_argmin requires values < 2^32 (use k <= 16)")
    if values.size >> 32:
        raise SketchError("input too long for packed-key argmin")  # pragma: no cover
    keys = (values << np.uint64(32)) | np.arange(values.size, dtype=np.uint64)
    packed = sliding_window_min(keys, w)
    positions = (packed & np.uint64(0xFFFFFFFF)).astype(np.int64)
    minima = packed >> np.uint64(32)
    return positions, minima
