import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import UNALIGNABLE, banded_edit_distance, edit_distance, percent_identity
from repro.errors import ReproError
from repro.seq import encode

dna = st.text(alphabet="acgt", min_size=0, max_size=60)


def naive_edit_distance(a: str, b: str) -> int:
    n, m = len(a), len(b)
    dp = list(range(m + 1))
    for i in range(1, n + 1):
        prev_diag = dp[0]
        dp[0] = i
        for j in range(1, m + 1):
            cur = min(dp[j] + 1, dp[j - 1] + 1, prev_diag + (a[i - 1] != b[j - 1]))
            prev_diag = dp[j]
            dp[j] = cur
    return dp[m]


def test_known_cases():
    assert edit_distance(encode("kitten".replace("k", "a").replace("i", "c")), encode("kitten".replace("k", "a").replace("i", "c"))) == 0
    assert edit_distance(encode("acgt"), encode("acgt")) == 0
    assert edit_distance(encode("acgt"), encode("aggt")) == 1
    assert edit_distance(encode("acgt"), encode("acgta")) == 1
    assert edit_distance(encode(""), encode("acg")) == 3


@settings(max_examples=80, deadline=None)
@given(dna, dna)
def test_matches_naive(a, b):
    assert edit_distance(encode(a), encode(b)) == naive_edit_distance(a, b)


@settings(max_examples=50, deadline=None)
@given(dna, dna)
def test_banded_equals_full_when_band_wide(a, b):
    band = max(len(a), len(b), 1)
    assert banded_edit_distance(encode(a), encode(b), band) == naive_edit_distance(a, b)


def test_banded_unalignable_on_length_gap():
    a = encode("a" * 100)
    b = encode("a" * 10)
    assert banded_edit_distance(a, b, band=5) == UNALIGNABLE


def test_banded_exact_within_band(rng):
    from repro.simulate import ErrorModel, apply_errors

    codes = rng.integers(0, 4, size=2000).astype(np.uint8)
    noisy = apply_errors(codes, ErrorModel(substitution=0.01, insertion=0.002, deletion=0.002), rng)
    d_banded = banded_edit_distance(codes, noisy, band=64)
    # true distance is small, so band-64 must be exact; compare with wide band
    d_wide = banded_edit_distance(codes, noisy, band=256)
    assert d_banded == d_wide
    assert 0 < d_banded < 80


def test_band_validation():
    with pytest.raises(ReproError):
        banded_edit_distance(encode("acg"), encode("acg"), band=0)


def test_percent_identity_range():
    assert percent_identity(encode("acgtacgt"), encode("acgtacgt")) == 100.0
    assert percent_identity(encode(""), encode("")) == 100.0
    low = percent_identity(encode("a" * 50), encode("t" * 50))
    assert 0.0 <= low < 20.0


def test_percent_identity_unalignable_is_zero():
    assert percent_identity(encode("a" * 500), encode("a" * 10), band=4) == 0.0
