import numpy as np
import pytest

from repro.align import locate_segment, segment_identity
from repro.seq import random_codes, reverse_complement
from repro.simulate import ErrorModel, apply_errors


@pytest.fixture
def contig(rng):
    return random_codes(5_000, rng)


def test_locate_exact_substring(contig):
    seg = contig[2_000:3_000]
    placed = locate_segment(seg, contig, k=12, w=10)
    assert placed is not None
    qlo, qhi, clo, chi, strand = placed
    assert strand == 1
    assert abs(clo - 2_000) < 50
    assert abs(chi - 3_000) < 50


def test_locate_reverse_strand(contig):
    seg = reverse_complement(contig[1_000:2_000])
    placed = locate_segment(seg, contig, k=12, w=10)
    assert placed is not None
    assert placed[4] == -1


def test_locate_unrelated_returns_none_or_weak(rng, contig):
    alien = random_codes(1_000, np.random.default_rng(999))
    placed = locate_segment(alien, contig, k=14, w=6)
    # random 14-mers shared between unrelated 1kb/5kb sequences are rare
    if placed is not None:
        # tolerated, but the identity must then be terrible
        assert segment_identity(alien, contig, k=14, w=6) < 60.0


def test_identity_exact_is_100(contig):
    seg = contig[500:1_500]
    assert segment_identity(seg, contig, k=12, w=10) == 100.0


def test_identity_with_hifi_errors(rng, contig):
    seg = apply_errors(
        contig[500:1_500], ErrorModel(substitution=0.002, insertion=0.001, deletion=0.001), rng
    )
    pid = segment_identity(seg, contig, k=12, w=10)
    assert 98.0 < pid <= 100.0


def test_identity_contig_shorter_than_segment(rng):
    genome = random_codes(3_000, rng)
    seg = genome[1_000:2_000]
    short_contig = genome[1_200:1_700]  # 500 bp inside the segment's locus
    pid = segment_identity(seg, short_contig, k=12, w=10)
    assert pid > 95.0


def test_identity_unlocatable_is_zero(rng):
    seg = random_codes(500, rng)
    contig = random_codes(500, np.random.default_rng(1234))
    assert segment_identity(seg, contig, k=16, w=4) == 0.0
