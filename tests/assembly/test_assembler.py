import numpy as np
import pytest

from repro.assembly import AssemblyConfig, assemble
from repro.errors import AssemblyError
from repro.seq import SequenceSet, decode, reverse_complement
from repro.simulate import GenomeProfile, IlluminaProfile, simulate_genome, simulate_short_reads


def test_config_validation():
    with pytest.raises(AssemblyError):
        AssemblyConfig(k=24)  # even
    with pytest.raises(AssemblyError):
        AssemblyConfig(k=2)
    with pytest.raises(AssemblyError):
        AssemblyConfig(min_count=0)
    with pytest.raises(AssemblyError):
        AssemblyConfig(k=25, min_contig_length=10)


def test_assemble_perfect_coverage_single_contig():
    """Error-free tiled reads over a random genome reassemble it."""
    rng = np.random.default_rng(0)
    genome = rng.integers(0, 4, size=5_000).astype(np.uint8)
    reads = SequenceSet.from_strings(
        [(f"r{i}", decode(genome[i : i + 100])) for i in range(0, 4_901, 10)]
    )
    contigs = assemble(reads, AssemblyConfig(k=21, min_count=1, min_contig_length=100))
    assert len(contigs) == 1
    got = contigs.codes_of(0)
    fwd, rc = got.tobytes(), reverse_complement(got).tobytes()
    assert genome.tobytes() in (fwd, rc)


def test_assemble_empty_reads():
    contigs = assemble(SequenceSet.empty(), AssemblyConfig(min_count=1))
    assert len(contigs) == 0


def test_contigs_sorted_longest_first(rng):
    genome = simulate_genome(GenomeProfile(length=60_000, repeat_fraction=0.2,
                                           repeat_divergence=0.0, repeat_length=300), rng)
    reads = simulate_short_reads(genome, IlluminaProfile(coverage=20), rng)
    contigs = assemble(reads, AssemblyConfig(k=25, min_count=3, min_contig_length=100))
    lengths = contigs.lengths
    assert (np.diff(lengths) <= 0).all()
    assert contigs.names[0] == "contig_00000"


def test_strand_deduplication(rng):
    """Assembling reads and their RCs yields each unitig once."""
    genome = rng.integers(0, 4, size=3_000).astype(np.uint8)
    fwd = [(f"f{i}", decode(genome[i : i + 100])) for i in range(0, 2_901, 20)]
    rc = [
        (f"r{i}", decode(reverse_complement(genome[i : i + 100])))
        for i in range(0, 2_901, 20)
    ]
    contigs = assemble(
        SequenceSet.from_strings(fwd + rc), AssemblyConfig(k=21, min_count=1, min_contig_length=100)
    )
    assert len(contigs) == 1


def test_assembly_covers_genome(rng):
    genome = simulate_genome(GenomeProfile(length=80_000), rng)
    reads = simulate_short_reads(genome, IlluminaProfile(coverage=25), rng)
    contigs = assemble(reads, AssemblyConfig(k=25, min_count=3, min_contig_length=300))
    assert contigs.total_bases > 0.9 * genome.size


def test_deterministic(rng):
    genome = simulate_genome(GenomeProfile(length=30_000), np.random.default_rng(4))
    reads = simulate_short_reads(genome, IlluminaProfile(coverage=20), np.random.default_rng(5))
    a = assemble(reads, AssemblyConfig(min_count=2))
    b = assemble(reads, AssemblyConfig(min_count=2))
    assert a.names == b.names
    assert np.array_equal(a.buffer, b.buffer)
