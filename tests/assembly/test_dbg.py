import numpy as np
import pytest

from repro.assembly import DeBruijnGraph
from repro.errors import AssemblyError
from repro.seq import decode, encode
from repro.sketch import kmer_ranks, string_to_rank


def graph_from_seq(seq: str, k: int) -> DeBruijnGraph:
    """Graph of a single sequence's forward k-mers (single-strand)."""
    ranks = np.unique(kmer_ranks(encode(seq), k))
    return DeBruijnGraph(ranks, k)


def test_contains():
    g = graph_from_seq("acgtacc", 3)
    assert g.contains(np.array([string_to_rank("acg")], dtype=np.uint64))[0]
    assert not g.contains(np.array([string_to_rank("ggg")], dtype=np.uint64))[0]


def test_unsorted_rejected():
    with pytest.raises(AssemblyError):
        DeBruijnGraph(np.array([5, 1], dtype=np.uint64), 3)


def test_degrees_linear_path():
    g = graph_from_seq("acgtgg", 3)  # acg -> cgt -> gtg -> tgg, no repeats
    assert (g.out_degree <= 1).all()
    assert (g.in_degree <= 1).all()


def test_single_unitig_reconstructs_sequence():
    seq = "aaacccgggtttacgtg"  # no repeated 4-mer -> one non-branching path
    g = graph_from_seq(seq, 5)
    chains = g.unitig_node_chains()
    seqs = {decode(g.chain_to_codes(c)) for c in chains}
    assert seq in seqs


def test_branch_splits_unitigs():
    # Two sequences sharing a middle create branching.
    a = "aaccggtt"
    b = "ttccggaa"
    ranks = np.unique(
        np.concatenate([kmer_ranks(encode(a), 4), kmer_ranks(encode(b), 4)])
    )
    g = DeBruijnGraph(ranks, 4)
    chains = g.unitig_node_chains()
    # every node in exactly one chain
    all_nodes = np.concatenate(chains)
    assert sorted(all_nodes.tolist()) == list(range(len(g)))


def test_cycle_is_recovered():
    # circular sequence: abcabc... k-mers of "acgac" wrapping
    seq = "acgtacgt"  # contains the cycle acgt -> cgta -> gtac -> tacg -> acgt
    g = graph_from_seq(seq, 4)
    chains = g.unitig_node_chains()
    assert sum(len(c) for c in chains) == len(g)


def test_chain_to_codes_empty_rejected():
    g = graph_from_seq("acgta", 3)
    with pytest.raises(AssemblyError):
        g.chain_to_codes(np.empty(0, dtype=np.int64))


def test_empty_graph():
    g = DeBruijnGraph(np.empty(0, dtype=np.uint64), 5)
    assert g.unitig_node_chains() == []
