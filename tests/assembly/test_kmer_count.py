import numpy as np
import pytest

from repro.assembly import count_kmers, solid_kmers
from repro.assembly.kmer_count import _revcomp_ranks
from repro.errors import AssemblyError
from repro.seq import SequenceSet
from repro.sketch import revcomp_rank, string_to_rank


def test_counts_simple():
    reads = SequenceSet.from_strings([("r", "acgt")])
    kmers, counts = count_kmers(reads, 3)
    # forward: acg, cgt; their RCs: cgt, acg -> both counted twice
    acg, cgt = string_to_rank("acg"), string_to_rank("cgt")
    assert set(kmers.tolist()) == {acg, cgt}
    assert counts.tolist() == [2, 2]


def test_strand_closure():
    """k-mer and its RC always carry equal counts."""
    rng = np.random.default_rng(0)
    from repro.seq import decode, random_codes

    reads = SequenceSet.from_strings(
        [(f"r{i}", decode(random_codes(200, rng))) for i in range(10)]
    )
    kmers, counts = count_kmers(reads, 7)
    lookup = dict(zip(kmers.tolist(), counts.tolist()))
    for km, ct in list(lookup.items())[:200]:
        assert lookup[revcomp_rank(km, 7)] == ct


def test_boundary_windows_excluded():
    # Two reads; no k-mer should span the junction.
    reads = SequenceSet.from_strings([("a", "aaaa"), ("b", "cccc")])
    kmers, _ = count_kmers(reads, 3)
    bad = string_to_rank("aac")  # would only exist across the boundary
    assert bad not in kmers.tolist()


def test_invalid_bases_excluded():
    reads = SequenceSet.from_strings([("a", "aanaa")])
    kmers, counts = count_kmers(reads, 3)
    # only k-mers 'aa?'/'?aa' windows without 'n': none of length 3 avoid the n
    # positions 0..2 span index 2 ('n')? "aan","ana","naa" all contain n.
    assert kmers.size == 0


def test_reads_shorter_than_k():
    reads = SequenceSet.from_strings([("a", "ac")])
    kmers, counts = count_kmers(reads, 5)
    assert kmers.size == 0


def test_solid_filter():
    reads = SequenceSet.from_strings([("a", "acgtacgt"), ("b", "acgtacgt"), ("c", "ttttcccc")])
    solid = solid_kmers(reads, 4, min_count=3)
    rare = solid_kmers(reads, 4, min_count=1)
    assert solid.size < rare.size
    assert np.isin(solid, rare).all()


def test_solid_bad_min_count():
    reads = SequenceSet.from_strings([("a", "acgt")])
    with pytest.raises(AssemblyError):
        solid_kmers(reads, 3, min_count=0)


def test_bad_k():
    reads = SequenceSet.from_strings([("a", "acgt")])
    with pytest.raises(AssemblyError):
        count_kmers(reads, 0)


def test_revcomp_ranks_vectorised_matches_scalar():
    ranks = np.array([string_to_rank("acgta"), string_to_rank("ttttt")], dtype=np.uint64)
    rc = _revcomp_ranks(ranks, 5)
    assert rc[0] == revcomp_rank(int(ranks[0]), 5)
    assert rc[1] == revcomp_rank(int(ranks[1]), 5)
