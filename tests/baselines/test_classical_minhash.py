import numpy as np
import pytest

from repro.baselines import ClassicalMinHashMapper
from repro.core import JEMConfig
from repro.errors import MappingError
from repro.seq import SequenceSet


CFG = JEMConfig(k=12, w=20, ell=500, trials=15, seed=3)


def test_requires_index(clean_reads):
    with pytest.raises(MappingError):
        ClassicalMinHashMapper(CFG).map_reads(clean_reads)


def test_empty_contigs(clean_reads):
    with pytest.raises(MappingError):
        ClassicalMinHashMapper(CFG).index(SequenceSet.empty())


def test_maps_clean_data(tiling_contigs, clean_reads):
    mapper = ClassicalMinHashMapper(CFG)
    mapper.index(tiling_contigs)
    result = mapper.map_reads(clean_reads)
    assert len(result) == 2 * len(clean_reads)
    assert result.n_mapped > 0.8 * len(result)


def test_deterministic(tiling_contigs, clean_reads):
    r1 = ClassicalMinHashMapper(CFG)
    r1.index(tiling_contigs)
    r2 = ClassicalMinHashMapper(CFG)
    r2.index(tiling_contigs)
    assert np.array_equal(
        r1.map_reads(clean_reads).subject, r2.map_reads(clean_reads).subject
    )


def test_table_has_one_entry_per_subject_per_trial(tiling_contigs):
    mapper = ClassicalMinHashMapper(CFG)
    table = mapper.index(tiling_contigs)
    for t in range(CFG.trials):
        # each subject contributes exactly one (value, subject) key
        assert table.keys[t].size == len(tiling_contigs)


def test_minimizer_variant_maps(tiling_contigs, clean_reads):
    """The use_minimizers ablation variant is a working mapper."""
    mapper = ClassicalMinHashMapper(CFG, use_minimizers=True)
    mapper.index(tiling_contigs)
    result = mapper.map_reads(clean_reads)
    assert result.n_mapped > 0.5 * len(result)
    # smaller base set -> its table is built from minimizer values only
    from repro.sketch import minimizers

    all_mins = np.unique(
        np.concatenate(
            [
                minimizers(tiling_contigs.codes_of(i), CFG.k, CFG.w).ranks
                for i in range(len(tiling_contigs))
            ]
        )
    )
    assert np.isin(mapper.table.values_of_trial(0), all_mins).all()


def test_fewer_trials_weaker_recall(tiling_contigs, clean_reads):
    """The Fig. 6 premise: classical MinHash improves with more trials."""
    few = ClassicalMinHashMapper(JEMConfig(k=12, w=20, ell=500, trials=2, seed=3))
    few.index(tiling_contigs)
    many = ClassicalMinHashMapper(JEMConfig(k=12, w=20, ell=500, trials=40, seed=3))
    many.index(tiling_contigs)
    n_few = few.map_reads(clean_reads).n_mapped
    n_many = many.map_reads(clean_reads).n_mapped
    assert n_many >= n_few
