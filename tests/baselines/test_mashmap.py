import numpy as np
import pytest

from repro.baselines import MashmapConfig, MashmapLikeMapper
from repro.errors import MappingError
from repro.seq import SequenceSet, decode, random_codes


CFG = MashmapConfig(k=12, w=20, ell=500)


def test_config_validation():
    with pytest.raises(MappingError):
        MashmapConfig(k=0)
    with pytest.raises(MappingError):
        MashmapConfig(min_shared=0)


def test_requires_index(clean_reads):
    with pytest.raises(MappingError):
        MashmapLikeMapper(CFG).map_reads(clean_reads)


def test_maps_clean_data(tiling_contigs, clean_reads):
    mapper = MashmapLikeMapper(CFG)
    mapper.index(tiling_contigs)
    result = mapper.map_reads(clean_reads)
    assert result.n_mapped == len(result)
    # hit counts are shared-minimizer counts, should be substantial
    assert result.hit_count[result.mapped_mask].min() >= CFG.min_shared


def test_correct_contig_chosen(tiling_contigs, clean_reads):
    """Mapped contig must truly cover the segment locus."""
    mapper = MashmapLikeMapper(CFG)
    mapper.index(tiling_contigs)
    result = mapper.map_reads(clean_reads)
    contig_bounds = []
    pos = 0
    for ln in tiling_contigs.lengths:
        contig_bounds.append((pos, pos + int(ln)))
        pos += int(ln) - 100
    for i, info in enumerate(result.infos):
        if result.subject[i] < 0:
            continue
        meta = clean_reads.metas[info.read_index]
        if info.kind == "prefix":
            lo, hi = meta["ref_start"], meta["ref_start"] + CFG.ell
        else:
            lo, hi = meta["ref_end"] - CFG.ell, meta["ref_end"]
        c_lo, c_hi = contig_bounds[int(result.subject[i])]
        assert min(hi, c_hi) - max(lo, c_lo) >= CFG.k


def test_foreign_read_unmapped(tiling_contigs):
    rng = np.random.default_rng(4242)
    alien = SequenceSet.from_strings([("x", decode(random_codes(2_000, rng)))])
    mapper = MashmapLikeMapper(MashmapConfig(k=16, w=20, ell=500, min_shared=3))
    mapper.index(tiling_contigs)
    assert mapper.map_reads(alien).n_mapped == 0


def test_deterministic(tiling_contigs, clean_reads):
    a = MashmapLikeMapper(CFG)
    a.index(tiling_contigs)
    b = MashmapLikeMapper(CFG)
    b.index(tiling_contigs)
    assert np.array_equal(a.map_reads(clean_reads).subject, b.map_reads(clean_reads).subject)


def test_winnowed_jaccard_identity(tiling_contigs):
    mapper = MashmapLikeMapper(CFG)
    a = np.array([5, 9, 12, 40], dtype=np.uint64)
    assert mapper.winnowed_jaccard(a, a) == 1.0


def test_winnowed_jaccard_disjoint():
    mapper = MashmapLikeMapper(CFG)
    a = np.array([1, 2, 3], dtype=np.uint64)
    b = np.array([10, 20, 30], dtype=np.uint64)
    assert mapper.winnowed_jaccard(a, b) == 0.0


def test_winnowed_jaccard_partial():
    mapper = MashmapLikeMapper(CFG)
    a = np.array([1, 2, 3, 4], dtype=np.uint64)
    b = np.array([3, 4, 5, 6], dtype=np.uint64)
    # union bottom-4 = {1,2,3,4}; shared = {3,4} -> 2/4
    assert mapper.winnowed_jaccard(a, b) == 0.5


def test_winnowed_scoring_maps_clean_data(tiling_contigs, clean_reads):
    mapper = MashmapLikeMapper(
        MashmapConfig(k=12, w=20, ell=500, scoring="winnowed", min_jaccard=0.1)
    )
    mapper.index(tiling_contigs)
    result = mapper.map_reads(clean_reads)
    assert result.n_mapped > 0.95 * len(result)
    # winnowed scoring agrees with intersection scoring on clean data
    plain = MashmapLikeMapper(CFG)
    plain.index(tiling_contigs)
    expected = plain.map_reads(clean_reads)
    both = (result.subject >= 0) & (expected.subject >= 0)
    assert (result.subject[both] == expected.subject[both]).mean() > 0.95


def test_unknown_scoring_rejected():
    with pytest.raises(MappingError):
        MashmapConfig(scoring="magic")


def test_local_intersection_window():
    """L2 scoring counts distinct query minimizers within one ℓ-window."""
    mapper = MashmapLikeMapper(CFG)
    q = np.array([0, 1, 2, 0, 1], dtype=np.int64)
    pos = np.array([0, 100, 200, 5_000, 5_100], dtype=np.int64)
    # window 500: first three anchors share a window -> 3 distinct
    assert mapper._score_candidate(q, pos, 500) == 3
    # window 50: at most 1
    assert mapper._score_candidate(q, pos, 50) == 1
