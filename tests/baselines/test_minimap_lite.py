import numpy as np
import pytest

from repro.baselines import MinimapLite
from repro.errors import MappingError
from repro.seq import random_codes, reverse_complement
from repro.simulate import ErrorModel, apply_errors


@pytest.fixture
def reference(rng):
    return random_codes(50_000, rng)


@pytest.fixture
def mapper(reference):
    m = MinimapLite(k=14, w=12)
    m.index(reference)
    return m


def test_requires_index():
    with pytest.raises(MappingError):
        MinimapLite().place(np.zeros(100, dtype=np.uint8))


def test_place_exact_substring(mapper, reference):
    query = reference[10_000:14_000]
    placement = mapper.place(query)
    assert placement is not None
    assert placement.strand == 1
    assert abs(placement.ref_start - 10_000) < 200
    assert abs(placement.ref_end - 14_000) < 200


def test_place_reverse_strand(mapper, reference):
    query = reverse_complement(reference[20_000:22_000])
    placement = mapper.place(query)
    assert placement is not None
    assert placement.strand == -1
    assert abs(placement.ref_start - 20_000) < 200


def test_place_noisy_query(mapper, reference, rng):
    noisy = apply_errors(
        reference[5_000:8_000], ErrorModel(substitution=0.01, insertion=0.002, deletion=0.002), rng
    )
    placement = mapper.place(noisy)
    assert placement is not None
    assert abs(placement.ref_start - 5_000) < 300


def test_unrelated_query_unplaced(mapper):
    alien = random_codes(2_000, np.random.default_rng(777))
    placement = mapper.place(alien, min_anchors=4)
    assert placement is None


def test_place_set(mapper, reference):
    from repro.seq import SequenceSet, decode

    queries = SequenceSet.from_strings(
        [("a", decode(reference[0:2_000])), ("b", decode(reference[30_000:33_000]))]
    )
    placements = mapper.place_set(queries)
    assert placements[0] is not None and placements[1] is not None
    assert abs(placements[1].ref_start - 30_000) < 200


def test_empty_reference_rejected():
    m = MinimapLite()
    with pytest.raises(MappingError):
        m.index(np.zeros(5, dtype=np.uint8))


def test_multi_sequence_reference(rng):
    """Queries resolve to the right chromosome with local coordinates."""
    from repro.seq import SequenceSet, decode

    chr1 = random_codes(20_000, rng)
    chr2 = random_codes(30_000, rng)
    reference = SequenceSet.from_strings([("chr1", decode(chr1)), ("chr2", decode(chr2))])
    m = MinimapLite(k=14, w=12)
    m.index(reference)

    p1 = m.place(chr1[5_000:8_000])
    assert p1 is not None and p1.ref_name == "chr1" and p1.ref_id == 0
    assert abs(p1.ref_start - 5_000) < 200

    p2 = m.place(chr2[10_000:14_000])
    assert p2 is not None and p2.ref_name == "chr2" and p2.ref_id == 1
    assert abs(p2.ref_start - 10_000) < 200
    assert p2.ref_end <= 30_000  # local, clamped to chr2


def test_multi_sequence_reverse_strand(rng):
    from repro.seq import SequenceSet, decode

    chr1 = random_codes(15_000, rng)
    chr2 = random_codes(15_000, rng)
    reference = SequenceSet.from_strings([("a", decode(chr1)), ("b", decode(chr2))])
    m = MinimapLite(k=14, w=12)
    m.index(reference)
    query = reverse_complement(chr2[2_000:5_000])
    placement = m.place(query)
    assert placement is not None
    assert placement.ref_name == "b"
    assert placement.strand == -1
    assert abs(placement.ref_start - 2_000) < 200
