import os

import pytest

from repro.bench import ALL_EXPERIMENTS, BenchContext, EXPERIMENTS, ThreadScalingModel


def test_registry_covers_every_artifact():
    assert set(EXPERIMENTS) == {
        "table1", "table2", "fig5", "fig6", "fig7", "fig8", "fig9", "faults",
        "serve", "serve_concurrent", "kernels", "store", "mutation",
    }
    for name in (
        "ablation_topx", "ablation_segments", "ablation_window",
        "ablation_counter", "ablation_threshold", "ablation_kmer",
    ):
        assert name in ALL_EXPERIMENTS


def test_pick_default_and_restriction():
    ctx = BenchContext(datasets=("b_splendens", "nonexistent"))
    assert ctx.pick(("e_coli", "b_splendens")) == ("b_splendens",)
    # no overlap -> falls back to the first default
    ctx2 = BenchContext(datasets=("zzz",))
    assert ctx2.pick(("e_coli", "b_splendens")) == ("e_coli",)
    # no restriction -> defaults
    assert BenchContext().pick(("a", "b")) == ("a", "b")


def test_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.007")
    monkeypatch.setenv("REPRO_BENCH_DATASETS", "e_coli,b_splendens")
    ctx = BenchContext.from_env()
    assert ctx.scale == 0.007
    assert ctx.datasets == ("e_coli", "b_splendens")


def test_from_env_overrides(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.007")
    ctx = BenchContext.from_env(scale=0.5)
    assert ctx.scale == 0.5


def test_thread_model_monotone():
    model = ThreadScalingModel()
    t1 = model.threaded_time(100.0, 1)
    t8 = model.threaded_time(100.0, 8)
    t64 = model.threaded_time(100.0, 64)
    assert t64 < t8 < t1
    # Amdahl floor: never below the serial fraction
    assert t64 > 100.0 * model.serial_fraction


def test_experiment_output_save(tmp_path):
    from repro.bench import ExperimentOutput

    out = ExperimentOutput("demo", "hello table", {})
    path = out.save(str(tmp_path))
    assert path.endswith("demo.txt")
    assert (tmp_path / "demo.txt").read_text() == "hello table\n"
