"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.seq import SequenceSet, decode, random_codes


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_genome(rng) -> np.ndarray:
    """A 20 kbp random genome as a code array."""
    return random_codes(20_000, rng)


@pytest.fixture
def tiling_contigs(small_genome) -> SequenceSet:
    """Contigs tiling the small genome with 100 bp overlaps."""
    pieces = []
    pos = 0
    idx = 0
    while pos < small_genome.size:
        end = min(pos + 2_000, small_genome.size)
        pieces.append((f"contig_{idx}", decode(small_genome[pos:end])))
        pos = end - 100 if end < small_genome.size else end
        idx += 1
    return SequenceSet.from_strings(pieces)


@pytest.fixture
def clean_reads(small_genome, rng) -> SequenceSet:
    """Error-free 5 kbp reads drawn from the small genome with truth coords."""
    from repro.seq import SequenceSetBuilder

    builder = SequenceSetBuilder()
    for i in range(20):
        start = int(rng.integers(0, small_genome.size - 5_000))
        builder.add(
            f"read_{i}",
            small_genome[start : start + 5_000],
            {"ref_start": start, "ref_end": start + 5_000, "ref_strand": 1},
        )
    return builder.build()
