import pytest

from repro.core import JEMConfig
from repro.errors import ConfigError


def test_defaults_match_paper():
    cfg = JEMConfig()
    assert cfg.k == 16
    assert cfg.w == 100
    assert cfg.ell == 1000
    assert cfg.trials == 30


def test_hash_family_size_and_determinism():
    cfg = JEMConfig(trials=7, seed=42)
    f1, f2 = cfg.hash_family(), cfg.hash_family()
    assert f1.size == 7
    assert (f1.a == f2.a).all()


def test_with_trials():
    cfg = JEMConfig(trials=30)
    cfg10 = cfg.with_trials(10)
    assert cfg10.trials == 10
    assert cfg10.k == cfg.k and cfg10.seed == cfg.seed


@pytest.mark.parametrize(
    "kwargs",
    [
        {"k": 0},
        {"k": 17},
        {"w": 0},
        {"ell": 4, "k": 16},
        {"trials": 0},
        {"min_hits": 0},
    ],
)
def test_invalid_configs(kwargs):
    with pytest.raises(ConfigError):
        JEMConfig(**kwargs)


def test_frozen():
    cfg = JEMConfig()
    with pytest.raises(Exception):
        cfg.k = 5  # type: ignore[misc]
