"""Edge cases and failure injection across the core mapper stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import JEMConfig, JEMMapper, SketchTable
from repro.errors import MappingError
from repro.seq import SequenceSet, decode, random_codes


def test_contigs_shorter_than_k_yield_empty_table():
    mapper = JEMMapper(JEMConfig(k=16, w=10, ell=100, trials=4))
    tiny = SequenceSet.from_strings([("a", "acgt"), ("b", "gg")])
    table = mapper.index(tiny)
    assert table.total_entries == 0
    reads = SequenceSet.from_strings([("r", "acgt" * 100)])
    result = mapper.map_reads(reads)
    assert result.n_mapped == 0  # no crash, nothing mapped


def test_queries_shorter_than_k_unmapped(tiling_contigs):
    mapper = JEMMapper(JEMConfig(k=12, w=20, ell=500, trials=4))
    mapper.index(tiling_contigs)
    reads = SequenceSet.from_strings([("tiny", "acgtacg")])
    result = mapper.map_reads(reads)
    assert result.n_mapped == 0


def test_all_n_read_unmapped(tiling_contigs):
    mapper = JEMMapper(JEMConfig(k=12, w=20, ell=500, trials=4))
    mapper.index(tiling_contigs)
    reads = SequenceSet.from_strings([("nn", "n" * 2_000)])
    result = mapper.map_reads(reads)
    assert result.n_mapped == 0


def test_homopolymer_world():
    """A degenerate genome with a single repeated k-mer still terminates."""
    contigs = SequenceSet.from_strings([("poly", "a" * 5_000)])
    mapper = JEMMapper(JEMConfig(k=8, w=10, ell=500, trials=4))
    mapper.index(contigs)
    reads = SequenceSet.from_strings([("r", "a" * 3_000)])
    result = mapper.map_reads(reads)
    assert result.n_mapped == 2
    assert (result.subject == 0).all()


def test_single_contig_single_read(rng):
    genome = random_codes(3_000, rng)
    contigs = SequenceSet.from_strings([("c", decode(genome))])
    reads = SequenceSet.from_strings([("r", decode(genome[500:2_500]))])
    mapper = JEMMapper(JEMConfig(k=12, w=10, ell=400, trials=6))
    mapper.index(contigs)
    result = mapper.map_reads(reads)
    assert result.n_mapped == 2


def test_read_mapping_strand_invariance(tiling_contigs, clean_reads):
    """Reads map to the same contigs as their reverse complements."""
    from repro.seq import SequenceSetBuilder, reverse_complement

    cfg = JEMConfig(k=12, w=20, ell=500, trials=12, seed=2)
    mapper = JEMMapper(cfg)
    mapper.index(tiling_contigs)
    fwd = mapper.map_reads(clean_reads)

    builder = SequenceSetBuilder()
    for i in range(len(clean_reads)):
        builder.add(clean_reads.names[i], reverse_complement(clean_reads.codes_of(i)))
    rc = mapper.map_reads(builder.build())
    # a read's prefix == the RC read's suffix; compare swapped columns
    fwd_pairs = fwd.subject.reshape(-1, 2)
    rc_pairs = rc.subject.reshape(-1, 2)[:, ::-1]
    both = (fwd_pairs >= 0) & (rc_pairs >= 0)
    agreement = (fwd_pairs[both] == rc_pairs[both]).mean()
    assert agreement > 0.9


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_table_union_is_order_insensitive(data):
    n_parts = data.draw(st.integers(min_value=2, max_value=4))
    parts = []
    for _ in range(n_parts):
        keys = data.draw(
            st.lists(st.integers(min_value=0, max_value=1 << 40), max_size=20)
        )
        arr = np.unique(np.array(keys, dtype=np.uint64))
        parts.append(SketchTable([arr], n_subjects=1))
    forward = SketchTable.union(parts)
    backward = SketchTable.union(parts[::-1])
    assert np.array_equal(forward.keys[0], backward.keys[0])
    # idempotence: union with itself changes nothing
    again = SketchTable.union([forward, forward])
    assert np.array_equal(again.keys[0], forward.keys[0])


def test_mapper_independent_of_subject_names(tiling_contigs, clean_reads):
    cfg = JEMConfig(k=12, w=20, ell=500, trials=6, seed=5)
    renamed = SequenceSet(
        tiling_contigs.buffer,
        tiling_contigs.offsets,
        [f"x{i}" for i in range(len(tiling_contigs))],
    )
    a = JEMMapper(cfg)
    a.index(tiling_contigs)
    b = JEMMapper(cfg)
    b.index(renamed)
    assert np.array_equal(
        a.map_reads(clean_reads).subject, b.map_reads(clean_reads).subject
    )
