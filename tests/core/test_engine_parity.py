"""Cross-frontend bit-identity: every frontend, every store, one output.

The MappingEngine promises that store kind and execution mode never change
*what* is computed.  This suite pins that down by running the same dataset
through the CLI, the engine API (inline and simulated-parallel, with and
without seeded faults), the resident service, the streaming frontend and
the tiled frontend — under every store kind — and asserting the mappings
are bit-identical to the packed-table reference.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.core import JEMConfig, MappingEngine, PipelineConfig
from repro.seq import write_fasta, write_fastq

CFG = JEMConfig(k=12, w=20, ell=500, trials=10, seed=99)
CFG_FLAGS = ["--k", "12", "--w", "20", "--ell", "500", "--trials", "10", "--seed", "99"]
STORES = ("columnar", "dict", "packed")


def _reference(tiling_contigs, clean_reads):
    engine = MappingEngine(PipelineConfig(jem=CFG, store="packed"))
    engine.use_subjects(tiling_contigs)
    return engine.map_queries(clean_reads).mapping


def _assert_same(result, reference):
    assert result.segment_names == reference.segment_names
    assert np.array_equal(result.subject, reference.subject)
    assert np.array_equal(result.hit_count, reference.hit_count)


@pytest.mark.parametrize("store", STORES)
def test_engine_inline_parity(store, tiling_contigs, clean_reads):
    reference = _reference(tiling_contigs, clean_reads)
    engine = MappingEngine(PipelineConfig(jem=CFG, store=store))
    engine.use_subjects(tiling_contigs)
    run = engine.map_queries(clean_reads)
    assert run.mode == "inline"
    _assert_same(run.mapping, reference)


@pytest.mark.parametrize("store", STORES)
def test_engine_simulated_parity(store, tiling_contigs, clean_reads):
    reference = _reference(tiling_contigs, clean_reads)
    engine = MappingEngine(
        PipelineConfig(jem=CFG, store=store, processes=4, backend="simulated")
    )
    engine.use_subjects(tiling_contigs)
    run = engine.map_queries(clean_reads)
    assert run.mode == "simulated"
    assert run.timing_line().startswith("# parallel p=4:")
    _assert_same(run.mapping, reference)


@pytest.mark.parametrize("store", ("columnar", "dict"))
def test_engine_seeded_faults_parity(store, tiling_contigs, clean_reads):
    """A seeded recoverable fault plan must not change the mapping."""
    reference = _reference(tiling_contigs, clean_reads)
    engine = MappingEngine(
        PipelineConfig(jem=CFG, store=store, processes=4, inject_faults=7)
    )
    engine.use_subjects(tiling_contigs)
    run = engine.map_queries(clean_reads)
    assert run.partial is None
    _assert_same(run.mapping, reference)


@pytest.mark.parametrize("store", ("columnar", "dict"))
def test_service_parity(store, tiling_contigs, clean_reads):
    from repro.service import MappingService

    reference = _reference(tiling_contigs, clean_reads)
    with MappingService.from_pipeline(
        PipelineConfig(jem=CFG, store=store), subjects=tiling_contigs
    ) as service:
        result = service.map_reads(clean_reads, timeout=60)
    _assert_same(result, reference)


@pytest.mark.parametrize("store", ("columnar", "dict"))
def test_streaming_parity(store, tiling_contigs, clean_reads):
    reference = _reference(tiling_contigs, clean_reads)
    engine = MappingEngine(PipelineConfig(jem=CFG, store=store))
    engine.use_subjects(tiling_contigs)
    batches = list(engine.map_stream(iter(clean_reads), batch_size=7))
    subjects = np.concatenate([b.subject for b in batches])
    hit_counts = np.concatenate([b.hit_count for b in batches])
    names = [n for b in batches for n in b.segment_names]
    assert names == reference.segment_names
    assert np.array_equal(subjects, reference.subject)
    assert np.array_equal(hit_counts, reference.hit_count)


@pytest.mark.parametrize("store", ("columnar", "dict"))
def test_tiled_parity(store, tiling_contigs, clean_reads):
    packed = MappingEngine(PipelineConfig(jem=CFG, store="packed"))
    packed.use_subjects(tiling_contigs)
    reference = packed.map_tiled(clean_reads)
    engine = MappingEngine(PipelineConfig(jem=CFG, store=store))
    engine.use_subjects(tiling_contigs)
    assert engine.map_tiled(clean_reads) == reference


def _write_inputs(tmp_path, tiling_contigs, clean_reads):
    contigs_path = str(tmp_path / "contigs.fasta")
    reads_path = str(tmp_path / "reads.fastq")
    write_fasta(contigs_path, tiling_contigs)
    write_fastq(reads_path, clean_reads)
    return contigs_path, reads_path


def _tsv_body(path):
    with open(path, encoding="utf-8") as fh:
        return [line for line in fh if not line.startswith("#")]


@pytest.mark.parametrize("store", STORES)
def test_cli_map_parity(store, tmp_path, tiling_contigs, clean_reads):
    """`jem map --store <kind>` writes the same TSV for every store kind."""
    contigs_path, reads_path = _write_inputs(tmp_path, tiling_contigs, clean_reads)
    want = str(tmp_path / "packed.tsv")
    got = str(tmp_path / f"{store}.tsv")
    base = ["map", "-q", reads_path, "-s", contigs_path, *CFG_FLAGS]
    assert main([*base, "-o", want, "--store", "packed"]) == 0
    assert main([*base, "-o", got, "--store", store]) == 0
    assert _tsv_body(got) == _tsv_body(want)


@pytest.mark.parametrize("store", ("columnar", "dict"))
def test_cli_saved_index_roundtrip(store, tmp_path, tiling_contigs, clean_reads):
    """index -> map --index keeps parity across the persisted v3 bundle."""
    contigs_path, reads_path = _write_inputs(tmp_path, tiling_contigs, clean_reads)
    index_path = str(tmp_path / "contigs.npz")
    assert main(["index", "-s", contigs_path, "-o", index_path, *CFG_FLAGS]) == 0
    direct = str(tmp_path / "direct.tsv")
    via_index = str(tmp_path / "via_index.tsv")
    base = ["map", "-q", reads_path, *CFG_FLAGS]
    assert main([*base, "-s", contigs_path, "-o", direct, "--store", store]) == 0
    assert main([*base, "--index", index_path, "-o", via_index, "--store", store]) == 0
    assert _tsv_body(via_index) == _tsv_body(direct)


def test_cli_map_minimap_lite(tmp_path, tiling_contigs, clean_reads):
    """The minimap-lite registry entry is reachable from the CLI."""
    contigs_path, reads_path = _write_inputs(tmp_path, tiling_contigs, clean_reads)
    out = str(tmp_path / "mml.tsv")
    assert main(["map", "-q", reads_path, "-s", contigs_path, "-o", out,
                 "--mapper", "minimap-lite", *CFG_FLAGS]) == 0
    body = _tsv_body(out)
    assert body[0] == "segment\tcontig\thits\n"
    assert len(body) == 1 + 2 * len(clean_reads)
